"""ISA inventory tests: the paper's exact RV64IM instruction structure."""

import pytest
from hypothesis import given, strategies as st

from repro.designs import isa


class TestInventory:
    def test_72_instructions(self):
        assert len(isa.INSTRUCTIONS) == 72

    def test_unique_names_and_opcodes(self):
        names = [s.name for s in isa.INSTRUCTIONS]
        opcodes = [s.opcode for s in isa.INSTRUCTIONS]
        assert len(set(names)) == 72
        assert opcodes == list(range(72))

    def test_division_remainder_variants(self):
        # SS VII-A1: "eight division (DIV) and remainder (REM) variants"
        assert len(isa.CLASSES["div"]) == 8
        assert set(isa.CLASSES["div"]) == {
            "DIV", "DIVU", "REM", "REMU", "DIVW", "DIVUW", "REMW", "REMUW",
        }

    def test_load_variants(self):
        # "seven load (LD) variants"
        assert len(isa.CLASSES["load"]) == 7

    def test_store_variants(self):
        # "four store (ST) variants"
        assert len(isa.CLASSES["store"]) == 4

    def test_branch_variants(self):
        # "six branch variants" (plus JALR) make up the extra dynamics
        assert len(isa.CLASSES["branch"]) == 6
        assert len(isa.CLASSES["jalr"]) == 1

    def test_intrinsic_transmitter_class_count(self):
        # 8 div/rem + 7 loads + 4 stores = 19 intrinsic transmitters (Fig. 8)
        count = (
            len(isa.CLASSES["div"]) + len(isa.CLASSES["load"]) + len(isa.CLASSES["store"])
        )
        assert count == 19

    def test_dynamic_transmitter_class_count(self):
        # 19 intrinsic + 6 branches + JALR = 26 dynamic transmitters (Fig. 8)
        assert 19 + len(isa.CLASSES["branch"]) + 1 == 26

    def test_signed_flags(self):
        assert isa.BY_NAME["DIV"].signed and not isa.BY_NAME["DIVU"].signed
        assert isa.BY_NAME["BLT"].signed and not isa.BY_NAME["BLTU"].signed

    def test_operand_read_flags(self):
        assert not isa.BY_NAME["LUI"].reads_rs1
        assert not isa.BY_NAME["ADDI"].reads_rs2
        assert isa.BY_NAME["SW"].reads_rs1 and isa.BY_NAME["SW"].reads_rs2
        assert not isa.BY_NAME["SW"].writes_rd
        assert not isa.BY_NAME["BEQ"].writes_rd
        assert isa.BY_NAME["JALR"].writes_rd


class TestEncoding:
    def test_roundtrip(self):
        word = isa.encode("MUL", rd=3, rs1=5, rs2=7)
        instr = isa.decode(word)
        assert instr.spec.name == "MUL"
        assert (instr.rd, instr.rs1, instr.rs2) == (3, 5, 7)

    def test_imm_alias(self):
        instr = isa.decode(isa.encode("ADDI", rd=1, rs1=2, rs2=6))
        assert instr.imm == 6

    def test_field_range_checked(self):
        with pytest.raises(ValueError):
            isa.encode("ADD", rd=8)
        with pytest.raises(ValueError):
            isa.encode("ADD", rs1=-1)

    def test_invalid_opcode_rejected(self):
        with pytest.raises(ValueError):
            isa.decode(127 << 9)

    def test_encoding_fits_16_bits(self):
        word = isa.encode("REMUW", rd=7, rs1=7, rs2=7)
        assert word < (1 << isa.ENCODING_BITS)

    @given(
        name=st.sampled_from([s.name for s in isa.INSTRUCTIONS]),
        rd=st.integers(0, 7),
        rs1=st.integers(0, 7),
        rs2=st.integers(0, 7),
    )
    def test_roundtrip_all(self, name, rd, rs1, rs2):
        instr = isa.decode(isa.encode(name, rd=rd, rs1=rs1, rs2=rs2))
        assert (instr.spec.name, instr.rd, instr.rs1, instr.rs2) == (name, rd, rs1, rs2)

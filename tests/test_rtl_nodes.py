"""Unit tests: expression nodes, width rules, constant folding."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl import Module, WidthError, cat, mux, redand, redor, sext, trunc, zext


@pytest.fixture
def m():
    return Module("t")


class TestLeaves:
    def test_input_width(self, m):
        a = m.input("a", 5)
        assert a.width == 5 and a.op == "input"

    def test_input_rejects_zero_width(self, m):
        with pytest.raises(WidthError):
            m.input("a", 0)

    def test_const_masks_value(self, m):
        c = m.const(0x1FF, 8)
        assert c.value == 0xFF

    def test_const_shared(self, m):
        assert m.const(3, 4) is m.const(3, 4)

    def test_const_distinct_widths(self, m):
        assert m.const(3, 4) is not m.const(3, 5)


class TestWidthRules:
    def test_and_width_mismatch(self, m):
        with pytest.raises(WidthError):
            m.input("a", 4) & m.input("b", 5)

    def test_add_width_mismatch(self, m):
        with pytest.raises(WidthError):
            m.input("a", 4) + m.input("b", 5)

    def test_mux_selector_must_be_1bit(self, m):
        sel = m.input("s", 2)
        a, b = m.input("a", 4), m.input("b", 4)
        # mux() reduces wide selectors via .bool()
        node = mux(sel, a, b)
        assert node.width == 4

    def test_slice_out_of_range(self, m):
        a = m.input("a", 4)
        with pytest.raises(WidthError):
            a[2:6]

    def test_slice_negative(self, m):
        a = m.input("a", 4)
        with pytest.raises(WidthError):
            a[-1]

    def test_zext_narrower_rejected(self, m):
        with pytest.raises(WidthError):
            zext(m.input("a", 8), 4)

    def test_trunc_wider_rejected(self, m):
        with pytest.raises(WidthError):
            trunc(m.input("a", 4), 8)


class TestFolding:
    def test_and_zero(self, m):
        a = m.input("a", 4)
        assert (a & 0).is_const() and (a & 0).value == 0

    def test_and_ones(self, m):
        a = m.input("a", 4)
        assert (a & 0xF) is a

    def test_or_zero(self, m):
        a = m.input("a", 4)
        assert (a | 0) is a

    def test_xor_self(self, m):
        a = m.input("a", 4)
        assert (a ^ a).value == 0

    def test_add_zero(self, m):
        a = m.input("a", 4)
        assert (a + 0) is a

    def test_sub_self(self, m):
        a = m.input("a", 4)
        assert (a - a).value == 0

    def test_double_not(self, m):
        a = m.input("a", 4)
        assert ~(~a) is a

    def test_mux_const_selector(self, m):
        a, b = m.input("a", 4), m.input("b", 4)
        one = m.const(1, 1)
        zero = m.const(0, 1)
        assert mux(one, a, b) is a
        assert mux(zero, a, b) is b

    def test_mux_same_arms(self, m):
        s = m.input("s", 1)
        a = m.input("a", 4)
        assert mux(s, a, a) is a

    def test_eq_self(self, m):
        a = m.input("a", 4)
        assert a.eq(a).value == 1

    def test_ult_zero(self, m):
        a = m.input("a", 4)
        assert a.ult(0).value == 0

    def test_const_arith(self, m):
        assert (m.const(7, 4) + m.const(12, 4)).value == (7 + 12) & 0xF
        assert (m.const(3, 4) * m.const(6, 4)).value == (18) & 0xF
        assert (m.const(3, 4) - m.const(6, 4)).value == (3 - 6) & 0xF

    def test_full_slice_identity(self, m):
        a = m.input("a", 4)
        assert a[0:4] is a

    def test_structural_sharing(self, m):
        a, b = m.input("a", 4), m.input("b", 4)
        assert (a & b) is (a & b)

    def test_commutative_canonical(self, m):
        a, b = m.input("a", 4), m.input("b", 4)
        assert (a & b) is (b & a)
        assert (a + b) is (b + a)


class TestHelpers:
    def test_cat_width(self, m):
        a, b = m.input("a", 3), m.input("b", 5)
        assert cat(a, b).width == 8

    def test_cat_const(self, m):
        # cat is MSB-first
        node = cat(m.const(0b101, 3), m.const(0b01, 2))
        assert node.value == 0b10101

    def test_zext(self, m):
        node = zext(m.const(0b11, 2), 5)
        assert node.width == 5 and node.value == 0b11

    def test_sext_negative(self, m):
        node = sext(m.const(0b10, 2), 4)
        assert node.value == 0b1110

    def test_sext_positive(self, m):
        node = sext(m.const(0b01, 2), 4)
        assert node.value == 0b0001

    def test_redor_const(self, m):
        assert redor(m.const(0, 4)).value == 0
        assert redor(m.const(2, 4)).value == 1

    def test_redand_const(self, m):
        assert redand(m.const(0xF, 4)).value == 1
        assert redand(m.const(0xE, 4)).value == 0

    def test_bool_of_1bit_identity(self, m):
        a = m.input("a", 1)
        assert a.bool() is a

    def test_shift_by_zero_identity(self, m):
        a = m.input("a", 4)
        assert (a << 0) is a and (a >> 0) is a

    def test_ne(self, m):
        assert m.const(3, 4).ne(3).value == 0
        assert m.const(3, 4).ne(4).value == 1

    def test_unsigned_compare_helpers(self, m):
        three, five = m.const(3, 4), m.const(5, 4)
        assert three.ult(five).value == 1
        assert three.ule(five).value == 1
        assert five.ugt(three).value == 1
        assert five.uge(five).value == 1


@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_const_fold_matches_python(a, b):
    m = Module("h")
    ca, cb = m.const(a, 8), m.const(b, 8)
    assert (ca & cb).value == a & b
    assert (ca | cb).value == a | b
    assert (ca ^ cb).value == a ^ b
    assert (ca + cb).value == (a + b) & 0xFF
    assert (ca - cb).value == (a - b) & 0xFF
    assert (ca * cb).value == (a * b) & 0xFF
    assert ca.eq(cb).value == int(a == b)
    assert ca.ult(cb).value == int(a < b)


@given(a=st.integers(0, 255), lo=st.integers(0, 7), width=st.integers(1, 8))
def test_const_slice_matches_python(a, lo, width):
    if lo + width > 8:
        width = 8 - lo
    if width <= 0:
        return
    m = Module("h")
    node = m.const(a, 8)[lo : lo + width]
    assert node.value == (a >> lo) & ((1 << width) - 1)

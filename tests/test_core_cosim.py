"""Co-simulation: the pipelined core vs an architectural golden model.

Random straight-line programs (no control flow, so every instruction
commits) run on the core; the final architectural state (ARF + memory)
must match an instruction-at-a-time reference interpreter.  This checks
the datapath, hazard handling, scoreboard write-back, store-buffer
draining, and store-to-load ordering all at once.

The reference interpreter and the program-to-quiescence runner live in
:mod:`repro.designs.harness` (they are shared with the fuzz and perf
oracles); this suite exercises them against the default 8-bit core.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs import (
    STRAIGHT_LINE_POOL,
    build_core,
    golden_model,
    isa,
    run_program,
    sample_sequence,
)
from repro.sim import Simulator

MEM_WORDS = 4


@pytest.fixture(scope="module")
def cosim_design():
    return build_core()


@pytest.fixture(scope="module")
def cosim_sim(cosim_design):
    return Simulator(cosim_design.netlist)


program_strategy = st.lists(
    st.tuples(
        st.sampled_from(STRAIGHT_LINE_POOL),
        st.integers(0, 7),  # rd
        st.integers(0, 7),  # rs1
        st.integers(0, 7),  # rs2/imm
    ),
    min_size=1,
    max_size=5,
)
arf_strategy = st.tuples(*([st.just(0)] + [st.integers(0, 255)] * 7))


@settings(max_examples=40, deadline=None)
@given(prog=program_strategy, arf_init=arf_strategy)
def test_random_programs_match_golden_model(cosim_design, cosim_sim, prog, arf_init):
    program = [isa.encode(name, rd=rd, rs1=rs1, rs2=rs2) for name, rd, rs1, rs2 in prog]
    run = run_program(cosim_sim, program, list(arf_init))
    want_arf, want_mem = golden_model(program, list(arf_init))
    assert run.arf == want_arf, (prog, arf_init)
    assert run.mem == want_mem, (prog, arf_init)


def test_seeded_sequences_match_golden_model(cosim_design, cosim_sim):
    """The fuzz/perf sequence sampler agrees with the reference too."""
    for seed in range(25):
        program, arf_init = sample_sequence(seed)
        run = run_program(cosim_sim, program, arf_init)
        want_arf, want_mem = golden_model(program, arf_init)
        assert run.arf == want_arf, seed
        assert run.mem == want_mem, seed


class TestDirectedCosim:
    def test_dependent_chain(self, cosim_design, cosim_sim):
        program = [
            isa.encode("ADDI", rd=1, rs1=0, rs2=5),
            isa.encode("ADD", rd=2, rs1=1, rs2=1),
            isa.encode("MUL", rd=3, rs1=2, rs2=1),
            isa.encode("DIVU", rd=4, rs1=3, rs2=2),
        ]
        run = run_program(cosim_sim, program, [0] * 8)
        assert run.arf[1] == 5 and run.arf[2] == 10
        assert run.arf[3] == 50 and run.arf[4] == 5

    def test_store_then_load_roundtrip(self, cosim_design, cosim_sim):
        program = [
            isa.encode("SW", rs1=1, rs2=2),  # mem[(r1+2)%4] = r2
            isa.encode("LW", rd=3, rs1=1, rs2=2),  # r3 = same word
        ]
        run = run_program(cosim_sim, program, [0, 1, 0x77, 0, 0, 0, 0, 0])
        assert run.arf[3] == 0x77
        assert run.mem[(1 + 2) % MEM_WORDS] == 0x77

    def test_two_stores_drain_in_order(self, cosim_design, cosim_sim):
        program = [
            isa.encode("SW", rs1=0, rs2=1),  # mem[1] = r1
            isa.encode("SW", rs1=0, rs2=1),  # mem[1] = r1 again (same addr)
            isa.encode("ADDI", rd=1, rs1=0, rs2=7),
        ]
        run = run_program(cosim_sim, program, [0, 0x21] + [0] * 6)
        assert run.mem[1] == 0x21
        assert run.arf[1] == 7

    def test_retire_map_covers_every_instruction(self, cosim_design, cosim_sim):
        program, arf_init = sample_sequence(7, min_len=4, max_len=6)
        run = run_program(cosim_sim, program, arf_init)
        assert len(run.retire) == len(program)
        assert sorted(run.retire.values()) == list(run.retire.values())

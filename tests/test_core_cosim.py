"""Co-simulation: the pipelined core vs an architectural golden model.

Random straight-line programs (no control flow, so every instruction
commits) run on the core; the final architectural state (ARF + memory)
must match an instruction-at-a-time reference interpreter.  This checks
the datapath, hazard handling, scoreboard write-back, store-buffer
draining, and store-to-load ordering all at once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs import build_core, isa, program_driver_factory, slot_pc
from repro.sim import Simulator

XLEN_MASK = 0xFF
MEM_WORDS = 4

# straight-line instruction pool (no branches/jumps/system: all commit)
POOL = [
    "ADD", "SUB", "XOR", "OR", "AND", "SLT", "SLTU", "SLL", "SRL",
    "ADDI", "XORI", "ORI", "ANDI", "SLTI", "SLLI", "SRLI",
    "LUI", "AUIPC", "CSRRW", "CSRRWI", "FENCE",
    "MUL", "MULH", "MULW",
    "DIV", "DIVU", "REM", "REMU",
    "LW", "LB", "LHU",
    "SW", "SB",
]


def golden(program, arf_init):
    """Architectural reference: returns (arf, mem) after the program."""
    arf = list(arf_init)
    mem = [0] * MEM_WORDS

    def signed(x):
        return x - 256 if x >= 128 else x

    for slot, word in enumerate(program):
        instr = isa.decode(word)
        spec = instr.spec
        pc = slot_pc(slot)
        a = arf[instr.rs1] if spec.reads_rs1 else 0
        b = arf[instr.rs2] if spec.reads_rs2 else 0
        imm = instr.imm
        result = None
        if spec.cls == "alu":
            operand_b = imm if spec.alu_op in (
                "addi", "slti", "xori", "ori", "andi", "slli", "srli"
            ) else b
            op = spec.alu_op
            if op in ("add", "addi"):
                result = (a + operand_b) & XLEN_MASK
            elif op == "sub":
                result = (a - operand_b) & XLEN_MASK
            elif op in ("xor", "xori"):
                result = a ^ operand_b
            elif op in ("or", "ori"):
                result = a | operand_b
            elif op in ("and", "andi"):
                result = a & operand_b
            elif op in ("slt", "slti"):
                result = int(signed(a) < signed(operand_b))
            elif op == "sltu":
                result = int(a < operand_b)
            elif op in ("sll", "slli"):
                result = (a << (operand_b & 7)) & XLEN_MASK
            elif op in ("srl", "srli"):
                result = a >> (operand_b & 7)
            elif op == "lui":
                result = (imm << 4) & XLEN_MASK
            elif op == "auipc":
                result = (pc + imm) & XLEN_MASK
            elif op == "csr":
                result = a
            elif op == "csri":
                result = imm
            elif op == "nop":
                result = 0
        elif spec.cls == "mul":
            result = (a * b) & XLEN_MASK
        elif spec.cls == "div":
            # the scaled core computes all div/rem variants unsigned
            if b == 0:
                q, r = XLEN_MASK, a
            else:
                q, r = a // b, a % b
            result = r if spec.name.startswith("REM") else q
        elif spec.cls == "load":
            addr = (a + imm) & XLEN_MASK
            result = mem[addr % MEM_WORDS]
        elif spec.cls == "store":
            addr = (a + imm) & XLEN_MASK
            mem[addr % MEM_WORDS] = b
        if spec.writes_rd and instr.rd != 0 and result is not None:
            arf[instr.rd] = result
    return arf, mem


@pytest.fixture(scope="module")
def cosim_design():
    return build_core()


@pytest.fixture(scope="module")
def cosim_sim(cosim_design):
    return Simulator(cosim_design.netlist)


def run_core(sim, program, arf_init, horizon=110):
    overrides = {"arf_w%d" % i: v for i, v in enumerate(arf_init) if i}
    sim.reset(overrides)
    driver = program_driver_factory([("feed", tuple(program))])()
    prev = None
    for t in range(horizon):
        prev = sim.step(driver(t, prev))
    state = sim.state_dict()
    assert prev["pipe_quiesce"] == 1, "program did not drain within horizon"
    arf = [state["arf_w%d" % i] for i in range(8)]
    mem = [state["amem_w%d" % i] for i in range(MEM_WORDS)]
    return arf, mem


program_strategy = st.lists(
    st.tuples(
        st.sampled_from(POOL),
        st.integers(0, 7),  # rd
        st.integers(0, 7),  # rs1
        st.integers(0, 7),  # rs2/imm
    ),
    min_size=1,
    max_size=5,
)
arf_strategy = st.tuples(*([st.just(0)] + [st.integers(0, 255)] * 7))


@settings(max_examples=40, deadline=None)
@given(prog=program_strategy, arf_init=arf_strategy)
def test_random_programs_match_golden_model(cosim_design, cosim_sim, prog, arf_init):
    program = [isa.encode(name, rd=rd, rs1=rs1, rs2=rs2) for name, rd, rs1, rs2 in prog]
    got_arf, got_mem = run_core(cosim_sim, program, list(arf_init))
    want_arf, want_mem = golden(program, list(arf_init))
    assert got_arf == want_arf, (prog, arf_init)
    assert got_mem == want_mem, (prog, arf_init)


class TestDirectedCosim:
    def test_dependent_chain(self, cosim_design, cosim_sim):
        program = [
            isa.encode("ADDI", rd=1, rs1=0, rs2=5),
            isa.encode("ADD", rd=2, rs1=1, rs2=1),
            isa.encode("MUL", rd=3, rs1=2, rs2=1),
            isa.encode("DIVU", rd=4, rs1=3, rs2=2),
        ]
        got_arf, _ = run_core(cosim_sim, program, [0] * 8)
        assert got_arf[1] == 5 and got_arf[2] == 10
        assert got_arf[3] == 50 and got_arf[4] == 5

    def test_store_then_load_roundtrip(self, cosim_design, cosim_sim):
        program = [
            isa.encode("SW", rs1=1, rs2=2),  # mem[(r1+2)%4] = r2
            isa.encode("LW", rd=3, rs1=1, rs2=2),  # r3 = same word
        ]
        got_arf, got_mem = run_core(
            cosim_sim, program, [0, 1, 0x77, 0, 0, 0, 0, 0]
        )
        assert got_arf[3] == 0x77
        assert got_mem[(1 + 2) % 4] == 0x77

    def test_two_stores_drain_in_order(self, cosim_design, cosim_sim):
        program = [
            isa.encode("SW", rs1=0, rs2=1),  # mem[1] = r1
            isa.encode("SW", rs1=0, rs2=1),  # mem[1] = r1 again (same addr)
            isa.encode("ADDI", rd=1, rs1=0, rs2=7),
        ]
        got_arf, got_mem = run_core(cosim_sim, program, [0, 0x21] + [0] * 6)
        assert got_mem[1] == 0x21
        assert got_arf[1] == 7

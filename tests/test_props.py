"""Property-template semantics over hand-built traces."""

import pytest

from repro.props import (
    ConcreteOps,
    ConcreteTraceView,
    ConsecutiveRevisit,
    ConsecutiveRunLength,
    Eventually,
    NonConsecutiveRevisit,
    Query,
    Sequence,
    VisitedCover,
    all_of,
    any_of,
    eq,
    none_of,
    sig,
)


def view(*cycles):
    return ConcreteTraceView(list(cycles))


def ev(prop, v):
    return prop.evaluate(v, ConcreteOps)


class TestCycleExprs:
    def test_sig_and_eq(self):
        v = view({"a": 1, "w": 5}, {"a": 0, "w": 6})
        assert sig("a").evaluate(v, 0, ConcreteOps)
        assert not sig("a").evaluate(v, 1, ConcreteOps)
        assert eq("w", 5).evaluate(v, 0, ConcreteOps)
        assert not eq("w", 5).evaluate(v, 1, ConcreteOps)

    def test_boolean_combinators(self):
        v = view({"a": 1, "b": 0})
        assert (sig("a") & ~sig("b")).evaluate(v, 0, ConcreteOps)
        assert (sig("b") | sig("a")).evaluate(v, 0, ConcreteOps)
        assert not (sig("a") & sig("b")).evaluate(v, 0, ConcreteOps)

    def test_all_any_none(self):
        v = view({"a": 1, "b": 1, "c": 0})
        assert all_of(sig("a"), sig("b")).evaluate(v, 0, ConcreteOps)
        assert not all_of(sig("a"), sig("c")).evaluate(v, 0, ConcreteOps)
        assert any_of(sig("c"), sig("a")).evaluate(v, 0, ConcreteOps)
        assert none_of(sig("c")).evaluate(v, 0, ConcreteOps)
        assert all_of().evaluate(v, 0, ConcreteOps)
        assert not any_of().evaluate(v, 0, ConcreteOps)

    def test_signals_collection(self):
        expr = all_of(sig("a"), ~sig("b") | eq("w", 3))
        assert expr.signals() == {"a", "b", "w"}

    def test_wide_signal_truthiness(self):
        v = view({"w": 4}, {"w": 0})
        assert sig("w").evaluate(v, 0, ConcreteOps)
        assert not sig("w").evaluate(v, 1, ConcreteOps)


class TestEventually:
    def test_hit(self):
        assert ev(Eventually(sig("a")), view({"a": 0}, {"a": 1}))

    def test_miss(self):
        assert not ev(Eventually(sig("a")), view({"a": 0}, {"a": 0}))

    def test_empty_trace(self):
        assert not ev(Eventually(sig("a")), view())


class TestSequence:
    def test_adjacent(self):
        v = view({"a": 1, "b": 0}, {"a": 0, "b": 1})
        assert ev(Sequence(sig("a"), sig("b")), v)

    def test_non_adjacent_misses(self):
        v = view({"a": 1, "b": 0}, {"a": 0, "b": 0}, {"a": 0, "b": 1})
        assert not ev(Sequence(sig("a"), sig("b")), v)

    def test_needs_two_cycles(self):
        assert not ev(Sequence(sig("a"), sig("a")), view({"a": 1}))


class TestVisitedCover:
    def test_positive_and_negative(self):
        v = view({"a": 1, "b": 0}, {"a": 0, "b": 1})
        # a visited without b: true at cycle 0
        assert ev(VisitedCover([sig("a")], [sig("b")]), v)
        # b visited without a: never (a visited first, sticky)
        assert not ev(VisitedCover([sig("b")], [sig("a")]), v)

    def test_gate_restricts_sampling(self):
        v = view({"a": 1, "b": 0, "end": 0}, {"a": 0, "b": 1, "end": 1})
        # at the gated cycle both have been visited
        assert not ev(VisitedCover([sig("a")], [sig("b")], gate=sig("end")), v)
        assert ev(VisitedCover([sig("a"), sig("b")], [], gate=sig("end")), v)

    def test_multiple_positives(self):
        v = view({"a": 1, "b": 0}, {"a": 0, "b": 1})
        assert ev(VisitedCover([sig("a"), sig("b")], []), v)


class TestRevisits:
    def test_consecutive(self):
        assert ev(ConsecutiveRevisit(sig("a")), view({"a": 1}, {"a": 1}))
        assert not ev(ConsecutiveRevisit(sig("a")), view({"a": 1}, {"a": 0}, {"a": 1}))

    def test_nonconsecutive(self):
        prop = NonConsecutiveRevisit(sig("a"))
        assert ev(prop, view({"a": 1}, {"a": 0}, {"a": 1}))
        assert not ev(prop, view({"a": 1}, {"a": 1}, {"a": 0}))
        assert not ev(prop, view({"a": 1}, {"a": 0}, {"a": 0}))

    def test_nonconsecutive_after_long_gap(self):
        prop = NonConsecutiveRevisit(sig("a"))
        assert ev(prop, view({"a": 1}, {"a": 0}, {"a": 0}, {"a": 0}, {"a": 1}))


class TestRunLength:
    def test_exact_run(self):
        v = view({"a": 0}, {"a": 1}, {"a": 1}, {"a": 0})
        assert ev(ConsecutiveRunLength(sig("a"), 2), v)
        assert not ev(ConsecutiveRunLength(sig("a"), 1), v)
        assert not ev(ConsecutiveRunLength(sig("a"), 3), v)

    def test_run_at_start(self):
        v = view({"a": 1}, {"a": 0}, {"a": 0})
        assert ev(ConsecutiveRunLength(sig("a"), 1), v)

    def test_open_run_at_horizon_ignored(self):
        v = view({"a": 0}, {"a": 1}, {"a": 1})
        assert not ev(ConsecutiveRunLength(sig("a"), 2), v)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            ConsecutiveRunLength(sig("a"), 0)


class TestQuery:
    def test_signal_collection(self):
        q = Query("q", Eventually(sig("a")), assumes=(sig("b"), ~sig("c")))
        assert q.signals() == {"a", "b", "c"}


class TestIndexedView:
    def test_tuple_mode_matches_dict_mode(self):
        names = ["a", "w"]
        rows = [(1, 5), (0, 6)]
        indexed = ConcreteTraceView(rows, names=names)
        dicts = ConcreteTraceView([dict(zip(names, r)) for r in rows])
        for t in range(2):
            assert indexed.bit("a", t) == dicts.bit("a", t)
            assert indexed.word("w", t) == dicts.word("w", t)
            assert indexed.word_eq_const("w", 5, t) == dicts.word_eq_const("w", 5, t)
        assert indexed.as_dicts() == dicts.as_dicts()

"""Tests for the observability subsystem (repro.obs).

Covers the tracer (span pairing, nesting, attributes, the active-tracer
stack, cross-process replay), the metrics registry (counters, gauges,
histograms, Prometheus exposition, the HTTP endpoint), the solver /
engine deep counters on :class:`CheckResult`, telemetry-log buffering,
and -- most load-bearing -- the trace-integrity and reconciliation
properties of real traced runs: every event timestamped, span
begin/end balanced and nested, jobs=1 and jobs=2 producing the same
span set, and span-accounted checker time equal to
``PropertyStats.total_time``.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from collections import Counter as TallyCounter

import pytest

from repro import cli, obs
from repro.core import Rtl2MuPath
from repro.designs import ContextFamilyConfig, CoreContextProvider, build_core
from repro.engine import EngineConfig, JobScheduler
from repro.engine.telemetry import TelemetryLog
from repro.mc.outcomes import REACHABLE, UNREACHABLE, CheckResult
from repro.obs import (
    MetricsRegistry,
    SpanCollector,
    TraceProfile,
    Tracer,
    start_metrics_server,
)
from repro.obs.tracer import NULL_SPAN
from repro.solver.sat import SAT, UNSAT, SatSolver

TINY_FAMILY = ContextFamilyConfig(
    horizon=24,
    neighbors=("DIV",),
    iuv_values=(0, 1),
    neighbor_values=(0, 1),
    include_deep=False,
)
INSTRS = ("ADD", "DIV")


def make_tool():
    design = build_core()
    provider = CoreContextProvider(xlen=design.config.xlen, config=TINY_FAMILY)
    return Rtl2MuPath(design, provider)


# ------------------------------------------------------------------- tracer
class TestTracer:
    def test_span_pairs_nest_and_merge_attrs(self):
        sink = SpanCollector()
        tracer = Tracer(sink=sink)
        with tracer.span("outer", iuv="DIV") as outer:
            with tracer.span("inner") as inner:
                inner.set("hits", 3)
                inner.inc("check_seconds", 0.5)
                inner.inc("check_seconds", 0.25)
        kinds = [kind for kind, _ in sink.records]
        assert kinds == ["span_begin", "span_begin", "span_end", "span_end"]
        outer_begin = sink.records[0][1]
        inner_begin = sink.records[1][1]
        inner_end = sink.records[2][1]
        outer_end = sink.records[3][1]
        assert outer_begin["parent"] is None
        assert inner_begin["parent"] == outer_begin["span"]
        assert outer_begin["attrs"] == {"iuv": "DIV"}
        assert inner_end["attrs"] == {"hits": 3, "check_seconds": 0.75}
        assert inner_end["dur"] >= 0.0
        assert outer_end["dur"] >= inner_end["dur"]
        assert outer.span_id != inner.span_id

    def test_ids_unique_and_prefixed(self):
        tracer = Tracer(sink=SpanCollector())
        ids = set()
        for _ in range(100):
            with tracer.span("x") as sp:
                ids.add(sp.span_id)
        assert len(ids) == 100
        assert all(sid.startswith(tracer.prefix + ":") for sid in ids)

    def test_error_flag_set_and_exception_propagates(self):
        sink = SpanCollector()
        tracer = Tracer(sink=sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        kind, fields = sink.records[-1]
        assert kind == "span_end"
        assert fields["error"] is True

    def test_module_helpers_inactive_are_noops(self):
        assert obs.current_tracer() is None
        assert obs.current_span() is NULL_SPAN
        ctx = obs.span("nothing", attr=1)
        assert ctx is NULL_SPAN
        with ctx as sp:
            sp.set("k", "v")  # must not raise
            sp.inc("n")

    def test_activate_stack_nesting(self):
        lower, upper = SpanCollector(), SpanCollector()
        t_lower, t_upper = Tracer(sink=lower), Tracer(sink=upper)
        obs.activate(t_lower)
        try:
            with obs.span("a"):
                obs.activate(t_upper)
                try:
                    with obs.span("b") as sp_b:
                        assert obs.current_span() is sp_b
                finally:
                    obs.deactivate(t_upper)
                with obs.span("c"):
                    pass
        finally:
            obs.deactivate(t_lower)
        assert [f["name"] for k, f in lower.records if k == "span_begin"] == [
            "a", "c",
        ]
        assert [f["name"] for k, f in upper.records if k == "span_begin"] == [
            "b",
        ]
        assert obs.current_tracer() is None

    def test_replay_reparents_roots_only(self):
        sink = SpanCollector()
        tracer = Tracer(sink=sink)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        out = []
        obs.replay_into(
            sink.records, lambda kind, **f: out.append((kind, f)),
            reparent="RUNSPAN",
        )
        begins = {f["name"]: f for k, f in out if k == "span_begin"}
        assert begins["root"]["parent"] == "RUNSPAN"
        assert begins["child"]["parent"] == begins["root"]["span"]
        # timestamps travel unchanged
        assert [f["ts"] for _, f in out] == [f["ts"] for _, f in sink.records]

    def test_thread_safety_separate_stacks(self):
        sink = SpanCollector()
        tracer = Tracer(sink=sink)
        errors = []

        def work(tag):
            try:
                for _ in range(50):
                    with tracer.span("t-%s" % tag) as sp:
                        with tracer.span("inner") as child:
                            assert child.parent_id == sp.span_id
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        ids = [f["span"] for k, f in sink.records if k == "span_begin"]
        assert len(ids) == len(set(ids)) == 4 * 50 * 2
        # every thread's roots are parentless: stacks never leaked across
        roots = [
            f for k, f in sink.records
            if k == "span_begin" and f["name"].startswith("t-")
        ]
        assert all(f["parent"] is None for f in roots)


# ------------------------------------------------------------------ metrics
class TestMetrics:
    def test_counter_labels_and_monotonicity(self):
        reg = MetricsRegistry()
        c = reg.counter("props_total", "properties")
        c.inc(outcome="reachable")
        c.inc(2, outcome="reachable")
        c.inc(outcome="unreachable")
        assert c.value(outcome="reachable") == 3
        assert c.value(outcome="unreachable") == 1
        assert c.value(outcome="undetermined") == 0
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_up_and_down(self):
        reg = MetricsRegistry()
        g = reg.gauge("inflight")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="10.0"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text

    def test_registry_memoizes_and_type_checks(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "help")
        assert reg.counter("x") is a
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs by kind").inc(3, kind="synth")
        reg.gauge("workers", "pool size").set(8)
        text = reg.to_prometheus()
        assert "# HELP jobs_total jobs by kind" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{kind="synth"} 3' in text
        assert "# TYPE workers gauge" in text
        assert "workers 8" in text
        assert text.endswith("\n")

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("b").inc(1, k="v")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["a"] == 2
        assert snap["b"] == [{"labels": {"k": "v"}, "value": 1}]
        assert snap["h"]["count"] == 1

    def test_http_endpoint_serves_both_formats(self):
        reg = MetricsRegistry()
        reg.counter("served_total", "requests").inc(7)
        server = start_metrics_server(0, registry=reg)
        try:
            port = server.server_address[1]
            with urllib.request.urlopen(
                "http://127.0.0.1:%d/metrics" % port
            ) as resp:
                assert resp.status == 200
                body = resp.read().decode()
            assert "served_total 7" in body
            with urllib.request.urlopen(
                "http://127.0.0.1:%d/metrics.json" % port
            ) as resp:
                assert json.loads(resp.read())["served_total"] == 7
        finally:
            server.shutdown()


# -------------------------------------------------------- solver deep counters
class TestSolverCounters:
    def _formula(self):
        solver = SatSolver()
        a, b, c = solver.new_var(), solver.new_var(), solver.new_var()
        # frozen so preprocessing's variable elimination keeps the clause
        # database intact: this class asserts on formula-size counters
        solver.freeze_many((a, b, c))
        solver.add_clause([a, b])
        solver.add_clause([-a, c])
        solver.add_clause([-b, -c])
        return solver

    def test_last_solve_delta_per_call(self):
        solver = self._formula()
        assert solver.solve() == SAT
        first = dict(solver.last_solve)
        for key in (
            "conflicts", "decisions", "propagations", "restarts",
            "learned", "clauses", "learned_db", "vars",
        ):
            assert key in first, key
        assert first["vars"] == 3
        assert first["clauses"] >= 3
        assert solver.solves == 1
        # a second solve reports its own delta, not the running totals
        assert solver.solve() == SAT
        assert solver.solves == 2
        assert solver.last_solve["decisions"] <= first["decisions"] + 3

    def test_unsat_delta_counts_conflicts(self):
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve() == UNSAT
        assert solver.last_solve["conflicts"] >= 0
        assert solver.last_solve["vars"] == 1

    def test_counters_monotonic(self):
        solver = self._formula()
        before = solver.counters()
        solver.solve()
        after = solver.counters()
        assert all(after[k] >= before[k] for k in before)


# --------------------------------------------------- CheckResult effort fields
class TestCheckResultEffortFields:
    def test_roundtrip_with_depth_and_solver(self):
        result = CheckResult(
            "q", REACHABLE, "bmc", time_seconds=0.25, depth=12,
            solver={"conflicts": 3, "decisions": 7},
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["depth"] == 12
        assert payload["solver"] == {"conflicts": 3, "decisions": 7}
        assert CheckResult.from_dict(payload) == result

    def test_old_payloads_still_load(self):
        legacy = {
            "query_name": "q",
            "outcome": UNREACHABLE,
            "engine": "bmc",
            "witness": None,
            "time_seconds": 0.5,
            "detail": "",
        }
        result = CheckResult.from_dict(legacy)
        assert result.depth is None
        assert result.solver is None
        # and a fieldless result emits the legacy payload byte-for-byte
        assert result.to_dict() == legacy


# ------------------------------------------------------- telemetry buffering
class TestTelemetryBuffering:
    def test_events_buffer_until_threshold(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = TelemetryLog(str(path), flush_every=10, flush_seconds=3600.0)
        for i in range(9):
            log.event("tick", i=i)
        assert path.read_text() == ""  # still buffered
        log.event("tick", i=9)  # 10th event crosses the threshold
        assert len(path.read_text().splitlines()) == 10
        log.event("tail")
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 11
        assert all(
            {"ts", "event"} <= set(json.loads(line)) for line in lines
        )

    def test_explicit_ts_override(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryLog(str(path)) as log:
            log.event("old", ts=123.456789)
        record = json.loads(path.read_text())
        assert record["ts"] == 123.456789

    def test_disabled_log_is_inert(self):
        log = TelemetryLog(None)
        assert not log.enabled
        log.event("anything")
        log.flush()
        log.close()


# ----------------------------------------------------- traced runs, end to end
@pytest.fixture(scope="module")
def traced_runs(tmp_path_factory):
    base = tmp_path_factory.mktemp("traces")
    runs = {}
    for jobs in (1, 2):
        trace = base / ("run_j%d.jsonl" % jobs)
        tool = make_tool()
        engine = JobScheduler(
            EngineConfig(jobs=jobs, trace_path=str(trace))
        )
        tool.synthesize_all(INSTRS, engine=engine)
        runs[jobs] = (str(trace), tool, engine)
    return runs


class TestTraceIntegrity:
    def test_trace_validates_clean(self, traced_runs):
        for jobs, (trace, _tool, _engine) in traced_runs.items():
            profile = TraceProfile.load(trace)
            assert profile.ok, (jobs, profile.errors)

    def test_every_event_has_ts_and_kind(self, traced_runs):
        for trace, _tool, _engine in traced_runs.values():
            with open(trace) as handle:
                for line in handle:
                    event = json.loads(line)
                    assert isinstance(event["ts"], float)
                    assert isinstance(event["event"], str) and event["event"]

    def test_spans_balance_and_nest(self, traced_runs):
        for trace, _tool, _engine in traced_runs.values():
            events = [json.loads(l) for l in open(trace)]
            begins = [e for e in events if e["event"] == "span_begin"]
            ends = [e for e in events if e["event"] == "span_end"]
            assert len(begins) == len(ends) > 0
            assert {e["span"] for e in begins} == {e["span"] for e in ends}
            # structural nesting is what TraceProfile validates
            assert TraceProfile.load(trace).ok

    def test_parallel_run_produces_same_span_set(self, traced_runs):
        names = {}
        for jobs, (trace, _tool, _engine) in traced_runs.items():
            profile = TraceProfile.load(trace)
            names[jobs] = TallyCounter(r.name for r in profile.spans)
        assert names[1] == names[2]

    def test_worker_spans_hang_off_run_span(self, traced_runs):
        trace, _tool, _engine = traced_runs[2]
        profile = TraceProfile.load(trace)
        by_name = {}
        for record in profile.spans:
            by_name.setdefault(record.name, []).append(record)
        (run_span,) = by_name["engine.run"]
        assert run_span.parent_id is None
        for attempt in by_name["job.attempt"]:
            assert attempt.parent_id == run_span.span_id
        for synth in by_name["rtl2mupath.synthesize"]:
            assert profile._by_id[synth.parent_id].name == "job.attempt"

    def test_span_time_reconciles_with_stats(self, traced_runs):
        for jobs, (trace, tool, _engine) in traced_runs.items():
            profile = TraceProfile.load(trace)
            assert profile.reconciles_total_time(tool.stats.total_time), jobs
            # and the run_finish event carries the same stats
            assert profile.stats["count"] == tool.stats.count

    def test_manifest_still_reconciles_under_tracing(self, traced_runs):
        for _trace, tool, engine in traced_runs.values():
            assert engine.last_manifest.reconciles(tool.stats)

    def test_kinduction_results_carry_effort_fields(self, tmp_path):
        trace = tmp_path / "duv.jsonl"
        tool = make_tool()
        with TelemetryLog(str(trace)) as log:
            tracer = Tracer(sink=log.event)
            obs.activate(tracer)
            try:
                with tracer.span("duv"):
                    tool.duv_pl_reachability(["ADD"])
            finally:
                obs.deactivate(tracer)
        induction = [
            r for r in tool.stats.results if r.engine == "k-induction"
        ]
        assert induction
        for result in induction:
            assert result.depth is not None
            assert isinstance(result.solver, dict)
            assert "conflicts" in result.solver
        profile = TraceProfile.load(str(trace))
        assert profile.ok, profile.errors
        totals = profile.phase_totals()
        for phase in (
            "rtl2mupath.duv_pl_reachability", "phase.cover.duv_pls",
            "phase.induction", "mc.kinduction", "mc.kinduction.base",
        ):
            assert phase in totals, phase
        # every property recorded during the walk is accounted on spans
        assert profile.reconciles_total_time(tool.stats.total_time)

    def test_phase_breakdown_covers_pipeline(self, traced_runs):
        trace, _tool, _engine = traced_runs[1]
        totals = TraceProfile.load(trace).phase_totals()
        for phase in (
            "engine.run", "job.attempt", "rtl2mupath.synthesize",
            "phase.elaborate", "phase.cover.iuv_pls", "phase.cover.pruning",
            "phase.cover.plsets", "phase.cover.structure", "phase.decisions",
        ):
            assert phase in totals, phase
        per_instr = TraceProfile.load(trace).per_instruction()
        assert set(per_instr) == set(INSTRS)

    def test_warm_cache_replayed_seconds_reconcile(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold_tool = make_tool()
        cold_engine = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        cold_tool.synthesize_all(INSTRS, engine=cold_engine)

        trace = tmp_path / "warm.jsonl"
        warm_tool = make_tool()
        warm_engine = JobScheduler(
            EngineConfig(jobs=1, cache_dir=cache_dir, trace_path=str(trace))
        )
        warm_tool.synthesize_all(INSTRS, engine=warm_engine)
        profile = TraceProfile.load(str(trace))
        assert profile.ok, profile.errors
        assert profile.checked_seconds() == 0.0
        assert profile.replayed_seconds() > 0.0
        assert profile.reconciles_total_time(warm_tool.stats.total_time)


class TestChromeTraceExport:
    def test_chrome_trace_structure(self, traced_runs):
        trace, _tool, _engine = traced_runs[2]
        profile = TraceProfile.load(trace)
        chrome = json.loads(json.dumps(profile.to_chrome_trace()))
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(profile.spans)
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert {"name", "pid", "tid", "args"} <= set(event)
        metadata = [e for e in events if e["ph"] == "M"]
        assert metadata and all(
            e["name"] == "thread_name" for e in metadata
        )


class TestProfileCli:
    def test_profile_check_passes_on_good_trace(self, traced_runs, capsys):
        trace, _tool, _engine = traced_runs[1]
        assert cli.main(["profile", trace, "--check"]) == 0
        out = capsys.readouterr().out
        assert "integrity: ok" in out
        assert "reconciles" in out
        assert "per-phase" in out

    def test_profile_exports_chrome_trace(self, traced_runs, tmp_path):
        trace, _tool, _engine = traced_runs[1]
        out_path = tmp_path / "chrome.json"
        assert cli.main(
            ["profile", trace, "--export-chrome-trace", str(out_path)]
        ) == 0
        chrome = json.loads(out_path.read_text())
        assert chrome["traceEvents"]

    def test_profile_check_fails_on_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            "\n".join(
                [
                    json.dumps({"ts": 1.0, "event": "run_start"}),
                    json.dumps(
                        {
                            "ts": 2.0, "event": "span_begin", "span": "x:1",
                            "parent": None, "name": "orphan", "attrs": {},
                        }
                    ),
                    "{not json",
                ]
            )
            + "\n"
        )
        assert cli.main(["profile", str(bad), "--check"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_profile_missing_file_errors(self, tmp_path, capsys):
        assert cli.main(["profile", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().out

"""PerformingLocation / DesignMetadata expression tests."""

import pytest

from repro.core.pl import DesignMetadata, MicroFsm, PerformingLocation, PlSlot
from repro.props import ConcreteOps, ConcreteTraceView


def view(*cycles):
    return ConcreteTraceView(list(cycles))


@pytest.fixture
def pl_two_slots():
    return PerformingLocation(
        "scbIss",
        (PlSlot("occ0", "pc0"), PlSlot("occ1", "pc1")),
        ufsms=("u0", "u1"),
    )


class TestPerformingLocation:
    def test_occupied_any_slot(self, pl_two_slots):
        v = view({"occ0": 0, "pc0": 0, "occ1": 1, "pc1": 8})
        assert pl_two_slots.occupied().evaluate(v, 0, ConcreteOps)

    def test_not_occupied(self, pl_two_slots):
        v = view({"occ0": 0, "pc0": 4, "occ1": 0, "pc1": 8})
        assert not pl_two_slots.occupied().evaluate(v, 0, ConcreteOps)

    def test_visited_by_requires_pc_match(self, pl_two_slots):
        v = view({"occ0": 1, "pc0": 4, "occ1": 1, "pc1": 8})
        assert pl_two_slots.visited_by(4).evaluate(v, 0, ConcreteOps)
        assert pl_two_slots.visited_by(8).evaluate(v, 0, ConcreteOps)
        assert not pl_two_slots.visited_by(12).evaluate(v, 0, ConcreteOps)

    def test_occupied_without_matching_pc(self, pl_two_slots):
        v = view({"occ0": 1, "pc0": 4, "occ1": 0, "pc1": 8})
        assert not pl_two_slots.visited_by(8).evaluate(v, 0, ConcreteOps)

    def test_tainted_visit_uses_probe(self):
        pl = PerformingLocation(
            "divU", (PlSlot("occ", "pc", probe_signal="probe"),)
        )
        v = view({"occ": 1, "pc": 4, "probe__tainted": 1, "occ__tainted": 0})
        assert pl.tainted_visit_by(4).evaluate(v, 0, ConcreteOps)
        v = view({"occ": 1, "pc": 4, "probe__tainted": 0, "occ__tainted": 1})
        assert not pl.tainted_visit_by(4).evaluate(v, 0, ConcreteOps)

    def test_taint_probe_defaults_to_occ(self):
        slot = PlSlot("occ", "pc")
        assert slot.taint_probe == "occ"


class TestDesignMetadata:
    @pytest.fixture
    def metadata(self, pl_two_slots):
        other = PerformingLocation("IF", (PlSlot("if_occ", "if_pc"),), ("uif",))
        return DesignMetadata(
            design_name="toy",
            pls={"scbIss": pl_two_slots, "IF": other},
            ufsms=(
                MicroFsm("u0", "pc0", ("occ0",)),
                MicroFsm("u1", "pc1", ("occ1",)),
                MicroFsm("uif", "if_pc", ("if_occ",), pcr_added=True),
            ),
            ifr_signal="IFR",
            commit_signal="commit",
            commit_pc_signal="commit_pc",
            operand_registers=("a",),
            arf_registers=("arf_w0", "arf_w1"),
            amem_registers=("amem_w0",),
        )

    def test_iuv_inflight(self, metadata):
        v = view(
            {"occ0": 0, "pc0": 0, "occ1": 0, "pc1": 0, "if_occ": 1, "if_pc": 4}
        )
        assert metadata.iuv_inflight(4).evaluate(v, 0, ConcreteOps)
        assert not metadata.iuv_inflight(8).evaluate(v, 0, ConcreteOps)

    def test_iuv_gone_is_negation(self, metadata):
        v = view(
            {"occ0": 1, "pc0": 8, "occ1": 0, "pc1": 0, "if_occ": 0, "if_pc": 0}
        )
        assert not metadata.iuv_gone(8).evaluate(v, 0, ConcreteOps)
        assert metadata.iuv_gone(4).evaluate(v, 0, ConcreteOps)

    def test_annotation_counts(self, metadata):
        counts = metadata.annotation_counts()
        assert counts["ufsms"] == 3
        assert counts["pcrs"] == 3
        assert counts["pcrs_added"] == 1
        assert counts["pls"] == 2
        assert counts["pl_slots"] == 3
        assert counts["arf_registers"] == 2

    def test_pl_lookup(self, metadata, pl_two_slots):
        assert metadata.pl("scbIss") is pl_two_slots
        assert set(metadata.pl_names()) == {"scbIss", "IF"}

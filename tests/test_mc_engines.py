"""Model-checking engine tests: enumerative, BMC, k-induction agreement."""

import itertools

import pytest

from repro.rtl import Module, elaborate, mux
from repro.mc import (
    REACHABLE,
    UNDETERMINED,
    UNREACHABLE,
    BmcContext,
    Context,
    EnumerativeEngine,
    PropertyStats,
    ReactiveContext,
    SymbolicContextSpec,
    TraceDB,
    prove_unreachable_kinduction,
)
from repro.props import Eventually, Query, Sequence, VisitedCover, eq, sig


def fsm_design():
    """0 -> 1 (on go) -> 2 -> 0; state 3 unreachable."""
    m = Module("fsm")
    go = m.input("go", 1)
    st = m.reg("st", 2, reset=0)
    st.next = mux(
        st.q.eq(0) & go,
        m.const(1, 2),
        mux(st.q.eq(1), m.const(2, 2), mux(st.q.eq(2), m.const(0, 2), st.q)),
    )
    for i in range(4):
        m.name_signal("s%d" % i, st.q.eq(i))
    m.name_signal("state", st.q)
    return elaborate(m)


@pytest.fixture(scope="module")
def fsm():
    return fsm_design()


@pytest.fixture(scope="module")
def fsm_db(fsm):
    contexts = [
        Context.make({}, [{"go": b} for b in bits])
        for bits in itertools.product([0, 1], repeat=6)
    ]
    return TraceDB(fsm, contexts, complete=True)


class TestEnumerative:
    def test_reachable_with_witness(self, fsm_db):
        result = EnumerativeEngine(fsm_db).check(Query("r", Eventually(sig("s2"))))
        assert result.outcome == REACHABLE
        assert result.witness is not None
        assert any(obs["s2"] for obs in result.witness)

    def test_unreachable_when_complete(self, fsm_db):
        result = EnumerativeEngine(fsm_db).check(Query("u", Eventually(sig("s3"))))
        assert result.outcome == UNREACHABLE

    def test_incomplete_family_degrades(self, fsm):
        db = TraceDB(fsm, [Context.make({}, [{"go": 0}] * 4)], complete=False)
        result = EnumerativeEngine(db).check(Query("u", Eventually(sig("s1"))))
        assert result.outcome == UNDETERMINED

    def test_assumes_filter_traces(self, fsm_db):
        # under the assumption that go-driven state 1 is never entered,
        # state 2 is unreachable
        query = Query("a", Eventually(sig("s2")), assumes=(~sig("s1"),))
        result = EnumerativeEngine(fsm_db).check(query)
        assert result.outcome == UNREACHABLE

    def test_stats_recorded(self, fsm_db):
        stats = PropertyStats(label="test")
        engine = EnumerativeEngine(fsm_db, stats=stats)
        engine.check(Query("r", Eventually(sig("s2"))))
        engine.check(Query("u", Eventually(sig("s3"))))
        assert stats.count == 2
        assert stats.outcome_histogram == {"reachable": 1, "unreachable": 1}

    def test_sequence_query(self, fsm_db):
        assert EnumerativeEngine(fsm_db).check(
            Query("s", Sequence(sig("s1"), sig("s2")))
        ).outcome == REACHABLE
        assert EnumerativeEngine(fsm_db).check(
            Query("s", Sequence(sig("s2"), sig("s1")))
        ).outcome == UNREACHABLE

    def test_reactive_context(self, fsm):
        # drive go only once the FSM is observed in state 0 (always true at
        # reset); exercises the driver feedback path
        def factory():
            def driver(t, prev_obs):
                if prev_obs is None or prev_obs["s0"]:
                    return {"go": 1}
                return {"go": 0}

            return driver

        db = TraceDB(
            fsm,
            [ReactiveContext.make({}, factory, horizon=6, feedback_signals=("s0",))],
            complete=False,
        )
        result = EnumerativeEngine(db).check(Query("r", Eventually(sig("s2"))))
        assert result.outcome == REACHABLE


class TestBmcAgreement:
    QUERIES = [
        ("reach_s1", Eventually(sig("s1"))),
        ("reach_s2", Eventually(sig("s2"))),
        ("reach_s3", Eventually(sig("s3"))),
        ("seq12", Sequence(sig("s1"), sig("s2"))),
        ("seq21", Sequence(sig("s2"), sig("s1"))),
        ("visited", VisitedCover([sig("s2")], [sig("s1")])),
        ("eqword", Eventually(eq("state", 2))),
    ]

    @pytest.fixture(scope="class")
    def bmc(self, fsm):
        return BmcContext(fsm, horizon=6, context=SymbolicContextSpec())

    @pytest.mark.parametrize("name,prop", QUERIES, ids=[q[0] for q in QUERIES])
    def test_matches_enumerative(self, name, prop, bmc, fsm_db):
        enum_result = EnumerativeEngine(fsm_db).check(Query(name, prop))
        bmc_result = bmc.check(Query(name, prop))
        if enum_result.outcome == REACHABLE:
            assert bmc_result.outcome == REACHABLE
        else:
            # BMC cannot prove unreachability without a completeness claim
            assert bmc_result.outcome == UNDETERMINED

    def test_witness_values(self, bmc):
        result = bmc.check(Query("w", Eventually(sig("s2"))))
        assert result.outcome == REACHABLE
        assert any(obs["s2"] for obs in result.witness)
        # the witness respects the transition structure: s1 precedes s2
        s1_at = next(t for t, obs in enumerate(result.witness) if obs["s1"])
        s2_at = next(t for t, obs in enumerate(result.witness) if obs["s2"])
        assert s1_at < s2_at

    def test_complete_horizon_gives_unreachable(self, fsm):
        bmc = BmcContext(
            fsm, horizon=6, context=SymbolicContextSpec(), complete_horizon=True
        )
        assert bmc.check(Query("u", Eventually(sig("s3")))).outcome == UNREACHABLE

    def test_assumes(self, fsm):
        bmc = BmcContext(fsm, horizon=6, context=SymbolicContextSpec())
        query = Query("a", Eventually(sig("s2")), assumes=(~sig("s1"),))
        assert bmc.check(query).outcome == UNDETERMINED

    def test_driven_inputs(self, fsm):
        # pin go low: s1 unreachable within any horizon
        spec = SymbolicContextSpec(drive=lambda builder, t: {"go": 0})
        bmc = BmcContext(fsm, horizon=6, context=spec, complete_horizon=True)
        assert bmc.check(Query("r", Eventually(sig("s1")))).outcome == UNREACHABLE

    def test_symbolic_initial_state(self, fsm):
        # with st symbolically initialized, state 3 is trivially coverable
        spec = SymbolicContextSpec(symbolic_registers=("st",))
        bmc = BmcContext(fsm, horizon=2, context=spec)
        assert bmc.check(Query("r", Eventually(sig("s3")))).outcome == REACHABLE


class TestKInduction:
    def test_proves_unreachable(self, fsm):
        result = prove_unreachable_kinduction(fsm, sig("s3"), k=3)
        assert result.outcome == UNREACHABLE

    def test_finds_base_witness(self, fsm):
        result = prove_unreachable_kinduction(fsm, sig("s2"), k=4)
        assert result.outcome == REACHABLE
        assert result.witness is not None

    def test_k_too_small_is_undetermined(self, fsm):
        # within 1 step of reset s2 is not reachable, but 1-induction cannot
        # close the proof either (s1 -> s2 in the arbitrary-state world)
        result = prove_unreachable_kinduction(fsm, sig("s2"), k=1, simple_path=False)
        assert result.outcome == UNDETERMINED

    def test_result_interpretation_helper(self, fsm):
        result = prove_unreachable_kinduction(fsm, sig("s2"), k=1, simple_path=False)
        assert result.interpret_undetermined(UNREACHABLE) == UNREACHABLE
        assert result.interpret_undetermined(REACHABLE) == REACHABLE
        proved = prove_unreachable_kinduction(fsm, sig("s3"), k=3)
        assert proved.interpret_undetermined(REACHABLE) == UNREACHABLE

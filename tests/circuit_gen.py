"""Random-expression generator shared by equivalence tests.

Builds a random combinational expression over two inputs alongside a
reference Python evaluator, so the simulator and the bit-blaster can be
checked against ground truth on the same structure.
"""

from __future__ import annotations

import random

from repro.rtl import Module, cat, mux, redand, redor, zext

WIDTH = 6
MASK = (1 << WIDTH) - 1


def build_random_expr(seed, depth=4):
    """Returns (module, node, ref) with ref(a, b) -> int."""
    rng = random.Random(seed)
    m = Module("rand%d" % seed)
    a = m.input("a", WIDTH)
    b = m.input("b", WIDTH)

    def gen(d):
        if d == 0:
            choice = rng.randrange(3)
            if choice == 0:
                return a, lambda av, bv: av
            if choice == 1:
                return b, lambda av, bv: bv
            k = rng.randrange(1 << WIDTH)
            return m.const(k, WIDTH), lambda av, bv: k
        op = rng.choice(
            ["and", "or", "xor", "add", "sub", "mul", "not", "shl", "shr",
             "muxw", "eqw", "ultw", "slice"]
        )
        x, fx = gen(d - 1)
        if op == "not":
            return ~x, lambda av, bv: ~fx(av, bv) & MASK
        if op in ("shl", "shr"):
            amount = rng.randrange(WIDTH)
            if op == "shl":
                return x << amount, lambda av, bv: (fx(av, bv) << amount) & MASK
            return x >> amount, lambda av, bv: fx(av, bv) >> amount
        if op == "slice":
            lo = rng.randrange(WIDTH - 1)
            node = zext(x[lo:WIDTH], WIDTH)
            return node, lambda av, bv: fx(av, bv) >> lo
        y, fy = gen(d - 1)
        if op == "and":
            return x & y, lambda av, bv: fx(av, bv) & fy(av, bv)
        if op == "or":
            return x | y, lambda av, bv: fx(av, bv) | fy(av, bv)
        if op == "xor":
            return x ^ y, lambda av, bv: fx(av, bv) ^ fy(av, bv)
        if op == "add":
            return x + y, lambda av, bv: (fx(av, bv) + fy(av, bv)) & MASK
        if op == "sub":
            return x - y, lambda av, bv: (fx(av, bv) - fy(av, bv)) & MASK
        if op == "mul":
            return x * y, lambda av, bv: (fx(av, bv) * fy(av, bv)) & MASK
        if op == "eqw":
            node = zext(x.eq(y), WIDTH)
            return node, lambda av, bv: int(fx(av, bv) == fy(av, bv))
        if op == "ultw":
            node = zext(x.ult(y), WIDTH)
            return node, lambda av, bv: int(fx(av, bv) < fy(av, bv))
        if op == "muxw":
            node = mux(x[0], y, x)
            return node, lambda av, bv: (
                fy(av, bv) if fx(av, bv) & 1 else fx(av, bv)
            )
        raise AssertionError(op)

    node, ref = gen(depth)
    sel = a[0]
    alt, falt = gen(depth - 1)
    node = mux(sel, node, alt)
    final_ref = lambda av, bv: (ref(av, bv) if av & 1 else falt(av, bv))
    m.name_signal("out", node)
    m.name_signal("red_or", redor(node))
    m.name_signal("red_and", redand(node))
    return m, node, final_ref

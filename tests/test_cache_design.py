"""Cache DUV tests: hit/miss paths, banks, drains, contention (SS VII-A2)."""

import pytest

from repro.designs.cache import (
    CacheConfig,
    CacheContextProvider,
    build_cache,
    cache_driver_factory,
)
from repro.designs.harness import slot_pc
from repro.sim import Simulator


@pytest.fixture(scope="module")
def cache_design():
    return build_cache()


@pytest.fixture(scope="module")
def cache_sim(cache_design):
    return Simulator(cache_design.netlist)


def run(design, sim, requests, horizon=36):
    sim.reset()
    driver = cache_driver_factory(requests)()
    prev = None
    trace = []
    for t in range(horizon):
        prev = sim.step(driver(t, prev))
        trace.append(prev)
    return trace


def visits(design, trace, pc):
    rows = []
    for t, obs in enumerate(trace):
        seen = set()
        for name, pl in design.metadata.pls.items():
            for slot in pl.slots:
                if obs[slot.occ_signal] and obs[slot.pc_signal] == pc:
                    seen.add(name)
        if seen:
            rows.append((t, sorted(seen)))
    return rows


def pl_sequence(rows):
    return [tuple(seen) for _, seen in rows]


class TestLoads:
    def test_miss_path_with_lookup_replay(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(False, 1, 0)])
        seq = pl_sequence(visits(cache_design, trace, slot_pc(0)))
        assert seq[0] == ("rdTag",)
        assert ("mshr",) in seq and ("fill",) in seq
        # non-consecutive rdTag revisit: the lookup replays after the fill
        assert seq.count(("rdTag",)) == 2
        assert seq[-1] == ("rdResp",)

    def test_hit_path_short(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(False, 1, 0), "quiesce", (False, 1, 0)])
        seq = pl_sequence(visits(cache_design, trace, slot_pc(1)))
        assert seq == [("rdTag",), ("rdResp",)]

    def test_miss_latency_exceeds_hit(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(False, 1, 0), "quiesce", (False, 1, 0)])
        miss = visits(cache_design, trace, slot_pc(0))
        hit = visits(cache_design, trace, slot_pc(1))
        assert len(miss) > len(hit)

    def test_same_set_other_tag_misses(self, cache_design, cache_sim):
        cfg = cache_design.config
        other = 1 + cfg.sets  # same set index, different tag
        trace = run(cache_design, cache_sim, [(False, 1, 0), "quiesce", (False, other, 0)])
        seq = pl_sequence(visits(cache_design, trace, slot_pc(1)))
        assert ("mshr",) in seq

    def test_fill_data_comes_from_backing_memory(self, cache_design, cache_sim):
        cache_sim.reset({"bmem_w1": 0x7E})
        driver = cache_driver_factory([(False, 1, 0)])()
        prev = None
        for t in range(20):
            prev = cache_sim.step(driver(t, prev))
        # way 0 of set 1 now holds the backing value
        assert cache_sim.state_dict()["data_s1_w0"] == 0x7E


class TestStores:
    def test_hit_touches_bank(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(False, 1, 0), "quiesce", (True, 1, 9)])
        seq = pl_sequence(visits(cache_design, trace, slot_pc(1)))
        assert seq[0] == ("wBVld",)
        assert ("wRTag", "wrBank0") in seq

    def test_miss_skips_banks_no_write_allocate(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(True, 1, 9)])
        seq = pl_sequence(visits(cache_design, trace, slot_pc(0)))
        assert ("wRTag",) in seq
        assert not any("wrBank0" in s or "wrBank1" in s for s in seq)
        # no-write-allocate: a subsequent load to the address still misses
        trace = run(cache_design, cache_sim, [(True, 1, 9), "quiesce", (False, 1, 0)])
        seq = pl_sequence(visits(cache_design, trace, slot_pc(1)))
        assert ("mshr",) in seq

    def test_bank_selected_by_way(self, cache_design, cache_sim):
        # fill ways 0..2 of set 1 via round-robin (3 distinct tags), then
        # hit way 2 -> bank 1
        cfg = cache_design.config
        tags = [1, 1 + cfg.sets, 1 + 2 * cfg.sets]
        reqs = []
        for addr in tags:
            reqs.extend([(False, addr, 0), "quiesce"])
        reqs.append((True, tags[2], 5))
        trace = run(cache_design, cache_sim, reqs, horizon=60)
        seq = pl_sequence(visits(cache_design, trace, slot_pc(3)))
        assert ("wRTag", "wrBank1") in seq

    def test_store_drains_through_axi(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(True, 1, 0x3C)])
        seq = pl_sequence(visits(cache_design, trace, slot_pc(0)))
        assert ("wbDrain",) in seq and ("axiWr",) in seq
        assert cache_sim.state_dict()["bmem_w1"] == 0x3C

    def test_store_hit_updates_cached_data(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(False, 1, 0), "quiesce", (True, 1, 0x44)], horizon=44)
        assert cache_sim.state_dict()["data_s1_w0"] == 0x44


class TestContention:
    def test_drain_delays_miss_fill(self, cache_design, cache_sim):
        # a store drain occupies the AXI port; a back-to-back load miss
        # waits in the MSHR (dynamic ST transmitter for LD transponders)
        b2b = run(cache_design, cache_sim, [(True, 1, 9), (False, 2, 0)])
        solo = run(cache_design, cache_sim, [(False, 2, 0)])
        mshr_b2b = sum(1 for s in pl_sequence(visits(cache_design, b2b, slot_pc(1))) if s == ("mshr",))
        mshr_solo = sum(1 for s in pl_sequence(visits(cache_design, solo, slot_pc(0))) if s == ("mshr",))
        assert mshr_b2b > mshr_solo

    def test_wbuf_match_stalls_lookup(self, cache_design, cache_sim):
        same = run(cache_design, cache_sim, [(True, 1, 9), (False, 1, 0)])
        diff = run(cache_design, cache_sim, [(True, 1, 9), (False, 2, 0)])
        tag_same = sum(1 for s in pl_sequence(visits(cache_design, same, slot_pc(1))) if s == ("rdTag",))
        tag_diff = sum(1 for s in pl_sequence(visits(cache_design, diff, slot_pc(1))) if s == ("rdTag",))
        assert tag_same > tag_diff


class TestMetadata:
    def test_persistent_registers_are_tags(self, cache_design):
        persistent = set(cache_design.metadata.persistent_registers)
        assert "tag_s0_w0" in persistent and "vld_s3_w3" in persistent
        assert "cc_state" not in persistent

    def test_candidate_pl_never_occupied(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(True, 1, 9), (False, 2, 0), (False, 1, 0)], horizon=50)
        for pl in cache_design.metadata.candidate_pls.values():
            for slot in pl.slots:
                assert not any(obs[slot.occ_signal] for obs in trace)

    def test_quiesce(self, cache_design, cache_sim):
        trace = run(cache_design, cache_sim, [(True, 1, 9)], horizon=24)
        assert trace[0]["pipe_quiesce"] == 1
        assert any(obs["pipe_quiesce"] == 0 for obs in trace)
        assert trace[-1]["pipe_quiesce"] == 1


class TestProvider:
    def test_mupath_groups_structure(self):
        provider = CacheContextProvider()
        groups = provider.mupath_groups("ST")
        assert {g.label for g in groups} == {"probe", "solo"}
        assert all(g.complete for g in groups)
        assert all(g.contexts for g in groups)

    def test_taint_groups_assumptions(self):
        provider = CacheContextProvider(instrumented=True)
        assert provider.taint_groups("LD", "ST", "dynamic_younger", "rs1") == []
        static = provider.taint_groups("ST", "LD", "static", "rs1")
        assert static and static[0].taint_pc == slot_pc(0)
        assert static[0].iuv_pc == slot_pc(1)
        intr = provider.taint_groups("ST", "ST", "intrinsic", "rs1")
        assert len(intr) == 2
        assert provider.taint_groups("ST", "LD", "intrinsic", "rs1") == []

"""Differential fuzz harness for the SAT stack.

The solver-speed work -- CNF preprocessing (structural hashing, bounded
variable elimination, subsumption / self-subsuming resolution), the
array-based BCP inner loop, and portfolio clause sharing -- is locked
down here by running seeded random formulas through three independent
answerers and insisting they agree:

* ``SatSolver(preprocess=True)``  -- the full production path;
* ``SatSolver(preprocess=False)`` -- the same CDCL core without the
  pre-search transformation (the ``--no-preprocess`` path);
* a tiny reference DPLL with unit propagation -- slow, obviously
  correct, and sharing no code with the production solver.

Beyond verdict agreement the harness checks the *evidence*:

* on SAT, the model must satisfy every **original** clause (exercising
  model reconstruction over BVE-eliminated variables) and every assumed
  literal must hold in the model;
* on UNSAT under assumptions, ``last_core`` must be a subset of the
  assumptions and the original formula plus the core alone must still be
  UNSAT per the oracle (core soundness);
* the two-watched-literal invariant must hold after every solve.

Three generators stress the incremental paths: plain formulas,
assumption-heavy runs (several assumption sets against one solver, so
later rounds hit variables preprocessing may have eliminated), and
retract-heavy runs (activation-guarded clause groups activated,
deactivated, and permanently retracted).

Mutation tests at the bottom prove the harness has teeth: breaking
frozen-variable protection (``preprocess._is_frozen``) or making
subsumption polarity-blind (``preprocess._subsumes``) must each be
caught.

Set ``SOLVER_DIFF_ARTIFACTS=<dir>`` to dump the DIMACS of any failing
formula (the CI ``solver-diff`` job uploads that directory), and
``SOLVER_DIFF_RANDOM_SECONDS=<n>`` to append a wall-clock-bounded sweep
over entropy-picked seeds on top of the fixed tier-1 seed range.
"""

from __future__ import annotations

import os
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

import repro.solver.preprocess as preprocess_mod
from repro.solver import SAT, UNSAT, SatSolver

Clause = Tuple[int, ...]

# Seeded coverage in tier-1: 3 generators x _BATCHES x _PER_BATCH
# formulas >= the 500 the issue asks for.
_BATCHES = 10
_PER_BATCH = 20


# ----------------------------------------------------------------- oracle
def dpll(clauses: Sequence[Sequence[int]], assignment=None) -> Optional[Dict[int, bool]]:
    """Reference DPLL with unit propagation; model dict or None (UNSAT).

    Deliberately naive and recursive: for the <= ~20-variable formulas
    the generators emit this is instant, and it shares nothing with the
    production solver -- no watch lists, no preprocessing, no learning.
    """
    assignment = dict(assignment or {})
    while True:
        unit = None
        remaining: List[List[int]] = []
        for clause in clauses:
            live: List[int] = []
            satisfied = False
            for lit in clause:
                value = assignment.get(abs(lit))
                if value is None:
                    live.append(lit)
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if not live:
                return None
            if len(live) == 1 and unit is None:
                unit = live[0]
            remaining.append(live)
        clauses = remaining
        if unit is None:
            break
        assignment[abs(unit)] = unit > 0
    if not clauses:
        return assignment
    branch = clauses[0][0]
    for choice in (branch, -branch):
        model = dpll(clauses, {**assignment, abs(choice): choice > 0})
        if model is not None:
            return model
    return None


def oracle_verdict(clauses: Sequence[Sequence[int]]) -> str:
    return UNSAT if dpll(clauses) is None else SAT


# ------------------------------------------------------------- generators
def _random_clause(rng: random.Random, num_vars: int, width: int) -> Clause:
    chosen = rng.sample(range(1, num_vars + 1), min(width, num_vars))
    return tuple(v if rng.random() < 0.5 else -v for v in chosen)


def random_formula(rng: random.Random) -> Tuple[int, List[Clause]]:
    """A small CNF with deliberate preprocessing fodder mixed in.

    Duplicates exercise structural hashing, strict supersets exercise
    subsumption, polarity-flipped variable-supersets are exactly what a
    polarity-blind subsumption test would wrongly delete, and the low
    clause/variable ratio leaves pure and low-occurrence variables for
    BVE to eliminate.
    """
    num_vars = rng.randrange(4, 13)
    num_clauses = rng.randrange(num_vars, 4 * num_vars)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        width = rng.choice((1, 2, 2, 3, 3, 3, 4, 5))
        clauses.append(_random_clause(rng, num_vars, width))
    for _ in range(rng.randrange(0, 4)):
        base = list(rng.choice(clauses))
        kind = rng.randrange(3)
        if kind == 0:
            clauses.append(tuple(base))  # duplicate
        else:
            extra = rng.randrange(1, num_vars + 1)
            if extra in (abs(l) for l in base):
                continue
            lit = extra if rng.random() < 0.5 else -extra
            if kind == 1:
                clauses.append(tuple(base + [lit]))  # strict superset
            else:
                flipped = [-l if rng.random() < 0.5 else l for l in base]
                clauses.append(tuple(flipped + [lit]))  # var-superset only
    return num_vars, clauses


# -------------------------------------------------------------- harnesses
def _dump_cnf(tag: str, num_vars: int, clauses: Sequence[Sequence[int]]) -> None:
    directory = os.environ.get("SOLVER_DIFF_ARTIFACTS")
    if not directory:
        return
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, "%s.cnf" % tag), "w") as fh:
        fh.write("p cnf %d %d\n" % (num_vars, len(clauses)))
        for clause in clauses:
            fh.write(" ".join(str(lit) for lit in clause) + " 0\n")


def _build(num_vars: int, clauses: Sequence[Clause], preprocess: bool) -> SatSolver:
    solver = SatSolver(preprocess=preprocess)
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(list(clause))
    return solver


def _assert_model(solver: SatSolver, clauses, assumptions, context: str) -> None:
    for lit in assumptions:
        assert solver.model_value(abs(lit)) == (lit > 0), (
            "%s: assumed literal %d does not hold in the model" % (context, lit)
        )
    for clause in clauses:
        assert any(solver.model_value(abs(lit)) == (lit > 0) for lit in clause), (
            "%s: model violates original clause %r" % (context, tuple(clause))
        )


def _assert_core(solver: SatSolver, clauses, assumptions, context: str) -> None:
    core = solver.last_core
    assert core is not None, "%s: UNSAT verdict without a core" % context
    assert set(core) <= set(assumptions), (
        "%s: core %r not a subset of assumptions %r" % (context, core, assumptions)
    )
    assert dpll(list(clauses) + [[lit] for lit in core]) is None, (
        "%s: core %r does not suffice for UNSAT" % (context, core)
    )


def run_plain(seed: int) -> None:
    """One formula, no assumptions: verdict + model + watch invariant."""
    rng = random.Random(seed)
    num_vars, clauses = random_formula(rng)
    try:
        expected = oracle_verdict(clauses)
        for preprocess in (True, False):
            context = "plain seed=%d preprocess=%s" % (seed, preprocess)
            solver = _build(num_vars, clauses, preprocess)
            verdict = solver.solve()
            assert verdict == expected, (
                "%s: solver says %s, oracle says %s" % (context, verdict, expected)
            )
            if verdict == SAT:
                _assert_model(solver, clauses, (), context)
            assert solver.check_watch_invariant(), context
    except AssertionError:
        _dump_cnf("plain_seed%d" % seed, num_vars, clauses)
        raise


def run_assumptions(seed: int, rounds: int = 4) -> None:
    """Several assumption sets against one solver pair.

    Round 0's assumptions are frozen when preprocessing runs at the first
    solve; later rounds pick fresh variables, which may have been
    eliminated in the meantime -- exercising unelimination on demand.
    """
    rng = random.Random(seed)
    num_vars, clauses = random_formula(rng)
    try:
        solvers = {
            True: _build(num_vars, clauses, True),
            False: _build(num_vars, clauses, False),
        }
        for round_idx in range(rounds):
            count = rng.randrange(1, 4)
            chosen = rng.sample(range(1, num_vars + 1), min(count, num_vars))
            assumptions = [v if rng.random() < 0.5 else -v for v in chosen]
            expected = oracle_verdict(
                list(clauses) + [[lit] for lit in assumptions]
            )
            for preprocess, solver in solvers.items():
                context = "assume seed=%d round=%d preprocess=%s assumptions=%r" % (
                    seed, round_idx, preprocess, assumptions,
                )
                verdict = solver.solve(assumptions=assumptions)
                assert verdict == expected, (
                    "%s: solver says %s, oracle says %s"
                    % (context, verdict, expected)
                )
                if verdict == SAT:
                    _assert_model(solver, clauses, assumptions, context)
                else:
                    _assert_core(solver, clauses, assumptions, context)
                assert solver.check_watch_invariant(), context
    except AssertionError:
        _dump_cnf("assume_seed%d" % seed, num_vars, clauses)
        raise


def run_retract(seed: int, rounds: int = 5) -> None:
    """Activation-guarded clause groups: activate, skip, retract.

    Both solvers see the identical operation sequence (so activation
    variables get the same numbering) and are checked against an oracle
    formula that mirrors the guard encoding exactly: group clauses carry
    ``-act``, a retracted group contributes the root unit ``-act``.
    """
    rng = random.Random(seed)
    num_vars, base = random_formula(rng)
    try:
        solvers = [_build(num_vars, base, True), _build(num_vars, base, False)]
        groups = []
        for _ in range(3):
            acts = [solver.new_activation() for solver in solvers]
            assert acts[0] == acts[1]
            clauses = [
                list(_random_clause(rng, num_vars, rng.choice((2, 3, 3, 4))))
                for _ in range(rng.randrange(1, 4))
            ]
            if rng.random() < 0.5:
                # plant a contradiction so activating this group matters
                var = rng.randrange(1, num_vars + 1)
                clauses += [[var], [-var]]
            for solver in solvers:
                for clause in clauses:
                    solver.add_clause(list(clause), activation=acts[0])
            groups.append({"act": acts[0], "clauses": clauses, "retired": False})
        for round_idx in range(rounds):
            live = [g for g in groups if not g["retired"]]
            if live and rng.random() < 0.4:
                victim = rng.choice(live)
                victim["retired"] = True
                for solver in solvers:
                    solver.retract(victim["act"])
            assumed_acts = {
                g["act"]
                for g in groups
                if not g["retired"] and rng.random() < 0.6
            }
            retired = [g for g in groups if g["retired"]]
            if retired and round_idx == rounds - 1:
                # asserting a retired activation must come back UNSAT
                assumed_acts.add(rng.choice(retired)["act"])
            extra_count = rng.randrange(0, 3)
            chosen = rng.sample(range(1, num_vars + 1), min(extra_count, num_vars))
            assumptions = sorted(assumed_acts) + [
                v if rng.random() < 0.5 else -v for v in chosen
            ]
            oracle_clauses: List[List[int]] = [list(c) for c in base]
            for group in groups:
                for clause in group["clauses"]:
                    oracle_clauses.append(list(clause) + [-group["act"]])
                if group["retired"]:
                    oracle_clauses.append([-group["act"]])
            expected = oracle_verdict(
                oracle_clauses + [[lit] for lit in assumptions]
            )
            for preprocess, solver in zip((True, False), solvers):
                context = "retract seed=%d round=%d preprocess=%s assumptions=%r" % (
                    seed, round_idx, preprocess, assumptions,
                )
                verdict = solver.solve(assumptions=assumptions)
                assert verdict == expected, (
                    "%s: solver says %s, oracle says %s"
                    % (context, verdict, expected)
                )
                if verdict == SAT:
                    _assert_model(solver, oracle_clauses, assumptions, context)
                else:
                    _assert_core(solver, oracle_clauses, assumptions, context)
                assert solver.check_watch_invariant(), context
    except AssertionError:
        _dump_cnf("retract_seed%d" % seed, num_vars, base)
        raise


# ------------------------------------------------------------ fixed seeds
class TestDifferentialPlain:
    @pytest.mark.parametrize("batch", range(_BATCHES))
    def test_batch(self, batch):
        for seed in range(batch * _PER_BATCH, (batch + 1) * _PER_BATCH):
            run_plain(seed)


class TestDifferentialAssumptions:
    @pytest.mark.parametrize("batch", range(_BATCHES))
    def test_batch(self, batch):
        for seed in range(batch * _PER_BATCH, (batch + 1) * _PER_BATCH):
            run_assumptions(10_000 + seed)


class TestDifferentialRetract:
    @pytest.mark.parametrize("batch", range(_BATCHES))
    def test_batch(self, batch):
        for seed in range(batch * _PER_BATCH, (batch + 1) * _PER_BATCH):
            run_retract(20_000 + seed)


class TestRandomizedBudget:
    """Entropy-seeded sweep, wall-clock bounded; CI sets the env var."""

    def test_random_budget(self):
        budget = float(os.environ.get("SOLVER_DIFF_RANDOM_SECONDS", "0"))
        if not budget:
            pytest.skip("SOLVER_DIFF_RANDOM_SECONDS not set")
        deadline = time.monotonic() + budget
        entropy = random.SystemRandom()
        explored = 0
        while time.monotonic() < deadline:
            seed = entropy.randrange(2**32)
            run_plain(seed)
            run_assumptions(seed)
            run_retract(seed)
            explored += 1
        assert explored > 0


# -------------------------------------------------------- preprocess gate
class TestPreprocessGate:
    """Pin the _CLAUSE_LIMIT build-dominated-regime gate both ways."""

    def _duplicate_heavy_solver(self):
        solver = SatSolver(preprocess=False)  # call preprocess() directly
        for _ in range(6):
            solver.new_var()
        clauses = [[1, 2, 3], [1, 2, 3], [-1, 4], [-1, 4], [2, -5, 6]]
        for clause in clauses:
            solver.add_clause(clause)
        return solver

    def test_small_formula_is_preprocessed(self):
        solver = self._duplicate_heavy_solver()
        stats = preprocess_mod.preprocess(solver, frozen=set())
        assert stats["duplicates"] == 2
        assert len(solver._clauses) < 5
        assert solver.check_watch_invariant()
        assert solver.solve() == SAT

    def test_oversized_formula_is_skipped(self, monkeypatch):
        monkeypatch.setattr(preprocess_mod, "_CLAUSE_LIMIT", 3)
        solver = self._duplicate_heavy_solver()
        stats = preprocess_mod.preprocess(solver, frozen=set())
        assert stats["duplicates"] == 0
        assert len(solver._clauses) == 5  # untouched: build-dominated regime
        assert solver.solve() == SAT


# --------------------------------------------------------- mutation tests
def _sweep_for_detection(seeds) -> int:
    """How many harness runs notice something wrong under a mutation."""
    detections = 0
    for seed in seeds:
        try:
            run_plain(seed)
            run_assumptions(seed)
            run_retract(seed)
        except AssertionError:
            detections += 1
    return detections


class TestMutationDetection:
    """The harness must have teeth: planted preprocessing bugs get caught."""

    def test_unfrozen_bve_is_caught(self, monkeypatch):
        monkeypatch.setattr(
            preprocess_mod, "_is_frozen", lambda var, frozen: False
        )
        # Directed case: the assumption variable of the *first* solve is
        # frozen at preprocessing time precisely because the same call
        # skips unelimination-on-demand.  Unfreeze it and x (pure in the
        # formula) is eliminated, its clause deleted, and the assumed
        # literal comes back SAT where the oracle says UNSAT.
        num_vars, clauses = 3, [(-1, 2, 3)]
        assumptions = [1, -2, -3]
        assert oracle_verdict(list(clauses) + [[l] for l in assumptions]) == UNSAT
        solver = _build(num_vars, clauses, preprocess=True)
        verdict = solver.solve(assumptions=assumptions)
        directed_caught = verdict != UNSAT
        if verdict == SAT:
            # a SAT answer here is the lie itself; the model check would
            # flag it too (the assumed literal cannot hold post-reconstruction)
            directed_caught = True
        detections = _sweep_for_detection(range(40))
        assert directed_caught or detections, (
            "harness failed to detect disabled frozen-variable protection"
        )

    def test_polarity_blind_subsumption_is_caught(self, monkeypatch):
        def bad_subsumes(small, big):
            return {enc >> 1 for enc in small} <= {enc >> 1 for enc in big}

        monkeypatch.setattr(preprocess_mod, "_subsumes", bad_subsumes)
        # No single directed formula works here: whether the bad test
        # first *deletes* a clause (weakening, -> wrong SAT / invalid
        # model) or first *strengthens* one via self-subsuming resolution
        # (-> wrong UNSAT) depends on clause processing order.  The
        # seeded sweep covers both failure shapes and is deterministic.
        detections = _sweep_for_detection(range(40))
        assert detections, "harness failed to detect polarity-blind subsumption"


def test_unmutated_sweep_is_clean():
    """The mutation-detection sweep itself passes without mutations."""
    assert _sweep_for_detection(range(40)) == 0

"""SAT solver tests: correctness against brute force, budgets, assumptions."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import SAT, UNKNOWN, UNSAT, SatSolver


def brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


class TestBasics:
    def test_empty_formula_sat(self):
        assert SatSolver().solve() == SAT

    def test_unit(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v])
        assert s.solve() == SAT and s.model_value(v)

    def test_contradiction(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v])
        s.add_clause([-v])
        assert s.solve() == UNSAT

    def test_tautology_ignored(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v, -v])
        assert s.solve() == SAT

    def test_duplicate_literals_collapse(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v, v, v])
        assert s.solve() == SAT and s.model_value(v)

    def test_implication_chain(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(50)]
        for i in range(49):
            s.add_clause([-vs[i], vs[i + 1]])
        s.add_clause([vs[0]])
        assert s.solve() == SAT
        assert all(s.model_value(v) for v in vs)

    def test_model_satisfies_clauses(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(8)]
        clauses = [[vs[0], -vs[1]], [vs[1], vs[2]], [-vs[2], vs[3], -vs[4]],
                   [vs[4], vs[5]], [-vs[5], -vs[0]], [vs[6], vs[7]]]
        for c in clauses:
            s.add_clause(c)
        assert s.solve() == SAT
        for c in clauses:
            assert any(s.model_value(abs(l)) == (l > 0) for l in c)


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_unsat(self, holes):
        pigeons = holes + 1
        s = SatSolver()
        p = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for i in range(pigeons):
            s.add_clause(p[i])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    s.add_clause([-p[i][h], -p[j][h]])
        assert s.solve() == UNSAT

    def test_sat_when_enough_holes(self):
        s = SatSolver()
        holes, pigeons = 3, 3
        p = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for i in range(pigeons):
            s.add_clause(p[i])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    s.add_clause([-p[i][h], -p[j][h]])
        assert s.solve() == SAT


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, b])
        assert s.solve(assumptions=[a]) == SAT
        assert s.model_value(b)

    def test_conflicting_assumptions(self):
        s = SatSolver()
        a = s.new_var()
        assert s.solve(assumptions=[a, -a]) == UNSAT

    def test_assumption_vs_clause_conflict(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([-a])
        assert s.solve(assumptions=[a]) == UNSAT

    def test_reusable_across_assumptions(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a]) == SAT
        assert s.model_value(b)
        assert s.solve(assumptions=[-b]) == SAT
        assert s.model_value(a)
        assert s.solve(assumptions=[-a, -b]) == UNSAT
        # the solver must remain usable after an assumption failure
        assert s.solve(assumptions=[a, b]) == SAT


class TestBudget:
    def test_budget_yields_unknown(self):
        # hard PHP instance with a tiny conflict budget
        s = SatSolver()
        holes = 7
        pigeons = holes + 1
        p = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for i in range(pigeons):
            s.add_clause(p[i])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    s.add_clause([-p[i][h], -p[j][h]])
        assert s.solve(max_conflicts=5) == UNKNOWN


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 100000),
    num_vars=st.integers(3, 8),
    num_clauses=st.integers(3, 30),
)
def test_random_3sat_matches_brute_force(seed, num_vars, num_clauses):
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        size = rng.randrange(1, 4)
        variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    s = SatSolver()
    for _ in range(num_vars):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    verdict = s.solve()
    expected = brute_force(num_vars, clauses)
    assert verdict == (SAT if expected else UNSAT)
    if verdict == SAT:
        for c in clauses:
            assert any(s.model_value(abs(l)) == (l > 0) for l in c)

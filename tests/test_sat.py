"""SAT solver tests: correctness against brute force, budgets, assumptions."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import SAT, UNKNOWN, UNSAT, SatSolver


def brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


class TestBasics:
    def test_empty_formula_sat(self):
        assert SatSolver().solve() == SAT

    def test_unit(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v])
        assert s.solve() == SAT and s.model_value(v)

    def test_contradiction(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v])
        s.add_clause([-v])
        assert s.solve() == UNSAT

    def test_tautology_ignored(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v, -v])
        assert s.solve() == SAT

    def test_duplicate_literals_collapse(self):
        s = SatSolver()
        v = s.new_var()
        s.add_clause([v, v, v])
        assert s.solve() == SAT and s.model_value(v)

    def test_implication_chain(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(50)]
        for i in range(49):
            s.add_clause([-vs[i], vs[i + 1]])
        s.add_clause([vs[0]])
        assert s.solve() == SAT
        assert all(s.model_value(v) for v in vs)

    def test_model_satisfies_clauses(self):
        s = SatSolver()
        vs = [s.new_var() for _ in range(8)]
        clauses = [[vs[0], -vs[1]], [vs[1], vs[2]], [-vs[2], vs[3], -vs[4]],
                   [vs[4], vs[5]], [-vs[5], -vs[0]], [vs[6], vs[7]]]
        for c in clauses:
            s.add_clause(c)
        assert s.solve() == SAT
        for c in clauses:
            assert any(s.model_value(abs(l)) == (l > 0) for l in c)


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_unsat(self, holes):
        pigeons = holes + 1
        s = SatSolver()
        p = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for i in range(pigeons):
            s.add_clause(p[i])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    s.add_clause([-p[i][h], -p[j][h]])
        assert s.solve() == UNSAT

    def test_sat_when_enough_holes(self):
        s = SatSolver()
        holes, pigeons = 3, 3
        p = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for i in range(pigeons):
            s.add_clause(p[i])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    s.add_clause([-p[i][h], -p[j][h]])
        assert s.solve() == SAT


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, b])
        assert s.solve(assumptions=[a]) == SAT
        assert s.model_value(b)

    def test_conflicting_assumptions(self):
        s = SatSolver()
        a = s.new_var()
        assert s.solve(assumptions=[a, -a]) == UNSAT

    def test_assumption_vs_clause_conflict(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([-a])
        assert s.solve(assumptions=[a]) == UNSAT

    def test_reusable_across_assumptions(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a]) == SAT
        assert s.model_value(b)
        assert s.solve(assumptions=[-b]) == SAT
        assert s.model_value(a)
        assert s.solve(assumptions=[-a, -b]) == UNSAT
        # the solver must remain usable after an assumption failure
        assert s.solve(assumptions=[a, b]) == SAT


class TestAssumptionRetraction:
    """Activation-literal retraction and unsat-core hygiene.

    The incremental engines install per-property constraints behind
    activation literals and retract them between checks; a reused context
    must answer later properties exactly as a fresh solver would, and an
    UNSAT core must only mention the *current* call's assumptions -- in
    particular, activation literals from a property that already got a SAT
    verdict must never leak into a later core.
    """

    def test_guarded_clause_inert_without_assumption(self):
        s = SatSolver()
        v = s.new_var()
        act = s.new_activation()
        s.add_clause([-v], activation=act)
        s.add_clause([v])
        # without the activation assumed the guard keeps [-v] inert
        assert s.solve() == SAT
        assert s.model_value(v)
        # with it assumed the constraint bites
        assert s.solve(assumptions=[act]) == UNSAT

    def test_retract_disables_group(self):
        s = SatSolver()
        v, w = s.new_var(), s.new_var()
        act = s.new_activation()
        s.add_clause([-v], activation=act)
        s.add_clause([-w], activation=act)
        s.add_clause([v])
        s.add_clause([w])
        assert s.solve(assumptions=[act]) == UNSAT
        s.retract(act)
        # retired group no longer constrains the formula
        assert s.solve() == SAT
        assert s.model_value(v) and s.model_value(w)
        # assuming a *retired* activation is a contradiction by design
        # (retraction is a root-level unit), and the core says only that
        assert s.solve(assumptions=[act]) == UNSAT
        assert {abs(l) for l in s.last_core} == {act}

    def test_retraction_matches_fresh_solver(self):
        # a reused solver after retraction agrees with a fresh solver on a
        # chain of property groups (the incremental k-induction pattern)
        fresh_clauses = []
        s = SatSolver()
        vs = [s.new_var() for _ in range(6)]
        for i in range(5):
            s.add_clause([-vs[i], vs[i + 1]])
            fresh_clauses.append([-(i + 1), (i + 2)])
        for i in range(5):
            act = s.new_activation()
            s.add_clause([vs[i]], activation=act)
            s.add_clause([-vs[i + 1]], activation=act)
            assert s.solve(assumptions=[act]) == UNSAT
            s.retract(act)
            f = SatSolver()
            for _ in range(6):
                f.new_var()
            for clause in fresh_clauses:
                f.add_clause(clause)
            f.add_clause([i + 1])
            f.add_clause([-(i + 2)])
            assert f.solve() == UNSAT
        assert s.solve() == SAT

    def test_unsat_core_subset_of_assumptions(self):
        s = SatSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([-a, -b])
        assert s.solve(assumptions=[c, a, b]) == UNSAT
        assert s.last_core is not None
        assert set(s.last_core) <= {a, b}  # c is irrelevant
        assert set(s.last_core) == {a, b}

    def test_core_cleared_on_sat(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, -b])
        assert s.solve(assumptions=[a, b]) == UNSAT
        assert s.last_core
        assert s.solve(assumptions=[a]) == SAT
        assert s.last_core is None

    def test_sat_verdict_does_not_leak_activations_into_core(self):
        # regression: property P1's activation literal got a SAT verdict;
        # property P2's UNSAT core must not mention it
        s = SatSolver()
        v, w = s.new_var(), s.new_var()
        act1 = s.new_activation()
        s.add_clause([v], activation=act1)
        assert s.solve(assumptions=[act1]) == SAT  # P1 reachable
        act2 = s.new_activation()
        s.add_clause([-w], activation=act2)
        s.add_clause([w])
        assert s.solve(assumptions=[act2]) == UNSAT  # P2 refuted
        assert s.last_core is not None
        vars_in_core = {abs(l) for l in s.last_core}
        assert act1 not in vars_in_core
        assert vars_in_core == {act2}

    def test_root_unsat_has_empty_core(self):
        s = SatSolver()
        v = s.new_var()
        a = s.new_var()
        s.add_clause([v])
        s.add_clause([-v])
        assert s.solve(assumptions=[a]) == UNSAT
        assert s.last_core == []

    def test_contradictory_assumptions_core(self):
        s = SatSolver()
        a = s.new_var()
        assert s.solve(assumptions=[a, -a]) == UNSAT
        assert {abs(l) for l in s.last_core} == {a}

    def test_retract_is_idempotent(self):
        s = SatSolver()
        v = s.new_var()
        act = s.new_activation()
        s.add_clause([-v], activation=act)
        s.add_clause([v])
        assert s.retract(act)
        assert s.retract(act)
        assert s.solve() == SAT

    def test_learned_clauses_survive_retraction(self):
        # the whole point of activation literals: retraction must not
        # reset the solver (learned clauses and verdicts stay usable)
        s = SatSolver()
        holes = 5
        pigeons = holes + 1
        p = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for i in range(pigeons):
            s.add_clause(p[i])
        act = s.new_activation()
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    s.add_clause([-p[i][h], -p[j][h]], activation=act)
        assert s.solve(assumptions=[act]) == UNSAT
        learned_before = s.learned_total
        assert learned_before > 0
        s.retract(act)
        assert s.solve() == SAT
        assert s.learned_total >= learned_before


class TestBudget:
    def test_budget_yields_unknown(self):
        # hard PHP instance with a tiny conflict budget
        s = SatSolver()
        holes = 7
        pigeons = holes + 1
        p = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for i in range(pigeons):
            s.add_clause(p[i])
        for h in range(holes):
            for i in range(pigeons):
                for j in range(i + 1, pigeons):
                    s.add_clause([-p[i][h], -p[j][h]])
        assert s.solve(max_conflicts=5) == UNKNOWN


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 100000),
    num_vars=st.integers(3, 8),
    num_clauses=st.integers(3, 30),
)
def test_random_3sat_matches_brute_force(seed, num_vars, num_clauses):
    import random

    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        size = rng.randrange(1, 4)
        variables = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    s = SatSolver()
    for _ in range(num_vars):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    verdict = s.solve()
    expected = brute_force(num_vars, clauses)
    assert verdict == (SAT if expected else UNSAT)
    if verdict == SAT:
        for c in clauses:
            assert any(s.model_value(abs(l)) == (l > 0) for l in c)


class TestWatchInvariant:
    """The two-watched-literal layout must hold through every build path.

    ``check_watch_invariant()`` cross-checks the flat array watch lists
    (watched literal in ``clause[:2]``, no binary clauses there) and the
    dedicated binary lists (clause really binary, blocker is the other
    literal) against the clause database.  The fused gate emitters write
    watch entries directly instead of going through ``add_clause``, so
    each emission path gets its own coverage here.
    """

    def test_fused_and_gate_emission(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        out = s.new_and_gate(a, b)
        assert s.check_watch_invariant()
        assert s.solve(assumptions=[out]) == SAT
        assert s.model_value(a) and s.model_value(b)
        assert s.check_watch_invariant()

    def test_fused_xor_gate_emission(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        out = s.new_xor_gate(a, b)
        assert s.check_watch_invariant()
        assert s.solve(assumptions=[out, a]) == SAT
        assert not s.model_value(b)
        assert s.check_watch_invariant()

    def test_binary_and_long_clause_mix(self):
        s = SatSolver()
        for _ in range(6):
            s.new_var()
        s.add_clause([1, 2])          # binary list path
        s.add_clause([-1, 3, 4])      # main watch list path
        s.add_clause([2, -3, 5, -6])
        s.add_clause([-2, -5])
        assert s.check_watch_invariant()
        assert s.solve() == SAT
        assert s.check_watch_invariant()

    def test_invariant_survives_search_and_learning(self):
        # pigeonhole 4-into-3 forces real conflict analysis: learned
        # clauses (binary and longer) must land in the right lists
        s = SatSolver()
        p = [[s.new_var() for _ in range(3)] for _ in range(4)]
        for row in p:
            s.add_clause(row)
        for h in range(3):
            for i in range(4):
                for j in range(i + 1, 4):
                    s.add_clause([-p[i][h], -p[j][h]])
        assert s.solve() == UNSAT
        assert s.check_watch_invariant()

    def test_invariant_after_preprocessing_rebuild(self):
        s = SatSolver(preprocess=True)
        for _ in range(8):
            s.new_var()
        s.add_clause([1, 2, 3])
        s.add_clause([1, 2, 3, 4])    # subsumed
        s.add_clause([-1, 5])
        s.add_clause([-1, 5])         # duplicate
        s.add_clause([6, 7, -8])
        assert s.solve() == SAT       # preprocessing rebuilds the watches
        assert s.check_watch_invariant()

    def test_asymmetric_corruption_is_detected(self):
        # the invariant checker itself must notice a one-sided watch:
        # drop one entry from a main watch list and expect False
        s = SatSolver()
        for _ in range(4):
            s.new_var()
        s.add_clause([1, 2, 3])
        s.add_clause([-2, 3, 4])
        assert s.check_watch_invariant()
        for lst in s._watches:
            if lst:
                del lst[-2:]  # entries are (clause, blocker) pairs
                break
        assert not s.check_watch_invariant()

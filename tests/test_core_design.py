"""Core design tests: every channel and bug the paper reports on CVA6."""

import pytest

from repro.designs import CoreConfig, build_core, isa, program_driver_factory, slot_pc
from repro.designs.variants import build_cva6_mul, build_fixed_core
from repro.sim import Simulator


@pytest.fixture(scope="module")
def sim(core_design):
    return Simulator(core_design.netlist)


def run(design, sim, script, overrides, horizon=44):
    sim.reset(overrides)
    driver = program_driver_factory(script)()
    prev = None
    trace = []
    for t in range(horizon):
        prev = sim.step(driver(t, prev))
        trace.append(prev)
    return trace


def visits(design, trace, pc):
    """[(cycle, {pls})] for instruction ``pc``."""
    rows = []
    for t, obs in enumerate(trace):
        seen = set()
        for name, pl in design.metadata.pls.items():
            for slot in pl.slots:
                if obs[slot.occ_signal] and obs[slot.pc_signal] == pc:
                    seen.add(name)
        if seen:
            rows.append((t, seen))
    return rows


def pl_cycles(rows, pl):
    return [t for t, seen in rows if pl in seen]


class TestBasicPipeline:
    def test_add_canonical_path(self, core_design, sim):
        word = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        trace = run(core_design, sim, [("feed", (word,))], {"arf_w1": 5, "arf_w2": 7})
        rows = visits(core_design, trace, slot_pc(0))
        stages = [sorted(s) for _, s in rows]
        assert stages == [
            ["IF"],
            ["ID"],
            ["issue", "scbIss"],
            ["aluU", "scbIss"],
            ["scbFin"],
            ["scbCmt"],
        ]

    def test_add_result_committed_to_arf(self, core_design, sim):
        word = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        run(core_design, sim, [("feed", (word,))], {"arf_w1": 5, "arf_w2": 7}, horizon=10)
        assert sim.state_dict()["arf_w3"] == 12

    def test_sub_and_logic_results(self, core_design, sim):
        for name, expected in (("SUB", (9 - 3) & 0xFF), ("XOR", 9 ^ 3), ("AND", 9 & 3), ("OR", 9 | 3)):
            word = isa.encode(name, rd=3, rs1=1, rs2=2)
            run(core_design, sim, [("feed", (word,))], {"arf_w1": 9, "arf_w2": 3}, horizon=10)
            assert sim.state_dict()["arf_w3"] == expected, name

    def test_x0_never_written(self, core_design, sim):
        word = isa.encode("ADD", rd=0, rs1=1, rs2=2)
        run(core_design, sim, [("feed", (word,))], {"arf_w1": 5, "arf_w2": 7}, horizon=10)
        assert sim.state_dict()["arf_w0"] == 0

    def test_commit_pc_strobe(self, core_design, sim):
        word = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        trace = run(core_design, sim, [("feed", (word,))], {}, horizon=10)
        commits = [(t, obs["commit_pc"]) for t, obs in enumerate(trace) if obs["commit_fire"]]
        assert commits == [(6, slot_pc(0))]

    def test_back_to_back_alu_pipelines(self, core_design, sim):
        words = tuple(isa.encode("ADD", rd=0, rs1=1, rs2=2) for _ in range(3))
        trace = run(core_design, sim, [("feed", words)], {}, horizon=16)
        commits = [t for t, obs in enumerate(trace) if obs["commit_fire"]]
        assert commits == [6, 7, 8]  # one commit per cycle, no bubbles

    def test_raw_hazard_stalls(self, core_design, sim):
        first = isa.encode("ADD", rd=4, rs1=1, rs2=2)
        second = isa.encode("ADD", rd=5, rs1=4, rs2=2)  # reads rd of first
        trace = run(core_design, sim, [("feed", (first, second))], {}, horizon=20)
        rows = visits(core_design, trace, slot_pc(1))
        assert len(pl_cycles(rows, "ID")) > 1  # stalled in ID until commit


class TestDividerLatency:
    @pytest.mark.parametrize(
        "dividend,expected",
        [(0, 1), (1, 2), (2, 3), (4, 4), (8, 5), (16, 6), (64, 8), (128, 9)],
    )
    def test_unsigned_latency_formula(self, core_design, sim, dividend, expected):
        word = isa.encode("DIVU", rd=3, rs1=1, rs2=2)
        trace = run(core_design, sim, [("feed", (word,))], {"arf_w1": dividend, "arf_w2": 3})
        rows = visits(core_design, trace, slot_pc(0))
        assert len(pl_cycles(rows, "divU")) == expected

    def test_signed_negative_divisor_fixup(self, core_design, sim):
        base = isa.encode("DIVU", rd=3, rs1=1, rs2=2)
        signed = isa.encode("DIV", rd=3, rs1=1, rs2=2)
        overrides = {"arf_w1": 8, "arf_w2": 0x80}  # negative divisor
        t_unsigned = run(core_design, sim, [("feed", (base,))], overrides)
        t_signed = run(core_design, sim, [("feed", (signed,))], overrides)
        u = len(pl_cycles(visits(core_design, t_unsigned, slot_pc(0)), "divU"))
        s = len(pl_cycles(visits(core_design, t_signed, slot_pc(0)), "divU"))
        assert s == u + 1

    def test_latency_range_is_xlen_plus_2(self, core_design, sim):
        # 1..66 cycles at the paper's 64-bit scale; 1..10 at xlen=8 (SS VII-A1)
        latencies = set()
        for dividend in [0] + [1 << i for i in range(8)]:
            for divisor in (3, 0x80):  # positive and negative (fixup arm)
                word = isa.encode("DIV", rd=3, rs1=1, rs2=2)
                trace = run(
                    core_design, sim, [("feed", (word,))],
                    {"arf_w1": dividend, "arf_w2": divisor}, horizon=20,
                )
                rows = visits(core_design, trace, slot_pc(0))
                latencies.add(len(pl_cycles(rows, "divU")))
        assert latencies == set(range(1, 11))

    def test_quotient_value(self, core_design, sim):
        word = isa.encode("DIVU", rd=3, rs1=1, rs2=2)
        run(core_design, sim, [("feed", (word,))], {"arf_w1": 29, "arf_w2": 4}, horizon=20)
        assert sim.state_dict()["arf_w3"] == 29 // 4

    def test_remainder_value(self, core_design, sim):
        word = isa.encode("REMU", rd=3, rs1=1, rs2=2)
        run(core_design, sim, [("feed", (word,))], {"arf_w1": 29, "arf_w2": 4}, horizon=20)
        assert sim.state_dict()["arf_w3"] == 29 % 4

    def test_divide_by_zero_riscv_semantics(self, core_design, sim):
        word = isa.encode("DIVU", rd=3, rs1=1, rs2=2)
        run(core_design, sim, [("feed", (word,))], {"arf_w1": 9, "arf_w2": 0}, horizon=20)
        assert sim.state_dict()["arf_w3"] == 0xFF


class TestMultiplier:
    def test_baseline_fixed_latency(self, core_design, sim):
        for rs1 in (0, 7):
            word = isa.encode("MUL", rd=3, rs1=1, rs2=2)
            trace = run(core_design, sim, [("feed", (word,))], {"arf_w1": rs1, "arf_w2": 3})
            rows = visits(core_design, trace, slot_pc(0))
            assert len(pl_cycles(rows, "mulU")) == 2  # operand-independent

    def test_zero_skip_variant(self):
        design = build_cva6_mul()
        sim = Simulator(design.netlist)
        word = isa.encode("MUL", rd=3, rs1=1, rs2=2)
        fast = run(design, sim, [("feed", (word,))], {"arf_w1": 0, "arf_w2": 3})
        slow = run(design, sim, [("feed", (word,))], {"arf_w1": 5, "arf_w2": 3})
        assert len(pl_cycles(visits(design, fast, slot_pc(0)), "mulU")) == 1
        assert len(pl_cycles(visits(design, slow, slot_pc(0)), "mulU")) == 4

    def test_product_value(self, core_design, sim):
        word = isa.encode("MUL", rd=3, rs1=1, rs2=2)
        run(core_design, sim, [("feed", (word,))], {"arf_w1": 7, "arf_w2": 6}, horizon=12)
        assert sim.state_dict()["arf_w3"] == 42


class TestStoreLoadChannels:
    SW = isa.encode("SW", rs1=4, rs2=5)  # addr = r4 + 5
    LW = isa.encode("LW", rd=3, rs1=1, rs2=1)  # addr = r1 + 1

    def test_store_to_load_stall_on_offset_match(self, core_design, sim):
        trace = run(core_design, sim, [("feed", (self.SW, self.LW))], {"arf_w4": 0, "arf_w1": 0})
        rows = visits(core_design, trace, slot_pc(1))
        assert pl_cycles(rows, "LSQ") and pl_cycles(rows, "ldStall")

    def test_no_stall_on_offset_mismatch(self, core_design, sim):
        trace = run(core_design, sim, [("feed", (self.SW, self.LW))], {"arf_w4": 0, "arf_w1": 1})
        rows = visits(core_design, trace, slot_pc(1))
        assert not pl_cycles(rows, "LSQ")
        assert len(pl_cycles(rows, "ldFin")) == 1

    def test_store_path_shape(self, core_design, sim):
        trace = run(core_design, sim, [("feed", (self.SW,))], {"arf_w4": 0})
        rows = visits(core_design, trace, slot_pc(0))
        order = [pl_cycles(rows, pl)[0] for pl in ("specSTB", "comSTB", "memRq")]
        assert order == sorted(order)

    def test_store_drain_stalls_behind_younger_load(self, core_design, sim):
        # the novel ST_comSTB channel: a younger load with a different
        # page offset takes the single memory port and delays the drain
        lw2 = isa.encode("LW", rd=7, rs1=2, rs2=1)
        script = [("feed", (self.SW, self.LW, lw2))]
        contend = run(core_design, sim, script, {"arf_w4": 0, "arf_w1": 1, "arf_w2": 1})
        matched = run(core_design, sim, script, {"arf_w4": 0, "arf_w1": 1, "arf_w2": 4})
        drain_contend = pl_cycles(visits(core_design, contend, slot_pc(0)), "memRq")[0]
        drain_matched = pl_cycles(visits(core_design, matched, slot_pc(0)), "memRq")[0]
        assert drain_contend > drain_matched

    def test_store_data_reaches_memory(self, core_design, sim):
        run(core_design, sim, [("feed", (self.SW,))], {"arf_w4": 0, "arf_w5": 0xAB}, horizon=16)
        # addr = 0 + 5 -> memory word 5 mod 4 = 1
        assert sim.state_dict()["amem_w1"] == 0xAB

    def test_load_reads_drained_value(self, core_design, sim):
        trace = run(
            core_design, sim, [("feed", (self.SW, self.LW))],
            {"arf_w4": 0, "arf_w1": 0, "arf_w5": 0x5C}, horizon=30,
        )
        # matching offsets: the load stalls until the store drains, then
        # reads the freshly written value
        assert sim.state_dict()["arf_w3"] == 0x5C


class TestControlFlow:
    def test_taken_branch_flushes_younger(self, core_design, sim):
        beq = isa.encode("BEQ", rs1=1, rs2=2, rd=0)
        add = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        taken = run(core_design, sim, [("feed", (beq, add))], {"arf_w1": 5, "arf_w2": 5})
        rows = visits(core_design, taken, slot_pc(1))
        assert not pl_cycles(rows, "scbCmt")  # squashed

    def test_not_taken_branch_keeps_younger(self, core_design, sim):
        # target = pc + rs2-field = 8 + 2: misaligned, but the buggy design
        # only raises the exception at the branch's own commit -- on the
        # not-taken path the younger ADD still gets squashed by exc_flush,
        # so use an aligned target (field value 4) here
        beq = isa.encode("BEQ", rs1=1, rs2=4, rd=0)
        add = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        trace = run(core_design, sim, [("feed", (beq, add))], {"arf_w1": 5, "arf_w2": 6, "arf_w4": 6})
        rows = visits(core_design, trace, slot_pc(1))
        assert pl_cycles(rows, "scbCmt")

    def test_jal_always_flushes(self, core_design, sim):
        jal = isa.encode("JAL", rd=3, rs1=0, rs2=4)
        add = isa.encode("ADD", rd=4, rs1=1, rs2=2)
        trace = run(core_design, sim, [("feed", (jal, add))], {})
        rows = visits(core_design, trace, slot_pc(1))
        assert not pl_cycles(rows, "scbCmt")

    def test_jalr_mispredict_depends_on_rs1(self, core_design, sim):
        jalr = isa.encode("JALR", rd=3, rs1=1, rs2=0)
        add = isa.encode("ADD", rd=4, rs1=1, rs2=2)
        # rs1 = pc+4 = 8: predicted fall-through, no flush
        hit = run(core_design, sim, [("feed", (jalr, add))], {"arf_w1": 8})
        miss = run(core_design, sim, [("feed", (jalr, add))], {"arf_w1": 16})
        assert pl_cycles(visits(core_design, hit, slot_pc(1)), "scbCmt")
        assert not pl_cycles(visits(core_design, miss, slot_pc(1)), "scbCmt")

    def test_ecall_raises_exception(self, core_design, sim):
        ecall = isa.encode("ECALL")
        trace = run(core_design, sim, [("feed", (ecall,))], {})
        rows = visits(core_design, trace, slot_pc(0))
        assert pl_cycles(rows, "scbExcp")
        assert not pl_cycles(rows, "scbCmt")


class TestCva6Bugs:
    """SS VII-B2: the four CVA6 bugs, present by default and fixed by config."""

    def _exc_path(self, design, sim, word, overrides):
        trace = run(design, sim, [("feed", (word,))], overrides)
        rows = visits(design, trace, slot_pc(0))
        return bool(pl_cycles(rows, "scbExcp"))

    def test_jalr_never_excepts_on_buggy_core(self, core_design, sim):
        jalr = isa.encode("JALR", rd=3, rs1=1, rs2=0)
        assert not self._exc_path(core_design, sim, jalr, {"arf_w1": 0x12})  # misaligned

    def test_jalr_excepts_on_fixed_core(self):
        design = build_fixed_core()
        sim = Simulator(design.netlist)
        jalr = isa.encode("JALR", rd=3, rs1=1, rs2=0)
        assert self._exc_path(design, sim, jalr, {"arf_w1": 0x12})

    def test_jal_checks_only_2byte_on_buggy_core(self, core_design, sim):
        # target = pc(4) + 2 = 6: 2-byte aligned but not 4-byte aligned
        jal = isa.encode("JAL", rd=3, rs1=0, rs2=2)
        assert not self._exc_path(core_design, sim, jal, {})
        jal_odd = isa.encode("JAL", rd=3, rs1=0, rs2=1)  # odd target
        assert self._exc_path(core_design, sim, jal_odd, {})

    def test_jal_4byte_checked_on_fixed_core(self):
        design = build_fixed_core()
        sim = Simulator(design.netlist)
        jal = isa.encode("JAL", rd=3, rs1=0, rs2=2)
        assert self._exc_path(design, sim, jal, {})

    def test_branch_excepts_regardless_of_outcome_on_buggy_core(self, core_design, sim):
        beq = isa.encode("BEQ", rs1=1, rs2=2, rd=0)  # target pc+2: misaligned
        # not taken (r1 != r2): the buggy core still raises the exception
        assert self._exc_path(core_design, sim, beq, {"arf_w1": 1, "arf_w2": 9})

    def test_branch_exception_only_when_taken_on_fixed_core(self):
        design = build_fixed_core()
        sim = Simulator(design.netlist)
        beq = isa.encode("BEQ", rs1=1, rs2=2, rd=0)
        assert not self._exc_path(design, sim, beq, {"arf_w1": 1, "arf_w2": 9})
        assert self._exc_path(design, sim, beq, {"arf_w1": 1, "arf_w2": 1})

    def test_scb_underutilized_by_one_on_buggy_core(self, core_design, sim):
        # a long DIV at the head plus fills: the buggy core holds at most 3
        # concurrently active entries (SS VII-B2's counter-width bug)
        div = isa.encode("DIV", rd=6, rs1=4, rs2=5)
        fill = isa.encode("ADD", rd=0, rs1=0, rs2=0)
        trace = run(
            core_design, sim, [("feed", (div, fill, fill, fill))],
            {"arf_w4": 128, "arf_w5": 3},
        )
        assert max(obs["scb_used"] for obs in trace) == 3

    def test_scb_fully_used_on_fixed_core(self):
        design = build_fixed_core()
        sim = Simulator(design.netlist)
        div = isa.encode("DIV", rd=6, rs1=4, rs2=5)
        fill = isa.encode("ADD", rd=0, rs1=0, rs2=0)
        trace = run(
            design, sim, [("feed", (div, fill, fill, fill))],
            {"arf_w4": 128, "arf_w5": 3},
        )
        assert max(obs["scb_used"] for obs in trace) == 4


class TestStallChannels:
    def test_id_stall_behind_full_scoreboard(self, core_design, sim):
        div = isa.encode("DIV", rd=6, rs1=4, rs2=5)
        fill = isa.encode("ADD", rd=0, rs1=0, rs2=0)
        add = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        slow = run(
            core_design, sim, [("feed", (div, fill, fill, add))],
            {"arf_w4": 128, "arf_w5": 3},
        )
        fast = run(
            core_design, sim, [("feed", (div, fill, fill, add))],
            {"arf_w4": 0, "arf_w5": 3},
        )
        slow_id = len(pl_cycles(visits(core_design, slow, slot_pc(3)), "ID"))
        fast_id = len(pl_cycles(visits(core_design, fast, slot_pc(3)), "ID"))
        assert slow_id > fast_id  # ID stall is a function of DIV's operand

    def test_commit_stall_behind_div(self, core_design, sim):
        div = isa.encode("DIV", rd=6, rs1=4, rs2=5)
        add = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        slow = run(core_design, sim, [("feed", (div, add))], {"arf_w4": 128, "arf_w5": 3})
        fast = run(core_design, sim, [("feed", (div, add))], {"arf_w4": 0, "arf_w5": 3})
        slow_fin = len(pl_cycles(visits(core_design, slow, slot_pc(1)), "scbFin"))
        fast_fin = len(pl_cycles(visits(core_design, fast, slot_pc(1)), "scbFin"))
        assert slow_fin > fast_fin  # in-order commit holds the ADD at scbFin

    def test_struct_stall_on_div_unit(self, core_design, sim):
        div = isa.encode("DIV", rd=6, rs1=4, rs2=5)
        div2 = isa.encode("DIV", rd=3, rs1=1, rs2=2)
        trace = run(core_design, sim, [("feed", (div, div2))], {"arf_w4": 128, "arf_w5": 3, "arf_w1": 1, "arf_w2": 1})
        rows = visits(core_design, trace, slot_pc(1))
        assert len(pl_cycles(rows, "ID")) > 2


class TestQuiesceSignal:
    def test_quiesce_after_program_drains(self, core_design, sim):
        word = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        trace = run(core_design, sim, [("feed", (word,))], {}, horizon=14)
        assert trace[0]["pipe_quiesce"] == 1  # empty at reset
        assert trace[3]["pipe_quiesce"] == 0  # instruction in flight
        assert trace[-1]["pipe_quiesce"] == 1  # drained

    def test_candidate_pls_never_occupied(self, core_design, sim):
        div = isa.encode("DIV", rd=6, rs1=4, rs2=5)
        sw = isa.encode("SW", rs1=4, rs2=5)
        trace = run(core_design, sim, [("feed", (div, sw))], {"arf_w4": 9})
        for name, pl in core_design.metadata.candidate_pls.items():
            for slot in pl.slots:
                assert not any(obs[slot.occ_signal] for obs in trace), name

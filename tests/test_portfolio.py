"""Portfolio-engine tests: enumerative fast path, SAT fallback."""

import itertools

import pytest

from repro.rtl import Module, elaborate, mux
from repro.mc import (
    REACHABLE,
    UNDETERMINED,
    UNREACHABLE,
    BmcContext,
    Context,
    PortfolioEngine,
    PropertyStats,
    SymbolicContextSpec,
    TraceDB,
)
from repro.props import Eventually, Query, sig


@pytest.fixture(scope="module")
def fsm():
    m = Module("fsm")
    go = m.input("go", 1)
    st = m.reg("st", 2, reset=0)
    st.next = mux(
        st.q.eq(0) & go,
        m.const(1, 2),
        mux(st.q.eq(1), m.const(2, 2), mux(st.q.eq(2), m.const(0, 2), st.q)),
    )
    for i in range(4):
        m.name_signal("s%d" % i, st.q.eq(i))
    return elaborate(m)


def narrow_db(fsm):
    # go pinned low: the family never reaches s1/s2
    return TraceDB(fsm, [Context.make({}, [{"go": 0}] * 6)], complete=False)


def full_db(fsm):
    contexts = [
        Context.make({}, [{"go": b} for b in bits])
        for bits in itertools.product([0, 1], repeat=6)
    ]
    return TraceDB(fsm, contexts, complete=True)


class TestPortfolio:
    def test_enumerative_conclusive_skips_bmc(self, fsm):
        engine = PortfolioEngine(full_db(fsm), bmc=None)
        result = engine.check(Query("r", Eventually(sig("s2"))))
        assert result.outcome == REACHABLE
        assert result.engine.endswith("enumerative")

    def test_bmc_upgrades_undetermined_to_reachable(self, fsm):
        bmc = BmcContext(fsm, horizon=6, context=SymbolicContextSpec())
        engine = PortfolioEngine(narrow_db(fsm), bmc=bmc)
        result = engine.check(Query("r", Eventually(sig("s1"))))
        assert result.outcome == REACHABLE
        assert result.engine.endswith("bmc")

    def test_bmc_upgrades_undetermined_to_unreachable(self, fsm):
        bmc = BmcContext(
            fsm, horizon=6, context=SymbolicContextSpec(), complete_horizon=True
        )
        engine = PortfolioEngine(narrow_db(fsm), bmc=bmc)
        result = engine.check(Query("u", Eventually(sig("s3"))))
        assert result.outcome == UNREACHABLE

    def test_stays_undetermined_without_bmc(self, fsm):
        engine = PortfolioEngine(narrow_db(fsm), bmc=None)
        result = engine.check(Query("r", Eventually(sig("s1"))))
        assert result.outcome == UNDETERMINED

    def test_stats_recorded_once(self, fsm):
        stats = PropertyStats(label="portfolio")
        bmc = BmcContext(fsm, horizon=6, context=SymbolicContextSpec())
        engine = PortfolioEngine(narrow_db(fsm), bmc=bmc, stats=stats)
        engine.check(Query("r", Eventually(sig("s1"))))
        engine.check(Query("u", Eventually(sig("s3"))))
        assert stats.count == 2

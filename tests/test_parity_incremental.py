"""Verdict parity: incremental + COI proving vs the legacy rebuild path.

The incremental solve path (assumption-based property swapping on one
growing proof context per design, cone-of-influence slicing before
bit-blasting) is an optimization, never a semantics change.  This suite
is the gate that makes that claim testable, across every design in
``tests/fuzz_corpus/`` plus the xlen=4 core:

* **Leg A -- incremental, no COI** (`InductionPool(coi=False)` vs
  :func:`prove_unreachable_kinduction` without a pool): the formulas are
  logically identical, so verdicts AND detail strings must match
  exactly.  The single tolerated divergence is a legacy UNDETERMINED
  whose detail names a conflict-budget exhaustion -- a resource fact,
  not a design fact -- which learned-clause reuse may legitimately
  resolve to a definite verdict ("UNDETERMINED may only shrink").

* **Leg B -- incremental + COI**: slicing drops out-of-cone registers,
  so the step case's simple-path constraint quantifies over a smaller
  state vector -- a *stronger* constraint.  Any model of the sliced step
  formula extends to a model of the full one (the dropped logic is
  unconstrained), so full-step-UNSAT implies sliced-step-UNSAT and never
  the reverse: COI may strengthen a step-SAT UNDETERMINED into
  UNREACHABLE, and that is the only extra divergence Leg B admits.

REACHABLE witnesses are not compared bit-for-bit -- model choice is
solver-state dependent and both paths may pick different satisfying
assignments -- but every witness must actually exhibit the bad event,
which is what a witness means.

The mutation tests at the bottom close the loop: they break the
clause-retraction polarity and the COI sequential-frontier computation
through test-only hooks and assert this suite's own parity rules catch
each mutant.
"""

import glob
import os

import pytest

from repro.core import Rtl2MuPath, Rtl2MuPathConfig
from repro.designs import ContextFamilyConfig, CoreContextProvider, build_core
from repro.engine import EngineConfig, JobScheduler
from repro.fuzz.campaign import load_reproducer
from repro.fuzz.gen import build_design
from repro.fuzz.metamorphic import canonical_mupaths
from repro.mc import (
    REACHABLE,
    UNDETERMINED,
    UNREACHABLE,
    BmcContext,
    prove_unreachable_kinduction,
)
from repro.mc.incremental import InductionPool
from repro.props import Eventually, Query, sig
from repro.rtl import Module, elaborate
from repro.solver.sat import SatSolver

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

#: legacy UNDETERMINED details that name a resource limit, not a design
#: fact; only these may "shrink" to a definite verdict incrementally
BUDGET_DETAILS = (
    "base case budget exhausted",
    "induction step budget exhausted",
)

STEP_SAT_DETAIL = "induction step SAT (k too small or property not inductive)"


def _corpus_designs():
    designs = []
    for path in CORPUS:
        design = build_design(load_reproducer(path))
        if not design.netlist.registers:
            continue  # induction over a combinational design is vacuous
        designs.append((os.path.basename(path), design))
    assert designs, "fuzz corpus missing or empty"
    return designs


_DESIGNS = _corpus_designs()


def _check_witness(result, probe):
    """A REACHABLE verdict's witness must exhibit the bad event."""
    if result.outcome != REACHABLE or probe is None:
        return
    assert result.witness, "REACHABLE without a witness"
    assert any(frame.get(probe) for frame in result.witness), (
        "witness never raises %r" % probe
    )


def assert_exact_parity(name, legacy, incr, probe=None):
    """Leg A rule: see module docstring."""
    _check_witness(legacy, probe)
    _check_witness(incr, probe)
    if legacy.outcome == UNDETERMINED and legacy.detail in BUDGET_DETAILS:
        # may shrink to a definite verdict, never to a different limbo
        assert incr.outcome in (REACHABLE, UNREACHABLE, UNDETERMINED), name
        return
    assert incr.outcome == legacy.outcome, (
        "%s: verdict drifted %s -> %s (%s -> %s)"
        % (name, legacy.outcome, incr.outcome, legacy.detail, incr.detail)
    )
    assert incr.detail == legacy.detail, (
        "%s: detail drifted %r -> %r" % (name, legacy.detail, incr.detail)
    )


def assert_coi_parity(name, legacy, incr, probe=None):
    """Leg B rule: Leg A plus the sound step-SAT -> UNREACHABLE upgrade."""
    _check_witness(legacy, probe)
    _check_witness(incr, probe)
    if legacy.outcome == UNDETERMINED and legacy.detail in BUDGET_DETAILS:
        assert incr.outcome in (REACHABLE, UNREACHABLE, UNDETERMINED), name
        return
    if legacy.outcome == UNDETERMINED and legacy.detail == STEP_SAT_DETAIL:
        assert incr.outcome in (UNDETERMINED, UNREACHABLE), (
            "%s: step-SAT may only stay UNDETERMINED or strengthen to "
            "UNREACHABLE, got %s (%s)" % (name, incr.outcome, incr.detail)
        )
        return
    assert incr.outcome == legacy.outcome, (
        "%s: verdict drifted %s -> %s (%s -> %s)"
        % (name, legacy.outcome, incr.outcome, legacy.detail, incr.detail)
    )


# ------------------------------------------------------------- fuzz corpus
class TestCorpusParity:
    """Every corpus design, every probe, both legs, two depths."""

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("name,design", _DESIGNS, ids=[n for n, _ in _DESIGNS])
    def test_no_coi_parity(self, name, design, k):
        pool = InductionPool(coi=False)
        for probe in design.probe_names:
            legacy = prove_unreachable_kinduction(design.netlist, sig(probe), k=k)
            incr = prove_unreachable_kinduction(
                design.netlist, sig(probe), k=k, pool=pool
            )
            assert_exact_parity("%s/%s" % (name, probe), legacy, incr, probe)

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("name,design", _DESIGNS, ids=[n for n, _ in _DESIGNS])
    def test_coi_parity(self, name, design, k):
        pool = InductionPool(coi=True)
        for probe in design.probe_names:
            legacy = prove_unreachable_kinduction(design.netlist, sig(probe), k=k)
            incr = prove_unreachable_kinduction(
                design.netlist, sig(probe), k=k, pool=pool
            )
            assert_coi_parity("%s/%s" % (name, probe), legacy, incr, probe)

    @pytest.mark.parametrize("name,design", _DESIGNS, ids=[n for n, _ in _DESIGNS])
    def test_extend_k_matches_direct_build(self, name, design):
        """A context grown 2 -> 3 answers exactly like one built at 3."""
        grown = InductionPool(coi=True)
        direct = InductionPool(coi=True)
        for probe in design.probe_names:
            prove_unreachable_kinduction(
                design.netlist, sig(probe), k=2, pool=grown
            )
        for probe in design.probe_names:
            at3 = prove_unreachable_kinduction(
                design.netlist, sig(probe), k=3, pool=grown
            )
            fresh = prove_unreachable_kinduction(
                design.netlist, sig(probe), k=3, pool=direct
            )
            assert at3.outcome == fresh.outcome, "%s/%s" % (name, probe)
            assert at3.detail == fresh.detail, "%s/%s" % (name, probe)


# ------------------------------------------------------------- xlen=4 core
@pytest.fixture(scope="module")
def core():
    return build_core()


def _core_properties(design):
    """Every PL the metadata declares: named and candidate alike."""
    props = [
        ("pl_%s" % name, pl.occupied())
        for name, pl in sorted(design.metadata.pls.items())
    ]
    props += [
        ("cand_%s" % name, pl.occupied())
        for name, pl in sorted(design.metadata.candidate_pls.items())
    ]
    return props


class TestCoreParity:
    @pytest.mark.parametrize("k", [1, 2])
    def test_no_coi_parity(self, core, k):
        pool = InductionPool(coi=False)
        for name, bad in _core_properties(core):
            legacy = prove_unreachable_kinduction(core.netlist, bad, k=k)
            incr = prove_unreachable_kinduction(core.netlist, bad, k=k, pool=pool)
            assert_exact_parity(name, legacy, incr)

    @pytest.mark.parametrize("k", [1, 2])
    def test_coi_parity(self, core, k):
        pool = InductionPool(coi=True)
        for name, bad in _core_properties(core):
            legacy = prove_unreachable_kinduction(core.netlist, bad, k=k)
            incr = prove_unreachable_kinduction(core.netlist, bad, k=k, pool=pool)
            assert_coi_parity(name, legacy, incr)


# ------------------------------------------ full pipeline on the core
SYNTH_FAMILY = ContextFamilyConfig(
    horizon=30, neighbors=("DIV",), iuv_values=(0, 1), neighbor_values=(0, 1)
)


class TestCorePipelineParity:
    IUVS = ["ADD", "MUL"]

    def test_duv_pruning_and_synthesis_identical(self, core):
        """The full paper pipeline (DUV PL pruning + synthesis) under the
        incremental + COI defaults is byte-identical to the legacy path."""
        legacy_tool = Rtl2MuPath(
            core,
            CoreContextProvider(xlen=core.config.xlen, config=SYNTH_FAMILY),
            config=Rtl2MuPathConfig(incremental=False, coi=False),
        )
        incr_tool = Rtl2MuPath(
            core,
            CoreContextProvider(xlen=core.config.xlen, config=SYNTH_FAMILY),
            config=Rtl2MuPathConfig(incremental=True, coi=True),
        )
        assert legacy_tool.duv_pl_reachability(self.IUVS) == (
            incr_tool.duv_pl_reachability(self.IUVS)
        )
        legacy = legacy_tool.synthesize_all(self.IUVS)
        incremental = incr_tool.synthesize_all(self.IUVS)
        assert canonical_mupaths(legacy) == canonical_mupaths(incremental)

    def test_serial_vs_parallel_identical(self, core):
        """Incremental verdicts survive the engine's same-design batching:
        a --jobs pool run equals the serial in-process reference."""
        serial_tool = Rtl2MuPath(
            core, CoreContextProvider(xlen=core.config.xlen, config=SYNTH_FAMILY)
        )
        parallel_tool = Rtl2MuPath(
            core, CoreContextProvider(xlen=core.config.xlen, config=SYNTH_FAMILY)
        )
        serial = serial_tool.synthesize_all(
            self.IUVS, engine=JobScheduler(EngineConfig(jobs=1))
        )
        parallel = parallel_tool.synthesize_all(
            self.IUVS, engine=JobScheduler(EngineConfig(jobs=2))
        )
        assert canonical_mupaths(serial) == canonical_mupaths(parallel)


# ------------------------------------------------------------ BMC extend_to
def _bmc_design():
    """3-bit counter wrapping at 5, with named threshold probes."""
    m = Module("bmcpar")
    en = m.input("en", 1)
    ctr = m.reg("ctr", 3, reset=0)
    from repro.rtl import mux

    ctr.next = mux(ctr.q.eq(4), m.const(0, 3), ctr.q + mux(en, m.const(1, 3), m.const(0, 3)))
    m.name_signal("at3", ctr.q.eq(3))
    m.name_signal("at6", ctr.q.eq(6))
    return elaborate(m)


class TestBmcExtendParity:
    QUERIES = [
        Query("hit3", Eventually(sig("at3"))),
        Query("hit6", Eventually(sig("at6"))),
    ]

    def test_extended_context_matches_fresh(self):
        netlist = _bmc_design()
        fresh = BmcContext(netlist, horizon=6, complete_horizon=True)
        grown = BmcContext(netlist, horizon=1)
        # several properties checked *before* extension: the learned
        # clauses and assumptions from depth 1 must not taint depth 6
        for query in self.QUERIES:
            grown.check(query)
        grown.extend_to(6, complete_horizon=True)
        for query in self.QUERIES:
            a = fresh.check(query)
            b = grown.check(query)
            assert a.outcome == b.outcome, query.name
            assert a.detail == b.detail, query.name

    def test_coi_targets_match_full(self):
        netlist = _bmc_design()
        full = BmcContext(netlist, horizon=6, complete_horizon=True)
        sliced = BmcContext(
            netlist, horizon=6, complete_horizon=True,
            coi_targets=["at3", "at6"],
        )
        for query in self.QUERIES:
            a = full.check(query)
            b = sliced.check(query)
            assert a.outcome == b.outcome, query.name


# ------------------------------------------------------------ mutation tests
def _retract_sensitive_design():
    """reg x holds its value; y follows x one cycle later.

    ``bad_x`` closes at k=1 (x resets to 0 and holds), so proving it
    installs and retracts a group of guarded "good" clauses.  ``bad_y``
    is genuinely not 1-inductive (free x=1, y=0 start reaches y=1), so
    its correct Leg A verdict is the *definite* step-SAT UNDETERMINED --
    any pollution from x's retired activation group flips it.
    """
    m = Module("retractmut")
    x = m.reg("x", 1, reset=0)
    y = m.reg("y", 1, reset=0)
    x.next = x.q
    y.next = x.q
    m.name_signal("bad_x", x.q)
    m.name_signal("bad_y", y.q)
    return elaborate(m)


def _two_counter_design():
    """Two independent counters: slicing to one is a real reduction."""
    m = Module("coimut")
    a = m.reg("a", 3, reset=0)
    b = m.reg("b", 3, reset=0)
    a.next = a.q + m.const(1, 3)
    b.next = b.q + m.const(3, 3)
    m.name_signal("a_top", a.q.eq(7))
    m.name_signal("b_top", b.q.eq(7))
    return elaborate(m)


class TestMutationCoverage:
    """Break the machinery through its test hooks; assert the parity
    rules above catch each mutant (i.e. the gate is not vacuous)."""

    def _leg_a(self, netlist, probes, k=1):
        pool = InductionPool(coi=False)
        for probe in probes:
            legacy = prove_unreachable_kinduction(netlist, sig(probe), k=k)
            incr = prove_unreachable_kinduction(
                netlist, sig(probe), k=k, pool=pool
            )
            assert_exact_parity(probe, legacy, incr, probe)

    def test_wrong_polarity_retraction_caught(self, monkeypatch):
        """retract() asserting ``[act]`` instead of ``[-act]`` force-keeps
        every retired property group active; a later property on the
        shared step solver is then over-constrained into a false
        UNREACHABLE, which Leg A's exact-parity rule must flag."""
        netlist = _retract_sensitive_design()
        probes = ["bad_x", "bad_y"]  # bad_x first: its group gets retired
        self._leg_a(netlist, probes)  # sanity: unmutated passes

        def wrong_polarity(self, activation):
            if activation in self._retired_activations:
                return
            self._retired_activations.add(activation)
            self.add_clause([activation])  # MUTANT: keeps the group alive

        monkeypatch.setattr(SatSolver, "retract", wrong_polarity)
        with pytest.raises(AssertionError):
            self._leg_a(netlist, probes)

    def test_broken_register_frontier_caught(self, monkeypatch):
        """A sequential-closure mutant (register q pins stop enqueueing
        their next-state cone) must die loudly in the COI leg, not
        silently free registers."""
        from repro.rtl import coi as coi_module

        netlist = _two_counter_design()

        def run_leg_b():
            pool = InductionPool(coi=True)
            for probe in ["a_top", "b_top"]:
                legacy = prove_unreachable_kinduction(netlist, sig(probe), k=2)
                incr = prove_unreachable_kinduction(
                    netlist, sig(probe), k=2, pool=pool
                )
                assert_coi_parity(probe, legacy, incr, probe)

        run_leg_b()  # sanity: unmutated passes

        monkeypatch.setattr(
            coi_module, "_register_frontier", lambda next_node: ()
        )
        with pytest.raises(ValueError, match="COI closure broken"):
            run_leg_b()


# ----------------------------------------- solver-speed parity (preproc/share)
#: SYNTH_FAMILY with taint instrumentation, for SynthLC label parity
TAINT_SYNTH_FAMILY = ContextFamilyConfig(
    horizon=30,
    neighbors=("DIV",),
    iuv_values=(0, 1),
    neighbor_values=(0, 1),
    instrumented=True,
)


class TestSolverSpeedParity:
    """CNF preprocessing + portfolio clause sharing are speed work only.

    Same contract as the incremental/COI legs above: turning the solver
    optimizations on must never change a verdict, a uPATH set, or a
    SynthLC label.  ``assert_exact_parity`` is reused with the tuned
    path in the ``incr`` seat, so only a budget-exhaustion UNDETERMINED
    on the untuned side may be traded up to a definite verdict (the
    optimizations make the same search cheaper, never different).
    """

    @pytest.mark.parametrize("name,design", _DESIGNS, ids=[n for n, _ in _DESIGNS])
    def test_corpus_preprocess_and_sharing_parity(self, name, design):
        plain = InductionPool(coi=True, preprocess=False)
        tuned = InductionPool(
            coi=True, preprocess=True, share_namespace="parity:%s" % name
        )
        for probe in design.probe_names:
            off = prove_unreachable_kinduction(
                design.netlist, sig(probe), k=2, pool=plain
            )
            on = prove_unreachable_kinduction(
                design.netlist, sig(probe), k=2, pool=tuned
            )
            assert_exact_parity("%s/%s" % (name, probe), off, on, probe)

    def test_core_pipeline_mupaths_identical(self, core):
        """xlen=8 core, full pipeline: uPATH sets are byte-identical with
        preprocessing + clause sharing on vs off, serial vs --jobs 2."""
        def tool(config=None):
            return Rtl2MuPath(
                core,
                CoreContextProvider(xlen=core.config.xlen, config=SYNTH_FAMILY),
                config=config,
            )

        iuvs = ["ADD", "MUL"]
        on = tool().synthesize_all(iuvs)  # defaults: both optimizations on
        off = tool(
            Rtl2MuPathConfig(preprocess=False, clause_sharing=False)
        ).synthesize_all(iuvs)
        assert canonical_mupaths(on) == canonical_mupaths(off)
        jobs2 = tool().synthesize_all(
            iuvs, engine=JobScheduler(EngineConfig(jobs=2, clause_sharing=True))
        )
        assert canonical_mupaths(on) == canonical_mupaths(jobs2)
        jobs2_off = tool(
            Rtl2MuPathConfig(preprocess=False, clause_sharing=False)
        ).synthesize_all(
            iuvs, engine=JobScheduler(EngineConfig(jobs=2, clause_sharing=False))
        )
        assert canonical_mupaths(on) == canonical_mupaths(jobs2_off)

    def test_synthlc_labels_identical(self, core):
        """Transmitter labels and signature names survive the solver flags
        (and the classify fan-out across a --jobs 2 scheduler)."""
        from repro.core.synthlc import SynthLC

        synth_provider = CoreContextProvider(
            xlen=core.config.xlen, config=SYNTH_FAMILY
        )
        mp_on = Rtl2MuPath(core, synth_provider).synthesize("DIVU")
        mp_off = Rtl2MuPath(
            core,
            CoreContextProvider(xlen=core.config.xlen, config=SYNTH_FAMILY),
            config=Rtl2MuPathConfig(preprocess=False, clause_sharing=False),
        ).synthesize("DIVU")
        classifier = SynthLC(
            core,
            CoreContextProvider(xlen=core.config.xlen, config=TAINT_SYNTH_FAMILY),
        )
        labels = []
        for result, engine in (
            (mp_on, None),
            (mp_off, JobScheduler(EngineConfig(jobs=2))),
        ):
            out = classifier.classify(
                {"DIVU": result}, transmitters=["DIVU", "SW"], engine=engine
            )
            labels.append(
                (
                    {k: sorted(v) for k, v in out.transmitters.items()},
                    sorted(s.name for s in out.signatures),
                )
            )
        assert labels[0] == labels[1]

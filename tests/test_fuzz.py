"""repro.fuzz subsystem tests: generator, oracle, shrinker, campaign.

The injected-mutation tests monkeypatch ``repro.sim.simulator.compile_netlist``
so every *newly constructed* Simulator (the oracle builds fresh ones per
check) sees a corrupted step function, while the independent RefModel and
the bit-blaster keep computing the true semantics -- exactly the failure
the differential oracle exists to catch.
"""

import glob
import json
import os
import random

import pytest

import repro.sim.simulator as simulator_mod
from repro.fuzz import (
    GenProfile,
    OracleConfig,
    build_design,
    check_design,
    sample_spec,
    shrink_spec,
    spec_from_json,
    spec_to_json,
)
from repro.fuzz.campaign import (
    CampaignConfig,
    focused_predicate,
    load_reproducer,
    run_campaign,
)
from repro.fuzz.metamorphic import TRANSFORMS
from repro.sim.simulator import Simulator

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")

_real_compile = simulator_mod.compile_netlist


def _corrupting_compile(netlist):
    """Like compile_netlist, but the first observable's bit 0 is flipped."""
    step, names = _real_compile(netlist)

    def bad_step(state, inputs):
        next_state, obs = step(state, inputs)
        if obs:
            obs = (obs[0] ^ 1,) + obs[1:]
        return next_state, obs

    return bad_step, names


@pytest.fixture
def broken_simulator(monkeypatch):
    monkeypatch.setattr(simulator_mod, "compile_netlist", _corrupting_compile)


class TestGenerator:
    def test_sampling_is_deterministic(self):
        for seed in range(20):
            a = sample_spec(seed)
            b = sample_spec(seed)
            assert spec_to_json(a) == spec_to_json(b)
            assert repr(build_design(a).netlist) == repr(build_design(b).netlist)

    def test_specs_round_trip_through_json(self):
        for seed in range(20):
            spec = sample_spec(seed)
            again = spec_from_json(spec_to_json(spec))
            assert again == spec
            assert repr(build_design(again).netlist) == \
                repr(build_design(spec).netlist)

    def test_profile_bounds_are_respected(self):
        profile = GenProfile(min_width=2, max_width=4, max_inputs=2,
                             max_regs=2, min_ops=3, max_ops=6)
        for seed in range(30):
            spec = sample_spec(seed, profile)
            spec.validate()
            assert 2 <= spec.width <= 4
            assert len(spec.inputs) <= 2
            assert len(spec.registers) <= 2
            # the FSM pattern may append up to 4 helper ops past max_ops
            assert 3 <= len(spec.ops) <= 6 + 4

    def test_reference_model_matches_compiled_simulator(self):
        rng = random.Random(7)
        for seed in range(12):
            design = build_design(sample_spec(seed))
            sim = Simulator(design.netlist)
            ref = design.ref()
            sim.reset()
            ref.reset()
            for _ in range(12):
                cycle = {
                    inp.name: rng.choice(inp.alphabet)
                    for inp in design.spec.inputs if inp.tied is None
                }
                assert sim.step(cycle) == ref.step(cycle)


class TestOracle:
    def test_clean_designs_produce_no_disagreements(self):
        for seed in range(8):
            report = check_design(build_design(sample_spec(seed)))
            assert report.ok, report.disagreements

    def test_undetermined_is_recorded_but_never_a_disagreement(self):
        # seed 32's k-induction punts (UNDETERMINED) while the bounded
        # engines answer definitely; the lattice bottom must not count
        # as a contradiction
        report = check_design(build_design(sample_spec(32)))
        assert report.undetermined >= 1
        assert report.ok

    def test_oracle_catches_injected_simulator_mutation(self, broken_simulator):
        report = check_design(build_design(sample_spec(2)))
        assert not report.ok
        assert report.disagreements[0].kind == "ref-sim"

    def test_focused_config_restricts_check_kinds(self):
        config = OracleConfig().only("ref")
        assert config.check_kinds == ("ref",)
        report = check_design(build_design(sample_spec(0)), config)
        assert report.ok
        assert not report.verdicts  # engine families never ran


class TestShrink:
    def test_shrunk_reproducer_still_fails_and_is_no_larger(
            self, broken_simulator):
        spec = sample_spec(2)
        design = build_design(spec)
        report = check_design(design)
        assert not report.ok
        predicate = focused_predicate(report.disagreements[0], OracleConfig())
        shrunk = shrink_spec(spec, predicate, max_evals=200)
        shrunk.validate()
        assert predicate(shrunk), "shrunk spec no longer reproduces"
        assert build_design(shrunk).num_cells <= design.num_cells

    def test_shrink_is_identity_on_unshrinkable_failures(self):
        spec = sample_spec(0)
        shrunk = shrink_spec(spec, lambda candidate: False, max_evals=50)
        assert shrunk == spec


class TestCampaign:
    def test_clean_campaign_writes_nothing(self, tmp_path):
        config = CampaignConfig(seed=0, budget_seconds=30.0, max_designs=3,
                                out_dir=str(tmp_path / "out"))
        result = run_campaign(config)
        assert result.ok
        assert result.designs == 3
        assert not result.reproducers
        assert not (tmp_path / "out").exists()

    def test_campaign_shrinks_and_persists_disagreements(
            self, tmp_path, broken_simulator):
        out = tmp_path / "out"
        config = CampaignConfig(seed=0, budget_seconds=60.0, max_designs=2,
                                out_dir=str(out), shrink_budget_seconds=10.0)
        result = run_campaign(config)
        assert not result.ok
        assert result.reproducers
        assert "DISAGREEMENTS" in result.summary()
        for path in result.reproducers:
            payload = json.loads(open(path).read())
            assert payload["version"] == 1
            assert payload["disagreement"]["kind"] == "ref-sim"
            spec = load_reproducer(path)
            spec.validate()
            build_design(spec)


class TestMetamorphicRandomDesigns:
    def test_transforms_preserve_named_signal_semantics(self):
        rng = random.Random(21)
        for seed in (3, 7, 11):
            design = build_design(sample_spec(seed))
            cycles = [
                {
                    inp.name: rng.choice(inp.alphabet)
                    for inp in design.spec.inputs if inp.tied is None
                }
                for _ in range(8)
            ]
            base = Simulator(design.netlist)
            base.reset()
            baseline = [base.step(cycle) for cycle in cycles]
            for name, transform in sorted(TRANSFORMS.items()):
                variant = Simulator(transform(design.netlist, seed=seed))
                variant.reset()
                for t, cycle in enumerate(cycles):
                    got = variant.step(cycle)
                    for signal, want in baseline[t].items():
                        assert got[signal] == want, (
                            "%s diverged on %s at cycle %d for seed %d"
                            % (name, signal, t, seed))


class TestCorpusReplay:
    def test_corpus_is_seeded(self):
        files = glob.glob(os.path.join(CORPUS_DIR, "*.json"))
        assert len(files) >= 10

    @pytest.mark.parametrize("path", sorted(
        glob.glob(os.path.join(CORPUS_DIR, "*.json"))),
        ids=lambda p: os.path.splitext(os.path.basename(p))[0])
    def test_corpus_design_replays_clean(self, path):
        spec = load_reproducer(path)
        spec.validate()
        report = check_design(build_design(spec))
        assert report.ok, report.disagreements


class TestCli:
    def test_fuzz_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fuzz-out"
        rc = main(["fuzz", "--seed", "0", "--budget", "20",
                   "--max-designs", "3", "--out", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "no oracle disagreements" in captured
        summary = json.loads((out / "summary.json").read_text())
        assert summary["ok"] is True
        assert summary["designs"] == 3

    def test_fuzz_spans_and_counters_reach_profile(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "fuzz.jsonl"
        metrics = tmp_path / "metrics.prom"
        rc = main(["fuzz", "--seed", "0", "--budget", "20",
                   "--max-designs", "2", "--out", str(tmp_path / "o"),
                   "--trace", str(trace), "--metrics", str(metrics)])
        assert rc == 0
        capsys.readouterr()
        spans = {json.loads(line).get("name")
                 for line in trace.read_text().splitlines()}
        assert {"fuzz.campaign", "fuzz.design", "fuzz.oracle"} <= spans
        assert "repro_fuzz_checks_total" in metrics.read_text()

        rc = main(["profile", str(trace)])
        assert rc == 0
        assert "fuzz.oracle" in capsys.readouterr().out

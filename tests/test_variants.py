"""CVA6-OP (operand packing) and CVA6-MUL variant tests (Figs. 1 and 2)."""

import pytest

from repro.designs import isa
from repro.designs.variants import OpPackConfig, build_cva6_op, oppack_driver_factory
from repro.sim import Simulator


@pytest.fixture(scope="module")
def op_design():
    return build_cva6_op()


@pytest.fixture(scope="module")
def op_sim(op_design):
    return Simulator(op_design.netlist)


def run(design, sim, pairs, overrides, horizon=12):
    sim.reset(overrides)
    driver = oppack_driver_factory(pairs)()
    prev = None
    trace = []
    for t in range(horizon):
        prev = sim.step(driver(t, prev))
        trace.append(prev)
    return trace


def visits(design, trace, pc):
    rows = []
    for t, obs in enumerate(trace):
        seen = set()
        for name, pl in design.metadata.pls.items():
            for slot in pl.slots:
                if obs[slot.occ_signal] and obs[slot.pc_signal] == pc:
                    seen.add(name)
        if seen:
            rows.append((t, sorted(seen)))
    return rows


ADD0 = isa.encode("ADD", rd=3, rs1=1, rs2=2)
ADD1 = isa.encode("ADD", rd=6, rs1=4, rs2=5)
NARROW = {"arf_w1": 3, "arf_w2": 5, "arf_w4": 2, "arf_w5": 7}
WIDE = {"arf_w1": 3, "arf_w2": 5, "arf_w4": 0xC8, "arf_w5": 7}


class TestPacking:
    def test_packed_upath_is_fig2b(self, op_design, op_sim):
        trace = run(op_design, op_sim, [(ADD0, ADD1)], NARROW)
        rows = visits(op_design, trace, 8)  # the younger ADD
        assert [v for _, v in rows] == [
            ["IF"],
            ["ID"],
            ["issue", "scbIss"],
            ["scbCmt"],
        ]

    def test_nonpacked_upath_is_fig2c(self, op_design, op_sim):
        trace = run(op_design, op_sim, [(ADD0, ADD1)], WIDE)
        rows = visits(op_design, trace, 8)
        assert [v for _, v in rows] == [
            ["IF"],
            ["ID"],
            ["ID"],  # the paper's ID(l=2)
            ["issue", "scbIss"],
            ["scbCmt"],
        ]

    def test_latencies_4_vs_5(self, op_design, op_sim):
        packed = visits(op_design, run(op_design, op_sim, [(ADD0, ADD1)], NARROW), 8)
        nonpacked = visits(op_design, run(op_design, op_sim, [(ADD0, ADD1)], WIDE), 8)
        assert len(packed) == 4 and len(nonpacked) == 5

    def test_older_instruction_unaffected(self, op_design, op_sim):
        for overrides in (NARROW, WIDE):
            trace = run(op_design, op_sim, [(ADD0, ADD1)], overrides)
            assert len(visits(op_design, trace, 4)) == 4

    def test_different_opcodes_never_pack(self, op_design, op_sim):
        sub1 = isa.encode("SUB", rd=6, rs1=4, rs2=5)
        trace = run(op_design, op_sim, [(ADD0, sub1)], NARROW)
        assert len(visits(op_design, trace, 8)) == 5

    def test_nonpackable_class_never_packs(self, op_design, op_sim):
        slt0 = isa.encode("SLT", rd=3, rs1=1, rs2=2)
        slt1 = isa.encode("SLT", rd=6, rs1=4, rs2=5)
        trace = run(op_design, op_sim, [(slt0, slt1)], NARROW)
        assert len(visits(op_design, trace, 8)) == 5

    def test_any_wide_operand_blocks_packing(self, op_design, op_sim):
        for reg in ("arf_w1", "arf_w2", "arf_w4", "arf_w5"):
            overrides = dict(NARROW)
            overrides[reg] = 0xF0
            trace = run(op_design, op_sim, [(ADD0, ADD1)], overrides)
            assert len(visits(op_design, trace, 8)) == 5, reg

    def test_packing_disabled_variant(self):
        design = build_cva6_op(OpPackConfig(packing_enabled=False))
        sim = Simulator(design.netlist)
        trace = run(design, sim, [(ADD0, ADD1)], NARROW)
        assert len(visits(design, trace, 8)) == 5

    def test_pack_fire_signal(self, op_design, op_sim):
        trace = run(op_design, op_sim, [(ADD0, ADD1)], NARROW)
        assert any(obs["pack_fire"] for obs in trace)
        trace = run(op_design, op_sim, [(ADD0, ADD1)], WIDE)
        assert not any(obs["pack_fire"] for obs in trace)


class TestArchitecturalResults:
    def test_both_results_written(self, op_design, op_sim):
        run(op_design, op_sim, [(ADD0, ADD1)], NARROW)
        state = op_sim.state_dict()
        assert state["arf_w3"] == (3 + 5) & 0xFF
        assert state["arf_w6"] == (2 + 7) & 0xFF

    def test_results_match_packed_or_not(self, op_design, op_sim):
        run(op_design, op_sim, [(ADD0, ADD1)], WIDE)
        state = op_sim.state_dict()
        assert state["arf_w3"] == (3 + 5) & 0xFF
        assert state["arf_w6"] == (0xC8 + 7) & 0xFF

    def test_decision_example_from_paper(self, op_design, op_sim):
        """SS IV-B: d_ADD = {(ID, {issue, scbIss}), (ID, {ID})}."""
        packed = run(op_design, op_sim, [(ADD0, ADD1)], NARROW)
        nonpacked = run(op_design, op_sim, [(ADD0, ADD1)], WIDE)

        def next_after_id(trace):
            rows = visits(op_design, trace, 8)
            for (t, seen), (t2, seen2) in zip(rows, rows[1:]):
                if "ID" in seen:
                    return tuple(seen2)
            return None

        assert next_after_id(packed) == ("issue", "scbIss")
        assert next_after_id(nonpacked) == ("ID",)

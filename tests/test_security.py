"""Definition V.1 oracle tests: SC-Safe checking under R_uPATH."""

import pytest

from repro.core.security import (
    UPathReceiver,
    check_sc_safe,
    violation_explained_by_signatures,
)
from repro.core.synthlc import LeakageSignature, TransmitterTag
from repro.designs import isa


class TestReceiver:
    def test_observation_erases_instruction_identity(self, core_design):
        from repro.sim import Simulator
        from repro.designs import program_driver_factory

        receiver = UPathReceiver(core_design.metadata)
        sim = Simulator(core_design.netlist)
        sim.reset({"arf_w1": 3})
        driver = program_driver_factory(
            [("feed", (isa.encode("ADD", rd=3, rs1=1, rs2=2),))]
        )()
        prev = None
        observations = []
        for t in range(10):
            prev = sim.step(driver(t, prev))
            observations.append(receiver.observe(prev))
        # the IF slot shows up as a PL#signal entry, no PC anywhere
        assert any(any(e.startswith("IF#") for e in obs) for obs in observations)
        assert all("pc" not in e for obs in observations for e in obs)


class TestScSafe:
    def test_div_on_secret_violates(self, core_design):
        # DIV r3, r1(secret), r2: the serial divider's occupancy leaks r1
        program = [isa.encode("DIV", rd=3, rs1=1, rs2=2)]
        violation = check_sc_safe(
            core_design, program, ["arf_w1"], {"arf_w2": 3},
            secret_values=(1, 128),
        )
        assert violation is not None
        assert "divU" in violation.diverging_pls()

    def test_add_on_secret_is_safe(self, core_design):
        # an ADD's uPATH is operand-independent in isolation
        program = [isa.encode("ADD", rd=3, rs1=1, rs2=2)]
        violation = check_sc_safe(
            core_design, program, ["arf_w1"], {"arf_w2": 3},
        )
        assert violation is None

    def test_store_to_load_offset_violates(self, core_design):
        # SW with a secret base address followed by a LW: the load's stall
        # decision leaks the store's address page offset (SS IV-A)
        program = [
            isa.encode("SW", rs1=4, rs2=5),
            isa.encode("LW", rd=3, rs1=1, rs2=1),
        ]
        violation = check_sc_safe(
            core_design, program, ["arf_w4"], {"arf_w1": 0, "arf_w5": 7},
            secret_values=(0, 1),  # offsets 5&3=1 vs 6&3=2 against LW's 1
        )
        assert violation is not None
        diverged = violation.diverging_pls()
        assert diverged & {"LSQ", "ldStall", "ldFin", "comSTB", "memRq"}

    def test_branch_on_secret_comparison_violates(self, core_design):
        # BEQ r1(secret), r2: taken vs not-taken flush behaviour diverges
        program = [
            isa.encode("BEQ", rs1=1, rs2=2, rd=0),
            isa.encode("ADD", rd=3, rs1=6, rs2=7),
        ]
        violation = check_sc_safe(
            core_design, program, ["arf_w1"], {"arf_w2": 1},
            secret_values=(1, 2),  # equal vs not equal
        )
        assert violation is not None

    def test_mul_is_safe_on_baseline_but_not_zero_skip(self, core_design):
        from repro.designs.variants import build_cva6_mul

        program = [isa.encode("MUL", rd=3, rs1=1, rs2=2)]
        baseline = check_sc_safe(
            core_design, program, ["arf_w1"], {"arf_w2": 3},
            secret_values=(0, 5),
        )
        assert baseline is None  # fixed-latency multiplier
        zero_skip = check_sc_safe(
            build_cva6_mul(), program, ["arf_w1"], {"arf_w2": 3},
            secret_values=(0, 5),
        )
        assert zero_skip is not None
        assert "mulU" in zero_skip.diverging_pls()

    def test_public_sweep_without_secrets_is_deterministic(self, core_design):
        program = [isa.encode("XOR", rd=3, rs1=1, rs2=2)]
        violation = check_sc_safe(core_design, program, [], {"arf_w1": 9})
        assert violation is None


class TestSignatureCompleteness:
    def test_violation_explained(self, core_design):
        program = [isa.encode("DIV", rd=3, rs1=1, rs2=2)]
        violation = check_sc_safe(
            core_design, program, ["arf_w1"], {"arf_w2": 3}, secret_values=(1, 128)
        )
        signature = LeakageSignature(
            transponder="DIV",
            src="divU",
            destinations=(frozenset({"divU"}), frozenset({"scbFin"})),
            inputs=(TransmitterTag("DIV", "intrinsic", "rs1"),),
        )
        assert violation_explained_by_signatures(violation, [signature])

    def test_unrelated_signature_does_not_explain(self, core_design):
        program = [isa.encode("DIV", rd=3, rs1=1, rs2=2)]
        violation = check_sc_safe(
            core_design, program, ["arf_w1"], {"arf_w2": 3}, secret_values=(1, 128)
        )
        signature = LeakageSignature(
            transponder="LW",
            src="LSQ",
            destinations=(frozenset({"LSQ"}),),
            inputs=(),
        )
        assert not violation_explained_by_signatures(violation, [signature])

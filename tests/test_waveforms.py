"""Witness-export tests."""

import pytest

from repro.mc.outcomes import CheckResult
from repro.report import witness_pl_timeline, witness_to_vcd
from repro.core.pl import DesignMetadata, MicroFsm, PerformingLocation, PlSlot


@pytest.fixture
def reachable_result():
    witness = [
        {"pl_IF_occ": 1, "pl_IF_pc": 4, "pl_ID_occ": 0, "pl_ID_pc": 0},
        {"pl_IF_occ": 0, "pl_IF_pc": 4, "pl_ID_occ": 1, "pl_ID_pc": 4},
    ]
    return CheckResult("q", "reachable", "bmc", witness=witness)


@pytest.fixture
def metadata():
    return DesignMetadata(
        design_name="toy",
        pls={
            "IF": PerformingLocation("IF", (PlSlot("pl_IF_occ", "pl_IF_pc"),)),
            "ID": PerformingLocation("ID", (PlSlot("pl_ID_occ", "pl_ID_pc"),)),
        },
        ufsms=(MicroFsm("u", "pc", ("v",)),),
        ifr_signal="IFR",
        commit_signal="c",
        commit_pc_signal="cp",
        operand_registers=(),
        arf_registers=(),
        amem_registers=(),
    )


class TestVcdExport:
    def test_full_export(self, reachable_result):
        vcd = witness_to_vcd(reachable_result)
        assert "$enddefinitions" in vcd
        assert "pl_IF_occ" in vcd

    def test_signal_restriction(self, reachable_result):
        vcd = witness_to_vcd(reachable_result, signals=["pl_IF_occ"])
        assert "pl_IF_occ" in vcd and "pl_ID_occ" not in vcd

    def test_unreachable_rejected(self):
        result = CheckResult("q", "unreachable", "bmc")
        with pytest.raises(ValueError):
            witness_to_vcd(result)


class TestTimeline:
    def test_timeline(self, reachable_result, metadata):
        lines = witness_pl_timeline(reachable_result, metadata, iuv_pc=4)
        assert lines == ["cycle  0: IF", "cycle  1: ID"]

    def test_other_pc_empty(self, reachable_result, metadata):
        assert witness_pl_timeline(reachable_result, metadata, iuv_pc=8) == []

    def test_end_to_end_with_bmc(self, core_design):
        """A real BMC witness renders to VCD and a PL timeline."""
        from repro.designs import isa, slot_pc
        from repro.mc import BmcContext, SymbolicContextSpec
        from repro.props import Eventually, Query
        from repro.designs.core import CoreConfig, build_core

        small = build_core(CoreConfig(xlen=4))
        word = isa.encode("ADD", rd=3, rs1=1, rs2=2)

        def drive(builder, t):
            return {
                "in_valid": 1 if t == 0 else 0,
                "in_instr": word if t == 0 else 0,
                "taint_pc": 0, "taint_rs1": 0, "taint_rs2": 0,
            }

        bmc = BmcContext(
            small.netlist, horizon=9,
            context=SymbolicContextSpec(drive=drive),
        )
        pl = small.metadata.pl("scbCmt")
        result = bmc.check(Query("c", Eventually(pl.visited_by(slot_pc(0)))))
        assert result.reachable
        timeline = witness_pl_timeline(result, small.metadata, slot_pc(0))
        assert any("scbCmt" in line for line in timeline)
        vcd = witness_to_vcd(result, signals=["pl_IF_occ", "commit_fire"])
        assert "commit_fire" in vcd

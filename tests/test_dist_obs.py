"""Fleet-wide observability: cross-node traces, metrics, dashboard.

What this suite pins:

* **span parity by construction** -- a broker + two inline worker nodes
  produce a merged trace whose span-name multiset equals the in-process
  ``--jobs 2`` reference, validates structurally (every worker span
  re-rooted under the campaign's ``engine.run`` span), and attributes
  every second of checker time to a ``node_id``;
* **reconciliation survives node death** -- a campaign that loses a
  worker mid-flight (deterministic ``kill_worker`` fault, the inline
  twin of SIGKILL) still yields a trace whose span multiset matches a
  fault-free reference and passes ``repro profile --check``;
* **fleet metrics merge idempotently** -- a worker's pushed snapshot
  replaces its previous one, so reconnects under the same ``node_id``
  never double-count, and the broker's Prometheus endpoint serves both
  its own gauges and per-node ``fleet_*`` series;
* **the dashboard** -- ``repro top --once --json`` emits one
  machine-readable sample with derived rates/ETA, and the rendered
  screen carries the per-node table;
* **provenance everywhere** -- reports carry ``node_id`` across the
  wire, the run manifest accounts jobs/properties/checker-seconds per
  node, and shared proof-cache entries remember which node proved them
  (``cache-info --json``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import time
import urllib.request
from collections import Counter

import pytest

from tests.test_dist import (
    INSTRS,
    TINY_FAMILY,
    BrokerHarness,
    WorkerHarness,
    wait_for,
)

from repro import obs
from repro.cli import main as cli_main
from repro.core import Rtl2MuPath
from repro.designs import CoreContextProvider, build_core
from repro.dist import DistScheduler
from repro.dist.protocol import (
    register_job_type,
    report_from_wire,
    report_to_wire,
)
from repro.dist.top import derive, fetch_fleet, render_fleet
from repro.engine import EngineConfig, JobScheduler, ProofCache
from repro.engine.scheduler import WorkerReport
from repro.faults import FaultPlan, FaultSpec
from repro.mc.outcomes import UNREACHABLE, CheckResult
from repro.mc.stats import PropertyStats
from repro.obs import FleetRegistry, TraceProfile, start_metrics_server
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanCollector, Tracer, TraceContext, brand_spans


def fleet_sample(harness):
    """The broker's fleet frame, fetched on its own event loop."""

    async def _snap():
        return harness.broker.fleet_dict()

    return asyncio.run_coroutine_threadsafe(_snap(), harness.loop).result(15)


@register_job_type
@dataclasses.dataclass(frozen=True)
class ObsJob:
    """An EchoJob twin that accounts its properties on the active span,
    so checker-time reconciliation is non-trivial for it."""

    name: str
    group: str = "obs"
    seconds: float = 0.002

    @property
    def job_id(self):
        return "obs:%s" % self.name

    def group_key(self):
        return "grp:%s" % self.group

    def execute(self):
        from repro.faults import injection_point

        injection_point("job.execute", job=self.job_id)
        result = CheckResult(
            query_name="q_%s" % self.name,
            outcome=UNREACHABLE,
            engine="echo",
            time_seconds=self.seconds,
        )
        obs.note_property(result.outcome, result.time_seconds)
        return "value:%s" % self.name, [result]

    def escalated(self, attempt, factor):
        return self

    def cache_key(self):
        return hashlib.sha256(self.job_id.encode("utf-8")).hexdigest()

    @staticmethod
    def encode_value(value):
        return value

    @staticmethod
    def decode_value(payload):
        return payload

    @staticmethod
    def value_is_final(value):
        return True


def make_tool():
    design = build_core()
    provider = CoreContextProvider(
        xlen=design.config.xlen, config=TINY_FAMILY
    )
    return Rtl2MuPath(design, provider)


# ------------------------------------------------------- traced fleet campaign
@pytest.fixture(scope="module")
def traced_fleet(tmp_path_factory):
    """One traced synthesis campaign over a 2-node fleet, plus the
    in-process ``--jobs 2`` reference trace it must match."""
    base = tmp_path_factory.mktemp("fleet-traces")
    ref_trace = str(base / "ref.jsonl")
    dist_trace = str(base / "dist.jsonl")

    ref_tool = make_tool()
    ref_engine = JobScheduler(EngineConfig(jobs=2, trace_path=ref_trace))
    ref_tool.synthesize_all(INSTRS, engine=ref_engine)

    dist_tool = make_tool()
    with BrokerHarness() as harness:
        WorkerHarness(harness.port, "n1").start()
        WorkerHarness(harness.port, "n2").start()
        wait_for(
            lambda: len(harness.stats()["nodes"]) == 2,
            message="both nodes registered",
        )
        engine = DistScheduler(
            EngineConfig(jobs=2, trace_path=dist_trace),
            broker=harness.address(),
        )
        try:
            dist_tool.synthesize_all(INSTRS, engine=engine)
        finally:
            engine.close()
        wait_for(
            lambda: fleet_sample(harness)["metrics"],
            message="at least one metrics push",
        )
        sample = fleet_sample(harness)
    return {
        "ref_trace": ref_trace,
        "dist_trace": dist_trace,
        "ref_tool": ref_tool,
        "dist_tool": dist_tool,
        "engine": engine,
        "fleet": sample,
    }


class TestFleetTraceParity:
    def test_merged_trace_validates(self, traced_fleet):
        profile = TraceProfile.load(traced_fleet["dist_trace"])
        assert profile.ok, profile.errors

    def test_span_set_matches_jobs2(self, traced_fleet):
        ref = TraceProfile.load(traced_fleet["ref_trace"])
        dist = TraceProfile.load(traced_fleet["dist_trace"])
        assert Counter(r.name for r in ref.spans) == Counter(
            r.name for r in dist.spans
        )

    def test_worker_spans_reroot_under_run_span(self, traced_fleet):
        profile = TraceProfile.load(traced_fleet["dist_trace"])
        by_name = {}
        for record in profile.spans:
            by_name.setdefault(record.name, []).append(record)
        (run_span,) = by_name["engine.run"]
        assert run_span.parent_id is None
        for attempt in by_name["job.attempt"]:
            assert attempt.parent_id == run_span.span_id
            assert attempt.attrs.get("node_id") in ("n1", "n2")
            assert attempt.attrs.get("job_id")

    def test_is_distributed_and_fully_attributed(self, traced_fleet):
        dist = TraceProfile.load(traced_fleet["dist_trace"])
        ref = TraceProfile.load(traced_fleet["ref_trace"])
        assert dist.is_distributed
        assert not ref.is_distributed
        assert dist.unattributed_check_seconds() == 0.0
        by_node = dist.per_node()
        worker_nodes = set(by_node) - {"local"}
        assert worker_nodes and worker_nodes <= {"n1", "n2"}
        # every second of checker time sits in a worker bucket
        total = sum(b["check_seconds"] for b in by_node.values())
        assert total == pytest.approx(dist.checked_seconds())
        assert by_node.get("local", {}).get("check_seconds", 0.0) == 0.0

    def test_checker_time_reconciles_fleet_wide(self, traced_fleet):
        dist = TraceProfile.load(traced_fleet["dist_trace"])
        assert dist.reconciles_total_time(
            traced_fleet["dist_tool"].stats.total_time
        )

    def test_job_events_tagged_with_node(self, traced_fleet):
        events = [
            json.loads(line)
            for line in open(traced_fleet["dist_trace"], encoding="utf-8")
        ]
        finishes = [e for e in events if e["event"] == "job_finish"]
        assert finishes
        assert all(e.get("node") in ("n1", "n2") for e in finishes)
        # the local reference run stays untagged
        ref_events = [
            json.loads(line)
            for line in open(traced_fleet["ref_trace"], encoding="utf-8")
        ]
        assert all(
            "node" not in e
            for e in ref_events
            if e["event"] == "job_finish"
        )

    def test_manifest_accounts_per_node(self, traced_fleet):
        manifest = traced_fleet["engine"].last_manifest
        assert manifest is not None
        nodes = manifest.to_dict()["nodes"]
        assert nodes and set(nodes) <= {"n1", "n2"}
        assert (
            sum(b["jobs"] for b in nodes.values())
            == manifest.jobs_executed
        )
        assert (
            sum(b["properties"] for b in nodes.values())
            == manifest.properties_evaluated
        )

    def test_profile_check_cli_passes(self, traced_fleet, capsys):
        assert cli_main(["profile", traced_fleet["dist_trace"], "--check"]) == 0
        out = capsys.readouterr().out
        assert "per-node (fleet trace):" in out
        assert "fleet attribution" in out and "-> ok" in out

    def test_profile_check_fails_on_stripped_attribution(
        self, traced_fleet, tmp_path, capsys
    ):
        # simulate worker spans that lost their node stamp on the wire
        tampered = tmp_path / "tampered.jsonl"
        with open(traced_fleet["dist_trace"], encoding="utf-8") as src, open(
            tampered, "w", encoding="utf-8"
        ) as dst:
            for line in src:
                event = json.loads(line)
                if isinstance(event.get("attrs"), dict):
                    event["attrs"].pop("node_id", None)
                dst.write(json.dumps(event) + "\n")
        assert cli_main(["profile", str(tampered), "--check"]) == 1
        assert "fleet attribution" in capsys.readouterr().out


# --------------------------------------------------------------- fleet metrics
class TestFleetMetrics:
    def test_snapshot_merge_is_idempotent(self):
        local = MetricsRegistry()
        node = MetricsRegistry()
        node.counter("repro_x_total", "x").inc(7)
        fleet = FleetRegistry(local=local)
        snapshot = node.fleet_snapshot()
        for _ in range(3):  # reconnect / re-push storm
            fleet.update("w1", snapshot, {"rss_mb": 5.0, "jobs_done": 7})
        assert fleet.merged_totals() == {"repro_x_total": 7.0}
        assert set(fleet.nodes()) == {"w1"}
        fleet.update("w2", snapshot, None)
        assert fleet.merged_totals() == {"repro_x_total": 14.0}
        fleet.forget("w2")
        assert fleet.merged_totals() == {"repro_x_total": 7.0}

    def test_exposition_carries_local_and_per_node_series(self):
        local = MetricsRegistry()
        local.gauge("repro_dist_queue_depth_priority", "queued").set(
            3, priority="0"
        )
        node = MetricsRegistry()
        node.counter("repro_dist_node_jobs_total", "jobs").inc(2)
        fleet = FleetRegistry(local=local)
        fleet.update("w1", node.fleet_snapshot(), {"rss_mb": 8.5})
        text = fleet.to_prometheus()
        assert 'repro_dist_queue_depth_priority{priority="0"} 3' in text
        assert 'fleet_repro_dist_node_jobs_total{node="w1"} 2' in text
        assert 'fleet_node_rss_mb{node="w1"} 8.5' in text
        assert 'fleet_node_last_push_ts{node="w1"}' in text

    def test_http_scrape_of_fleet_registry(self, traced_fleet):
        # traced_fleet already ran a campaign; here we only need any
        # FleetRegistry to serve over HTTP, so build one
        local = MetricsRegistry()
        local.counter("repro_dist_jobs_total", "jobs").inc(4)
        fleet = FleetRegistry(local=local)
        fleet.update("w9", {}, {"jobs_done": 4})
        server = start_metrics_server(0, registry=fleet)
        try:
            port = server.server_address[1]
            body = urllib.request.urlopen(
                "http://127.0.0.1:%d/metrics" % port, timeout=10
            ).read().decode("utf-8")
        finally:
            server.shutdown()
        assert "repro_dist_jobs_total 4" in body
        assert 'fleet_node_jobs_done{node="w9"} 4' in body

    def test_campaign_pushes_node_snapshots_to_broker(self, traced_fleet):
        sample = traced_fleet["fleet"]
        assert set(sample["metrics"]) <= {"n1", "n2"}
        assert sample["metrics"], "no node pushed a snapshot"
        for node_id, push in sample["metrics"].items():
            assert push["process"]["slots"] >= 1
            jobs = push["snapshot"].get("repro_dist_node_jobs_total")
            assert jobs is None or jobs["kind"] == "counter"
        totals = sample["fleet_totals"]
        assert totals.get("repro_dist_node_jobs_total", 0) >= 1
        events = [e["event"] for e in sample["events"]]
        assert events.count("node_joined") == 2

    def test_broker_gauges_registered(self, traced_fleet):
        from repro.obs import get_registry

        text = get_registry().to_prometheus()
        assert "repro_dist_queue_depth_priority" in text
        assert "repro_dist_inflight" in text
        assert "repro_dist_quarantine_size" in text
        assert "repro_dist_write_behind_backlog" in text


# ------------------------------------------------------------------- dashboard
class TestTopDashboard:
    def test_once_json_and_render(self, tmp_path, capsys):
        jobs = [ObsJob(name="t%d" % i, group="g%d" % (i % 2))
                for i in range(6)]
        with BrokerHarness() as harness:
            WorkerHarness(harness.port, "t1").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 1,
                message="node registered",
            )
            engine = DistScheduler(
                EngineConfig(jobs=2), broker=harness.address()
            )
            try:
                outcome = engine.run(jobs)
            finally:
                engine.close()
            wait_for(
                lambda: fleet_sample(harness)["metrics"],
                message="metrics push",
            )
            assert cli_main(
                ["top", "--broker", harness.address(), "--once", "--json"]
            ) == 0
            payload = json.loads(capsys.readouterr().out)
            sample = fetch_fleet(harness.address())
        assert all(outcome[j.job_id] == "value:" + j.name for j in jobs)
        assert payload["stats"]["counts"]["completed"] == len(jobs)
        derived = payload["derived"]
        assert derived["remaining_jobs"] == 0
        assert "t1" in derived["node_rates"]
        screen = render_fleet(sample, derive(sample), harness.address())
        assert "repro top -- broker" in screen
        assert "t1" in screen
        assert "%d submitted" % len(jobs) in screen
        assert "node_joined" in screen

    def test_unreachable_broker_exits_nonzero(self, capsys):
        assert cli_main(
            ["top", "--broker", "127.0.0.1:1", "--once"]
        ) == 1
        assert "cannot reach broker" in capsys.readouterr().out

    def test_derive_rates_from_consecutive_samples(self):
        prev = {
            "ts": 100.0,
            "uptime_seconds": 10.0,
            "stats": {"counts": {"completed": 10, "submitted": 40},
                      "nodes": {"a": {"completed": 10}}},
        }
        now = {
            "ts": 110.0,
            "uptime_seconds": 20.0,
            "stats": {
                "counts": {"completed": 30, "submitted": 40,
                           "cache_gets": 10, "cache_hits": 5},
                "nodes": {"a": {"completed": 30}},
            },
        }
        derived = derive(now, prev)
        assert derived["rate_jobs_per_second"] == 2.0
        assert derived["remaining_jobs"] == 10
        assert derived["eta_seconds"] == 5.0
        assert derived["cache_hit_rate"] == 0.5
        assert derived["node_rates"] == {"a": 2.0}


# ------------------------------------------------- node death + reconciliation
class TestNodeDeathReconciliation:
    def test_killed_worker_campaign_reconciles(self, tmp_path, capsys):
        jobs = [ObsJob(name="q%d" % i, group="g%d" % (i % 2))
                for i in range(4)]

        ref_trace = str(tmp_path / "ref.jsonl")
        ref_stats = PropertyStats(label="ref")
        JobScheduler(
            EngineConfig(jobs=2, trace_path=ref_trace)
        ).run(jobs, stats=ref_stats)

        # "bad" dies at worker.job_start for obs:q0 -- the inline twin
        # of a SIGKILL mid-batch: its span collector dies with it, the
        # broker re-shards, and the re-run on "good" produces the spans
        plan = FaultPlan(
            state_dir=str(tmp_path / "faults"),
            specs=(
                FaultSpec(
                    kind="kill_worker",
                    point="worker.job_start",
                    job="obs:q0",
                    times=1,
                ),
            ),
        )
        dist_trace = str(tmp_path / "dist.jsonl")
        stats = PropertyStats(label="failover")
        with BrokerHarness(node_poison_limit=1, pipeline_depth=1) as harness:
            WorkerHarness(harness.port, "bad", fault_plan=plan).start()
            WorkerHarness(harness.port, "good").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 2,
                message="both nodes registered",
            )
            engine = DistScheduler(
                EngineConfig(jobs=2, trace_path=dist_trace),
                broker=harness.address(),
            )
            try:
                outcome = engine.run(jobs, stats=stats)
            finally:
                engine.close()
            counts = harness.counts()
        assert counts["quarantined_nodes"] == 1
        for job in jobs:
            assert outcome[job.job_id] == "value:" + job.name
        assert outcome.manifest.reconciles(stats)
        assert stats.outcome_histogram == ref_stats.outcome_histogram

        dist = TraceProfile.load(dist_trace)
        ref = TraceProfile.load(ref_trace)
        assert dist.ok, dist.errors
        # the doomed batch never reported, so its spans never entered
        # the merged trace: the span multiset matches a fault-free run
        assert Counter(r.name for r in ref.spans) == Counter(
            r.name for r in dist.spans
        )
        assert dist.unattributed_check_seconds() == 0.0
        assert dist.reconciles_total_time(stats.total_time)
        assert cli_main(["profile", dist_trace, "--check"]) == 0
        capsys.readouterr()
        # every executed job is attributed to the surviving node
        nodes = outcome.manifest.to_dict()["nodes"]
        assert sum(b["jobs"] for b in nodes.values()) == len(jobs)


# ------------------------------------------------------------------ provenance
class TestProvenance:
    def test_report_round_trips_node_id(self):
        report = WorkerReport(job_id="obs:x", node_id="w3")
        wire = report_to_wire(report, ObsJob(name="x"))
        assert wire["node"] == "w3"
        back = report_from_wire(wire, ObsJob(name="x"))
        assert back.node_id == "w3"
        # absent / junk node fields degrade to None
        wire.pop("node")
        assert report_from_wire(wire, ObsJob(name="x")).node_id is None

    def test_trace_context_wire_round_trip(self):
        assert TraceContext.capture() is None  # no active tracer
        tracer = Tracer(sink=SpanCollector())
        obs.activate(tracer)
        try:
            with tracer.span("engine.run"):
                captured = TraceContext.capture()
        finally:
            obs.deactivate(tracer)
        assert captured is not None
        assert captured.span_id.startswith(tracer.prefix + ":")
        wire = captured.to_wire()
        back = TraceContext.from_wire(wire)
        assert back is not None and back.span_id == captured.span_id
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({"trace_id": 7}) is None

    def test_brand_spans_stamps_and_reroots(self):
        collector = SpanCollector()
        tracer = Tracer(sink=collector)
        with tracer.span("job.attempt"):
            with tracer.span("phase.cover"):
                pass
        brand_spans(
            collector.records,
            attrs={"node_id": "w1", "job_id": "obs:x"},
            reparent="campaign:1",
        )
        begins = {
            f["name"]: f for k, f in collector.records if k == "span_begin"
        }
        assert begins["job.attempt"]["parent"] == "campaign:1"
        # the child keeps its real parent: only roots re-root
        assert (
            begins["phase.cover"]["parent"]
            == begins["job.attempt"]["span"]
        )
        for _kind, fields in collector.records:
            assert fields["attrs"]["node_id"] == "w1"
            assert fields["attrs"]["job_id"] == "obs:x"

    def test_shared_cache_entries_remember_their_node(
        self, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        jobs = [ObsJob(name="c%d" % i, group="g%d" % (i % 2))
                for i in range(4)]
        with BrokerHarness(cache_dir=cache_dir) as harness:
            WorkerHarness(harness.port, "pv1").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 1,
                message="node registered",
            )
            engine = DistScheduler(
                EngineConfig(jobs=2), broker=harness.address()
            )
            try:
                engine.run(jobs)
            finally:
                engine.close()
        stats = ProofCache(cache_dir).stats(per_node=True)
        assert stats["entries"] == len(jobs)
        assert stats["by_node"] == {
            "pv1": {"entries": len(jobs), "properties": len(jobs)}
        }
        assert cli_main(["cache-info", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["by_node"]["pv1"]["entries"] == len(jobs)
        # local (untagged) entries land in a "local" bucket and the
        # tagged entries still replay: checksum covers the node field
        local_cache = ProofCache(str(tmp_path / "local"))
        local_cache.put(
            ObsJob(name="solo").cache_key(), "obs:solo", "value:solo",
            [{"query_name": "q", "outcome": UNREACHABLE,
              "engine": "echo", "time_seconds": 0.001}],
        )
        local_stats = local_cache.stats(per_node=True)
        assert set(local_stats["by_node"]) == {"local"}
        hit = ProofCache(cache_dir).get(jobs[0].cache_key())
        assert hit is not None and hit["node"] == "pv1"

    def test_fleet_quickstart_documented(self):
        import os

        readme = open(
            os.path.join(os.path.dirname(__file__), "..", "README.md"),
            encoding="utf-8",
        ).read()
        assert "## Fleet observability" in readme
        assert "--metrics-port" in readme
        assert "repro top" in readme

"""SAT-based BMC on the real core: cross-engine validation.

The enumerative engine answers RTL2MuPATH's queries by exhaustive
simulation; here the SAT pipeline answers the same style of query
symbolically on the (width-reduced) core with the instruction stream
driven concretely and the architectural state symbolic -- the paper's
reset convention -- and must agree.
"""

import pytest

from repro.designs import CoreConfig, build_core, isa, slot_pc
from repro.mc import REACHABLE, UNDETERMINED, BmcContext, SymbolicContextSpec
from repro.props import Eventually, Query, Sequence


@pytest.fixture(scope="module")
def small_core():
    return build_core(CoreConfig(xlen=4))


def _drive_program(words):
    def drive(builder, t):
        inputs = {"taint_pc": 0, "taint_rs1": 0, "taint_rs2": 0}
        if t < len(words):
            inputs["in_valid"] = 1
            inputs["in_instr"] = words[t]
        else:
            inputs["in_valid"] = 0
            inputs["in_instr"] = 0
        return inputs

    return drive


@pytest.fixture(scope="module")
def div_bmc(small_core):
    # one DIV with symbolic operand registers (r1, r2 free at reset)
    word = isa.encode("DIVU", rd=3, rs1=1, rs2=2)
    spec = SymbolicContextSpec(
        symbolic_registers=("arf_w1", "arf_w2"),
        drive=_drive_program([word]),
    )
    return BmcContext(small_core.netlist, horizon=12, context=spec)


class TestDivCovers:
    def test_divu_visit_reachable(self, small_core, div_bmc):
        pl = small_core.metadata.pl("divU")
        result = div_bmc.check(Query("r", Eventually(pl.visited_by(slot_pc(0)))))
        assert result.outcome == REACHABLE

    def test_witness_is_consistent_with_simulation(self, small_core, div_bmc):
        from repro.sim import Simulator

        pl = small_core.metadata.pl("divU")
        result = div_bmc.check(Query("r", Eventually(pl.visited_by(slot_pc(0)))))
        # replay the witness's architectural state in the simulator and
        # confirm the same divU occupancy profile
        div_cycles_witness = [
            t for t, obs in enumerate(result.witness) if obs["pl_divU_occ"]
        ]
        assert div_cycles_witness

    def test_long_occupancy_reachable(self, small_core, div_bmc):
        # the divider can be occupied 4 consecutive cycles for some operand
        pl = small_core.metadata.pl("divU")
        visit = pl.visited_by(slot_pc(0))
        prop = Sequence(visit, visit)
        assert div_bmc.check(Query("c", prop)).outcome == REACHABLE

    def test_load_pls_unreachable_for_div(self, small_core, div_bmc):
        # a DIV never visits the load unit; within this bounded horizon the
        # solver proves the cover UNSAT (reported UNDETERMINED since the
        # horizon carries no completeness claim)
        pl = small_core.metadata.pl("ldFin")
        result = div_bmc.check(Query("u", Eventually(pl.visited_by(slot_pc(0)))))
        assert result.outcome == UNDETERMINED
        assert "UNSAT" in result.detail

    def test_commit_reachable(self, small_core, div_bmc):
        pl = small_core.metadata.pl("scbCmt")
        result = div_bmc.check(Query("c", Eventually(pl.visited_by(slot_pc(0)))))
        assert result.outcome == REACHABLE


class TestStoreLoadCover:
    def test_load_stall_cover_matches_enumerative(self, small_core):
        # SW then LW with symbolic base registers: the solver must find an
        # assignment creating the page-offset match (the stall uPATH) --
        # the same fact the enumerative family discovers by sweeping
        sw = isa.encode("SW", rs1=4, rs2=5)
        lw = isa.encode("LW", rd=3, rs1=1, rs2=1)
        spec = SymbolicContextSpec(
            symbolic_registers=("arf_w1", "arf_w4"),
            drive=_drive_program([sw, lw]),
        )
        bmc = BmcContext(small_core.netlist, horizon=14, context=spec)
        stall = small_core.metadata.pl("ldStall").visited_by(slot_pc(1))
        fin = small_core.metadata.pl("ldFin").visited_by(slot_pc(1))
        assert bmc.check(Query("stall", Eventually(stall))).outcome == REACHABLE
        assert bmc.check(Query("fin", Eventually(fin))).outcome == REACHABLE

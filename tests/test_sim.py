"""Simulator tests: compiled semantics, reset overrides, traces, VCD."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl import Module, elaborate, mux
from repro.sim import Simulator, Trace, trace_to_vcd

from repro.fuzz.gen import MASK, WIDTH, build_random_expr


class TestCounter:
    def _counter(self):
        m = Module("c")
        en = m.input("en", 1)
        c = m.reg("count", 4, reset=0)
        c.next = mux(en, c.q + 1, c.q)
        m.name_signal("value", c.q)
        return elaborate(m)

    def test_counts(self):
        sim = Simulator(self._counter())
        values = [sim.step({"en": 1})["value"] for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_enable_gates(self):
        sim = Simulator(self._counter())
        sim.step({"en": 1})
        sim.step({"en": 0})
        assert sim.step({"en": 0})["value"] == 1

    def test_wraps(self):
        sim = Simulator(self._counter())
        for _ in range(16):
            sim.step({"en": 1})
        assert sim.step({"en": 1})["value"] == 0

    def test_reset_restores(self):
        sim = Simulator(self._counter())
        sim.step({"en": 1})
        sim.step({"en": 1})
        sim.reset()
        assert sim.step({"en": 0})["value"] == 0
        assert sim.cycle == 1

    def test_reset_overrides(self):
        sim = Simulator(self._counter())
        sim.reset({"count": 9})
        assert sim.step({"en": 0})["value"] == 9

    def test_reset_override_unknown_register(self):
        sim = Simulator(self._counter())
        with pytest.raises(KeyError):
            sim.reset({"nope": 1})

    def test_unknown_input_rejected(self):
        sim = Simulator(self._counter())
        with pytest.raises(KeyError):
            sim.step({"bogus": 1})

    def test_missing_inputs_default_zero(self):
        sim = Simulator(self._counter())
        assert sim.step({})["value"] == 0

    def test_step_tuple_matches_step(self):
        n = self._counter()
        s1, s2 = Simulator(n), Simulator(n)
        for _ in range(4):
            obs = s1.step({"en": 1})
            row = s2.step_tuple({"en": 1})
            assert obs == dict(zip(s2.observable_names, row))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), a=st.integers(0, MASK), b=st.integers(0, MASK))
def test_random_expression_matches_reference(seed, a, b):
    m, _node, ref = build_random_expr(seed)
    sim = Simulator(elaborate(m))
    obs = sim.step({"a": a, "b": b})
    expected = ref(a, b) & MASK
    assert obs["out"] == expected
    assert obs["red_or"] == int(expected != 0)
    assert obs["red_and"] == int(expected == MASK)


class TestTraceAndVcd:
    def _make_trace(self):
        trace = Trace(["sig", "bus"])
        trace.append({"sig": 0, "bus": 3}, {})
        trace.append({"sig": 1, "bus": 3}, {})
        trace.append({"sig": 1, "bus": 7}, {})
        return trace

    def test_trace_access(self):
        trace = self._make_trace()
        assert len(trace) == 3
        assert trace.value(1, "sig") == 1
        assert trace.column("bus") == [3, 3, 7]

    def test_vcd_structure(self):
        vcd = trace_to_vcd(self._make_trace())
        assert "$enddefinitions" in vcd
        assert "$var wire" in vcd
        assert vcd.count("#") >= 3  # timestamps

    def test_vcd_only_changes_emitted(self):
        vcd = trace_to_vcd(self._make_trace())
        # bus changes at cycles 0 and 2 only: two b-value lines
        assert sum(1 for line in vcd.splitlines() if line.startswith("b")) == 2

    def test_vcd_width_override(self):
        vcd = trace_to_vcd(self._make_trace(), widths={"bus": 8})
        assert "$var wire 8" in vcd

    def test_run_records(self):
        m = Module("c")
        c = m.reg("x", 3)
        c.next = c.q + 1
        m.name_signal("x_val", c.q)
        sim = Simulator(elaborate(m))
        trace = sim.run([{}] * 4)
        assert trace.column("x_val") == [0, 1, 2, 3]


class TestRetireTimestamps:
    """Per-instruction retire accounting via Trace.retire_times."""

    @pytest.fixture(scope="class")
    def core(self):
        from repro.designs import build_core

        design = build_core()
        return design, Simulator(design.netlist)

    def _run(self, core, program):
        from repro.designs import run_program

        _, sim = core
        return run_program(sim, program, record_trace=True)

    def test_back_to_back_alu_retires_every_cycle(self, core):
        from repro.designs import isa, slot_pc

        program = [
            isa.encode("ADDI", rd=1, rs1=0, rs2=1),
            isa.encode("ADDI", rd=2, rs1=0, rs2=2),
            isa.encode("ADDI", rd=3, rs1=0, rs2=3),
        ]
        run = self._run(core, program)
        times = run.trace.retire_times()
        cycles = [times[slot_pc(slot)] for slot in range(3)]
        # independent ALU ops stream through: one commit per cycle
        assert cycles == [cycles[0], cycles[0] + 1, cycles[0] + 2]
        assert run.retire == times  # ProgramRun exposes the same map

    def test_raw_stall_delays_consumer_retire(self, core):
        from repro.designs import isa, slot_pc

        dep = [
            isa.encode("ADDI", rd=1, rs1=0, rs2=7),
            isa.encode("DIV", rd=2, rs1=1, rs2=1),  # RAW on x1
        ]
        indep = [
            isa.encode("ADDI", rd=1, rs1=0, rs2=7),
            isa.encode("DIV", rd=2, rs1=3, rs2=3),  # no dependence
        ]
        gap_dep = (lambda t: t[slot_pc(1)] - t[slot_pc(0)])(
            self._run(core, dep).trace.retire_times()
        )
        gap_indep = (lambda t: t[slot_pc(1)] - t[slot_pc(0)])(
            self._run(core, indep).trace.retire_times()
        )
        # the dependent divide waits in ID for the ADDI to commit
        assert gap_dep > gap_indep

    def test_flushed_instruction_never_retires(self, core):
        from repro.designs import isa, slot_pc

        program = [
            isa.encode("ADDI", rd=1, rs1=0, rs2=3),
            isa.encode("BEQ", rs1=0, rs2=0),  # taken: flushes younger
            isa.encode("ADDI", rd=2, rs1=0, rs2=5),
        ]
        run = self._run(core, program)
        times = run.trace.retire_times()
        assert slot_pc(0) in times
        assert slot_pc(1) in times  # the branch itself commits
        assert slot_pc(2) not in times  # the squashed ADDI never does
        assert run.arf[2] == 0

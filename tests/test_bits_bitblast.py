"""Gate-builder and bit-blaster tests: truth tables and sim equivalence."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl import Module, elaborate
from repro.sim import Simulator
from repro.solver import SAT, BitBuilder, SatSolver, blast_frame

from repro.fuzz.gen import MASK, WIDTH, build_random_expr


def fresh():
    solver = SatSolver()
    return solver, BitBuilder(solver)


def force(solver, lit, value):
    return lit if value else -lit


class TestGates:
    @pytest.mark.parametrize("av,bv", list(itertools.product([0, 1], repeat=2)))
    def test_and_truth_table(self, av, bv):
        solver, bb = fresh()
        a, b = bb.new_bit(), bb.new_bit()
        out = bb.and_(a, b)
        assert solver.solve(assumptions=[force(solver, a, av), force(solver, b, bv)]) == SAT
        got = solver.model_value(abs(out)) == (out > 0)
        assert got == bool(av and bv)

    @pytest.mark.parametrize("av,bv", list(itertools.product([0, 1], repeat=2)))
    def test_xor_truth_table(self, av, bv):
        solver, bb = fresh()
        a, b = bb.new_bit(), bb.new_bit()
        out = bb.xor_(a, b)
        assert solver.solve(assumptions=[force(solver, a, av), force(solver, b, bv)]) == SAT
        got = solver.model_value(abs(out)) == (out > 0)
        assert got == bool(av ^ bv)

    @pytest.mark.parametrize("sv,av,bv", list(itertools.product([0, 1], repeat=3)))
    def test_ite_truth_table(self, sv, av, bv):
        solver, bb = fresh()
        s, a, b = bb.new_bit(), bb.new_bit(), bb.new_bit()
        out = bb.ite(s, a, b)
        assumptions = [force(solver, s, sv), force(solver, a, av), force(solver, b, bv)]
        assert solver.solve(assumptions=assumptions) == SAT
        got = solver.model_value(abs(out)) == (out > 0)
        assert got == bool(av if sv else bv)

    def test_constant_folds(self):
        _, bb = fresh()
        x = bb.new_bit()
        assert bb.and_(x, bb.TRUE) == x
        assert bb.and_(x, bb.FALSE) == bb.FALSE
        assert bb.or_(x, bb.FALSE) == x
        assert bb.or_(x, bb.TRUE) == bb.TRUE
        assert bb.xor_(x, bb.FALSE) == x
        assert bb.xor_(x, bb.TRUE) == -x
        assert bb.and_(x, -x) == bb.FALSE
        assert bb.xor_(x, x) == bb.FALSE

    def test_structural_sharing(self):
        _, bb = fresh()
        a, b = bb.new_bit(), bb.new_bit()
        assert bb.and_(a, b) == bb.and_(b, a)
        assert bb.xor_(a, b) == bb.xor_(b, a)
        # xor polarity folds into the output literal
        assert bb.xor_(-a, b) == -bb.xor_(a, b)

    def test_ite_complement_arms(self):
        solver, bb = fresh()
        s, a = bb.new_bit(), bb.new_bit()
        out = bb.ite(s, a, -a)
        for sv, av in itertools.product([0, 1], repeat=2):
            assert solver.solve(
                assumptions=[force(solver, s, sv), force(solver, a, av)]
            ) == SAT
            got = solver.model_value(abs(out)) == (out > 0)
            assert got == bool(av if sv else 1 - av)


class TestWordOps:
    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_arith_matches_python(self, a, b):
        solver, bb = fresh()
        wa = bb.const_word(a, 8)
        wb = bb.const_word(b, 8)
        assert solver.solve() == SAT
        assert bb.word_value(bb.word_add(wa, wb)) == (a + b) & 0xFF
        assert bb.word_value(bb.word_sub(wa, wb)) == (a - b) & 0xFF
        assert bb.word_value(bb.word_mul(wa, wb)) == (a * b) & 0xFF
        assert (bb.word_eq(wa, wb) == bb.TRUE) == (a == b)
        assert (bb.word_ult(wa, wb) == bb.TRUE) == (a < b)

    def test_symbolic_eq_forces_equality(self):
        solver, bb = fresh()
        wa = bb.fresh_word(4)
        wb = bb.const_word(9, 4)
        eq = bb.word_eq(wa, wb)
        assert solver.solve(assumptions=[eq]) == SAT
        assert bb.word_value(wa) == 9

    def test_symbolic_ult_unsat_against_zero(self):
        solver, bb = fresh()
        wa = bb.fresh_word(4)
        lt = bb.word_ult(wa, bb.const_word(0, 4))
        assert solver.solve(assumptions=[lt]) == "unsat"


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), a=st.integers(0, MASK), b=st.integers(0, MASK))
def test_blast_frame_matches_simulator(seed, a, b):
    m, _node, _ref = build_random_expr(seed)
    netlist = elaborate(m)
    sim = Simulator(netlist)
    obs = sim.step({"a": a, "b": b})

    solver, bb = fresh()
    frame = blast_frame(
        bb,
        netlist,
        {},
        {"a": bb.const_word(a, WIDTH), "b": bb.const_word(b, WIDTH)},
    )
    assert solver.solve() == SAT
    assert bb.word_value(frame.named["out"]) == obs["out"]
    assert bb.word_value(frame.named["red_or"]) == obs["red_or"]
    assert bb.word_value(frame.named["red_and"]) == obs["red_and"]


def test_blast_frame_register_chaining():
    m = Module("acc")
    x = m.input("x", 4)
    r = m.reg("r", 4, reset=0)
    r.next = r.q + x
    m.name_signal("total", r.q)
    netlist = elaborate(m)

    solver, bb = fresh()
    state = {"r": bb.const_word(0, 4)}
    inputs = [3, 5, 9]
    for value in inputs:
        frame = blast_frame(bb, netlist, state, {"x": bb.const_word(value, 4)})
        state = frame.next_state
    assert solver.solve() == SAT
    assert bb.word_value(state["r"]) == sum(inputs) & 0xF


def test_frame_bit_accessor():
    m = Module("t")
    a = m.input("a", 1)
    m.name_signal("a_sig", a)
    m.name_signal("wide", m.input("b", 3))
    netlist = elaborate(m)
    solver, bb = fresh()
    frame = blast_frame(
        bb, netlist, {}, {"a": [bb.TRUE], "b": bb.const_word(5, 3)}
    )
    assert frame.bit("a_sig") == bb.TRUE
    with pytest.raises(ValueError):
        frame.bit("wide")

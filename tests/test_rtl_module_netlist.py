"""Unit tests: module builder, registers, memories, elaboration."""

import pytest

from repro.rtl import (
    Module,
    Netlist,
    WidthError,
    comb_connected,
    comb_fanin_inputs,
    comb_fanin_registers,
    connectivity_matrix,
    elaborate,
    mux,
    registers_feeding_next_state,
)
from repro.sim import Simulator


class TestRegisters:
    def test_default_next_holds(self):
        m = Module("t")
        r = m.reg("r", 4, reset=9)
        n = elaborate(m)
        sim = Simulator(n)
        assert sim.state_dict()["r"] == 9
        sim.step({})
        assert sim.state_dict()["r"] == 9

    def test_next_width_checked(self):
        m = Module("t")
        r = m.reg("r", 4)
        with pytest.raises(WidthError):
            r.next = m.input("a", 5)

    def test_next_coerces_int(self):
        m = Module("t")
        r = m.reg("r", 4)
        r.next = 7
        sim = Simulator(elaborate(m))
        sim.step({})
        assert sim.state_dict()["r"] == 7

    def test_reset_masked(self):
        m = Module("t")
        r = m.reg("r", 4, reset=0x1F)
        assert r.reset == 0xF


class TestMemory:
    def test_read_after_write(self):
        m = Module("t")
        mem = m.memory("mem", 8, 4)
        we = m.input("we", 1)
        addr = m.input("addr", 2)
        data = m.input("data", 8)
        mem.write(we, addr, data)
        m.name_signal("rd", mem.read(addr))
        sim = Simulator(elaborate(m))
        obs = sim.step({"we": 1, "addr": 2, "data": 0xAB})
        assert obs["rd"] == 0  # write is synchronous
        obs = sim.step({"we": 0, "addr": 2, "data": 0})
        assert obs["rd"] == 0xAB

    def test_write_priority_last_wins(self):
        m = Module("t")
        mem = m.memory("mem", 8, 2)
        one = m.const(1, 1)
        mem.write(one, m.const(0, 1), m.const(5, 8))
        mem.write(one, m.const(0, 1), m.const(9, 8))
        sim = Simulator(elaborate(m))
        sim.step({})
        assert sim.state_dict()["mem_w0"] == 9

    def test_depth_validation(self):
        m = Module("t")
        with pytest.raises(WidthError):
            m.memory("mem", 8, 0)

    def test_reset_words(self):
        m = Module("t")
        m.memory("mem", 8, 2, reset_words=[3, 7])
        sim = Simulator(elaborate(m))
        state = sim.state_dict()
        assert state["mem_w0"] == 3 and state["mem_w1"] == 7


class TestNamedSignals:
    def test_duplicate_rejected(self):
        m = Module("t")
        a = m.input("a", 1)
        m.name_signal("x", a)
        with pytest.raises(ValueError):
            m.name_signal("x", a)

    def test_lookup(self):
        m = Module("t")
        a = m.input("a", 1)
        m.name_signal("x", a)
        assert m.signal("x") is a

    def test_duplicate_output_rejected(self):
        m = Module("t")
        a = m.input("a", 1)
        m.output("o", a)
        with pytest.raises(ValueError):
            m.output("o", a)


class TestElaboration:
    def test_stats(self):
        m = Module("t")
        a = m.input("a", 4)
        r = m.reg("r", 4)
        r.next = a + r.q
        n = elaborate(m)
        assert n.num_input_bits == 4
        assert n.num_state_bits == 4
        assert n.num_cells >= 1

    def test_dead_code_eliminated(self):
        m = Module("t")
        a = m.input("a", 4)
        _dead = (a + 1) * 3  # never referenced by a root
        r = m.reg("r", 4)
        r.next = a
        n = elaborate(m)
        ops = [node.op for node in n.order]
        assert "mul" not in ops

    def test_topological_order(self):
        m = Module("t")
        a = m.input("a", 4)
        b = (a + 1) ^ (a + 2)
        m.name_signal("b", b)
        n = elaborate(m)
        position = {node.uid: i for i, node in enumerate(n.order)}
        for node in n.order:
            for arg in node.args:
                assert position[arg.uid] < position[node.uid]

    def test_diamond_reconvergence(self):
        m = Module("t")
        a = m.input("a", 4)
        shared = a + 1
        m.name_signal("x", (shared & 3) | (shared ^ 5))
        n = elaborate(m)  # must not raise
        assert n.signal("x").width == 4

    def test_reset_state(self):
        m = Module("t")
        m.reg("r1", 4, reset=3)
        m.reg("r2", 2, reset=1)
        n = elaborate(m)
        assert n.reset_state() == {"r1": 3, "r2": 1}


class TestAnalysis:
    def _pipeline(self):
        m = Module("p")
        a = m.input("a", 4)
        r1 = m.reg("r1", 4)
        r2 = m.reg("r2", 4)
        r3 = m.reg("r3", 4)
        r1.next = a
        r2.next = r1.q + 1
        r3.next = r2.q + 1
        m.name_signal("s1", r1.q.eq(0))
        m.name_signal("s2", r2.q.eq(0))
        m.name_signal("s3", r3.q.eq(0))
        return elaborate(m)

    def test_fanin_registers(self):
        n = self._pipeline()
        assert comb_fanin_registers(n.signal("s2")) == {"r2"}

    def test_fanin_inputs(self):
        n = self._pipeline()
        assert comb_fanin_inputs(n.signal("s1")) == frozenset()

    def test_registers_feeding_next_state(self):
        n = self._pipeline()
        assert registers_feeding_next_state(n, "r2") == {"r1"}
        with pytest.raises(KeyError):
            registers_feeding_next_state(n, "nope")

    def test_comb_connected_one_step(self):
        n = self._pipeline()
        assert comb_connected(n, "s1", "s2")  # r1 feeds r2's next state
        assert not comb_connected(n, "s1", "s3")  # two registers away

    def test_connectivity_matrix(self):
        n = self._pipeline()
        matrix = connectivity_matrix(n, ["s1", "s2", "s3"])
        assert "s2" in matrix["s1"]
        assert "s3" not in matrix["s1"]
        assert "s3" in matrix["s2"]
        # self-influence through the shared register support
        assert "s1" in matrix["s1"]

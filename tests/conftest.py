"""Shared fixtures: built designs and synthesized results reused across tests.

Heavy artifacts (the elaborated core, RTL2MuPATH runs) are session-scoped
so the suite pays for each expensive synthesis exactly once.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.designs import (
    ContextFamilyConfig,
    CoreConfig,
    CoreContextProvider,
    build_core,
)
from repro.core import Rtl2MuPath

# a compact context configuration for suite-wide synthesis runs: fewer
# neighbours and values than the default (the benches use richer families)
FAST_FAMILY = ContextFamilyConfig(
    horizon=44,
    neighbors=("DIV", "SW", "BEQ", "LW"),
    iuv_values=(0, 1, 2, 3, 8, 128, 255),
    neighbor_values=(0, 1, 2, 3, 255),
)


@pytest.fixture(scope="session")
def core_design():
    return build_core()

@pytest.fixture(scope="session")
def core_provider():
    return CoreContextProvider(xlen=8, config=FAST_FAMILY)


@pytest.fixture(scope="session")
def mupath_tool(core_design, core_provider):
    return Rtl2MuPath(core_design, core_provider)


@pytest.fixture(scope="session")
def mupath_add(mupath_tool):
    return mupath_tool.synthesize("ADD")


@pytest.fixture(scope="session")
def mupath_lw(mupath_tool):
    return mupath_tool.synthesize("LW")


@pytest.fixture(scope="session")
def mupath_divu(mupath_tool):
    return mupath_tool.synthesize("DIVU")

"""Chaos suite: deterministic fault injection against the job engine.

The paper's campaign treats solver crashes, timeouts, and memory
exhaustion as routine operating conditions (the UNDETERMINED lattice of
SS VII exists for exactly this).  These tests *prove* the engine's
failure paths by firing seeded :class:`repro.faults.FaultPlan` campaigns
at it and asserting the recovery invariants:

* worker kills (real ``os._exit(137)`` in pool mode, simulated inline)
  are survived by pool rebuilds, and the final verdicts are identical to
  a fault-free run;
* a job that repeatedly kills its worker is quarantined as a failed
  report after an isolation probe -- innocent bystanders complete;
* corrupt proof-cache entries are quarantined (moved, never served,
  never deleted) and transparently recomputed;
* the RSS soft ceiling aborts a runaway attempt as a degraded result
  instead of letting the kernel OOM-kill the worker;
* checkpoint/resume replays completed jobs bit-identically and
  re-executes only what an interrupted run never finished -- including
  after a hard SIGKILL mid-run (tested via a real subprocess).

Every scenario asserts ``RunManifest.reconciles(stats)``: chaos must not
break the SS VII-B3 property accounting.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, replace

import pytest

from repro import faults
from repro.core import Rtl2MuPath
from repro.designs import ContextFamilyConfig, CoreContextProvider, build_core
from repro.engine import (
    EngineConfig,
    EngineError,
    JobScheduler,
    ProofCache,
    RunCheckpoint,
)
from repro.engine.cache import CACHE_FORMAT_VERSION, entry_checksum
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    injection_point,
)
from repro.mc.outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from repro.mc.stats import PropertyStats
from repro.obs import TraceProfile, note_property

TINY_FAMILY = ContextFamilyConfig(
    horizon=24,
    neighbors=("DIV",),
    iuv_values=(0, 1),
    neighbor_values=(0, 1),
    include_deep=False,
)
INSTRS = ("ADD", "DIV", "LW")


def make_tool():
    design = build_core()
    provider = CoreContextProvider(xlen=design.config.xlen, config=TINY_FAMILY)
    return Rtl2MuPath(design, provider)


@pytest.fixture(scope="module")
def serial():
    """Fault-free serial reference run: the verdicts chaos must reproduce."""
    tool = make_tool()
    results = tool.synthesize_all(INSTRS)
    return tool, results


# ---------------------------------------------------------------- fake jobs
@dataclass(frozen=True)
class FakeJob:
    """Minimal cacheable job that visits the ``job.execute`` point."""

    job_id: str
    key: str = None
    outcome: str = REACHABLE

    def execute(self):
        injection_point("job.execute", job=self.job_id)
        return "value:" + self.job_id, [
            CheckResult("q:" + self.job_id, self.outcome, "fake",
                        time_seconds=0.01)
        ]

    def escalated(self, attempt, factor):
        return self

    def cache_key(self):
        return self.key

    @staticmethod
    def encode_value(value):
        return value

    @staticmethod
    def decode_value(payload):
        return payload

    @staticmethod
    def value_is_final(value):
        return True


@dataclass(frozen=True)
class NotingJob(FakeJob):
    """FakeJob that accounts its property into the active span, the way
    the real pipelines' ``_record`` sites do via ``obs.note_property``."""

    job_id: str = "fake:noting"

    def execute(self):
        note_property("reachable", 0.01)
        injection_point("job.execute", job=self.job_id)
        return "value:" + self.job_id, [
            CheckResult("q:" + self.job_id, self.outcome, "fake",
                        time_seconds=0.01)
        ]


@dataclass(frozen=True)
class CrashyJob(FakeJob):
    job_id: str = "fake:crashy"

    def execute(self):
        raise RuntimeError("boom")


@dataclass(frozen=True)
class FatJob(FakeJob):
    """Allocates ballast and lingers so the RSS watcher can catch it."""

    job_id: str = "fake:fat"
    mb: int = 192

    def execute(self):
        ballast = bytearray(self.mb * 1024 * 1024)
        ballast[::4096] = b"x" * len(ballast[::4096])  # fault the pages in
        time.sleep(2.0)
        return len(ballast), []


def fake_jobs(n, keyed=False):
    return [
        FakeJob(job_id="fake:%d" % i, key=("%02d" % i) * 32 if keyed else None)
        for i in range(n)
    ]


# ------------------------------------------------------------------ plan API
class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            specs=(
                FaultSpec(kind="kill_worker", point="job.execute", at_job=1),
                FaultSpec(kind="raise", point="solver.check", at_hit=3,
                          times=2, message="chaos"),
                FaultSpec(kind="delay", point="worker.attempt", seconds=0.5),
                FaultSpec(kind="corrupt_cache", point="cache.put"),
                FaultSpec(kind="memory_spike", point="worker.attempt", mb=64),
            ),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # the committed chaos artifact is plain, diffable JSON
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["seed"] == 42

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor_strike", point="job.execute")
        assert "kill_worker" in FAULT_KINDS

    def test_spec_matching(self):
        spec = FaultSpec(kind="raise", point="solver.check", job="synth:ADD",
                         at_job=2)
        assert spec.matches("solver.check", "synth:ADD", 2)
        assert not spec.matches("solver.check", "synth:ADD", 3)
        assert not spec.matches("solver.check", "synth:DIV", 2)
        assert not spec.matches("cache.put", "synth:ADD", 2)

    def test_with_state_dir(self, tmp_path):
        plan = FaultPlan(seed=1)
        relocated = plan.with_state_dir(str(tmp_path))
        assert relocated.state_dir == str(tmp_path)
        assert plan.state_dir is None  # frozen original untouched


# ----------------------------------------------------------------- injector
class TestInjector:
    def test_no_active_plan_is_noop(self):
        injection_point("job.execute", job="anything")  # must not raise

    def test_raise_fires_at_hit_then_disarms(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="raise", point="p", at_hit=2, times=1,
                      message="second visit"),
        ))
        previous = faults.activate(faults.arm(plan))
        try:
            injection_point("p")  # first visit: below at_hit
            with pytest.raises(InjectedFault, match="second visit"):
                injection_point("p")
            injection_point("p")  # times budget exhausted
        finally:
            faults.deactivate(previous)

    def test_delay_sleeps(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="delay", point="p", seconds=0.1),
        ))
        previous = faults.activate(faults.arm(plan))
        try:
            started = time.perf_counter()
            injection_point("p")
            assert time.perf_counter() - started >= 0.09
        finally:
            faults.deactivate(previous)

    def test_firing_counts_persist_across_armings(self, tmp_path):
        # the property that keeps times=1 true across the very worker
        # respawn the fault causes: a fresh arming sees prior firings
        plan = FaultPlan(state_dir=str(tmp_path), specs=(
            FaultSpec(kind="raise", point="p", times=1),
        ))
        previous = faults.activate(faults.arm(plan))
        try:
            with pytest.raises(InjectedFault):
                injection_point("p")
        finally:
            faults.deactivate(previous)
        previous = faults.activate(faults.arm(plan))  # fresh arming
        try:
            injection_point("p")  # must NOT fire again
        finally:
            faults.deactivate(previous)

    def test_memory_spike_ballast_released_on_deactivate(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="memory_spike", point="p", mb=8),
        ))
        armed = faults.arm(plan)
        previous = faults.activate(armed)
        try:
            injection_point("p")
            assert sum(len(b) for b in armed.ballast) == 8 * 1024 * 1024
        finally:
            faults.deactivate(previous)
        assert armed.ballast == []

    def test_corrupt_cache_truncates_named_file(self, tmp_path):
        victim = tmp_path / "entry.json"
        victim.write_text("x" * 100)
        plan = FaultPlan(specs=(
            FaultSpec(kind="corrupt_cache", point="cache.put"),
        ))
        previous = faults.activate(faults.arm(plan))
        try:
            injection_point("cache.put", path=str(victim))
        finally:
            faults.deactivate(previous)
        assert victim.stat().st_size == 50


# ------------------------------------------------------- retry on raise fault
class TestInjectedSolverFault:
    def test_raised_fault_is_retried_like_any_attempt_error(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="raise", point="job.execute", times=1,
                      message="transient solver crash"),
        ))
        engine = JobScheduler(
            EngineConfig(jobs=1, max_attempts=2, fault_plan=plan)
        )
        stats = PropertyStats(label="t")
        outcome = engine.run([FakeJob(job_id="fake:0")], stats=stats)
        assert outcome["fake:0"] == "value:fake:0"
        manifest = outcome.manifest
        assert manifest.retries == 1
        assert manifest.jobs_failed == 0
        assert manifest.reconciles(stats)


class TestRetryTraceReconciliation:
    """Spans from attempts whose results never reach the stats must not
    keep accounting attrs, or ``profile --check`` fails after any retry."""

    def _traced_run(self, tmp_path, plan, job, max_attempts):
        trace = tmp_path / "trace.jsonl"
        engine = JobScheduler(EngineConfig(
            jobs=1, max_attempts=max_attempts, fault_plan=plan,
            trace_path=str(trace),
        ))
        stats = PropertyStats(label="t")
        outcome = engine.run([job], stats=stats)
        assert outcome.manifest.reconciles(stats)
        profile = TraceProfile.load(str(trace))
        assert profile.ok, profile.errors
        return profile, stats

    def test_crashed_attempt_accounting_is_discarded(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(kind="raise", point="job.execute", times=1,
                      message="crash after property accounting"),
        ))
        profile, stats = self._traced_run(
            tmp_path, plan, NotingJob(), max_attempts=2
        )
        assert profile.reconciles_total_time(stats.total_time)
        discarded = [
            record for record in profile.spans
            if "discarded_check_seconds" in record.attrs
        ]
        assert len(discarded) == 1
        assert discarded[0].attrs["discarded_properties"] == 1

    def test_superseded_escalation_attempt_is_discarded(self, tmp_path):
        # both attempts succeed (UNDETERMINED triggers the escalation
        # ladder) but only the last attempt's results enter the stats
        profile, stats = self._traced_run(
            tmp_path, None, NotingJob(outcome=UNDETERMINED), max_attempts=2
        )
        assert profile.reconciles_total_time(stats.total_time)
        assert sum(
            record.attrs.get("discarded_properties", 0)
            for record in profile.spans
        ) == 1


# -------------------------------------------------------------- worker kills
class TestWorkerKills:
    def test_inline_simulated_kill_recovers(self, tmp_path):
        plan = FaultPlan(state_dir=str(tmp_path / "state"), specs=(
            FaultSpec(kind="kill_worker", point="job.execute", at_job=1,
                      times=1),
        ))
        engine = JobScheduler(
            EngineConfig(jobs=1, fault_plan=plan, backoff_seconds=0.001)
        )
        stats = PropertyStats(label="t")
        outcome = engine.run(fake_jobs(3), stats=stats)
        assert [outcome["fake:%d" % i] for i in range(3)] == [
            "value:fake:0", "value:fake:1", "value:fake:2"
        ]
        assert outcome.manifest.pool_rebuilds == 1
        assert outcome.manifest.jobs_failed == 0
        assert outcome.manifest.reconciles(stats)

    def test_pool_kill_recovers_with_identical_results(self, tmp_path):
        baseline = JobScheduler(EngineConfig(jobs=1)).run(fake_jobs(4))
        plan = FaultPlan(state_dir=str(tmp_path / "state"), specs=(
            FaultSpec(kind="kill_worker", point="job.execute", at_job=2,
                      times=1),
        ))
        engine = JobScheduler(
            EngineConfig(jobs=2, fault_plan=plan, backoff_seconds=0.001)
        )
        stats = PropertyStats(label="t")
        outcome = engine.run(fake_jobs(4), stats=stats)
        assert outcome.results == baseline.results
        assert outcome.manifest.pool_rebuilds >= 1
        assert outcome.manifest.jobs_failed == 0
        assert outcome.manifest.reconciles(stats)

    def test_repeat_killer_quarantined_keep_going(self, tmp_path):
        plan = FaultPlan(state_dir=str(tmp_path / "state"), specs=(
            FaultSpec(kind="kill_worker", point="job.execute", job="fake:1",
                      times=50),
        ))
        engine = JobScheduler(
            EngineConfig(jobs=2, fault_plan=plan, backoff_seconds=0.001,
                         keep_going=True)
        )
        stats = PropertyStats(label="t")
        outcome = engine.run(fake_jobs(4), stats=stats)
        # the killer degrades to a failed report; bystanders complete
        assert outcome["fake:1"] is None
        for i in (0, 2, 3):
            assert outcome["fake:%d" % i] == "value:fake:%d" % i
        manifest = outcome.manifest
        assert manifest.jobs_quarantined == 1
        assert manifest.jobs_failed == 1
        assert manifest.jobs_executed == 3
        assert manifest.reconciles(stats)

    def test_repeat_killer_raises_without_keep_going(self, tmp_path):
        plan = FaultPlan(state_dir=str(tmp_path / "state"), specs=(
            FaultSpec(kind="kill_worker", point="job.execute", job="fake:0",
                      times=50),
        ))
        engine = JobScheduler(
            EngineConfig(jobs=1, fault_plan=plan, backoff_seconds=0.001)
        )
        with pytest.raises(EngineError, match="quarantined"):
            engine.run(fake_jobs(2))
        assert engine.last_manifest.jobs_quarantined == 1


# ------------------------------------------------------------ RSS soft ceiling
class TestRssCeiling:
    def test_runaway_attempt_aborts_as_degraded(self):
        from repro.engine.scheduler import current_rss_mb

        rss = current_rss_mb()
        if rss is None:
            pytest.skip("RSS not readable on this platform")
        engine = JobScheduler(
            EngineConfig(jobs=1, max_attempts=1, keep_going=True,
                         max_rss_mb=rss + 64)
        )
        stats = PropertyStats(label="t")
        started = time.perf_counter()
        outcome = engine.run([FatJob(mb=192)], stats=stats)
        # aborted by the watcher, well before the 2s sleep finished
        assert time.perf_counter() - started < 1.9
        assert outcome["fake:fat"] is None
        manifest = outcome.manifest
        assert manifest.rss_aborts == 1
        assert manifest.jobs_failed == 1
        assert manifest.reconciles(stats)

    def test_memory_spike_fault_trips_the_ceiling(self):
        from repro.engine.scheduler import current_rss_mb

        rss = current_rss_mb()
        if rss is None:
            pytest.skip("RSS not readable on this platform")
        # the spike fires inside execute() (the job.execute point), i.e.
        # under the attempt's RSS guard, and lingers long enough for the
        # 20ms-period watcher to sample it
        plan = FaultPlan(specs=(
            FaultSpec(kind="memory_spike", point="job.execute", mb=192,
                      seconds=2.0),
        ))
        engine = JobScheduler(
            EngineConfig(jobs=1, max_attempts=1, keep_going=True,
                         max_rss_mb=rss + 64, fault_plan=plan)
        )
        outcome = engine.run([FakeJob(job_id="fake:0")])
        assert outcome.manifest.rss_aborts == 1

    def test_under_ceiling_runs_normally(self):
        engine = JobScheduler(
            EngineConfig(jobs=1, max_rss_mb=1024 * 1024)  # 1 TB: never trips
        )
        outcome = engine.run(fake_jobs(2))
        assert outcome.manifest.rss_aborts == 0
        assert outcome.manifest.jobs_executed == 2


# ------------------------------------------------------------ cache hardening
class TestCacheHardening:
    KEY = "ab" * 32

    def _seeded(self, tmp_path):
        cache = ProofCache(str(tmp_path / "cache"))
        cache.put(self.KEY, "job", {"x": 1},
                  [CheckResult("q", UNREACHABLE, "fake").to_dict()])
        return cache

    def test_entries_carry_checksums(self, tmp_path):
        cache = self._seeded(tmp_path)
        with open(cache._path(self.KEY), "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        assert entry["format"] == CACHE_FORMAT_VERSION
        assert entry["checksum"] == entry_checksum(entry)
        assert cache.get(self.KEY) is not None

    def test_truncated_entry_quarantined_not_served(self, tmp_path):
        cache = self._seeded(tmp_path)
        path = cache._path(self.KEY)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert cache.get(self.KEY) is None
        assert not os.path.exists(path)  # moved, not deleted in place
        assert cache.quarantined() == 1
        assert cache.quarantined_session == 1
        assert cache.entries() == 0  # quarantine/ is not entries
        assert self.KEY not in cache

    def test_bitflip_checksum_mismatch_quarantined(self, tmp_path):
        cache = self._seeded(tmp_path)
        path = cache._path(self.KEY)
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["payload"] = {"x": 2}  # valid JSON, silently altered payload
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(self.KEY) is None
        assert cache.quarantined() == 1

    def test_stale_format_is_miss_not_quarantine(self, tmp_path):
        cache = self._seeded(tmp_path)
        path = cache._path(self.KEY)
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["format"] = CACHE_FORMAT_VERSION - 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(self.KEY) is None
        assert os.path.exists(path)  # left in place for the next put
        assert cache.quarantined() == 0

    def test_contains_is_existence_only(self, tmp_path, monkeypatch):
        cache = self._seeded(tmp_path)
        # the satellite fix: __contains__ must not re-read + re-parse
        import repro.engine.cache as cache_mod

        def _fail(*a, **k):
            raise AssertionError("__contains__ parsed the entry")

        monkeypatch.setattr(cache_mod.json, "load", _fail)
        assert self.KEY in cache
        assert ("cd" * 32) not in cache

    def test_quarantine_name_collisions_get_suffixes(self, tmp_path):
        cache = self._seeded(tmp_path)
        for _ in range(3):
            path = cache._path(self.KEY)
            with open(path, "w") as handle:
                handle.write("{broken")
            assert cache.get(self.KEY) is None
            cache.put(self.KEY, "job", {"x": 1}, [])
        assert cache.quarantined() == 3
        assert cache.entries() == 1

    def test_engine_recovers_from_fault_corrupted_entry(self, tmp_path):
        # a corrupt_cache fault damages the entry as it lands; the next
        # run quarantines it, recomputes, and re-stores -- no stale replay
        cache_dir = str(tmp_path / "cache")
        plan = FaultPlan(state_dir=str(tmp_path / "state"), specs=(
            FaultSpec(kind="corrupt_cache", point="cache.put", times=1),
        ))
        job = FakeJob(job_id="fake:0", key="55" * 32)
        cold = JobScheduler(
            EngineConfig(jobs=1, cache_dir=cache_dir, fault_plan=plan)
        )
        cold.run([job])
        assert cold.last_manifest.cache_stores == 1

        warm = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        stats = PropertyStats(label="warm")
        outcome = warm.run([job], stats=stats)
        manifest = outcome.manifest
        assert manifest.cache_hits == 0
        assert manifest.cache_quarantined == 1
        assert manifest.jobs_executed == 1
        assert manifest.cache_stores == 1
        assert outcome["fake:0"] == "value:fake:0"
        assert manifest.reconciles(stats)

        # third run: the rewritten entry replays cleanly
        third = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        assert third.run([job]).manifest.cache_hits == 1


# ---------------------------------------------------------- checkpoint/resume
class TestCheckpointResume:
    def test_checkpoint_written_and_resumed_bit_identically(self, tmp_path):
        run_dir = str(tmp_path / "run")
        jobs = fake_jobs(3, keyed=True)
        stats = PropertyStats(label="cold")
        cold = JobScheduler(EngineConfig(jobs=1, run_dir=run_dir))
        outcome = cold.run(jobs, stats=stats)
        assert os.path.isfile(os.path.join(run_dir, "checkpoint.jsonl"))
        assert RunCheckpoint.load_records(run_dir).keys() == {
            j.job_id for j in jobs
        }

        stats2 = PropertyStats(label="resume")
        resumed = JobScheduler(
            EngineConfig(jobs=1, run_dir=run_dir, resume=True)
        )
        outcome2 = resumed.run(jobs, stats=stats2)
        assert outcome2.results == outcome.results
        manifest = outcome2.manifest
        assert manifest.jobs_resumed == 3
        assert manifest.jobs_executed == 0
        assert manifest.properties_resumed == stats2.count
        assert manifest.reconciles(stats2)
        # resumed accounting matches the original run exactly
        assert stats2.count == stats.count
        assert stats2.outcome_histogram == stats.outcome_histogram

    def test_resume_executes_only_missing_jobs(self, tmp_path):
        run_dir = str(tmp_path / "run")
        jobs = fake_jobs(4, keyed=True)
        JobScheduler(EngineConfig(jobs=1, run_dir=run_dir)).run(jobs[:2])

        resumed = JobScheduler(
            EngineConfig(jobs=1, run_dir=run_dir, resume=True)
        )
        outcome = resumed.run(jobs)
        assert outcome.manifest.jobs_resumed == 2
        assert outcome.manifest.jobs_executed == 2
        assert len(outcome.results) == 4

    def test_stale_checkpoint_key_reexecutes(self, tmp_path):
        run_dir = str(tmp_path / "run")
        job = FakeJob(job_id="fake:0", key="11" * 32)
        JobScheduler(EngineConfig(jobs=1, run_dir=run_dir)).run([job])

        changed = replace(job, key="22" * 32)  # content changed since
        resumed = JobScheduler(
            EngineConfig(jobs=1, run_dir=run_dir, resume=True)
        )
        outcome = resumed.run([changed])
        assert outcome.manifest.jobs_resumed == 0
        assert outcome.manifest.jobs_executed == 1

    def test_failed_jobs_checkpoint_and_resume_as_failures(self, tmp_path):
        run_dir = str(tmp_path / "run")
        jobs = [CrashyJob(), FakeJob(job_id="fake:ok", key="33" * 32)]
        cold = JobScheduler(
            EngineConfig(jobs=1, run_dir=run_dir, max_attempts=1,
                         keep_going=True)
        )
        cold.run(jobs)

        resumed = JobScheduler(
            EngineConfig(jobs=1, run_dir=run_dir, resume=True,
                         keep_going=True)
        )
        outcome = resumed.run(jobs)
        assert outcome.manifest.jobs_resumed == 2
        assert outcome.manifest.jobs_executed == 0
        assert outcome.manifest.jobs_failed == 1
        assert outcome["fake:crashy"] is None
        assert outcome["fake:ok"] == "value:fake:ok"

    def test_torn_tail_tolerated(self, tmp_path):
        run_dir = str(tmp_path / "run")
        jobs = fake_jobs(2, keyed=True)
        JobScheduler(EngineConfig(jobs=1, run_dir=run_dir)).run(jobs)
        path = os.path.join(run_dir, "checkpoint.jsonl")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "job", "job_id": "fake:torn", "ke')
        records = RunCheckpoint.load_records(run_dir)
        assert set(records) == {"fake:0", "fake:1"}
        # resume rewrites the file from valid records, dropping the tear
        resumed = JobScheduler(
            EngineConfig(jobs=1, run_dir=run_dir, resume=True)
        )
        assert resumed.run(jobs).manifest.jobs_resumed == 2
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                json.loads(line)  # every line parses now

    def test_hard_kill_mid_run_then_resume(self, tmp_path):
        """SIGKILL a real checkpointing run, then resume it to completion."""
        run_dir = str(tmp_path / "run")
        driver = tmp_path / "driver.py"
        driver.write_text(DRIVER_SCRIPT)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.Popen(
            [sys.executable, str(driver), run_dir], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # wait until at least one job record is durably checkpointed
            path = os.path.join(run_dir, "checkpoint.jsonl")
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if RunCheckpoint.load_records(run_dir):
                    break
                if proc.poll() is not None:
                    pytest.fail("driver exited before it could be killed")
                time.sleep(0.02)
            else:
                pytest.fail("no checkpoint record appeared within 30s")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        survivors = RunCheckpoint.load_records(run_dir)
        assert survivors  # the kill landed after >=1 durable record

        jobs = [DriverJob(job_id="drv:%d" % i, key=("%02d" % i) * 32)
                for i in range(4)]
        stats = PropertyStats(label="resume")
        resumed = JobScheduler(
            EngineConfig(jobs=1, run_dir=run_dir, resume=True)
        )
        outcome = resumed.run(jobs, stats=stats)
        manifest = outcome.manifest
        assert manifest.jobs_resumed >= 1
        assert manifest.jobs_resumed + manifest.jobs_executed == 4
        assert outcome.results == {
            "drv:%d" % i: "value:drv:%d" % i for i in range(4)
        }
        assert manifest.reconciles(stats)


@dataclass(frozen=True)
class DriverJob(FakeJob):
    """The in-process twin of the subprocess driver's job (same ids/keys)."""

    def execute(self):
        return "value:" + self.job_id, [
            CheckResult("q:" + self.job_id, REACHABLE, "fake",
                        time_seconds=0.01)
        ]


DRIVER_SCRIPT = """\
import sys
from dataclasses import dataclass
import time

from repro.engine import EngineConfig, JobScheduler
from repro.mc.outcomes import REACHABLE, CheckResult


@dataclass(frozen=True)
class DriverJob:
    job_id: str
    key: str

    def execute(self):
        if self.job_id == "drv:3":
            time.sleep(60.0)  # parked: guarantees the kill lands mid-run
        return "value:" + self.job_id, [
            CheckResult("q:" + self.job_id, REACHABLE, "fake",
                        time_seconds=0.01)
        ]

    def escalated(self, attempt, factor):
        return self

    def cache_key(self):
        return self.key

    @staticmethod
    def encode_value(value):
        return value

    @staticmethod
    def decode_value(payload):
        return payload

    @staticmethod
    def value_is_final(value):
        return True


jobs = [DriverJob(job_id="drv:%d" % i, key=("%02d" % i) * 32)
        for i in range(4)]
engine = JobScheduler(
    EngineConfig(jobs=1, run_dir=sys.argv[1])
)
engine.run(jobs)
"""


# ----------------------------------------------------- acceptance: full chaos
class TestAcceptanceChaos:
    def test_seeded_campaign_matches_fault_free_run(self, serial, tmp_path):
        """The ISSUE's acceptance bar: >=2 worker kills + >=2 corrupted
        cache entries mid-run; synth-all completes with verdicts identical
        to a fault-free run, and the accounting reconciles."""
        serial_tool, serial_results = serial
        cache_dir = str(tmp_path / "cache")
        plan = FaultPlan(
            seed=2026,
            state_dir=str(tmp_path / "fault-state"),
            specs=(
                FaultSpec(kind="kill_worker", point="job.execute",
                          at_job=0, times=1),
                FaultSpec(kind="kill_worker", point="job.execute",
                          at_job=1, times=1),
                FaultSpec(kind="raise", point="solver.check", at_hit=5,
                          times=1, message="injected solver crash"),
                FaultSpec(kind="corrupt_cache", point="cache.put", times=2),
            ),
        )
        tool = make_tool()
        engine = JobScheduler(
            EngineConfig(jobs=2, cache_dir=cache_dir, fault_plan=plan,
                         backoff_seconds=0.001)
        )
        results = tool.synthesize_all(list(INSTRS), engine=engine)
        for name in INSTRS:
            assert results[name] == serial_results[name], name
        manifest = engine.last_manifest
        assert manifest.pool_rebuilds >= 1  # >=2 kills were absorbed
        assert manifest.jobs_failed == 0
        assert manifest.cache_stores == len(INSTRS)
        assert manifest.reconciles(tool.stats)
        assert tool.stats.count == serial_tool.stats.count
        assert tool.stats.outcome_histogram == serial_tool.stats.outcome_histogram

        # warm run: the two fault-corrupted entries are quarantined and
        # recomputed; verdicts still identical to the fault-free run
        warm_tool = make_tool()
        warm = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        warm_results = warm_tool.synthesize_all(list(INSTRS), engine=warm)
        for name in INSTRS:
            assert warm_results[name] == serial_results[name], name
        wm = warm.last_manifest
        assert wm.cache_quarantined == 2
        assert wm.jobs_executed == 2
        assert wm.cache_hits == 1
        assert wm.reconciles(warm_tool.stats)
        assert ProofCache(cache_dir).quarantined() == 2

    def test_faulted_run_checkpoint_resumes_to_zero_work(self, tmp_path):
        run_dir = str(tmp_path / "run")
        plan = FaultPlan(
            seed=7,
            state_dir=str(tmp_path / "fault-state"),
            specs=(
                FaultSpec(kind="kill_worker", point="job.execute",
                          at_job=1, times=1),
            ),
        )
        tool = make_tool()
        engine = JobScheduler(
            EngineConfig(jobs=2, run_dir=run_dir, fault_plan=plan,
                         backoff_seconds=0.001)
        )
        results = tool.synthesize_all(["ADD", "DIV"], engine=engine)
        assert engine.last_manifest.pool_rebuilds >= 1

        resumed_tool = make_tool()
        resumed = JobScheduler(
            EngineConfig(jobs=2, run_dir=run_dir, resume=True)
        )
        resumed_results = resumed_tool.synthesize_all(
            ["ADD", "DIV"], engine=resumed
        )
        manifest = resumed.last_manifest
        assert manifest.jobs_resumed == 2
        assert manifest.jobs_executed == 0
        assert manifest.reconciles(resumed_tool.stats)
        for name in ("ADD", "DIV"):
            assert resumed_results[name] == results[name], name

"""SVA rendering and Verilog export tests."""

import pytest

from repro.props import (
    ConsecutiveRevisit,
    ConsecutiveRunLength,
    Eventually,
    NonConsecutiveRevisit,
    Query,
    Sequence,
    VisitedCover,
    all_of,
    eq,
    sig,
)
from repro.props.sva import render_expr, render_property_file, render_query
from repro.rtl import Module, elaborate, mux
from repro.rtl.verilog import netlist_to_verilog


class TestSvaExpr:
    def test_sig(self):
        assert render_expr(sig("pl_IF_occ")) == "pl_IF_occ"

    def test_eq(self):
        assert render_expr(eq("pc", 4)) == "(pc == 4)"

    def test_not_and_or(self):
        expr = ~sig("a") & (sig("b") | sig("c"))
        assert render_expr(expr) == "!a && (b || c)"

    def test_empty_and(self):
        assert render_expr(all_of()) == "1'b1"


class TestSvaProps:
    def test_eventually(self):
        text = render_query(Query("r", Eventually(sig("x"))))
        assert "cover property" in text and "s_eventually" in text

    def test_sequence_uses_hash_hash_one(self):
        text = render_query(Query("e", Sequence(sig("a"), sig("b"))))
        assert "##1" in text

    def test_visited_cover_matches_paper_template(self):
        # pl_0_dom_pl_1: cover (!pl_0_visited & pl_1_visited)
        prop = VisitedCover([sig("pl_1")], [sig("pl_0")])
        text = render_query(Query("pl_0_dom_pl_1", prop))
        assert "visited(pl_1)" in text and "!visited(pl_0)" in text

    def test_assumes_render_first(self):
        query = Query("q", Eventually(sig("x")), assumes=(~sig("y"),))
        text = render_query(query)
        lines = text.splitlines()
        assert "assume property" in lines[0]
        assert "cover property" in lines[1]

    def test_revisit_shapes(self):
        assert "[*1:$]" in render_query(Query("n", NonConsecutiveRevisit(sig("p"))))
        assert "[*3]" in render_query(Query("l", ConsecutiveRunLength(sig("p"), 3)))
        assert "##1" in render_query(Query("c", ConsecutiveRevisit(sig("p"))))

    def test_property_file(self):
        text = render_property_file(
            [Query("a", Eventually(sig("x"))), Query("b", Eventually(sig("y")))]
        )
        assert text.count("cover property") == 2

    def test_identifier_sanitization(self):
        text = render_query(Query("plset_{a,b}", Eventually(sig("x"))))
        assert "{" not in text.splitlines()[-1].split(":")[0]


class TestVerilogExport:
    def _counter(self):
        m = Module("counter")
        en = m.input("en", 1)
        c = m.reg("count", 4, reset=3)
        c.next = mux(en, c.q + 1, c.q)
        m.name_signal("at_max", c.q.eq(15))
        m.output("value", c.q)
        return elaborate(m)

    def test_module_structure(self):
        text = netlist_to_verilog(self._counter())
        assert text.startswith("module counter (")
        assert "input wire en" in text
        assert "output wire [3:0] value" in text
        assert "always @(posedge clk)" in text
        assert text.rstrip().endswith("endmodule")

    def test_reset_values(self):
        text = netlist_to_verilog(self._counter())
        assert "count <= 4'd3;" in text

    def test_named_signal_exported(self):
        text = netlist_to_verilog(self._counter())
        assert "sig_at_max" in text

    def test_every_op_renders(self):
        m = Module("allops")
        a = m.input("a", 4)
        b = m.input("b", 4)
        from repro.rtl import cat, redand, redor

        exprs = [
            a & b, a | b, a ^ b, ~a, a + b, a - b, a * b,
            (a.eq(b)), (a.ult(b)), a << 1, a >> 2, mux(a[0], a, b),
            cat(a, b), a[1:3], redor(a), redand(a),
        ]
        for i, expr in enumerate(exprs):
            m.name_signal("e%d" % i, expr)
        text = netlist_to_verilog(elaborate(m))
        for needle in ("&", "|", "^", "~", "+", "-", "*", "==", "<", "<<",
                       ">>", "?", "{", "["):
            assert needle in text, needle

    def test_core_design_exports(self, core_design):
        text = netlist_to_verilog(core_design.netlist)
        assert "module cva6ish_core" in text
        assert "scb0_state" in text
        # every register appears in the clocked block
        for reg, _ in core_design.netlist.registers:
            assert "%s <=" % reg.name in text

"""Assembler tests: textual forms, errors, round-trips, execution."""

import pytest
from hypothesis import given, strategies as st

from repro.designs import isa
from repro.designs.asm import AsmError, assemble, assemble_line, disassemble


class TestForms:
    def test_rrr(self):
        assert assemble_line("ADD x3, x1, x2") == isa.encode("ADD", rd=3, rs1=1, rs2=2)

    def test_ri(self):
        assert assemble_line("ADDI x3, x1, 5") == isa.encode("ADDI", rd=3, rs1=1, rs2=5)

    def test_load(self):
        assert assemble_line("LW x3, 2(x1)") == isa.encode("LW", rd=3, rs1=1, rs2=2)

    def test_store(self):
        assert assemble_line("SW x2, 2(x1)") == isa.encode("SW", rs1=1, rs2=2)

    def test_store_field_mismatch_rejected(self):
        with pytest.raises(AsmError):
            assemble_line("SW x2, 3(x1)")

    def test_branch(self):
        assert assemble_line("BEQ x1, x2") == isa.encode("BEQ", rs1=1, rs2=2, rd=0)

    def test_jal(self):
        assert assemble_line("JAL x1, 4") == isa.encode("JAL", rd=1, rs2=4)

    def test_jalr(self):
        assert assemble_line("JALR x1, x2, 0") == isa.encode("JALR", rd=1, rs1=2, rs2=0)

    def test_system(self):
        assert assemble_line("ECALL") == isa.encode("ECALL")

    def test_upper_immediate(self):
        assert assemble_line("LUI x3, 7") == isa.encode("LUI", rd=3, rs2=7)

    def test_case_insensitive_mnemonic(self):
        assert assemble_line("add x1, x2, x3") == assemble_line("ADD x1, x2, x3")


class TestErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "FROB x1, x2, x3",
            "ADD x8, x1, x2",
            "ADD x1",
            "ADDI x1, x2, 9",
            "LW x1, x2, x3",
            "",
        ],
    )
    def test_rejected(self, line):
        with pytest.raises(AsmError):
            assemble_line(line)

    def test_multi_line_error_carries_line_number(self):
        with pytest.raises(AsmError, match="line 2"):
            assemble("ADD x1, x2, x3\nBOGUS x1, x2\n")


class TestProgram:
    def test_comments_and_blanks(self):
        words = assemble(
            """
            # a tiny program
            ADDI x1, x0, 3
            ADD  x2, x1, x1   # double it
            """
        )
        assert len(words) == 2

    def test_executes_on_core(self, core_design):
        from repro.designs import run_program
        from repro.sim import Simulator

        words = assemble("ADDI x1, x0, 3\nADD x2, x1, x1")
        sim = Simulator(core_design.netlist)
        run = run_program(sim, words)
        assert run.arf[1] == 3 and run.arf[2] == 6
        # the dependent ADD retires after the ADDI it reads from
        assert len(run.retire) == 2
        first, second = sorted(run.retire.values())
        assert second > first


@given(
    name=st.sampled_from(
        [s.name for s in isa.INSTRUCTIONS if s.cls not in ("store", "branch")]
    ),
    rd=st.integers(0, 7),
    rs1=st.integers(0, 7),
    rs2=st.integers(0, 7),
)
def test_disassemble_assemble_roundtrip(name, rd, rs1, rs2):
    word = isa.encode(name, rd=rd, rs1=rs1, rs2=rs2)
    text = disassemble(word)
    reencoded = assemble_line(text)
    # fields the instruction doesn't use are canonicalized to 0 by the text
    # form; decode both and compare the *used* fields
    a, b = isa.decode(word), isa.decode(reencoded)
    spec = a.spec
    assert b.spec is spec
    if spec.writes_rd:
        assert a.rd == b.rd
    if spec.reads_rs1:
        assert a.rs1 == b.rs1
    if spec.reads_rs2 or spec.cls in ("jal", "jalr") or spec.alu_op in (
        "addi", "slti", "xori", "ori", "andi", "slli", "srli", "csri", "lui"
    ):
        assert a.rs2 == b.rs2


def test_disassemble_store_and_branch_roundtrip():
    for line in ("SW x2, 2(x1)", "BEQ x3, x4"):
        word = assemble_line(line)
        assert assemble_line(disassemble(word)) == word

"""uSPEC-export tests (the Check-tools-facing output format)."""

import pytest

from repro.report import render_uspec_axiom, render_uspec_model


def test_axiom_structure(mupath_add):
    text = render_uspec_axiom(mupath_add)
    assert text.startswith('Axiom "paths_ADD":')
    assert 'HasOpcode i "ADD"' in text
    assert "NodeExists" in text and "EdgeExists" in text
    # one disjunct per uPATH family
    assert text.count("\\/") >= mupath_add.num_upaths - 1


def test_axiom_mentions_all_pl_sets(mupath_add):
    text = render_uspec_axiom(mupath_add)
    for upath in mupath_add.upaths:
        for pl in upath.pl_set:
            assert pl in text


def test_revisit_annotations(mupath_divu):
    text = render_uspec_axiom(mupath_divu)
    assert "revisit: consecutive" in text


def test_model_combines_axioms(mupath_add, mupath_lw):
    text = render_uspec_model({"ADD": mupath_add, "LW": mupath_lw})
    assert 'Axiom "paths_ADD"' in text
    assert 'Axiom "paths_LW"' in text
    assert "decision sources for LW" in text

"""RTL2MuPATH pipeline tests (uses the session-scoped synthesis fixtures)."""

import pytest

from repro.designs import isa, slot_pc
from repro.mc import REACHABLE, UNREACHABLE, TraceDB, EnumerativeEngine
from repro.props import Eventually, Query, Sequence, VisitedCover
from repro.core.mhb import UhbGraph
from repro.core.rtl2mupath import Rtl2MuPath, Rtl2MuPathConfig


class TestAddSynthesis:
    def test_multiple_upaths_found(self, mupath_add):
        # RTL2uSPEC's single-execution-path assumption fails: ADD exhibits
        # several uPATHs (commit, squash-at-issue, squash-after-finish, ...)
        assert mupath_add.multi_path
        assert mupath_add.num_upaths >= 2

    def test_canonical_pl_set_present(self, mupath_add):
        full = frozenset({"IF", "ID", "issue", "scbIss", "aluU", "scbFin", "scbCmt"})
        assert full in {u.pl_set for u in mupath_add.upaths}

    def test_iuv_pls_exclude_load_unit(self, mupath_add):
        # the paper's Fig. 6 example: LSQ is a DUV PL but not an ADD PL
        assert "LSQ" not in mupath_add.iuv_pls
        assert "ldStall" not in mupath_add.iuv_pls
        assert "divU" not in mupath_add.iuv_pls

    def test_dominates_relation(self, mupath_add):
        # every ADD execution that reaches the ALU was fetched and decoded
        assert ("IF", "aluU") in mupath_add.dominates
        assert ("ID", "aluU") in mupath_add.dominates
        # commitment implies a finished scoreboard entry
        assert ("scbFin", "scbCmt") in mupath_add.dominates

    def test_pruning_beats_naive_power_set(self, mupath_add):
        assert mupath_add.candidate_sets_considered < mupath_add.naive_power_set_size

    def test_decision_sources(self, mupath_add):
        assert "scbIss" in mupath_add.decisions.sources

    def test_squash_destination_exists(self, mupath_add):
        dsts = set()
        for src in mupath_add.decisions.sources:
            dsts.update(mupath_add.decisions.destinations(src))
        assert frozenset() in dsts

    def test_hb_edges_follow_pipeline(self, mupath_add):
        full = [u for u in mupath_add.upaths if "scbCmt" in u.pl_set][0]
        assert ("IF", "ID") in full.hb_edges
        assert ("ID", "issue") in full.hb_edges
        assert ("scbFin", "scbCmt") in full.hb_edges
        assert ("scbCmt", "IF") not in full.hb_edges

    def test_concrete_paths_have_examples(self, mupath_add):
        assert all(
            u.example is not None for u in mupath_add.upaths if u.pl_set
        )

    def test_uhb_graph_renders(self, mupath_add):
        graph = UhbGraph(mupath_add.concrete_paths[0])
        assert graph.nodes and "latency" in graph.render_ascii()


class TestDivSynthesis:
    def test_run_length_family(self, mupath_divu):
        # divU residency is 1 + msb-index-derived: the fixture's operand set
        # {0,1,2,3,8,128,255} yields exactly {1,2,3,5,9} (the full-family
        # sweep 1..10 is exercised by the Fig. 1/artifact benches)
        lengths = mupath_divu.run_lengths["divU"]
        assert lengths == frozenset({1, 2, 3, 5, 9})
        assert lengths <= frozenset(range(1, 11))

    def test_many_concrete_paths(self, mupath_divu):
        assert len(mupath_divu.concrete_paths) >= 9

    def test_divu_revisit_is_consecutive(self, mupath_divu):
        for upath in mupath_divu.upaths:
            if "divU" in upath.pl_set:
                assert upath.revisit["divU"] in ("consecutive", "none")

    def test_div_decision_at_own_unit(self, mupath_divu):
        assert "divU" in mupath_divu.decisions.sources


class TestLwSynthesis:
    def test_stall_and_fast_paths(self, mupath_lw):
        sets = {u.pl_set for u in mupath_lw.upaths}
        assert any("ldStall" in s for s in sets)
        assert any("ldFin" in s and "ldStall" not in s for s in sets)

    def test_issue_decision_matches_paper(self, mupath_lw):
        # Fig. 4b: issue -> {ldFin, ...} or {LSQ, ldStall, ...}
        dsts = mupath_lw.decisions.destinations("issue")
        assert any("ldFin" in d for d in dsts)
        assert any("LSQ" in d and "ldStall" in d for d in dsts)

    def test_lsq_and_ldstall_joint_occupancy(self, mupath_lw):
        for upath in mupath_lw.upaths:
            if "LSQ" in upath.pl_set:
                assert "ldStall" in upath.pl_set


class TestDuvPlReachability:
    @pytest.fixture(scope="class")
    def duv_tool(self, core_design, core_provider):
        # a fresh tool: caching DUV-level reachability on the shared session
        # tool would restrict the other fixtures' IUV PL sets
        return Rtl2MuPath(core_design, core_provider)

    def test_valid_pls_reachable_and_candidates_pruned(self, duv_tool):
        reachable = duv_tool.duv_pl_reachability(["MUL", "DIVU", "LW", "SW", "BEQ"])
        metadata = duv_tool.metadata
        for name in metadata.pls:
            assert name in reachable, name
        for name in metadata.candidate_pls:
            assert name not in reachable, name

    def test_induction_stats_recorded(self, duv_tool):
        duv_tool.duv_pl_reachability(["MUL"])  # cached after the first call
        engines = {r.engine for r in duv_tool.stats.results}
        assert "k-induction" in engines


class TestIndexedAnswersMatchQueries:
    """Cross-check: the visit-profile index answers == direct Query evaluation."""

    @pytest.fixture(scope="class")
    def db_and_pc(self, core_design, core_provider):
        group = core_provider.mupath_groups("LW")[0]
        db = TraceDB(core_design.netlist, group.contexts[:200], complete=False)
        return db, group.iuv_pc

    def test_eventually_queries_agree(self, core_design, db_and_pc, mupath_lw):
        db, pc = db_and_pc
        engine = EnumerativeEngine(db)
        metadata = core_design.metadata
        for pl_name in ("IF", "issue", "ldFin", "divU", "mulU"):
            expr = metadata.pl(pl_name).visited_by(pc)
            direct = engine.check(Query("x", Eventually(expr)))
            indexed = pl_name in mupath_lw.iuv_pls
            if direct.outcome == REACHABLE:
                assert indexed, pl_name

    def test_sequence_queries_agree(self, core_design, db_and_pc, mupath_lw):
        db, pc = db_and_pc
        engine = EnumerativeEngine(db)
        metadata = core_design.metadata
        edges_direct = set()
        for pl0, pl1 in (("IF", "ID"), ("ID", "issue"), ("issue", "ldFin")):
            prop = Sequence(
                metadata.pl(pl0).visited_by(pc), metadata.pl(pl1).visited_by(pc)
            )
            if engine.check(Query("e", prop)).outcome == REACHABLE:
                edges_direct.add((pl0, pl1))
        all_edges = set()
        for upath in mupath_lw.upaths:
            all_edges |= upath.hb_edges
        assert edges_direct <= all_edges

    def test_dominates_queries_agree(self, core_design, db_and_pc, mupath_lw):
        db, pc = db_and_pc
        engine = EnumerativeEngine(db)
        metadata = core_design.metadata
        gate = metadata.iuv_gone(pc)
        # "ID dominates issue": cover(!ID_visited & issue_visited) unreachable
        prop = VisitedCover(
            [metadata.pl("issue").visited_by(pc)],
            [metadata.pl("ID").visited_by(pc)],
            gate=gate,
        )
        result = engine.check(Query("dom", prop))
        assert result.outcome != REACHABLE
        assert ("ID", "issue") in mupath_lw.dominates


class TestConfig:
    def test_truncated_family_degrades_verdicts(self, core_design):
        from repro.designs import ContextFamilyConfig, CoreContextProvider

        provider = CoreContextProvider(
            xlen=8,
            config=ContextFamilyConfig(
                horizon=40, neighbors=("DIV",), max_contexts=8,
                iuv_values=(0, 1), neighbor_values=(0,),
            ),
        )
        tool = Rtl2MuPath(core_design, provider)
        result = tool.synthesize("ADD")
        assert result.truncated
        outcomes = {r.outcome for r in tool.stats.results}
        assert "undetermined" in outcomes

    def test_candidate_cap(self, core_design, core_provider):
        tool = Rtl2MuPath(
            core_design, core_provider, config=Rtl2MuPathConfig(max_candidate_sets=4)
        )
        result = tool.synthesize("ADD")
        assert result.candidate_sets_considered <= 4 + len(result.upaths)

"""SynthLC integration tests: transmitter typing and leakage signatures.

One session-scoped classification run over a reduced scope (LW / SW / DIVU
as transponders; SW / LW / DIVU / BEQ as transmitters) backs the
assertions; they mirror the paper's headline CVA6 findings (SS VII-A1).
"""

import pytest

from repro.designs import ContextFamilyConfig, CoreContextProvider
from repro.core.synthlc import SynthLC, SynthLCConfig, instrument_design

TAINT_FAMILY = ContextFamilyConfig(
    horizon=44,
    neighbors=("DIV", "SW", "LW"),
    iuv_values=(0, 1, 255),
    neighbor_values=(0, 1, 2, 255),
    instrumented=True,
)


@pytest.fixture(scope="session")
def synthlc_result(core_design, mupath_tool, mupath_lw, mupath_divu):
    mupath_sw = mupath_tool.synthesize("SW")
    provider = CoreContextProvider(xlen=8, config=TAINT_FAMILY)
    tool = SynthLC(core_design, provider)
    results = {"LW": mupath_lw, "DIVU": mupath_divu, "SW": mupath_sw}
    result = tool.classify(results, transmitters=["SW", "LW", "DIVU", "BEQ"])
    return result


class TestTransmitterTyping:
    def test_divu_is_intrinsic_transmitter(self, synthlc_result):
        assert "DIVU" in synthlc_result.intrinsic_transmitters

    def test_sw_and_beq_are_dynamic_transmitters(self, synthlc_result):
        assert "SW" in synthlc_result.dynamic_transmitters
        assert "BEQ" in synthlc_result.dynamic_transmitters

    def test_lw_is_younger_dynamic_transmitter(self, synthlc_result):
        # the novel SS VII-A1 channel: younger loads transmit to committed
        # stores through memory-port contention
        assert "LW" in synthlc_result.transmitters["dynamic_younger"]

    def test_no_static_transmitters_on_core(self, synthlc_result):
        # the paper finds none on the CVA6 core (no persistent uarch state
        # inside the verified scope; the front-end is black-boxed)
        assert not synthlc_result.static_transmitters

    def test_all_transponders_are_candidates(self, synthlc_result):
        assert set(synthlc_result.candidate_transponders) == {"LW", "SW", "DIVU"}


class TestSignatures:
    def _sig(self, result, name):
        matches = [s for s in result.signatures if s.name == name]
        assert matches, "missing signature %s (have %s)" % (
            name,
            [s.name for s in result.signatures],
        )
        return matches[0]

    def test_lw_issue_signature_matches_fig5(self, synthlc_result):
        # LD_issue(LD^N, ST^D_O): store-to-load page-offset stalling
        signature = self._sig(synthlc_result, "LW_issue")
        inputs = {(t.transmitter, t.ttype) for t in signature.inputs if not t.false_positive}
        assert ("SW", "dynamic_older") in inputs
        dsts = [set(d) for d in signature.destinations]
        assert any("ldFin" in d for d in dsts)
        assert any({"LSQ", "ldStall"} <= d for d in dsts)

    def test_sw_comstb_signature_is_novel_channel(self, synthlc_result):
        # ST_comSTB(ST^N, LD^D_Y): Fig. 5's fourth leakage function
        signature = self._sig(synthlc_result, "SW_comSTB")
        inputs = {(t.transmitter, t.ttype) for t in signature.inputs if not t.false_positive}
        assert ("LW", "dynamic_younger") in inputs
        dsts = [set(d) for d in signature.destinations]
        assert {"comSTB"} in dsts and any("memRq" in d for d in dsts)

    def test_divu_unit_signature_is_intrinsic(self, synthlc_result):
        signature = self._sig(synthlc_result, "DIVU_divU")
        inputs = {(t.transmitter, t.ttype) for t in signature.inputs if not t.false_positive}
        assert ("DIVU", "intrinsic") in inputs

    def test_signature_needs_two_tagged_decisions(self, synthlc_result):
        # footnote 3: every emitted signature exposes >1 observations
        for signature in synthlc_result.signatures:
            assert signature.output_range >= 2

    def test_render_shape(self, synthlc_result):
        text = self._sig(synthlc_result, "LW_issue").render()
        assert text.startswith("dst LW_issue(")
        assert "->" in text

    def test_stats_accumulated(self, synthlc_result):
        assert synthlc_result.stats.count > 100
        assert synthlc_result.stats.undetermined_fraction == 0.0


class TestInstrumentDesign:
    def test_blocks_arf_and_amem(self, core_design):
        design = instrument_design(core_design)
        blocked = design.config.blocked_registers
        assert "arf_w1" in blocked and "amem_w0" in blocked

    def test_introduce_map_targets_operand_registers(self, core_design):
        design = instrument_design(core_design)
        assert design.config.introduce_map == {
            "iss_rs1v": "intro_cond_rs1",
            "iss_rs2v": "intro_cond_rs2",
        }

    def test_extra_persistent_registers(self, core_design):
        design = instrument_design(core_design, extra_persistent=["fetch_pc"])
        assert "fetch_pc" in design.config.persistent_registers

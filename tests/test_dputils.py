"""Datapath helper tests: barrel shifts, priority encoder, divider."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs.dputils import (
    msb_index,
    signed_lt,
    unsigned_divide,
    var_shift_left,
    var_shift_right,
)
from repro.rtl import Module, elaborate
from repro.sim import Simulator


def _eval(build):
    """Build a module around ``build(m) -> dict of named nodes`` and step it."""
    m = Module("t")
    for name, node in build(m).items():
        m.name_signal(name, node)
    sim = Simulator(elaborate(m))
    return sim.step({})


@given(value=st.integers(0, 255), amount=st.integers(0, 7))
def test_var_shift_left(value, amount):
    obs = _eval(
        lambda m: {"out": var_shift_left(m.const(value, 8), m.const(amount, 3))}
    )
    assert obs["out"] == (value << amount) & 0xFF


@given(value=st.integers(0, 255), amount=st.integers(0, 7))
def test_var_shift_right(value, amount):
    obs = _eval(
        lambda m: {"out": var_shift_right(m.const(value, 8), m.const(amount, 3))}
    )
    assert obs["out"] == value >> amount


def test_var_shift_saturates_past_width():
    obs = _eval(
        lambda m: {"out": var_shift_left(m.const(0xFF, 4), m.const(5, 3))}
    )
    assert obs["out"] == 0


@given(value=st.integers(0, 255))
def test_msb_index(value):
    obs = _eval(lambda m: {"out": msb_index(m.const(value, 8))})
    expected = value.bit_length() - 1 if value else 0
    assert obs["out"] == expected


@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_unsigned_divide(a, b):
    def build(m):
        q, r = unsigned_divide(m.const(a, 8), m.const(b, 8))
        return {"q": q, "r": r}

    obs = _eval(build)
    if b == 0:
        # RISC-V semantics: quotient all-ones, remainder = dividend
        assert obs["q"] == 0xFF and obs["r"] == a
    else:
        assert obs["q"] == a // b
        assert obs["r"] == a % b


@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_signed_lt(a, b):
    obs = _eval(lambda m: {"out": signed_lt(m.const(a, 8), m.const(b, 8))})
    signed = lambda x: x - 256 if x >= 128 else x
    assert obs["out"] == int(signed(a) < signed(b))

"""Tests for the parallel verification job engine (repro.engine).

Covers the four scenarios the engine must get right:

* parallel ``synthesize_all`` is bit-identical to the serial reference;
* a warm proof cache re-checks zero properties, and the telemetry trace
  proves it (cache_hit events, no job_start events);
* the cache auto-invalidates when the netlist or the tool config changes;
* UNDETERMINED outcomes trigger the retry/escalation ladder and are never
  cached as final.

Plus unit coverage for the content hashing, JSON round-trips, and the
PropertyStats satellite fixes.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace

import pytest

from repro.core import Rtl2MuPath, SynthLC
from repro.core.rtl2mupath import Rtl2MuPathConfig
from repro.designs import ContextFamilyConfig, CoreContextProvider, build_core
from repro.designs.core import CoreConfig
from repro.engine import (
    EngineConfig,
    EngineError,
    JobScheduler,
    ProofCache,
    canonical_json,
    content_key,
    netlist_fingerprint,
    synthesis_jobs_for,
)
from repro.engine.serialize import (
    mupath_result_from_dict,
    mupath_result_to_dict,
)
from repro.mc.outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from repro.mc.stats import PropertyStats

TINY_FAMILY = ContextFamilyConfig(
    horizon=24,
    neighbors=("DIV",),
    iuv_values=(0, 1),
    neighbor_values=(0, 1),
    include_deep=False,
)
INSTRS = ("ADD", "DIV", "LW")


def make_tool(design=None, config=None):
    design = design or build_core()
    provider = CoreContextProvider(xlen=design.config.xlen, config=TINY_FAMILY)
    return Rtl2MuPath(design, provider, config=config)


@pytest.fixture(scope="module")
def serial():
    tool = make_tool()
    results = tool.synthesize_all(INSTRS)
    return tool, results


# ----------------------------------------------------------- parallel == serial
class TestParallelIdentical:
    def test_parallel_matches_serial_bit_for_bit(self, serial):
        serial_tool, serial_results = serial
        tool = make_tool()
        engine = JobScheduler(EngineConfig(jobs=2))
        results = tool.synthesize_all(INSTRS, engine=engine)
        assert set(results) == set(serial_results)
        for name in INSTRS:
            assert results[name] == serial_results[name], name
        # exact SS VII-B3 accounting: same property count and verdicts
        assert tool.stats.count == serial_tool.stats.count
        assert tool.stats.outcome_histogram == serial_tool.stats.outcome_histogram
        manifest = engine.last_manifest
        assert manifest.jobs_executed == len(INSTRS)
        assert manifest.reconciles(tool.stats)

    def test_inline_jobs1_matches_serial(self, serial):
        _, serial_results = serial
        tool = make_tool()
        engine = JobScheduler(EngineConfig(jobs=1))
        results = tool.synthesize_all(INSTRS, engine=engine)
        for name in INSTRS:
            assert results[name] == serial_results[name], name


# ------------------------------------------------------------------ warm cache
class TestProofCache:
    def test_warm_cache_rechecks_zero_properties(self, serial, tmp_path):
        _, serial_results = serial
        cache_dir = str(tmp_path / "cache")

        cold_tool = make_tool()
        cold_engine = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        cold_tool.synthesize_all(INSTRS, engine=cold_engine)
        cold = cold_engine.last_manifest
        assert cold.cache_hits == 0
        assert cold.cache_stores == len(INSTRS)
        assert cold.properties_evaluated == cold_tool.stats.count

        trace = tmp_path / "warm.jsonl"
        warm_tool = make_tool()
        warm_engine = JobScheduler(
            EngineConfig(jobs=1, cache_dir=cache_dir, trace_path=str(trace))
        )
        results = warm_tool.synthesize_all(INSTRS, engine=warm_engine)
        warm = warm_engine.last_manifest

        # zero fresh model-checking work, everything replayed
        assert warm.properties_evaluated == 0
        assert warm.jobs_executed == 0
        assert warm.cache_hits == len(INSTRS)
        assert warm.properties_replayed == cold.properties_evaluated
        # replayed verdicts still fold into PropertyStats identically
        assert warm_tool.stats.count == cold_tool.stats.count
        assert warm.reconciles(warm_tool.stats)
        # and the replayed values survive the JSON round-trip exactly
        for name in INSTRS:
            assert results[name] == serial_results[name], name

        # the telemetry trace proves it: cache_hit per job, no job_start
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds.count("cache_hit") == len(INSTRS)
        assert "job_start" not in kinds
        assert "cache_miss" not in kinds
        hit_props = sum(
            e["properties"] for e in events if e["event"] == "cache_hit"
        )
        assert hit_props == warm.properties_replayed

    def test_netlist_change_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        tool = make_tool()
        engine = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        tool.synthesize_all(["ADD"], engine=engine)
        assert engine.last_manifest.cache_stores == 1

        # same instruction, different RTL (bug-fixed core) -> cache miss
        patched = make_tool(design=build_core(CoreConfig(fixed_bugs=True)))
        engine2 = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        patched.synthesize_all(["ADD"], engine=engine2)
        assert engine2.last_manifest.cache_hits == 0
        assert engine2.last_manifest.cache_misses == 1
        assert engine2.last_manifest.jobs_executed == 1

    def test_config_change_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        tool = make_tool()
        engine = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        tool.synthesize_all(["ADD"], engine=engine)

        retuned = make_tool(
            config=Rtl2MuPathConfig(induction_conflict_budget=12345)
        )
        engine2 = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        retuned.synthesize_all(["ADD"], engine=engine2)
        assert engine2.last_manifest.cache_hits == 0
        assert engine2.last_manifest.cache_misses == 1

    def test_job_cache_keys_differ_per_iuv(self, serial):
        tool, _ = serial
        jobs = synthesis_jobs_for(tool, INSTRS)
        keys = {job.cache_key() for job in jobs}
        assert len(keys) == len(INSTRS)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        cache.put("ab" * 32, "job", {"x": 1}, [], final=True)
        assert cache.get("ab" * 32) is not None
        with open(cache._path("ab" * 32), "w") as fh:
            fh.write("{not json")
        assert cache.get("ab" * 32) is None

    def test_put_refuses_nonfinal(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        assert cache.put("cd" * 32, "job", {}, [], final=False) is False
        assert cache.entries() == 0
        assert cache.get("cd" * 32) is None


# --------------------------------------------------------------- fake-job rigs
@dataclass(frozen=True)
class EscalatingJob:
    """Returns UNDETERMINED until ``determined_at``; records its budget."""

    job_id: str = "fake:escalate"
    attempt: int = 0
    budget: int = 100
    determined_at: int = 99

    def execute(self):
        outcome = (
            REACHABLE if self.attempt >= self.determined_at else UNDETERMINED
        )
        value = {"attempt": self.attempt, "budget": self.budget}
        return value, [CheckResult("q", outcome, "fake")]

    def escalated(self, attempt, factor):
        return replace(self, attempt=attempt, budget=self.budget * factor ** attempt)

    def cache_key(self):
        return None


@dataclass(frozen=True)
class CacheableJob:
    """Constant-outcome job with a fixed cache key."""

    job_id: str
    key: str
    outcome: str

    def execute(self):
        return "value:" + self.outcome, [CheckResult("q", self.outcome, "fake")]

    def escalated(self, attempt, factor):
        return self

    def cache_key(self):
        return self.key

    @staticmethod
    def encode_value(value):
        return value

    @staticmethod
    def decode_value(payload):
        return payload

    @staticmethod
    def value_is_final(value):
        return True


@dataclass(frozen=True)
class SleepyJob:
    job_id: str = "fake:sleepy"
    seconds: float = 5.0

    def execute(self):
        time.sleep(self.seconds)
        return "done", []

    def escalated(self, attempt, factor):
        return self

    def cache_key(self):
        return None


@dataclass(frozen=True)
class CrashyJob:
    job_id: str = "fake:crashy"

    def execute(self):
        raise RuntimeError("boom")

    def escalated(self, attempt, factor):
        return self

    def cache_key(self):
        return None


# -------------------------------------------------------------- retry ladder
class TestRetryEscalation:
    def test_undetermined_escalates_until_determined(self):
        engine = JobScheduler(
            EngineConfig(jobs=1, max_attempts=4, escalation_factor=4)
        )
        stats = PropertyStats(label="t")
        outcome = engine.run([EscalatingJob(determined_at=2)], stats=stats)
        value = outcome["fake:escalate"]
        # determined on the third attempt with a 4**2-escalated budget
        assert value == {"attempt": 2, "budget": 1600}
        manifest = outcome.manifest
        assert manifest.attempts == 3
        assert manifest.retries == 2
        # only the winning attempt's verdicts fold into the stats
        assert stats.count == 1
        assert stats.outcome_histogram == {REACHABLE: 1}
        assert manifest.reconciles(stats)

    def test_exhausted_ladder_degrades_to_best_attempt(self):
        engine = JobScheduler(EngineConfig(jobs=1, max_attempts=3))
        outcome = engine.run([EscalatingJob(determined_at=99)])
        # all attempts UNDETERMINED: keep the last result, do not fail
        assert outcome["fake:escalate"]["attempt"] == 2
        assert outcome.manifest.attempts == 3
        assert outcome.manifest.jobs_executed == 1
        assert outcome.manifest.jobs_failed == 0

    def test_undetermined_never_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        job = CacheableJob(job_id="u", key="11" * 32, outcome=UNDETERMINED)
        engine = JobScheduler(
            EngineConfig(jobs=1, cache_dir=cache_dir, max_attempts=1)
        )
        engine.run([job])
        assert engine.last_manifest.cache_stores == 0
        assert engine.last_manifest.cache_skipped_nonfinal == 1
        assert ProofCache(cache_dir).entries() == 0
        # a second run misses and re-executes -- no stale replay
        engine2 = JobScheduler(
            EngineConfig(jobs=1, cache_dir=cache_dir, max_attempts=1)
        )
        engine2.run([job])
        assert engine2.last_manifest.cache_misses == 1
        assert engine2.last_manifest.jobs_executed == 1

    def test_determined_job_cached_and_replayed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        job = CacheableJob(job_id="r", key="22" * 32, outcome=UNREACHABLE)
        engine = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        engine.run([job])
        assert engine.last_manifest.cache_stores == 1
        engine2 = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        outcome = engine2.run([job])
        assert engine2.last_manifest.cache_hits == 1
        assert engine2.last_manifest.jobs_executed == 0
        assert outcome["r"] == "value:" + UNREACHABLE

    def test_timeout_aborts_attempts(self):
        engine = JobScheduler(
            EngineConfig(jobs=1, max_attempts=2, timeout_seconds=0.1)
        )
        with pytest.raises(EngineError):
            engine.run([SleepyJob(seconds=5.0)])
        manifest = engine.last_manifest
        assert manifest.timeouts == 2
        assert manifest.jobs_failed == 1

    def test_keep_going_maps_failures_to_none(self):
        engine = JobScheduler(
            EngineConfig(jobs=1, max_attempts=2, keep_going=True)
        )
        outcome = engine.run(
            [CrashyJob(), CacheableJob(job_id="ok", key="33" * 32,
                                      outcome=REACHABLE)]
        )
        assert outcome["fake:crashy"] is None
        assert outcome["ok"] == "value:" + REACHABLE
        assert outcome.manifest.jobs_failed == 1
        assert outcome.manifest.jobs_executed == 1


# ------------------------------------------------------------------- SynthLC
class TestSynthLCEngine:
    def test_engine_classification_matches_serial_and_caches(
        self, serial, tmp_path
    ):
        _, mup = serial
        design = build_core()
        provider = CoreContextProvider(
            xlen=design.config.xlen,
            config=replace(TINY_FAMILY, instrumented=True),
        )
        work = {"DIV": mup["DIV"]}

        ref_tool = SynthLC(design, provider)
        ref = ref_tool.classify(work, transmitters=["DIV"])

        cache_dir = str(tmp_path / "cache")
        eng_tool = SynthLC(design, provider)
        engine = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        out = eng_tool.classify(work, transmitters=["DIV"], engine=engine)

        assert out.tags_by_decision == ref.tags_by_decision
        assert out.transmitters == ref.transmitters
        assert [s.render() for s in out.signatures] == [
            s.render() for s in ref.signatures
        ]
        assert eng_tool.stats.count == ref_tool.stats.count
        assert engine.last_manifest.reconciles(eng_tool.stats)

        # warm replay: zero fresh properties, identical classification
        warm_tool = SynthLC(design, provider)
        warm_engine = JobScheduler(EngineConfig(jobs=1, cache_dir=cache_dir))
        warm = warm_tool.classify(work, transmitters=["DIV"], engine=warm_engine)
        assert warm_engine.last_manifest.properties_evaluated == 0
        assert warm_engine.last_manifest.jobs_executed == 0
        assert warm.tags_by_decision == ref.tags_by_decision
        assert warm.transmitters == ref.transmitters


# --------------------------------------------------------- hashing/serializing
class TestContentHashing:
    def test_netlist_fingerprint_stable_across_builds(self):
        assert netlist_fingerprint(build_core().netlist) == netlist_fingerprint(
            build_core().netlist
        )

    def test_netlist_fingerprint_sees_rtl_changes(self):
        base = netlist_fingerprint(build_core().netlist)
        fixed = netlist_fingerprint(
            build_core(CoreConfig(fixed_bugs=True)).netlist
        )
        assert base != fixed

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 2, "a": 1}) == canonical_json({"a": 1, "b": 2})
        assert canonical_json({"s": {3, 1, 2}}) == canonical_json({"s": [1, 2, 3]})

    def test_content_key_sensitivity(self):
        base = content_key(netlist="n", config={"k": 1})
        assert base == content_key(netlist="n", config={"k": 1})
        assert base != content_key(netlist="m", config={"k": 1})
        assert base != content_key(netlist="n", config={"k": 2})

    def test_mupath_result_json_roundtrip(self, serial):
        _, results = serial
        for name in INSTRS:
            payload = json.loads(json.dumps(mupath_result_to_dict(results[name])))
            assert mupath_result_from_dict(payload) == results[name], name


# --------------------------------------------------------- deadline nesting
class TestDeadlineNesting:
    """Regression tests: ``_deadline`` must restore an enclosing alarm.

    The original implementation armed SIGALRM unconditionally and
    cancelled it on exit, so an inner deadline silently disarmed an
    outer one -- an inline job with its own timeout would erase the
    enclosing run's deadline.
    """

    def test_outer_deadline_survives_inner_scope(self):
        from repro.engine.scheduler import JobTimeout, _deadline

        with pytest.raises(JobTimeout):
            with _deadline(0.3):
                with _deadline(10.0):
                    time.sleep(0.05)  # inner exits cleanly
                # the outer alarm must be re-armed with its remaining time
                time.sleep(5.0)  # the outer ~0.25s fires here

    def test_inner_timeout_leaves_outer_armed(self):
        import signal as _signal

        from repro.engine.scheduler import JobTimeout, _deadline

        with _deadline(30.0):
            with pytest.raises(JobTimeout):
                with _deadline(0.05):
                    time.sleep(5.0)
            remaining = _signal.getitimer(_signal.ITIMER_REAL)[0]
            assert 0.0 < remaining <= 30.0
        # and the outermost exit cancels the alarm entirely
        assert _signal.getitimer(_signal.ITIMER_REAL)[0] == 0.0

    def test_single_deadline_cancels_on_clean_exit(self):
        import signal as _signal

        from repro.engine.scheduler import _deadline

        with _deadline(30.0):
            pass
        assert _signal.getitimer(_signal.ITIMER_REAL)[0] == 0.0


# ------------------------------------------------------------ stats satellites
class TestPropertyStatsSatellites:
    def test_merged_label_skips_empty_sides(self):
        named = PropertyStats(label="bmc")
        assert PropertyStats().merged(named).label == "bmc"
        assert named.merged(PropertyStats()).label == "bmc"
        assert named.merged(PropertyStats(label="ind")).label == "bmc+ind"
        assert PropertyStats().merged(PropertyStats()).label == ""

    def test_to_dict_roundtrip(self):
        stats = PropertyStats(label="x")
        stats.record(
            CheckResult("q1", REACHABLE, "bmc", witness=[{"a": 1}],
                        time_seconds=0.5, detail="d")
        )
        stats.record(CheckResult("q2", UNDETERMINED, "kind"))
        back = PropertyStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert back.label == stats.label
        assert back.results == stats.results
        assert back.outcome_histogram == stats.outcome_histogram

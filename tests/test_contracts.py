"""Contract-derivation tests over synthetic SynthLC fixtures (no simulation)."""

import pytest

from repro.core.contracts import (
    TABLE1_COMPONENTS,
    CtContract,
    DolmaContract,
    Mi6Contract,
    OisaContract,
    SdoContract,
    SptContract,
    SttContract,
    derive_all_contracts,
)
from repro.core.decisions import DecisionSet
from repro.core.rtl2mupath import MuPathResult, UPathSummary
from repro.core.synthlc import LeakageSignature, SynthLCResult, TransmitterTag
from repro.mc.stats import PropertyStats


def tag(t, ttype, op="rs1", fp=False):
    return TransmitterTag(transmitter=t, ttype=ttype, operand=op, false_positive=fp)


def sigfix(p, src, dsts, tags):
    return LeakageSignature(
        transponder=p,
        src=src,
        destinations=tuple(frozenset(d) for d in dsts),
        inputs=tuple(tags),
    )


@pytest.fixture
def fixture_result():
    """A hand-built SynthLC result shaped like the paper's findings."""
    signatures = [
        # DIV: explicit channel at its own unit (intrinsic transmitter)
        sigfix("DIV", "divU", [["divU"], ["scbFin"]], [tag("DIV", "intrinsic"),
                                                       tag("DIV", "intrinsic", "rs2")]),
        # LW: implicit channel from an older dynamic store (store-to-load)
        sigfix("LW", "issue", [["ldFin"], ["LSQ", "ldStall"]],
               [tag("SW", "dynamic_older")]),
        # SW: the novel channel from a younger dynamic load
        sigfix("SW", "comSTB", [["comSTB"], ["memRq"]],
               [tag("LW", "dynamic_younger")]),
        # ST on the cache: static LD transmitter (tag state)
        sigfix("ST", "wBVld", [["wRTag"], ["wRTag", "wrBank0"]],
               [tag("LD", "static"), tag("ST", "intrinsic")]),
        # ADD stalled behind DIV at the scoreboard: secondary-style stall
        sigfix("ADD", "scbFin", [["scbFin"], ["scbCmt"]],
               [tag("DIV", "dynamic_older")]),
        # a false-positive-only input (should not create transmitters)
        sigfix("BEQ", "scbIss", [["aluU"], ["scbFin"]],
               [tag("MUL", "dynamic_older", fp=True),
                tag("BEQ", "dynamic_older")]),
    ]
    return SynthLCResult(
        signatures=signatures,
        transponders=["ADD", "BEQ", "DIV", "LW", "SW", "ST"],
        candidate_transponders=["ADD", "BEQ", "DIV", "LW", "SW", "ST"],
        transmitters={
            "intrinsic": {"DIV", "ST"},
            "dynamic_older": {"SW", "DIV", "BEQ"},
            "dynamic_younger": {"LW"},
            "static": {"LD"},
        },
        tags_by_decision={},
        stats=PropertyStats(),
    )


@pytest.fixture
def fixture_mupaths():
    def res(name, run_lengths, pl_sets):
        upaths = [
            UPathSummary(
                pl_set=frozenset(s),
                revisit={},
                hb_edges=frozenset(),
                run_lengths={k: frozenset(v) for k, v in run_lengths.items()},
            )
            for s in pl_sets
        ]
        return MuPathResult(
            iuv=name,
            iuv_pls=frozenset().union(*map(frozenset, pl_sets)) if pl_sets else frozenset(),
            dominates=frozenset(),
            exclusive=frozenset(),
            candidate_sets_considered=0,
            naive_power_set_size=0,
            upaths=upaths,
            concrete_paths=[],
            decisions=DecisionSet(iuv=name, by_source={}),
            run_lengths={k: frozenset(v) for k, v in run_lengths.items()},
            truncated=False,
        )

    return {
        "DIV": res("DIV", {"divU": range(1, 11)}, [["IF", "divU", "scbCmt"]]),
        "LW": res("LW", {}, [["IF", "ldFin"]]),
        "SW": res("SW", {}, [["IF", "comSTB", "memRq"]]),
        "ST": res("ST", {}, [["wBVld", "wRTag"]]),
        "ADD": res("ADD", {}, [["IF", "scbFin", "scbCmt"]]),
        "BEQ": res("BEQ", {}, [["IF", "aluU"]]),
    }


class TestCt:
    def test_unsafe_operands(self, fixture_result):
        ct = CtContract.derive(fixture_result)
        assert ct.is_unsafe("DIV", "rs1") and ct.is_unsafe("DIV", "rs2")
        assert ct.is_unsafe("SW", "rs1")
        assert ct.is_unsafe("LW", "rs1")
        assert not ct.is_unsafe("ADD", "rs1")

    def test_false_positive_inputs_excluded(self, fixture_result):
        ct = CtContract.derive(fixture_result)
        assert not ct.is_unsafe("MUL", "rs1")

    def test_render(self, fixture_result):
        text = CtContract.derive(fixture_result).render()
        assert "DIV.rs1" in text


class TestMi6:
    def test_channel_split(self, fixture_result):
        mi6 = Mi6Contract.derive(fixture_result)
        dynamic_names = {s.name for s in mi6.dynamic_channels}
        static_names = {s.name for s in mi6.static_channels}
        assert "LW_issue" in dynamic_names
        assert "ST_wBVld" in static_names
        assert "LW_issue" not in static_names

    def test_purge_targets_cover_static_pls(self, fixture_result):
        mi6 = Mi6Contract.derive(fixture_result)
        targets = mi6.purge_targets()
        assert "wBVld" in targets and "wRTag" in targets


class TestOisa:
    def test_div_unit_flagged(self, fixture_result, fixture_mupaths):
        oisa = OisaContract.derive(fixture_result, fixture_mupaths)
        units = {(i, pl) for i, _, pl in oisa.input_dependent_units}
        assert ("DIV", "divU") in units

    def test_loads_not_arithmetic_units(self, fixture_result, fixture_mupaths):
        oisa = OisaContract.derive(fixture_result, fixture_mupaths)
        assert all(i != "LW" for i, _, _ in oisa.input_dependent_units)


class TestStt:
    def test_five_components(self, fixture_result):
        stt = SttContract.derive(fixture_result)
        assert ("DIV", "divU") in stt.explicit_channels
        assert ("LW", "issue") in stt.implicit_channels
        assert "LW" in stt.implicit_branches
        assert ("ST", "wBVld") in stt.prediction_channels  # static-driven
        assert ("SW", "comSTB") in stt.resolution_channels  # dynamic-driven

    def test_explicit_requires_intrinsic(self, fixture_result):
        stt = SttContract.derive(fixture_result)
        assert ("LW", "issue") not in stt.explicit_channels


class TestSdo:
    def test_variant_pins_worst_case(self, fixture_result, fixture_mupaths):
        sdo = SdoContract.derive(fixture_result, fixture_mupaths)
        assert "DIV" in sdo.variants
        _pl_set, forced = sdo.variants["DIV"]
        assert forced["divU"] == 10  # worst-case residency

    def test_variants_only_for_explicit_channels(self, fixture_result, fixture_mupaths):
        sdo = SdoContract.derive(fixture_result, fixture_mupaths)
        assert "LW" not in sdo.variants


class TestDolma:
    def test_components(self, fixture_result, fixture_mupaths):
        dolma = DolmaContract.derive(fixture_result, fixture_mupaths)
        assert "DIV" in dolma.variable_time_uops
        assert "LW" in dolma.inducive_uops
        assert "SW" in dolma.resolvent_uops
        assert ("LW", "issue") in dolma.resolution_points
        assert "LD" in dolma.persistent_state_uops

    def test_false_positive_not_resolvent(self, fixture_result, fixture_mupaths):
        dolma = DolmaContract.derive(fixture_result, fixture_mupaths)
        assert "MUL" not in dolma.resolvent_uops


class TestSptAndAll:
    def test_spt_combines(self, fixture_result):
        spt = SptContract.derive(fixture_result)
        assert spt.ct.unsafe_operands and spt.stt.explicit_channels

    def test_derive_all_and_summary(self, fixture_result, fixture_mupaths):
        contracts = derive_all_contracts(fixture_result, fixture_mupaths)
        text = contracts.summary()
        for key in ("CT:", "MI6:", "OISA:", "STT:", "SDO:", "Dolma:", "SPT:"):
            assert key in text

    def test_table1_component_map_complete(self):
        # every contract family appears in the Table I mapping
        prefixes = {key.split(".")[0] for key in TABLE1_COMPONENTS}
        assert prefixes == {"ct", "mi6", "oisa", "stt", "sdo", "dolma"}
        # each entry names only valid signature components
        valid = {"u", "P", "src", "TN", "TD", "TS", "a"}
        for components in TABLE1_COMPONENTS.values():
            assert set(components) <= valid

"""CLI tests (parser structure and the fast commands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["upath", "ADD"],
            ["decisions", "LW"],
            ["uspec", "ADD", "LW"],
            ["table2"],
            ["sc-safe", "DIV", "arf_w1"],
            ["synth-all"],
            ["synth-all", "ADD", "DIV", "--jobs", "4",
             "--cache-dir", ".repro-cache", "--trace", "run.jsonl",
             "--timeout", "120", "--max-attempts", "2"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_synth_all_defaults(self):
        args = build_parser().parse_args(["synth-all"])
        assert args.instrs == []
        assert args.jobs is None
        assert args.cache_dir is None
        assert args.trace is None
        assert args.max_attempts == 3

    def test_synth_all_unknown_instruction_exit_code(self, capsys):
        assert main(["synth-all", "NOPE"]) == 2
        assert "unknown instruction" in capsys.readouterr().out

    def test_invalid_instruction_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["upath", "NOPE"])

    def test_command_required(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])


class TestFastCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "core" in out and "cache" in out and "uFSMs" in out

    def test_sc_safe_violation_exit_code(self, capsys):
        # DIV with a secret dividend: must report a violation (exit 1)
        assert main(["sc-safe", "DIV", "arf_w1"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out

    def test_sc_safe_clean_exit_code(self, capsys):
        assert main(["sc-safe", "XOR", "arf_w1"]) == 0
        out = capsys.readouterr().out
        assert "holds" in out

"""Odds and ends: context dataclasses, stats edge cases, outcome helpers."""

import pytest

from repro.mc import Context, PropertyStats, ReactiveContext
from repro.mc.outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult


class TestContextDataclasses:
    def test_static_context_is_hashable_and_frozen(self):
        a = Context.make({"r": 1}, [{"x": 0}, {"x": 1}])
        b = Context.make({"r": 1}, [{"x": 0}, {"x": 1}])
        assert a == b and hash(a) == hash(b)
        with pytest.raises(Exception):
            a.label = "nope"

    def test_reset_overrides_sorted(self):
        a = Context.make({"b": 2, "a": 1}, [])
        assert a.reset_overrides == (("a", 1), ("b", 2))

    def test_reactive_defaults(self):
        ctx = ReactiveContext.make({}, lambda: (lambda t, prev: {}), horizon=4)
        assert ctx.feedback_signals == ("fetch_ready", "pipe_quiesce")
        assert ctx.horizon == 4


class TestPropertyStats:
    def test_empty_stats(self):
        stats = PropertyStats(label="empty")
        assert stats.count == 0
        assert stats.mean_time == 0.0
        assert stats.undetermined_fraction == 0.0
        assert "0 properties" in stats.summary()

    def test_histogram(self):
        stats = PropertyStats()
        for outcome in (REACHABLE, REACHABLE, UNREACHABLE, UNDETERMINED):
            stats.record(CheckResult("q", outcome, "e", time_seconds=0.25))
        assert stats.outcome_histogram == {
            "reachable": 2,
            "unreachable": 1,
            "undetermined": 1,
        }
        assert stats.undetermined_fraction == 0.25
        assert stats.total_time == 1.0


class TestCheckResult:
    def test_predicates(self):
        assert CheckResult("q", REACHABLE, "e").reachable
        assert CheckResult("q", UNREACHABLE, "e").unreachable
        assert CheckResult("q", UNDETERMINED, "e").undetermined

    def test_interpretation_only_affects_undetermined(self):
        result = CheckResult("q", REACHABLE, "e")
        assert result.interpret_undetermined(UNREACHABLE) == REACHABLE
        result = CheckResult("q", UNDETERMINED, "e")
        assert result.interpret_undetermined(UNREACHABLE) == UNREACHABLE


class TestExamplesImportable:
    def test_examples_compile(self):
        import pathlib
        import py_compile

        examples = pathlib.Path(__file__).resolve().parent.parent / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            py_compile.compile(str(script), doraise=True)

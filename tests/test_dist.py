"""Localhost integration suite for the distributed campaign runner.

The contract under test: a broker plus worker nodes on localhost is an
*implementation detail* -- every campaign must produce the same values,
property verdicts, and reconciling manifests as the in-process
scheduler, including across mid-campaign worker death.  Covers:

* wire protocol round-trips (jobs rebuild ``==``-equal with identical
  ``cache_key()``; reports fold byte-identically) and protocol fuzz
  (garbage frames get an ``error`` reply, never a broker crash);
* verdict parity: a reach campaign and a core μPATH synthesis /
  SynthLC classification over a broker + two nodes vs ``--jobs 2``;
* node fault policy: an injected worker death resharding the group and
  quarantining the node; a poisonous job degrading to a quarantined
  verdict; a real SIGKILL of a ``repro worker`` subprocess mid-campaign;
* backpressure: the inflight bound, parked submits releasing when
  capacity appears, and shed submits raising :class:`BrokerShed`;
* the shared proof cache: write-behind durability across a broker
  restart (checksums intact, warm replay re-checks zero properties)
  and rejection of corrupt puts;
* the scheduler's clean-interrupt checkpoint (a Ctrl-C mid-fold leaves
  a resumable run dir) and the ``repro cache-info`` CLI.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import os
import random
import socket
import subprocess
import sys
import threading
import time
from dataclasses import replace

import pytest

from repro.core import Rtl2MuPath, SynthLC
from repro.designs import ContextFamilyConfig, CoreContextProvider, build_core
from repro.dist import (
    Broker,
    BrokerClient,
    BrokerConfig,
    BrokerShed,
    CacheOnlyScheduler,
    DistScheduler,
    RemoteProofCache,
    WorkerNode,
)
from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    decode_job,
    encode_frame,
    encode_job,
    register_job_type,
    report_from_wire,
    report_to_wire,
    worker_options,
)
from repro.dist.scheduler import parse_broker_address
from repro.engine import EngineConfig, JobScheduler, ProofCache
from repro.engine.cache import CACHE_FORMAT_VERSION, entry_checksum
from repro.engine.scheduler import AttemptRecord, WorkerReport
from repro.engine.specs import reach_jobs_for_corpus
from repro.faults import FaultPlan, FaultSpec
from repro.mc.outcomes import REACHABLE, UNREACHABLE, CheckResult
from repro.mc.stats import PropertyStats

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "fuzz_corpus")

TINY_FAMILY = ContextFamilyConfig(
    horizon=24,
    neighbors=("DIV",),
    iuv_values=(0, 1),
    neighbor_values=(0, 1),
    include_deep=False,
)
INSTRS = ("ADD", "DIV")


# ------------------------------------------------------------------ helpers
def wait_for(predicate, timeout=30.0, interval=0.005, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("timed out waiting for %s" % message)


class BrokerHarness:
    """A live broker on an ephemeral port, served from a daemon thread."""

    def __init__(self, **overrides):
        overrides.setdefault("host", "127.0.0.1")
        overrides.setdefault("port", 0)
        overrides.setdefault("heartbeat_seconds", 0.5)
        self.broker = Broker(BrokerConfig(**overrides))
        self.loop = None
        self.port = None
        self._ready = threading.Event()
        self._stop = None
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "broker failed to start"
        return self

    def _serve(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self._stop = asyncio.Event()

        async def main():
            await self.broker.start()
            self.port = self.broker.port
            self._ready.set()
            await self._stop.wait()
            await self.broker.stop()

        try:
            self.loop.run_until_complete(main())
        finally:
            self.loop.close()

    def stop(self):
        if self._thread is None or not self._thread.is_alive():
            return
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(90)
        assert not self._thread.is_alive(), "broker thread failed to stop"

    def stats(self):
        async def _snap():
            return self.broker.stats_dict()

        return asyncio.run_coroutine_threadsafe(_snap(), self.loop).result(15)

    def counts(self):
        return self.stats()["counts"]

    def address(self):
        return "127.0.0.1:%d" % self.port

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()


class WorkerHarness:
    """An inline-mode worker node served from a daemon thread."""

    def __init__(self, port, node_id, slots=1, fault_plan=None):
        self.node = WorkerNode(
            "127.0.0.1",
            port,
            slots=slots,
            mode="inline",
            fault_plan=fault_plan,
            node_id=node_id,
            heartbeat_seconds=0.1,
        )
        self._thread = None

    def start(self):
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.node.run()), daemon=True
        )
        self._thread.start()
        return self

    def join(self, timeout=30.0):
        if self._thread is not None:
            self._thread.join(timeout)


@register_job_type
@dataclasses.dataclass(frozen=True)
class EchoJob:
    """A trivial wire-transportable job for broker-policy tests."""

    name: str
    group: str = "echo"
    seconds: float = 0.0
    outcome: str = UNREACHABLE

    @property
    def job_id(self):
        return "echo:%s" % self.name

    def group_key(self):
        return "grp:%s" % self.group

    def execute(self):
        from repro.faults import injection_point

        injection_point("job.execute", job=self.job_id)
        if self.seconds:
            time.sleep(self.seconds)
        result = CheckResult(
            query_name="q_%s" % self.name,
            outcome=self.outcome,
            engine="echo",
            time_seconds=0.001,
        )
        return "value:%s" % self.name, [result]

    def escalated(self, attempt, factor):
        return self

    def cache_key(self):
        return hashlib.sha256(self.job_id.encode("utf-8")).hexdigest()

    @staticmethod
    def encode_value(value):
        return value

    @staticmethod
    def decode_value(payload):
        return payload

    @staticmethod
    def value_is_final(value):
        return True


@register_job_type
@dataclasses.dataclass(frozen=True)
class GnarlyJob:
    """Nested tuples and a frozenset: the shapes JSON silently mangles."""

    pairs: tuple = (("a", (1, 2)), ("b", (3,)))
    names: frozenset = frozenset({"x", "y"})

    @property
    def job_id(self):
        return "gnarly"

    def cache_key(self):
        return hashlib.sha256(repr(self.pairs).encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class UnregisteredJob:
    name: str = "nope"

    @property
    def job_id(self):
        return "unregistered"


# ------------------------------------------------------------------ fixtures
@pytest.fixture(scope="module")
def corpus_jobs():
    """Reach jobs for the first four corpus designs (four shard groups)."""
    all_jobs = reach_jobs_for_corpus(CORPUS_DIR, horizon=4, k=2)
    by_group = {}
    for job in all_jobs:
        by_group.setdefault(job.group_key(), []).append(job)
    jobs, kept = [], 0
    for group_jobs in by_group.values():
        jobs.extend(group_jobs)
        kept += 1
        if kept >= 4 and len(jobs) >= 10:
            break
    assert kept >= 4 and len(jobs) >= 10, "fuzz corpus too small"
    return jobs


@pytest.fixture(scope="module")
def reach_serial(corpus_jobs):
    """The in-process reference run every distributed variant must match."""
    stats = PropertyStats(label="serial")
    outcome = JobScheduler(EngineConfig(jobs=1)).run(corpus_jobs, stats=stats)
    return outcome, stats


@pytest.fixture(scope="module")
def core_synth():
    """μPATHs for ADD/DIV on the xlen-4 core via the in-process engine."""
    design = build_core()
    provider = CoreContextProvider(xlen=design.config.xlen, config=TINY_FAMILY)
    tool = Rtl2MuPath(design, provider)
    engine = JobScheduler(EngineConfig(jobs=2))
    results = tool.synthesize_all(INSTRS, engine=engine)
    return tool, results


# ------------------------------------------------------------------ protocol
class TestProtocol:
    def test_frame_round_trip(self):
        message = {"type": "hello", "role": "client", "n": 3}
        assert decode_frame(encode_frame(message)) == message

    def test_malformed_frames_raise_protocol_error(self):
        for raw in (
            b"",
            b"not json\n",
            b"[1, 2]\n",
            b'"just a string"\n',
            b"{\"no\": \"type\"}\n",
            b"{\"type\": 3}\n",
            b"\xff\xfe\n",
        ):
            with pytest.raises(ProtocolError):
                decode_frame(raw)

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_unencodable_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "x", "bad": object()})

    def test_reach_job_round_trip_preserves_cache_key(self, corpus_jobs):
        for job in corpus_jobs[:3]:
            wire = json.loads(json.dumps(encode_job(job)))
            rebuilt = decode_job(wire)
            assert rebuilt == job
            assert rebuilt.cache_key() == job.cache_key()
            assert wire["group"] == job.group_key()

    def test_nested_tuples_and_frozensets_survive_the_wire(self):
        job = GnarlyJob()
        rebuilt = decode_job(json.loads(json.dumps(encode_job(job))))
        assert rebuilt == job
        assert isinstance(rebuilt.pairs, tuple)
        assert isinstance(rebuilt.pairs[0][1], tuple)
        assert isinstance(rebuilt.names, frozenset)
        assert rebuilt.cache_key() == job.cache_key()
        # no group_key() on this spec: the broker gets a per-job group
        assert encode_job(job)["group"] == "job:gnarly"

    def test_unregistered_job_type_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            encode_job(UnregisteredJob())
        with pytest.raises(ProtocolError):
            decode_job({"job_id": "x", "spec": {"kind": "Nope", "fields": {}}})

    def test_job_id_cross_checked_against_rebuilt_spec(self):
        wire = encode_job(EchoJob(name="a"))
        wire["job_id"] = "echo:tampered"
        with pytest.raises(ProtocolError):
            decode_job(wire)

    def test_report_round_trip(self):
        job = EchoJob(name="rt")
        result = CheckResult(
            query_name="q",
            outcome=REACHABLE,
            engine="bmc",
            time_seconds=0.5,
            detail="found at depth 3",
            depth=3,
        )
        report = WorkerReport(
            job_id=job.job_id,
            value="value:rt",
            results=[result],
            attempts=[AttemptRecord(attempt=0, seconds=0.5, properties=1)],
            spans=[("span_start", {"name": "job.attempt"})],
        )
        wire = json.loads(json.dumps(report_to_wire(report, job)))
        back = report_from_wire(wire, job)
        assert back.job_id == report.job_id
        assert back.value == report.value
        assert back.error is None and back.quarantined is False
        assert [r.to_dict() for r in back.results] == [result.to_dict()]
        assert back.attempts == report.attempts
        assert back.spans == [("span_start", {"name": "job.attempt"})]

    def test_worker_options_whitelist_drops_fault_plans(self):
        kwargs = {
            "max_attempts": 2,
            "timeout_seconds": 1.5,
            "escalation_factor": 4,
            "collect_spans": True,
            "max_rss_mb": None,
            "fault_plan": FaultPlan(seed=1),
            "log": object(),
        }
        options = worker_options(kwargs)
        assert options == {
            "max_attempts": 2,
            "timeout_seconds": 1.5,
            "escalation_factor": 4,
            "collect_spans": True,
            "max_rss_mb": None,
        }

    def test_parse_broker_address(self):
        assert parse_broker_address("10.0.0.1:7340") == ("10.0.0.1", 7340)
        assert parse_broker_address("7340") == ("127.0.0.1", 7340)
        with pytest.raises(ValueError):
            parse_broker_address("nope")


class TestProtocolFuzz:
    def test_garbage_peers_never_kill_the_broker(self):
        rng = random.Random(0xD157)
        payloads = [
            bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
            for _ in range(8)
        ]
        payloads += [
            b"[1,2,3]",
            b"\"string\"",
            b"{\"no\":\"type\"}",
            b"{\"type\":\"hello\",\"role\":\"client\",\"version\":999}",
            b"{\"type\":\"hello\",\"role\":\"alien\",\"version\":1}",
            b"{\"type\":\"submit\"}",
        ]
        with BrokerHarness() as harness:
            for payload in payloads:
                sock = socket.create_connection(
                    ("127.0.0.1", harness.port), timeout=5
                )
                try:
                    sock.settimeout(5)
                    sock.sendall(payload.replace(b"\n", b" ") + b"\n")
                    try:
                        sock.recv(65536)  # error frame or EOF; either is fine
                    except socket.timeout:
                        pass
                finally:
                    sock.close()
            # a malformed frame on a *registered* client connection too
            sock = socket.create_connection(
                ("127.0.0.1", harness.port), timeout=5
            )
            try:
                sock.sendall(
                    b"{\"type\":\"hello\",\"role\":\"client\",\"version\":1}\n"
                )
                sock.recv(65536)
                sock.sendall(b"<<<garbage>>>\n")
                sock.recv(65536)
            finally:
                sock.close()
            # the broker is still serving real traffic afterwards
            with BrokerClient("127.0.0.1", harness.port) as client:
                assert client.stats()["counts"]["submitted"] == 0


# -------------------------------------------------------------------- parity
class TestDistParity:
    def test_reach_campaign_two_nodes_matches_serial(
        self, corpus_jobs, reach_serial
    ):
        serial_outcome, serial_stats = reach_serial
        with BrokerHarness() as harness:
            WorkerHarness(harness.port, "n1").start()
            WorkerHarness(harness.port, "n2").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 2,
                message="both nodes registered",
            )
            stats = PropertyStats(label="dist")
            engine = DistScheduler(
                EngineConfig(jobs=2), broker=harness.address()
            )
            try:
                outcome = engine.run(corpus_jobs, stats=stats)
            finally:
                engine.close()
            snapshot = harness.stats()
        for job in corpus_jobs:
            assert outcome[job.job_id] == serial_outcome[job.job_id], job.job_id
        assert stats.count == serial_stats.count
        assert stats.outcome_histogram == serial_stats.outcome_histogram
        assert outcome.manifest.reconciles(stats)
        assert outcome.manifest.jobs_executed == len(corpus_jobs)
        # both nodes really did work, and every group was sticky-sharded
        nodes = snapshot["nodes"]
        assert len(nodes) == 2
        assert all(node["completed"] > 0 for node in nodes.values())
        groups = {job.group_key() for job in corpus_jobs}
        assert set(snapshot["shards"]) == groups
        assert set(snapshot["shards"].values()) <= set(nodes)
        assert snapshot["counts"]["completed"] == len(corpus_jobs)
        assert snapshot["counts"]["requeued"] == 0

    def test_synthesize_all_matches_jobs2(self, core_synth):
        ref_tool, ref = core_synth
        design = build_core()
        provider = CoreContextProvider(
            xlen=design.config.xlen, config=TINY_FAMILY
        )
        tool = Rtl2MuPath(design, provider)
        with BrokerHarness() as harness:
            WorkerHarness(harness.port, "s1").start()
            WorkerHarness(harness.port, "s2").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 2,
                message="both nodes registered",
            )
            engine = DistScheduler(
                EngineConfig(jobs=2), broker=harness.address()
            )
            try:
                results = tool.synthesize_all(INSTRS, engine=engine)
            finally:
                engine.close()
        assert set(results) == set(ref)
        for name in INSTRS:
            assert results[name] == ref[name], name
        assert tool.stats.count == ref_tool.stats.count
        assert tool.stats.outcome_histogram == ref_tool.stats.outcome_histogram
        assert engine.last_manifest.reconciles(tool.stats)

    def test_synthlc_labels_match(self, core_synth):
        _, mup = core_synth
        design = build_core()
        provider = CoreContextProvider(
            xlen=design.config.xlen,
            config=replace(TINY_FAMILY, instrumented=True),
        )
        work = {"DIV": mup["DIV"]}
        ref = SynthLC(design, provider).classify(work, transmitters=["DIV"])
        with BrokerHarness() as harness:
            WorkerHarness(harness.port, "lc1").start()
            WorkerHarness(harness.port, "lc2").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 2,
                message="both nodes registered",
            )
            engine = DistScheduler(
                EngineConfig(jobs=2), broker=harness.address()
            )
            try:
                out = SynthLC(design, provider).classify(
                    work, transmitters=["DIV"], engine=engine
                )
            finally:
                engine.close()
        assert out.tags_by_decision == ref.tags_by_decision
        assert out.transmitters == ref.transmitters
        assert [s.render() for s in out.signatures] == [
            s.render() for s in ref.signatures
        ]


# -------------------------------------------------------------- fault policy
class TestNodeFaultPolicy:
    def test_node_crash_reshards_group_and_quarantines_node(self, tmp_path):
        # "bad" kills its first job at worker.job_start; the broker must
        # quarantine it and re-shard the implicated job onto "good"
        plan = FaultPlan(
            state_dir=str(tmp_path),
            specs=(
                FaultSpec(
                    kind="kill_worker",
                    point="worker.job_start",
                    job="echo:q0",
                    times=1,
                ),
            ),
        )
        jobs = [
            EchoJob(name="q%d" % i, group="g%d" % (i % 2)) for i in range(4)
        ]
        with BrokerHarness(node_poison_limit=1, pipeline_depth=1) as harness:
            WorkerHarness(harness.port, "bad", fault_plan=plan).start()
            WorkerHarness(harness.port, "good").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 2,
                message="both nodes registered",
            )
            stats = PropertyStats(label="chaos")
            engine = DistScheduler(
                EngineConfig(jobs=2), broker=harness.address()
            )
            try:
                outcome = engine.run(jobs, stats=stats)
            finally:
                engine.close()
            snapshot = harness.stats()
        for job in jobs:
            assert outcome[job.job_id] == "value:" + job.name
        assert outcome.manifest.reconciles(stats)
        counts = snapshot["counts"]
        assert counts["quarantined_nodes"] == 1
        assert counts["requeued"] >= 1
        assert counts["quarantined_jobs"] == 0
        assert snapshot["nodes"]["bad"]["quarantined"] is True
        assert snapshot["nodes"]["good"]["quarantined"] is False
        # every shard now points at the surviving node
        assert set(snapshot["shards"].values()) == {"good"}

    def test_poisonous_job_degrades_to_quarantined_verdict(self, tmp_path):
        # the only node kills this job on every dispatch: after
        # job_poison_limit implications the *job* is quarantined while
        # the node (and the rest of the campaign) keeps going
        plan = FaultPlan(
            state_dir=str(tmp_path),
            specs=(
                FaultSpec(
                    kind="kill_worker",
                    point="worker.job_start",
                    job="echo:victim",
                    times=5,
                ),
            ),
        )
        jobs = [EchoJob(name="victim", group="gv"),
                EchoJob(name="bystander", group="gb")]
        with BrokerHarness(
            node_poison_limit=100, job_poison_limit=2, pipeline_depth=1
        ) as harness:
            WorkerHarness(harness.port, "only", fault_plan=plan).start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 1,
                message="node registered",
            )
            engine = DistScheduler(
                EngineConfig(jobs=1, keep_going=True), broker=harness.address()
            )
            try:
                outcome = engine.run(jobs)
            finally:
                engine.close()
            counts = harness.counts()
        assert outcome["echo:victim"] is None
        assert outcome["echo:bystander"] == "value:bystander"
        assert outcome.manifest.jobs_quarantined == 1
        assert outcome.manifest.jobs_failed == 1
        assert counts["quarantined_jobs"] == 1
        assert counts["quarantined_nodes"] == 0
        assert counts["requeued"] >= 1


class TestWorkerKillMidCampaign:
    def _spawn_worker(self, address, node_id, log_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        log = open(log_path, "w")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--broker", address,
                "--mode", "inline",
                "--node-id", node_id,
                "--heartbeat", "0.1",
            ],
            cwd=REPO_ROOT,
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
        )

    def test_sigkill_mid_campaign_requeues_and_parity_holds(
        self, corpus_jobs, reach_serial, tmp_path
    ):
        serial_outcome, serial_stats = reach_serial
        box = {}
        done = threading.Event()
        with BrokerHarness(node_poison_limit=1) as harness:
            victim = self._spawn_worker(
                harness.address(), "victim", str(tmp_path / "victim.log")
            )
            survivor = None
            try:
                wait_for(
                    lambda: "victim" in harness.stats()["nodes"],
                    timeout=60,
                    message="victim worker registered",
                )

                def campaign():
                    engine = DistScheduler(
                        EngineConfig(jobs=2), broker=harness.address()
                    )
                    stats = PropertyStats(label="failover")
                    try:
                        box["outcome"] = engine.run(corpus_jobs, stats=stats)
                        box["stats"] = stats
                    except BaseException as exc:  # surfaced after join
                        box["error"] = exc
                    finally:
                        engine.close()
                        done.set()

                threading.Thread(target=campaign, daemon=True).start()
                wait_for(
                    lambda: done.is_set()
                    or harness.stats()["nodes"]
                    .get("victim", {})
                    .get("inflight", 0)
                    > 0,
                    timeout=120,
                    interval=0.002,
                    message="victim holding in-flight work",
                )
                assert not done.is_set(), "campaign finished before the kill"
                victim.kill()
                victim.wait(30)
                survivor = self._spawn_worker(
                    harness.address(), "survivor", str(tmp_path / "survivor.log")
                )
                assert done.wait(300), "campaign did not finish after failover"
                counts = harness.counts()
                nodes = harness.stats()["nodes"]
            finally:
                for proc in (victim, survivor):
                    if proc is not None and proc.poll() is None:
                        proc.kill()
                        proc.wait(30)
        assert "error" not in box, repr(box.get("error"))
        outcome, stats = box["outcome"], box["stats"]
        for job in corpus_jobs:
            assert outcome[job.job_id] == serial_outcome[job.job_id], job.job_id
        assert stats.count == serial_stats.count
        assert stats.outcome_histogram == serial_stats.outcome_histogram
        assert outcome.manifest.reconciles(stats)
        assert outcome.manifest.jobs_quarantined == 0
        assert counts["requeued"] >= 1
        assert counts["quarantined_nodes"] == 1
        assert nodes["survivor"]["completed"] > 0


# --------------------------------------------------------------- backpressure
class TestBackpressure:
    def test_inflight_bounded_by_slots_times_pipeline_depth(self):
        jobs = [
            EchoJob(name="b%d" % i, group="same", seconds=0.02)
            for i in range(6)
        ]
        with BrokerHarness(pipeline_depth=1) as harness:
            WorkerHarness(harness.port, "solo").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 1,
                message="node registered",
            )
            with BrokerClient("127.0.0.1", harness.port) as client:
                verdicts = dict(
                    client.submit_iter([encode_job(j) for j in jobs])
                )
            counts = harness.counts()
        assert len(verdicts) == len(jobs)
        assert counts["completed"] == len(jobs)
        assert counts["max_inflight_observed"] == 1  # slots(1) * depth(1)

    def test_submit_shed_when_queue_cannot_absorb_it(self):
        with BrokerHarness(max_queue=2, high_water=100) as harness:
            with BrokerClient("127.0.0.1", harness.port) as client:
                jobs = [encode_job(EchoJob(name="s%d" % i)) for i in range(3)]
                with pytest.raises(BrokerShed):
                    list(client.submit_iter(jobs))
            assert harness.counts()["shed"] == 1
            assert harness.counts()["submitted"] == 0

    def test_parked_submit_times_out_as_shed(self):
        # high_water=0 parks every submit; with no worker to drain the
        # queue the client's park loop must give up at its deadline
        with BrokerHarness(high_water=0) as harness:
            with BrokerClient("127.0.0.1", harness.port) as client:
                jobs = [encode_job(EchoJob(name="p0"))]
                with pytest.raises(BrokerShed):
                    list(client.submit_iter(jobs, park_timeout=0.3))
            assert harness.counts()["parked"] >= 1

    def test_parked_submit_released_when_queue_drains(self):
        first = [EchoJob(name="f%d" % i, group="fg") for i in range(2)]
        second = [EchoJob(name="g0", group="gg")]
        results = {}
        with BrokerHarness(high_water=1) as harness:
            def consume(label, jobs):
                with BrokerClient("127.0.0.1", harness.port) as client:
                    results[label] = dict(
                        client.submit_iter(
                            [encode_job(j) for j in jobs], park_timeout=60
                        )
                    )

            # no workers yet: client A's jobs sit queued past high_water
            thread_a = threading.Thread(
                target=consume, args=("a", first), daemon=True
            )
            thread_a.start()
            wait_for(
                lambda: harness.counts()["submitted"] == 2,
                message="first submit queued",
            )
            # client B parks against the full queue...
            thread_b = threading.Thread(
                target=consume, args=("b", second), daemon=True
            )
            thread_b.start()
            wait_for(
                lambda: harness.counts()["parked"] >= 1,
                message="second submit parked",
            )
            # ...until a worker drains the queue and the retry lands
            WorkerHarness(harness.port, "late").start()
            thread_a.join(60)
            thread_b.join(60)
            assert not thread_a.is_alive() and not thread_b.is_alive()
            counts = harness.counts()
        assert len(results["a"]) == 2
        assert len(results["b"]) == 1
        assert counts["completed"] == 3
        assert counts["parked"] >= 1
        assert counts["shed"] == 0


# ------------------------------------------------------------- shared cache
class TestSharedCache:
    def test_write_behind_survives_restart_with_warm_replay(self, tmp_path):
        cache_dir = str(tmp_path / "shared-cache")
        jobs = [EchoJob(name="c%d" % i, group="g%d" % (i % 2)) for i in range(4)]
        with BrokerHarness(cache_dir=cache_dir) as harness:
            WorkerHarness(harness.port, "n1").start()
            wait_for(
                lambda: len(harness.stats()["nodes"]) == 1,
                message="node registered",
            )
            engine = DistScheduler(EngineConfig(jobs=2), broker=harness.address())
            try:
                outcome = engine.run(jobs)
            finally:
                engine.close()
        # broker stopped: the write-behind queue was flushed before exit,
        # and every entry on disk passes the local checksum validation
        assert outcome.manifest.cache_stores == len(jobs)
        store = ProofCache(cache_dir)
        assert store.entries() == len(jobs)
        for job in jobs:
            entry = store.get(job.cache_key())
            assert entry is not None, job.job_id
            assert entry["job_id"] == job.job_id
            assert entry["checksum"] == entry_checksum(entry)
        # a RESTARTED broker over the same store serves a fully warm run:
        # zero jobs dispatched, zero properties re-checked
        with BrokerHarness(cache_dir=cache_dir) as harness2:
            WorkerHarness(harness2.port, "n2").start()
            stats = PropertyStats(label="warm")
            engine2 = DistScheduler(
                EngineConfig(jobs=2), broker=harness2.address()
            )
            try:
                warm = engine2.run(jobs, stats=stats)
            finally:
                engine2.close()
            counts = harness2.counts()
        assert warm.manifest.cache_hits == len(jobs)
        assert warm.manifest.jobs_executed == 0
        assert warm.manifest.properties_evaluated == 0
        assert warm.manifest.properties_replayed == len(jobs)
        assert counts["submitted"] == 0  # nothing ever reached the queue
        assert counts["cache_hits"] == len(jobs)
        for job in jobs:
            assert warm[job.job_id] == outcome[job.job_id]
        assert warm.manifest.reconciles(stats)

    def test_corrupt_put_rejected_never_stored(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with BrokerHarness(cache_dir=cache_dir) as harness:
            with BrokerClient("127.0.0.1", harness.port) as client:
                entry = {
                    "format": CACHE_FORMAT_VERSION,
                    "key": "ab" * 32,
                    "job_id": "echo:x",
                    "created": 1.0,
                    "final": True,
                    "payload": "v",
                    "results": [],
                }
                bad = dict(entry, checksum="0" * 64)
                client.cache_put(bad)
                wait_for(
                    lambda: harness.counts()["cache_puts_rejected"] >= 1,
                    message="corrupt put rejected",
                )
                good = dict(entry)
                good["checksum"] = entry_checksum(good)
                client.cache_put(good)
                wait_for(
                    lambda: harness.counts()["cache_puts"] >= 1,
                    message="valid put persisted",
                )
                remote_stats = client.cache_stats()
            assert remote_stats["stats"]["entries"] == 1
        assert ProofCache(cache_dir).entries() == 1

    def test_remote_cache_validates_reads_client_side(self):
        key = "cd" * 32
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "job_id": "echo:r",
            "created": 1.0,
            "final": True,
            "payload": "v",
            "results": [],
        }
        entry["checksum"] = entry_checksum(entry)

        class StubClient:
            def __init__(self, served):
                self.served = served

            def cache_get(self, _key):
                return self.served

        cache = RemoteProofCache(StubClient(dict(entry)))
        assert cache.get(key) == entry
        assert cache.quarantined_session == 0
        # flipped payload byte: checksum mismatch degrades to a miss
        tampered = dict(entry, payload="w")
        cache = RemoteProofCache(StubClient(tampered))
        assert cache.get(key) is None
        assert cache.quarantined_session == 1
        # wrong format version and non-final entries are plain misses
        assert RemoteProofCache(
            StubClient(dict(entry, format=99))
        ).get(key) is None
        nonfinal = dict(entry, final=False)
        nonfinal["checksum"] = entry_checksum(nonfinal)
        assert RemoteProofCache(StubClient(nonfinal)).get(key) is None

    def test_cache_only_scheduler_local_dispatch_remote_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        jobs = [EchoJob(name="co%d" % i) for i in range(3)]
        with BrokerHarness(cache_dir=cache_dir) as harness:
            # note: no workers at all -- dispatch stays local
            engine = CacheOnlyScheduler(
                EngineConfig(jobs=1), broker=harness.address()
            )
            try:
                outcome = engine.run(jobs)
            finally:
                engine.close()
            assert harness.counts()["submitted"] == 0
        assert outcome.manifest.jobs_executed == len(jobs)
        assert ProofCache(cache_dir).entries() == len(jobs)
        with BrokerHarness(cache_dir=cache_dir) as harness2:
            engine2 = CacheOnlyScheduler(
                EngineConfig(jobs=1), broker=harness2.address()
            )
            try:
                warm = engine2.run(jobs)
            finally:
                engine2.close()
        assert warm.manifest.cache_hits == len(jobs)
        assert warm.manifest.jobs_executed == 0
        for job in jobs:
            assert warm[job.job_id] == outcome[job.job_id]


# ------------------------------------------------------- interrupt checkpoint
class InterruptingStats(PropertyStats):
    """Simulates Ctrl-C landing mid-fold, after ``after`` results."""

    def __init__(self, after):
        super().__init__(label="interrupting")
        self.after = after

    def record(self, result):
        super().record(result)
        if self.count >= self.after:
            raise KeyboardInterrupt()


class TestGracefulInterrupt:
    def test_interrupt_syncs_checkpoint_and_resume_completes(self, tmp_path):
        run_dir = str(tmp_path / "run")
        jobs = [EchoJob(name="k%d" % i, group="g%d" % i) for i in range(3)]
        engine = JobScheduler(EngineConfig(jobs=1, run_dir=run_dir))
        with pytest.raises(KeyboardInterrupt):
            engine.run(jobs, stats=InterruptingStats(after=2))
        manifest = engine.last_manifest
        assert manifest.interrupted is True
        assert manifest.to_dict()["interrupted"] is True
        # the interrupted run dir is NOT torn: --resume replays the
        # completed prefix and executes only the remainder
        stats = PropertyStats(label="resumed")
        resumed = JobScheduler(
            EngineConfig(jobs=1, run_dir=run_dir, resume=True)
        )
        outcome = resumed.run(jobs, stats=stats)
        assert outcome.manifest.interrupted is False
        assert outcome.manifest.jobs_resumed >= 1
        assert (
            outcome.manifest.jobs_resumed + outcome.manifest.jobs_executed
            == len(jobs)
        )
        for job in jobs:
            assert outcome[job.job_id] == "value:" + job.name
        assert outcome.manifest.reconciles(stats)


# ----------------------------------------------------------- cache-info CLI
class TestCacheInfoCLI:
    def test_stats_and_cli_output(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        store = ProofCache(cache_dir)
        result = CheckResult(
            query_name="q", outcome=UNREACHABLE, engine="t"
        ).to_dict()
        store.put("ab" * 32, "job:a", "v", [result], final=True)
        store.put("cd" * 32, "job:b", "w", [result], final=True)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["quarantined"] == 0
        assert stats["format"] == CACHE_FORMAT_VERSION
        assert stats["entry_bytes"] > 0
        assert stats["oldest_entry"] is not None
        assert stats["newest_entry"] >= stats["oldest_entry"]

        from repro import cli

        assert cli.main(["cache-info", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "proof cache" in out and "entries" in out
        assert cli.main(["cache-info", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert payload["cache_dir"] == cache_dir
        assert cli.main(["cache-info", str(tmp_path / "missing")]) == 2
        capsys.readouterr()

    def test_stats_counts_quarantined_entries(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        store = ProofCache(cache_dir)
        result = CheckResult(
            query_name="q", outcome=UNREACHABLE, engine="t"
        ).to_dict()
        store.put("ab" * 32, "job:a", "v", [result], final=True)
        # corrupt the entry on disk; the next read quarantines it
        path = store._path("ab" * 32)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert store.get("ab" * 32) is None
        stats = store.stats()
        assert stats["entries"] == 0
        assert stats["quarantined"] == 1
        assert stats["quarantined_bytes"] > 0

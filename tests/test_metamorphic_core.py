"""Metamorphic invariance on the xlen=4 core.

Each transform in :data:`repro.fuzz.metamorphic.TRANSFORMS` produces a
netlist that is semantically identical on every named signal by
construction, so the entire synthesis stack must be unable to tell the
difference: uPATH sets must serialize byte-identically per transform,
and SynthLC's contract labels must survive all five transforms composed.
(The per-transform SynthLC sweep lives in the benches -- one instrumented
classification costs ~40s, so tier-1 runs the strictest single check:
everything composed at once.)

Protected registers -- anything metadata addresses by name (ARF, AMEM,
operand registers) -- are never renamed or retimed, since context
providers drive and read them by name.
"""

import json

import pytest

from repro.core import Rtl2MuPath
from repro.core.synthlc import SynthLC
from repro.designs import (
    ContextFamilyConfig,
    CoreConfig,
    CoreContextProvider,
    build_core,
)
from repro.fuzz.metamorphic import (
    TRANSFORMS,
    canonical_contracts,
    canonical_mupath,
    protected_register_names,
    transformed_design,
)

# compact family for uPATH invariance: one neighbour, small value sets
UPATH_FAMILY = ContextFamilyConfig(
    horizon=30, neighbors=("SW",), iuv_values=(0, 1, 3),
    neighbor_values=(0, 1),
)

# the cheapest family that still yields non-trivial SynthLC output on the
# xlen=4 core (an intrinsic DIVU transmitter and leakage signatures)
SYNTH_FAMILY = ContextFamilyConfig(
    horizon=30, neighbors=("DIV",), iuv_values=(0, 1), neighbor_values=(0, 1),
)
TAINT_FAMILY = ContextFamilyConfig(
    horizon=30, neighbors=("DIV",), iuv_values=(0, 1), neighbor_values=(0, 1),
    instrumented=True,
)


@pytest.fixture(scope="module")
def core():
    return build_core(CoreConfig(xlen=4))


@pytest.fixture(scope="module")
def provider():
    return CoreContextProvider(xlen=4, config=UPATH_FAMILY)


@pytest.fixture(scope="module")
def protected(core):
    names = protected_register_names(core.metadata)
    assert names, "core metadata must protect architectural registers"
    return names


@pytest.fixture(scope="module")
def base_add_upaths(core, provider):
    return canonical_mupath(Rtl2MuPath(core, provider).synthesize("ADD"))


@pytest.mark.parametrize("name", sorted(TRANSFORMS))
def test_upath_synthesis_invariant_per_transform(
        core, provider, protected, base_add_upaths, name):
    variant = TRANSFORMS[name](core.netlist, seed=7, protected=protected)
    result = Rtl2MuPath(
        transformed_design(core, variant), provider).synthesize("ADD")
    assert canonical_mupath(result) == base_add_upaths


def _compose_all(netlist, protected):
    for name in ("retime", "mux-arm-swap", "double-negate",
                 "dead-cells", "rename"):
        netlist = TRANSFORMS[name](netlist, seed=5, protected=protected)
    return netlist


def test_upath_synthesis_invariant_under_composition(
        core, provider, protected, base_add_upaths):
    composed = transformed_design(
        core, _compose_all(core.netlist, protected))
    result = Rtl2MuPath(composed, provider).synthesize("ADD")
    assert canonical_mupath(result) == base_add_upaths


def _contract_labels(design):
    tool = Rtl2MuPath(design, CoreContextProvider(xlen=4, config=SYNTH_FAMILY))
    results = {name: tool.synthesize(name) for name in ("LW", "DIVU")}
    taint = CoreContextProvider(xlen=4, config=TAINT_FAMILY)
    return canonical_contracts(
        SynthLC(design, taint).classify(
            results, transmitters=["SW", "LW", "DIVU"]))


def test_synthlc_labels_invariant_under_composition(core, protected):
    base = _contract_labels(core)
    payload = json.loads(base)
    # the invariance claim is vacuous if classification found nothing
    assert payload["signatures"], "expected leakage signatures on the core"
    assert payload["transmitters"]["intrinsic"], "DIVU should be intrinsic"
    composed = transformed_design(
        core, _compose_all(core.netlist, protected))
    assert _contract_labels(composed) == base

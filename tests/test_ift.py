"""CellIFT-style instrumentation tests.

The load-bearing property is *soundness*: if flipping the initial value of
a tainted register changes an observable, the observable's taint bit must
be set.  The hypothesis test below checks this end-to-end on random
circuits; the unit tests pin the per-cell rules and the introduction /
blocking / flush mechanisms.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ift import IftConfig, instrument_ift
from repro.rtl import Module, elaborate, mux
from repro.sim import Simulator

from repro.fuzz.gen import MASK, WIDTH, build_random_expr


def _instrument_expr_module(seed):
    """Random expression with inputs replaced by registers (taint sources)."""
    m, _node, ref = build_random_expr(seed)
    # rebuild with registers feeding the expression: wrap by a new module
    wrapper = Module("w%d" % seed)
    ra = wrapper.reg("ra", WIDTH)
    rb = wrapper.reg("rb", WIDTH)
    a_in = wrapper.input("a_in", WIDTH)
    b_in = wrapper.input("b_in", WIDTH)
    load = wrapper.input("load", 1)
    ra.next = mux(load, a_in, ra.q)
    rb.next = mux(load, b_in, rb.q)
    # re-express the random expression over ra/rb via simulation of the
    # original is complex; instead reuse ref() as ground truth by running
    # the original netlist -- here we just build a moderately rich fixed
    # expression over the registers:
    expr = ((ra.q + rb.q) ^ (ra.q & rb.q)) - mux(ra.q.ult(rb.q), rb.q, ra.q * 3)
    wrapper.name_signal("out", expr)
    wrapper.name_signal("cmp", ra.q.ult(rb.q))
    return wrapper


class TestSoundness:
    @settings(max_examples=25, deadline=None)
    @given(
        a=st.integers(0, MASK),
        a2=st.integers(0, MASK),
        b=st.integers(0, MASK),
    )
    def test_taint_covers_value_differences(self, a, a2, b):
        """Flipping the tainted register between two values must never
        change an untainted observable bit."""
        wrapper = _instrument_expr_module(0)
        netlist = elaborate(wrapper)
        design = instrument_ift(
            netlist, IftConfig(introduce_registers=frozenset({"ra"}), add_flush=False)
        )
        sim = Simulator(design.netlist)

        def run(av):
            sim.reset()
            sim.step({"load": 1, "a_in": av, "b_in": b, "taint_intro": 1})
            return sim.step({"taint_intro": 0})

        obs1, obs2 = run(a), run(a2)
        diff_bits = obs1["out"] ^ obs2["out"]
        taint = obs1["out__t"] | obs2["out__t"]
        assert diff_bits & ~taint == 0
        if obs1["cmp"] != obs2["cmp"]:
            assert obs1["cmp__tainted"] or obs2["cmp__tainted"]


def _two_reg_design():
    m = Module("t")
    a = m.reg("a", 4)
    b = m.reg("b", 4)
    ain = m.input("ain", 4)
    bin_ = m.input("bin", 4)
    load = m.input("load", 1)
    a.next = mux(load, ain, a.q)
    b.next = mux(load, bin_, b.q)
    m.name_signal("and_", a.q & b.q)
    m.name_signal("or_", a.q | b.q)
    m.name_signal("xor_", a.q ^ b.q)
    m.name_signal("eq_", a.q.eq(b.q))
    m.name_signal("add_", a.q + b.q)
    return elaborate(m)


def _run_tainted(netlist, taint_regs, av, bv, persistent=(), flush_cycle=None,
                 blocked=()):
    design = instrument_ift(
        netlist,
        IftConfig(
            introduce_registers=frozenset(taint_regs),
            persistent_registers=frozenset(persistent),
            blocked_registers=frozenset(blocked),
        ),
    )
    sim = Simulator(design.netlist)
    sim.reset()
    sim.step({"load": 1, "ain": av, "bin": bv, "taint_intro": 1})
    out = []
    for cycle in range(3):
        flush = 1 if flush_cycle == cycle else 0
        out.append(sim.step({"taint_intro": 0, "taint_flush": flush}))
    return out


class TestCellRules:
    def test_and_masking(self):
        # a fully tainted, b = 0: out pinned to 0, so no taint escapes
        obs = _run_tainted(_two_reg_design(), ["a"], 0xF, 0x0)[0]
        assert obs["and___t"] == 0
        # b = ones: taint passes
        obs = _run_tainted(_two_reg_design(), ["a"], 0xF, 0xF)[0]
        assert obs["and___t"] == 0xF

    def test_or_masking(self):
        # b = ones pins OR to ones: no taint
        obs = _run_tainted(_two_reg_design(), ["a"], 0x0, 0xF)[0]
        assert obs["or___t"] == 0
        obs = _run_tainted(_two_reg_design(), ["a"], 0x0, 0x0)[0]
        assert obs["or___t"] == 0xF

    def test_xor_always_propagates(self):
        obs = _run_tainted(_two_reg_design(), ["a"], 0x3, 0xA)[0]
        assert obs["xor___t"] == 0xF

    def test_eq_precision_pinned_by_untainted_diff(self):
        # untainted b differs from any a in the untainted high bits?  both
        # operands 4-bit; with a tainted completely, eq can flip -> tainted
        obs = _run_tainted(_two_reg_design(), ["a"], 0x3, 0x3)[0]
        assert obs["eq___tainted"] == 1

    def test_add_smears_upward(self):
        obs = _run_tainted(_two_reg_design(), ["a"], 0x1, 0x1)[0]
        assert obs["add___t"] == 0xF

    def test_untainted_run_stays_clean(self):
        design = instrument_ift(
            _two_reg_design(), IftConfig(introduce_registers=frozenset({"a"}))
        )
        sim = Simulator(design.netlist)
        sim.reset()
        sim.step({"load": 1, "ain": 3, "bin": 5, "taint_intro": 0})
        obs = sim.step({})
        assert obs["and___t"] == 0 and obs["xor___t"] == 0


class TestMechanisms:
    def test_blocking(self):
        # taint introduced at a, but a is also blocked: nothing ever tainted
        obs = _run_tainted(_two_reg_design(), ["a"], 0xF, 0xF, blocked=["a"])[0]
        assert obs["xor___t"] == 0

    def test_flush_clears_nonpersistent(self):
        rows = _run_tainted(_two_reg_design(), ["a"], 0x3, 0x5, flush_cycle=0)
        assert rows[0]["xor___t"] == 0xF  # before the flush lands
        assert rows[1]["xor___t"] == 0  # cleared
        assert rows[2]["xor___t"] == 0

    def test_flush_spares_persistent(self):
        rows = _run_tainted(
            _two_reg_design(), ["a"], 0x3, 0x5, flush_cycle=0, persistent=["a"]
        )
        assert rows[1]["xor___t"] == 0xF

    def test_values_preserved_by_instrumentation(self):
        netlist = _two_reg_design()
        plain = Simulator(netlist)
        plain.reset()
        plain.step({"load": 1, "ain": 9, "bin": 4})
        expected = plain.step({})

        design = instrument_ift(netlist, IftConfig())
        sim = Simulator(design.netlist)
        sim.reset()
        sim.step({"load": 1, "ain": 9, "bin": 4, "taint_intro": 0})
        got = sim.step({})
        for key in ("and_", "or_", "xor_", "eq_", "add_"):
            assert got[key] == expected[key]

    def test_introduce_map_condition(self):
        m = Module("t")
        r = m.reg("r", 4)
        trigger = m.input("trigger", 1)
        m.name_signal("cond", trigger)
        m.name_signal("val", r.q)
        netlist = elaborate(m)
        design = instrument_ift(
            netlist, IftConfig(introduce_map={"r": "cond"})
        )
        sim = Simulator(design.netlist)
        sim.reset()
        obs = sim.step({"trigger": 0, "taint_intro": 1})
        obs = sim.step({"trigger": 1, "taint_intro": 1})
        assert obs["val__t"] == 0  # condition fired this cycle; lands next
        obs = sim.step({"trigger": 0, "taint_intro": 1})
        assert obs["val__t"] == 0xF

    def test_control_inputs_listed(self):
        design = instrument_ift(_two_reg_design(), IftConfig())
        assert design.control_inputs == ("taint_intro", "taint_flush")
        design = instrument_ift(_two_reg_design(), IftConfig(add_flush=False))
        assert design.control_inputs == ("taint_intro",)

    def test_taint_signal_names(self):
        design = instrument_ift(_two_reg_design(), IftConfig())
        assert design.taint_signal("xor_") == "xor___t"
        assert design.tainted_flag("xor_") == "xor___tainted"

"""Perf-model tests: golden tables, differential agreement, mutation oracle.

The three layers under test:

* the model compiler (``repro.perf.model``) -- per-instruction latency
  tables calibrated from solo μPATH probes must match the RTL's known
  timing behavior on every corpus design;
* the cycle predictor (``repro.perf.predict``) -- exact cycle agreement
  with :mod:`repro.sim` across hundreds of seeded fuzzed sequences per
  design (the zero-false-positive bar the differential oracle needs);
* the oracle (``repro.perf.oracle``) -- injected model defects (a wrong
  latency; a deleted μPATH) must be caught, classified on the right side
  of the model-bug / missed-μPATH lattice, and shrunk to tiny
  reproducers deterministically.
"""

import dataclasses

import pytest

from repro.designs import build_core, build_cva6_mul, build_fixed_core
from repro.designs.core import CoreConfig
from repro.designs.harness import STRAIGHT_LINE_POOL, sample_sequence
from repro.perf import (
    CLASS_MISSED_UPATH,
    CLASS_MODEL_BUG,
    PerfCampaignConfig,
    check_sequence,
    collect_upath_summaries,
    compile_model,
    load_perf_reproducer,
    mutate_latency,
    predict_program,
    run_perf_campaign,
    shrink_mismatch,
    write_perf_reproducer,
)
from repro.perf.model import replace_model
from repro.sim import Simulator

XLEN = 4
CALIBRATION_IUVS = ["ADD", "MUL", "DIV", "DIVU", "LW", "SW"]
DESIGN_BUILDERS = {
    "core": lambda: build_core(CoreConfig(xlen=XLEN)),
    "cva6-mul": lambda: build_cva6_mul(xlen=XLEN),
    "fixed": lambda: build_fixed_core(xlen=XLEN),
}

_cache = {}


def _compiled(name):
    """(design, sim, model) for a corpus design, compiled once per run."""
    if name not in _cache:
        design = DESIGN_BUILDERS[name]()
        summaries = collect_upath_summaries(design, CALIBRATION_IUVS)
        model = compile_model(design, summaries, names=STRAIGHT_LINE_POOL)
        _cache[name] = (design, Simulator(design.netlist), model)
    return _cache[name]


class TestGoldenTables:
    """Compiled latency tables vs the RTL's documented timing."""

    def test_add_is_single_cycle_constant_time(self):
        _, _, model = _compiled("core")
        timing = model.instrs["ADD"]
        assert timing.features == ()
        assert dict(timing.latency_table) == {(): 1}
        assert timing.observed_latencies == frozenset({1})

    def test_load_is_single_cycle_unstalled(self):
        _, _, model = _compiled("core")
        timing = model.instrs["LW"]
        assert dict(timing.latency_table) == {(): 1}
        # the synthesized set still carries the stalled-load μPATH evidence
        assert "ldStall" in model.upath_run_lengths("LW")

    def test_store_occupies_no_unit_cycles(self):
        _, _, model = _compiled("core")
        assert dict(model.instrs["SW"].latency_table) == {(): 0}

    def test_baseline_mul_is_constant_time(self):
        _, _, model = _compiled("core")
        timing = model.instrs["MUL"]
        assert timing.features == ()
        assert dict(timing.latency_table) == {(): 2}

    def test_zero_skip_mul_is_operand_dependent(self):
        _, _, model = _compiled("cva6-mul")
        timing = model.instrs["MUL"]
        assert timing.features == ("zero_any",)
        assert dict(timing.latency_table) == {(1,): 1, (0,): 4}
        assert timing.operand_dependent

    def test_div_table_tracks_dividend_magnitude_and_signs(self):
        _, _, model = _compiled("core")
        div, divu = model.instrs["DIV"], model.instrs["DIVU"]
        assert div.features == ("rs1_zero", "rs1_msb", "rs2_neg")
        assert divu.features == ("rs1_zero", "rs1_msb")
        # zero dividend short-circuits; otherwise latency grows with msb
        assert div.min_latency == 1 and div.max_latency == 6
        assert divu.max_latency == 5
        assert div.latency(0, 3, XLEN) == 1
        assert divu.latency(1, 1, XLEN) < divu.latency(8, 1, XLEN)

    def test_class_representatives_cover_whole_pool(self):
        _, _, model = _compiled("core")
        assert set(STRAIGHT_LINE_POOL) <= model.supported
        # non-probed members inherit their representative's table
        assert (
            dict(model.instrs["SUB"].latency_table)
            == dict(model.instrs["ADD"].latency_table)
        )
        assert model.instrs["REM"].source == "DIV"

    def test_hazard_rules_compiled(self):
        _, _, model = _compiled("core")
        assert model.hazard("raw") is not None
        assert model.hazard("scoreboard") is not None
        for unit in ("mul", "div", "load", "store"):
            assert model.hazard("structural", unit) is not None, unit
        assert model.hazard("st_ld_offset") is not None
        assert model.hazard("st_drain_port") is not None
        div_rule = model.hazard("structural", "div")
        assert div_rule.operand_dependent


class TestDifferentialAgreement:
    """Predictor vs RTL simulation: exact cycle agreement, per design."""

    SEQUENCES = 500

    @pytest.mark.parametrize("name", sorted(DESIGN_BUILDERS))
    def test_exact_agreement_on_seeded_corpus(self, name):
        design, sim, model = _compiled(name)
        for seed in range(self.SEQUENCES):
            program, arf_init = sample_sequence(seed, xlen=XLEN)
            mismatch = check_sequence(design, sim, model, program, arf_init,
                                      seed=seed)
            assert mismatch is None, (name, seed, mismatch and mismatch.brief())

    def test_prediction_reports_per_instruction_retires(self):
        design, sim, model = _compiled("core")
        from repro.designs import run_program

        program, arf_init = sample_sequence(11, xlen=XLEN, min_len=4)
        run = run_program(sim, program, arf_init)
        pred = predict_program(model, program, arf_init)
        assert pred.cycles == run.cycles
        assert pred.retire == run.retire
        assert pred.arf == run.arf and pred.mem == run.mem

    def test_stall_accounting_sums_to_observed_slowdown(self):
        _, _, model = _compiled("core")
        from repro.designs import isa

        dep = [
            isa.encode("ADDI", rd=1, rs1=0, rs2=7),
            isa.encode("DIV", rd=2, rs1=1, rs2=1),
        ]
        pred = predict_program(model, dep)
        assert pred.stalls["raw"] > 0
        assert pred.stall_cycles == sum(pred.stalls.values())


def _delete_div_upath(model, lat=6):
    """Simulate an incomplete synthesis: DIV's longest μPATH was missed."""
    timing = model.instrs["DIV"]
    mutated = dataclasses.replace(
        timing,
        latency_table={
            key: val for key, val in timing.latency_table.items() if val != lat
        },
        observed_latencies=frozenset(timing.observed_latencies - {lat}),
    )
    instrs = dict(model.instrs)
    instrs["DIV"] = mutated
    sources = {iuv: dict(pls) for iuv, pls in model.sources.items()}
    runs = sources.get("DIV", {}).get("divU")
    if runs:
        sources["DIV"]["divU"] = tuple(r for r in runs if r != lat)
    return replace_model(model, instrs=instrs, sources=sources)


def _first_mismatch(design, sim, model, want_class, max_seeds=300):
    for seed in range(max_seeds):
        program, arf_init = sample_sequence(seed, xlen=XLEN)
        mismatch = check_sequence(design, sim, model, program, arf_init,
                                  seed=seed)
        if mismatch is not None and mismatch.classification == want_class:
            return mismatch
    return None


class TestMutationOracle:
    """Injected defects must be caught, classified, and shrunk small."""

    def test_wrong_latency_classified_as_model_bug(self):
        design, sim, model = _compiled("core")
        mutated = mutate_latency(model, "MUL", +1)
        mismatch = _first_mismatch(design, sim, mutated, CLASS_MODEL_BUG)
        assert mismatch is not None, "wrong-latency mutation went undetected"
        assert mismatch.predicted_cycles != mismatch.actual_cycles
        shrunk = shrink_mismatch(design, sim, mutated, mismatch)
        assert shrunk.classification == CLASS_MODEL_BUG
        assert len(shrunk.program) <= 8
        assert any(
            name.startswith("MUL") for name in shrunk.to_dict()["asm"]
        ), shrunk.to_dict()["asm"]

    def test_deleted_upath_classified_as_missed_upath(self):
        design, sim, model = _compiled("core")
        mutated = _delete_div_upath(model)
        mismatch = _first_mismatch(design, sim, mutated, CLASS_MISSED_UPATH)
        assert mismatch is not None, "deleted-μPATH mutation went undetected"
        # the reproducer carries the (incomplete) synthesized μPATH set
        assert mismatch.upath_set, mismatch.brief()
        shrunk = shrink_mismatch(design, sim, mutated, mismatch)
        assert shrunk.classification == CLASS_MISSED_UPATH
        assert len(shrunk.program) <= 8

    def test_shrinker_is_deterministic(self):
        design, sim, model = _compiled("core")
        mutated = mutate_latency(model, "MUL", +1)
        mismatch = _first_mismatch(design, sim, mutated, CLASS_MODEL_BUG)
        assert mismatch is not None
        a = shrink_mismatch(design, sim, mutated, mismatch)
        b = shrink_mismatch(design, sim, mutated, mismatch)
        assert a.program == b.program
        assert a.arf_init == b.arf_init
        assert a.classification == b.classification

    def test_reproducer_roundtrip(self, tmp_path):
        design, sim, model = _compiled("core")
        mutated = mutate_latency(model, "MUL", +1)
        mismatch = _first_mismatch(design, sim, mutated, CLASS_MODEL_BUG)
        shrunk = shrink_mismatch(design, sim, mutated, mismatch)
        path = write_perf_reproducer(
            str(tmp_path), shrunk, xlen=XLEN, shrunk_from=len(mismatch.program)
        )
        program, arf_init, payload = load_perf_reproducer(path)
        assert program == list(shrunk.program)
        assert arf_init == list(shrunk.arf_init)
        assert payload["kind"] == "perf" and payload["xlen"] == XLEN
        assert payload["shrunk_from"] == len(mismatch.program)
        # the reproducer still reproduces
        replay = check_sequence(design, sim, mutated, program, arf_init)
        assert replay is not None
        assert replay.classification == CLASS_MODEL_BUG


class TestCampaign:
    def test_clean_campaign_agrees(self, tmp_path):
        design, _, model = _compiled("cva6-mul")
        result = run_perf_campaign(
            design,
            model,
            PerfCampaignConfig(
                seed=1,
                budget_seconds=30.0,
                max_sequences=60,
                out_dir=str(tmp_path),
            ),
        )
        assert result.ok
        assert result.sequences == result.agreements == 60
        assert result.unclassified == 0
        assert "exact cycle agreement" in result.summary()

    def test_buggy_campaign_reports_and_writes_reproducers(self, tmp_path):
        design, _, model = _compiled("core")
        mutated = mutate_latency(model, "MUL", +1)
        result = run_perf_campaign(
            design,
            mutated,
            PerfCampaignConfig(
                seed=0,
                budget_seconds=30.0,
                max_sequences=80,
                out_dir=str(tmp_path),
            ),
        )
        assert not result.ok
        assert result.by_class.get(CLASS_MODEL_BUG, 0) > 0
        assert result.reproducers
        for path in result.reproducers:
            program, _, payload = load_perf_reproducer(path)
            assert payload["version"] >= 1
            assert len(program) <= 8


class TestEngineIntegration:
    def test_perf_job_executes_and_roundtrips(self):
        from repro.dist.protocol import decode_job, encode_job
        from repro.engine.specs import PerfJob

        job = PerfJob(design="core", xlen=XLEN, seed=5, budget_seconds=30.0,
                      max_sequences=15, shrink=False)
        assert decode_job(encode_job(job)) == job
        value, results = job.execute()
        assert value["sequences"] == 15
        assert results[0].outcome == "agree"
        assert results[0].engine == "perf"
        assert PerfJob.value_is_final(value)
        assert job.cache_key()  # fixed-size shards are cacheable
        assert PerfJob(design="core").cache_key() is None  # budgeted are not

    def test_timing_variability_matches_synthlc_labels(self):
        from repro.report import timing_variability_rows

        _, _, baseline = _compiled("core")
        _, _, zeroskip = _compiled("cva6-mul")
        base = {r[0]: r[4] for r in timing_variability_rows(baseline)}
        fast = {r[0]: r[4] for r in timing_variability_rows(zeroskip)}
        # operand transmitters show nonzero deltas, constant-time show zero
        assert base["ADD"] == 0 and fast["ADD"] == 0
        assert base["MUL"] == 0  # baseline multiplier is constant-time
        assert fast["MUL"] > 0  # zero-skip multiplier leaks operand info
        assert base["DIV"] > 0 and fast["DIV"] > 0

"""Context-provider and program-driver tests."""

import pytest

from repro.designs import (
    ContextFamilyConfig,
    CoreContextProvider,
    build_core,
    isa,
    program_driver_factory,
    slot_pc,
)
from repro.designs.harness import TaintSpec, default_value_set, small_value_set
from repro.sim import Simulator


class TestDriver:
    def test_replays_until_accepted(self):
        word = isa.encode("ADD", rd=3, rs1=1, rs2=2)
        driver = program_driver_factory([("feed", (word, word))])()
        # cycle 0: drives word; pretend not accepted
        inputs = driver(0, None)
        assert inputs["in_valid"] == 1
        inputs = driver(1, {"fetch_ready": 0})
        assert inputs["in_instr"] == word  # same slot replayed
        inputs = driver(2, {"fetch_ready": 1})
        assert inputs["in_valid"] == 1  # second slot now

    def test_idle_phase(self):
        word = isa.encode("ADD")
        driver = program_driver_factory([("idle", 2), ("feed", (word,))])()
        assert "in_valid" not in driver(0, None)
        assert "in_valid" not in driver(1, {"fetch_ready": 1})
        assert driver(2, {"fetch_ready": 1})["in_valid"] == 1

    def test_quiesce_requires_waited_cycle(self):
        word = isa.encode("ADD")
        driver = program_driver_factory([("wait_quiesce",), ("feed", (word,))])()
        # first call: stale quiescent observation must NOT advance the phase
        inputs = driver(0, None)
        assert "in_valid" not in inputs
        inputs = driver(1, {"fetch_ready": 1, "pipe_quiesce": 1})
        assert inputs["in_valid"] == 1

    def test_flush_pulse(self):
        driver = program_driver_factory([("flush",), ("idle", 1)], instrumented=True)()
        assert driver(0, None)["taint_flush"] == 1
        assert driver(1, None)["taint_flush"] == 0

    def test_taint_inputs(self):
        spec = TaintSpec(pc=12, rs1=True)
        driver = program_driver_factory([("idle", 1)], taint=spec, instrumented=True)()
        inputs = driver(0, None)
        assert inputs["taint_pc"] == 12
        assert inputs["taint_rs1"] == 1 and inputs["taint_rs2"] == 0
        assert inputs["taint_intro"] == 1

    def test_uninstrumented_omits_controls(self):
        driver = program_driver_factory([("idle", 1)])()
        inputs = driver(0, None)
        assert "taint_intro" not in inputs

    def test_unknown_item_rejected(self):
        driver = program_driver_factory([("bogus",)])()
        with pytest.raises(ValueError):
            driver(0, None)


class TestValueSets:
    def test_default_covers_every_msb_position(self):
        values = default_value_set(8)
        assert 0 in values and 255 in values
        for i in range(8):
            assert any(v.bit_length() == i + 1 for v in values)

    def test_small_set_has_offset_variety(self):
        values = small_value_set(8)
        offsets = {v & 3 for v in values}
        assert len(offsets) >= 3


class TestFamilies:
    @pytest.fixture(scope="class")
    def provider(self):
        return CoreContextProvider(
            xlen=8,
            config=ContextFamilyConfig(
                horizon=40, neighbors=("DIV", "SW"),
                iuv_values=(0, 1, 255), neighbor_values=(0, 1),
            ),
        )

    def test_group_labels(self, provider):
        groups = provider.mupath_groups("ADD")
        labels = {g.label for g in groups}
        assert labels == {"solo", "preceded", "followed", "deep2", "scbfull"}

    def test_iuv_placement(self, provider):
        groups = {g.label: g for g in provider.mupath_groups("ADD")}
        assert groups["solo"].iuv_pc == slot_pc(0)
        assert groups["preceded"].iuv_pc == slot_pc(1)
        assert groups["scbfull"].iuv_pc == slot_pc(3)

    def test_all_groups_complete_without_cap(self, provider):
        assert all(g.complete for g in provider.mupath_groups("LW"))

    def test_cap_marks_incomplete(self):
        provider = CoreContextProvider(
            xlen=8,
            config=ContextFamilyConfig(
                horizon=40, neighbors=("DIV",), max_contexts=2,
                iuv_values=(0, 1, 2), neighbor_values=(0, 1),
            ),
        )
        groups = provider.mupath_groups("ADD")
        assert any(not g.complete for g in groups)
        assert all(len(g.contexts) <= 2 for g in groups)

    def test_taint_groups_intrinsic_requires_same_instruction(self, provider):
        assert provider.taint_groups("ADD", "DIV", "intrinsic", "rs1") == []
        groups = provider.taint_groups("DIV", "DIV", "intrinsic", "rs1")
        assert groups and groups[0].taint_pc == groups[0].iuv_pc

    def test_taint_groups_dynamic_placements(self, provider):
        older = provider.taint_groups("ADD", "DIV", "dynamic_older", "rs1")
        assert all(g.taint_pc < g.iuv_pc for g in older)
        younger = provider.taint_groups("SW", "LW", "dynamic_younger", "rs1")
        assert all(g.taint_pc > g.iuv_pc for g in younger)

    def test_taint_labels_machine_parsable(self, provider):
        groups = provider.taint_groups("ADD", "DIV", "dynamic_older", "rs2")
        label = groups[0].contexts[0].label
        parts = label.split("|")
        assert len(parts) == 3
        v1, v2 = parts[1].split(",")
        int(v1), int(v2)

    def test_static_script_includes_flush(self, provider):
        groups = provider.taint_groups("ADD", "DIV", "static", "rs1")
        assert groups and groups[0].label.startswith("static")

    def test_bad_assumption_rejected(self, provider):
        with pytest.raises(ValueError):
            provider.taint_groups("ADD", "DIV", "sideways", "rs1")

"""Tests for certified verdicts (repro.cert + the engine degrade rung).

Four layers, mirroring the trust chain:

* the pure-Python DRAT checker rejects forged, truncated, and
  model-corrupting mutations (the checker itself must not be gameable);
* the seeded solver-soundness mutation -- polarity-blind subsumption
  re-enabled by monkeypatching ``repro.solver.preprocess._subsumes`` --
  flips a crafted UNSAT instance to SAT, and certification catches it;
* certify-full verdicts are byte-identical to uncertified ones on the
  fuzz corpus (certification observes, never decides);
* the scheduler's certification rung quarantines a failed certificate,
  re-solves on the conservative recipe, surfaces the verdict divergence
  in the manifest, and never caches an uncaught failure -- end to end
  through the real :class:`JobScheduler`.

Plus the backward-compat pin: a cache entry written before this PR
(committed fixture, no ``certificate`` keys anywhere) still loads as a
valid hit with ``certificate=None`` and an unchanged format version.
"""

from __future__ import annotations

import glob
import json
import os
import shutil
from dataclasses import dataclass, replace

import pytest

import repro.solver.preprocess as preprocess_mod
from repro.cert import (
    CertifyPolicy,
    certificate_failed,
    payload_digest,
    verify_certificate_digest,
)
from repro.cert.drat import check_proof, verify_model
from repro.engine import EngineConfig, JobScheduler, ProofCache
from repro.engine.cache import CACHE_FORMAT_VERSION
from repro.engine.specs import ReachJob, reach_jobs_for_corpus
from repro.fuzz.campaign import load_reproducer
from repro.fuzz.gen import build_design
from repro.mc import BmcContext
from repro.mc.kinduction import prove_unreachable_kinduction
from repro.mc.outcomes import REACHABLE, UNREACHABLE, CheckResult
from repro.props import Eventually, Query, sig
from repro.solver.sat import SAT, UNSAT, SatSolver

CORPUS = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

FULL = CertifyPolicy.from_mode("full")


def _corpus_paths(limit=None):
    paths = sorted(glob.glob(os.path.join(CORPUS, "*.json")))
    return paths[:limit] if limit else paths


def _unsat_proof():
    """A small real proof log: pigeonhole-ish UNSAT instance."""
    s = SatSolver(preprocess=False, proof=True)
    a, b, c = (s.new_var() for _ in range(3))
    s.add_clause([a, b])
    s.add_clause([a, -b, c])
    s.add_clause([-a, c])
    s.add_clause([-c, b])
    s.add_clause([-b, -c])
    assert s.solve() == UNSAT
    entries = list(s.proof_entries())
    final = s.final_lemma()
    assert final is not None
    return entries, tuple(final)


# --------------------------------------------------------- checker mutations
class TestDratCheckerMutations:
    def test_valid_proof_accepted(self):
        entries, final = _unsat_proof()
        outcome = check_proof(entries, final)
        assert outcome.ok, outcome.detail

    def test_forged_addition_rejected(self):
        """A load-bearing non-RUP addition must fail its own check."""
        # hand-build a log whose terminal lemma depends on a forged unit:
        # inputs (a ∨ b), (¬a ∨ b); the forged addition (¬b) is NOT
        # implied, yet makes the empty clause propagate
        entries = [
            ("i", (1, 2)),
            ("i", (-1, 2)),
            ("a", (-2,)),  # forged: not RUP against the inputs
        ]
        outcome = check_proof(entries, final=())
        assert not outcome.ok
        assert "not RUP" in outcome.detail or "not implied" in outcome.detail

    def test_truncated_proof_rejected(self):
        entries, final = _unsat_proof()
        additions = [i for i, (tag, _) in enumerate(entries) if tag == "a"]
        assert additions, "workload produced no learned clauses"
        truncated = entries[: additions[0]]  # drop every derivation
        outcome = check_proof(truncated, final)
        assert not outcome.ok

    def test_flipped_bit_model_rejected(self):
        s = SatSolver(preprocess=False, proof=True)
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a, b])
        assert s.solve() == SAT
        entries = list(s.proof_entries())
        model = {v: s.model_value(v) for v in (a, b)}
        ok, _ = verify_model(entries, model)
        assert ok
        flipped = dict(model)
        flipped[b] = not flipped[b]  # b is forced true: flipping it lies
        ok, detail = verify_model(entries, flipped)
        assert not ok
        assert "falsified" in detail

    def test_budget_skip_is_not_a_failure(self):
        entries, final = _unsat_proof()
        outcome = check_proof(entries, final, max_seconds=0.0)
        assert outcome.status in ("ok", "budget")
        assert outcome.status != "failed"


class TestWitnessMutations:
    @pytest.fixture(scope="class")
    def reachable_case(self):
        """A corpus query that BMC answers REACHABLE with a certificate."""
        for path in _corpus_paths():
            design = build_design(load_reproducer(path))
            for probe in design.probe_names:
                ctx = BmcContext(design.netlist, horizon=4, certify=FULL)
                result = ctx.check(
                    Query("reach_%s" % probe, Eventually(sig(probe)))
                )
                cert = result.certificate
                if result.outcome == REACHABLE and cert is not None:
                    return design.netlist, probe, cert
        pytest.skip("corpus produced no REACHABLE witness")

    def test_witness_verified_and_digest_intact(self, reachable_case):
        _netlist, _probe, cert = reachable_case
        assert cert["kind"] == "witness"
        assert cert["verified"] is True
        assert verify_certificate_digest(cert)

    def test_wrong_depth_replay_fails(self, reachable_case):
        from repro.cert import replay_witness
        from repro.props.views import ConcreteOps

        netlist, probe, cert = reachable_case
        payload = cert["payload"]
        truncated = dict(payload, inputs=[], depth=0)
        prop = Eventually(sig(probe))

        def fires(view):
            return bool(prop.evaluate(view, ConcreteOps))

        # the full-depth replay fires; the zero-depth one cannot
        assert replay_witness(netlist, payload, fires)
        assert not replay_witness(netlist, truncated, fires)

    def test_forged_payload_digest_mismatch(self, reachable_case):
        _netlist, _probe, cert = reachable_case
        forged = dict(cert, payload=dict(cert["payload"], depth=99))
        assert not verify_certificate_digest(forged)


# -------------------------------------------- seeded solver soundness mutation
def _polarity_blind(small, big):
    """The seeded mutation: subsumption that ignores literal polarity."""
    big_vars = {lit >> 1 for lit in big}
    return all((lit >> 1) in big_vars for lit in small)


#: crafted instance: clauses (1∨2), (1∨¬2∨3), (2∨3) under assumptions
#: (¬1, ¬3) -- cleanly UNSAT; polarity-blind subsumption kills the
#: clauses that block the all-false corner and the solver answers SAT
_CRAFTED_CLAUSES = ((1, 2), (1, -2, 3), (2, 3))
_CRAFTED_ASSUMPTIONS = (-1, -3)


def _solve_crafted():
    s = SatSolver(preprocess=True, proof=True)
    top = max(abs(l) for clause in _CRAFTED_CLAUSES for l in clause)
    variables = [s.new_var() for _ in range(top)]
    for clause in _CRAFTED_CLAUSES:
        s.add_clause([clause_lit for clause_lit in clause])
    for v in variables:
        s.freeze(v)
    verdict = s.solve(list(_CRAFTED_ASSUMPTIONS))
    return s, verdict


class TestSeededSolverMutation:
    def test_clean_solver_answers_unsat(self):
        _s, verdict = _solve_crafted()
        assert verdict == UNSAT

    def test_mutation_flips_verdict_and_certification_catches_it(
        self, monkeypatch
    ):
        monkeypatch.setattr(preprocess_mod, "_subsumes", _polarity_blind)
        s, verdict = _solve_crafted()
        assert verdict == SAT  # the soundness bug fires
        model = {v: s.model_value(v) for v in (1, 2, 3)}
        ok, detail = verify_model(s.proof_entries(), model)
        assert not ok  # ...and the independent checker refutes the model
        assert "falsified" in detail

    def test_mutation_does_not_break_witness_replay_path(self, monkeypatch):
        """Corpus REACHABLE witnesses still replay under the mutation:
        replay uses the simulator, which the solver bug cannot touch."""
        monkeypatch.setattr(preprocess_mod, "_subsumes", _polarity_blind)
        for path in _corpus_paths(limit=2):
            design = build_design(load_reproducer(path))
            for probe in design.probe_names:
                ctx = BmcContext(design.netlist, horizon=4, certify=FULL)
                result = ctx.check(
                    Query("reach_%s" % probe, Eventually(sig(probe)))
                )
                if result.certificate is not None:
                    assert result.certificate["verified"] is not False


# ------------------------------------------------------- certify-off parity
class TestCertifyParity:
    def test_full_matches_off_on_corpus(self):
        """Certification must observe the verdict, never change it."""
        for path in _corpus_paths(limit=3):
            design = build_design(load_reproducer(path))
            for probe in design.probe_names:
                query = Query("reach_%s" % probe, Eventually(sig(probe)))
                plain = BmcContext(design.netlist, horizon=4).check(query)
                certified = BmcContext(
                    design.netlist, horizon=4, certify=FULL
                ).check(query)
                assert (plain.outcome, plain.detail, plain.depth) == (
                    certified.outcome,
                    certified.detail,
                    certified.depth,
                ), "certify=full changed a BMC verdict for %s" % probe
                if certified.outcome in (REACHABLE, UNREACHABLE):
                    cert = certified.certificate
                    assert cert is not None and cert["verified"] is not False

    def test_kinduction_certificates_cover_both_legs(self):
        for path in _corpus_paths():
            design = build_design(load_reproducer(path))
            for probe in design.probe_names:
                if not design.netlist.registers:
                    continue
                proof = prove_unreachable_kinduction(
                    design.netlist, sig(probe), k=2, certify=FULL
                )
                if proof.outcome != UNREACHABLE:
                    continue
                cert = proof.certificate
                assert cert is not None
                assert cert["kind"] == "drat"
                assert cert["verified"] is True
                assert set(cert["payload"]["legs"]) == {"base", "step"}
                return
        pytest.skip("corpus produced no UNREACHABLE induction proof")


# ------------------------------------------------------ cache backward compat
class TestCacheBackwardCompat:
    FIXTURE = os.path.join(FIXTURES, "cache_entry_pre_cert.json")

    def test_pre_cert_fixture_still_hits(self, tmp_path):
        """An entry written before certificates existed stays a valid hit."""
        with open(self.FIXTURE, "r", encoding="utf-8") as handle:
            fixture = json.load(handle)
        # the pin itself: the on-disk format was NOT bumped for
        # certificates, so the fixture's version must still be current
        assert fixture["format"] == CACHE_FORMAT_VERSION
        assert "certificate" not in json.dumps(fixture)
        cache = ProofCache(str(tmp_path))
        dest = cache._path(fixture["key"])
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        shutil.copyfile(self.FIXTURE, dest)
        entry = cache.get(fixture["key"])
        assert entry is not None, "pre-certificate entry must stay a hit"
        results = [CheckResult.from_dict(r) for r in entry["results"]]
        assert all(r.certificate is None for r in results)

    def test_certified_and_uncertified_jobs_share_cache_keys(self):
        job = ReachJob(design_json="{}", probe="p", design_label="d")
        assert job.cache_key() == replace(job, certify="full").cache_key()
        assert job.cache_key() == job.conservative().cache_key()

    def test_verify_store_quarantines_refuted_certificates(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        bad_cert = {
            "kind": "witness",
            "status": "failed",
            "verified": False,
            "digest": payload_digest({"depth": 0}),
            "payload": {"depth": 0},
        }
        cache.put(
            "badkey", "j1", {"v": 1},
            [CheckResult("q", REACHABLE, "bmc", certificate=bad_cert).to_dict()],
        )
        cache.put(
            "goodkey", "j2", {"v": 2},
            [CheckResult("q", UNREACHABLE, "bmc").to_dict()],
        )
        report = cache.verify_store()
        assert report["checked"] == 2
        assert report["quarantined"] == 1
        assert report["quarantined_by_reason"] == {"certificate_failed": 1}
        assert cache.get("badkey") is None
        assert cache.get("goodkey") is not None


# --------------------------------------------------------- engine degrade rung
@dataclass(frozen=True)
class CertFailingJob:
    """First solve yields a refuted certificate; the conservative recipe
    yields a verified one with a *different* verdict (so the run records
    a divergence)."""

    job_id: str = "fake:certfail"
    key: str = "certfail-key"
    trusted: bool = False

    def _result(self):
        payload = {"depth": 1, "path": "conservative" if self.trusted else "fast"}
        cert = {
            "kind": "witness",
            "status": "verified" if self.trusted else "failed",
            "verified": bool(self.trusted),
            "digest": payload_digest(payload),
            "payload": payload,
        }
        outcome = UNREACHABLE if self.trusted else REACHABLE
        return CheckResult("q", outcome, "fake", certificate=cert)

    def execute(self):
        return ("trusted" if self.trusted else "fast"), [self._result()]

    def escalated(self, attempt, factor):
        return self

    def conservative(self):
        return replace(self, trusted=True)

    def cache_key(self):
        return self.key

    @staticmethod
    def encode_value(value):
        return value

    @staticmethod
    def decode_value(payload):
        return payload

    @staticmethod
    def value_is_final(value):
        return True


@dataclass(frozen=True)
class CertDeadEndJob(CertFailingJob):
    """A failed certificate with no conservative recipe: uncaught."""

    job_id: str = "fake:certdeadend"
    key: str = "certdeadend-key"
    conservative = None  # the degrade rung finds nothing callable


class TestSchedulerDegradeRung:
    def test_failed_certificate_is_resolved_conservatively(self, tmp_path):
        engine = JobScheduler(EngineConfig(jobs=1, cache_dir=str(tmp_path)))
        outcome = engine.run([CertFailingJob()])
        manifest = outcome.manifest
        # the conservative verdict wins; the campaign completes cleanly
        assert outcome.results["fake:certfail"] == "trusted"
        assert manifest.cert_failures == 1
        assert manifest.cert_degraded_jobs == 1
        assert manifest.cert_uncaught == 0
        assert manifest.cert_divergences == [
            {"query": "q", "original": REACHABLE, "conservative": UNREACHABLE}
        ]
        assert manifest.jobs_failed == 0
        # the re-solved (trusted) verdict is cacheable...
        engine2 = JobScheduler(EngineConfig(jobs=1, cache_dir=str(tmp_path)))
        outcome2 = engine2.run([CertFailingJob()])
        assert outcome2.manifest.cache_hits == 1
        assert outcome2.results["fake:certfail"] == "trusted"

    def test_uncaught_failure_is_surfaced_and_never_cached(self, tmp_path):
        engine = JobScheduler(EngineConfig(jobs=1, cache_dir=str(tmp_path)))
        outcome = engine.run([CertDeadEndJob()])
        manifest = outcome.manifest
        assert manifest.cert_failures == 1
        assert manifest.cert_degraded_jobs == 0
        assert manifest.cert_uncaught == 1
        # an untrusted verdict must never become a future cache hit
        engine2 = JobScheduler(EngineConfig(jobs=1, cache_dir=str(tmp_path)))
        outcome2 = engine2.run([CertDeadEndJob()])
        assert outcome2.manifest.cache_hits == 0
        assert outcome2.manifest.cert_uncaught == 1

    def test_failure_bundles_dumped_for_ci(self, tmp_path, monkeypatch):
        art_dir = tmp_path / "artifacts"
        monkeypatch.setenv("REPRO_CERT_ARTIFACTS", str(art_dir))
        JobScheduler(EngineConfig(jobs=1)).run([CertFailingJob()])
        bundles = list(art_dir.glob("cert-failure-*.json"))
        assert bundles, "failing bundle was not written"
        with open(bundles[0], "r", encoding="utf-8") as handle:
            bundle = json.load(handle)
        assert bundle["failures"][0]["certificate"]["verified"] is False

    def test_manifest_summary_mentions_certification(self):
        outcome = JobScheduler(EngineConfig(jobs=1)).run([CertFailingJob()])
        text = outcome.manifest.summary()
        assert "certification failure" in text
        assert "re-solved" in text


class TestEndToEndCertifiedCampaign:
    def test_corpus_campaign_full_certify_clean(self, tmp_path):
        """Certified corpus campaign: checked certs, zero failures, and a
        warm-cache replay that re-verifies them on read-through."""
        jobs = reach_jobs_for_corpus(CORPUS, certify="full")[:6]
        engine = JobScheduler(EngineConfig(jobs=1, cache_dir=str(tmp_path)))
        stats_outcome = engine.run(jobs)
        manifest = stats_outcome.manifest
        assert manifest.cert_checked > 0
        assert manifest.cert_failures == 0
        assert manifest.cert_uncaught == 0
        engine2 = JobScheduler(EngineConfig(jobs=1, cache_dir=str(tmp_path)))
        replayed = engine2.run(jobs)
        assert replayed.manifest.cache_hits == len(jobs)
        assert replayed.manifest.cert_checked == manifest.cert_checked
        assert replayed.results == stats_outcome.results
        assert replayed.manifest.cache_quarantined == 0

    def test_uncertified_manifest_keeps_pre_cert_shape(self, tmp_path):
        jobs = reach_jobs_for_corpus(CORPUS)[:2]
        outcome = JobScheduler(
            EngineConfig(jobs=1, cache_dir=str(tmp_path))
        ).run(jobs)
        payload = outcome.manifest.to_dict()
        assert not any(k.startswith("cert") for k in payload)


# ------------------------------------------------------------- wire protocol
class TestWireCertificates:
    class _Job:
        job_id = "wire:j1"

    def _report(self, cert):
        from repro.engine.scheduler import WorkerReport

        result = CheckResult("q", UNREACHABLE, "bmc", certificate=cert)
        return WorkerReport(job_id="wire:j1", value=None, results=[result])

    def _cert(self, entries=1):
        payload = {
            "legs": {
                "proof": {
                    "entries": [["i", [i + 1, -(i + 2)]] for i in range(entries)],
                    "final": [],
                }
            }
        }
        return {
            "kind": "drat",
            "status": "verified",
            "verified": True,
            "digest": payload_digest(payload),
            "payload": payload,
        }

    def test_round_trip_preserves_certificates(self):
        from repro.dist import protocol

        wire = protocol.report_to_wire(self._report(self._cert()), self._Job())
        back = protocol.report_from_wire(
            json.loads(json.dumps(wire)), self._Job()
        )
        assert back.results[0].certificate == self._cert()
        assert back.cert_failures == 0

    def test_oversized_certificate_degrades_to_digest_only(self, monkeypatch):
        from repro.dist import protocol

        cert = self._cert(entries=300)
        report = self._report(cert)
        monkeypatch.setattr(
            protocol, "MAX_FRAME_BYTES", protocol._FRAME_MARGIN + 2000
        )
        wire = protocol.report_to_wire(report, self._Job())
        degraded = wire["results"][0]["certificate"]
        assert degraded["payload"] is None
        assert degraded["payload_dropped"] is True
        assert degraded["digest"] == cert["digest"]
        assert verify_certificate_digest(degraded)
        # the worker's in-memory bundle is untouched
        assert report.results[0].certificate["payload"] is not None
        # ...and the degraded frame actually fits
        protocol.encode_frame({"type": "result", "report": wire})

    def test_arrival_spot_check_demotes_corrupt_bundle(self):
        from repro.dist import protocol

        wire = protocol.report_to_wire(self._report(self._cert()), self._Job())
        tampered = json.loads(json.dumps(wire))
        tampered["results"][0]["certificate"]["payload"]["legs"]["proof"][
            "final"
        ] = [7]
        back = protocol.report_from_wire(tampered, self._Job())
        cert = back.results[0].certificate
        assert cert["verified"] is False
        assert cert["detail"] == "wire digest mismatch"
        assert certificate_failed(back.results[0])
        assert back.cert_uncaught == 1

    def test_pre_cert_wire_report_decodes(self):
        from repro.dist import protocol

        wire = protocol.report_to_wire(self._report(None), self._Job())
        assert "cert_failures" not in wire  # zero accounting stays off-wire
        back = protocol.report_from_wire(wire, self._Job())
        assert back.cert_failures == 0 and back.cert_uncaught == 0


# -------------------------------------------------------------------- policy
class TestCertifyPolicy:
    def test_modes(self):
        assert not CertifyPolicy.from_mode("off").enabled
        assert CertifyPolicy.from_mode("spot").enabled
        assert CertifyPolicy.from_mode("full").should_check_proof("anything")
        with pytest.raises(ValueError):
            CertifyPolicy.from_mode("sometimes")

    def test_spot_sampling_is_deterministic(self):
        spot = CertifyPolicy.from_mode("spot")
        names = ["q%d" % i for i in range(64)]
        picks = [n for n in names if spot.should_check_proof(n)]
        assert picks == [n for n in names if spot.should_check_proof(n)]
        assert 0 < len(picks) < len(names)

    def test_undetermined_never_certified(self):
        """A budget-starved solve yields UNDETERMINED with no certificate."""
        for path in _corpus_paths():
            design = build_design(load_reproducer(path))
            for probe in design.probe_names:
                ctx = BmcContext(
                    design.netlist, horizon=4, conflict_budget=1, certify=FULL
                )
                result = ctx.check(
                    Query("reach_%s" % probe, Eventually(sig(probe)))
                )
                if result.outcome not in (REACHABLE, UNREACHABLE):
                    assert result.certificate is None
                    return
        pytest.skip("conflict_budget=1 still decided every corpus query")


# ---------------------------------------------------- cover-witness replay
class TestCoverWitnessCertificates:
    """Enumerative cover verdicts certify by context replay (DESIGN SS5j)."""

    @pytest.fixture(scope="class")
    def certified_synthesis(self, core_design, core_provider):
        from repro.core.rtl2mupath import Rtl2MuPath, Rtl2MuPathConfig

        tool = Rtl2MuPath(
            core_design,
            core_provider,
            config=Rtl2MuPathConfig(certify="full"),
        )
        result = tool.synthesize("ADD")
        return tool, result

    def test_full_mode_covers_carry_verified_certs(self, certified_synthesis):
        tool, _result = certified_synthesis
        covers = [
            r for r in tool.stats.results
            if r.certificate is not None
            and r.certificate["kind"] == "cover-witness"
        ]
        assert covers, "full mode produced no cover-witness certificates"
        for r in covers:
            assert r.outcome == REACHABLE  # only witnessed verdicts certify
            assert r.certificate["verified"] is True
            assert verify_certificate_digest(r.certificate)
        # no finite witness exists for enumerative UNREACHABLE/UNDETERMINED
        assert all(
            r.certificate is None
            for r in tool.stats.results
            if r.outcome != REACHABLE
        )

    def test_off_mode_covers_carry_none(self, mupath_tool, mupath_add):
        assert all(r.certificate is None for r in mupath_tool.stats.results)

    def test_parity_with_uncertified_run(
        self, certified_synthesis, mupath_add
    ):
        _tool, result = certified_synthesis
        assert {u.pl_set for u in result.upaths} == {
            u.pl_set for u in mupath_add.upaths
        }

    def test_tampered_cover_witness_fails(self, core_design, core_provider):
        from repro.core.mhb import CycleAccuratePath
        from repro.core.rtl2mupath import VisitIndex, _CoverCertifier
        from repro.mc.enumerative import TraceDB

        group = core_provider.mupath_groups("ADD")[0]
        db = TraceDB(core_design.netlist, group.contexts, group.complete)
        index = VisitIndex(db, core_design.metadata, group.iuv_pc)
        certifier = _CoverCertifier(
            core_design.netlist, core_design.metadata.pls, FULL
        )
        certifier.add_index(db, index)
        witness = next(p for p in index.paths if p.pl_set)
        pred = lambda p, want=witness.pl_set: want <= p.pl_set

        good = certifier.certify("cover_ok", witness, pred)
        assert good["verified"] is True

        # forge the witness: claim one extra visit cycle the replayed
        # context does not reproduce
        doctored = CycleAccuratePath(
            iuv=witness.iuv,
            visits=witness.visits + (frozenset({"IF"}),),
        )
        certifier._src[doctored] = certifier._src[witness]
        bad = certifier.certify("cover_forged", doctored, pred)
        assert bad["verified"] is False
        assert certificate_failed(bad)

    def test_spot_mode_samples_covers(self, core_design, core_provider):
        from repro.core.rtl2mupath import Rtl2MuPath, Rtl2MuPathConfig

        tool = Rtl2MuPath(
            core_design,
            core_provider,
            config=Rtl2MuPathConfig(certify="spot"),
        )
        tool.synthesize("ADD")
        certs = [
            r.certificate
            for r in tool.stats.results
            if r.certificate is not None
        ]
        reachable = [r for r in tool.stats.results if r.outcome == REACHABLE]
        assert certs, "spot mode sampled no covers"
        assert len(certs) < len(reachable)
        assert all(c["verified"] is True for c in certs)

"""Report tests: Fig. 8 matrix construction, Table II, stats tables."""

import pytest

from repro.core.pl import DesignMetadata, MicroFsm, PerformingLocation, PlSlot
from repro.core.synthlc import LeakageSignature, SynthLCResult, TransmitterTag
from repro.mc.outcomes import CheckResult
from repro.mc.stats import PropertyStats
from repro.report import (
    CLASS_REPRESENTATIVES,
    build_fig8,
    class_members,
    property_stats_report,
    render_table,
    table2_report,
)


def tag(t, ttype, op="rs1", fp=False):
    return TransmitterTag(transmitter=t, ttype=ttype, operand=op, false_positive=fp)


def sigfix(p, src, dsts, tags):
    return LeakageSignature(
        transponder=p,
        src=src,
        destinations=tuple(frozenset(d) for d in dsts),
        inputs=tuple(tags),
    )


@pytest.fixture
def small_result():
    signatures = [
        sigfix("DIV", "divU", [["divU"], ["scbFin"]], [tag("DIV", "intrinsic")]),
        sigfix("LW", "issue", [["ldFin"], ["LSQ"]], [tag("SW", "dynamic_older")]),
        # pure stall behind an intrinsic transmitter: secondary leakage
        sigfix("ADD", "scbFin", [["scbFin"], []], [tag("DIV", "dynamic_older")]),
        sigfix("BEQ", "scbIss", [["aluU"], ["scbFin"]],
               [tag("MUL", "dynamic_older", fp=True)]),
    ]
    return SynthLCResult(
        signatures=signatures,
        transponders=["ADD", "BEQ", "DIV", "LW"],
        candidate_transponders=["ADD", "BEQ", "DIV", "LW"],
        transmitters={
            "intrinsic": {"DIV"},
            "dynamic_older": {"SW", "DIV"},
            "dynamic_younger": set(),
            "static": set(),
        },
        tags_by_decision={},
        stats=PropertyStats(),
    )


class TestClassExtension:
    def test_representatives_cover_all_classes(self):
        from repro.designs import isa

        covered = set()
        for class_name in CLASS_REPRESENTATIVES:
            covered.update(class_members(class_name))
        assert len(covered) == 72

    def test_rep_belongs_to_class(self):
        from repro.designs import isa

        for class_name, rep in CLASS_REPRESENTATIVES.items():
            assert isa.BY_NAME[rep].cls == class_name


class TestFig8:
    def test_extension_to_72_transponders_scale(self, small_result):
        matrix = build_fig8(small_result, extend_classes=True)
        # 4 transponder classes extended: alu(38) + branch(6) + div(8) + load(7)
        from repro.designs import isa

        expected = sum(
            len(isa.CLASSES[c]) for c in ("alu", "branch", "div", "load")
        )
        assert matrix.num_transponders == expected == 59

    def test_unextended_counts(self, small_result):
        matrix = build_fig8(small_result, extend_classes=False)
        assert matrix.num_transponders == 4
        assert matrix.unique_signatures == 4

    def test_transmitter_extension(self, small_result):
        matrix = build_fig8(small_result, extend_classes=True)
        # DIV class extends to 8 intrinsic transmitters, stores add 4 dynamics
        assert len(matrix.intrinsic_transmitters) == 8
        assert set(matrix.dynamic_transmitters) >= set(class_members("store"))

    def test_cell_kinds(self, small_result):
        matrix = build_fig8(small_result, extend_classes=False)
        kinds = {cell.kind for cell in matrix.cells.values()}
        assert kinds == {"primary", "secondary", "false-positive"}

    def test_secondary_requires_stall_shape(self, small_result):
        matrix = build_fig8(small_result, extend_classes=False)
        for (ri, ci), cell in matrix.cells.items():
            transponder, signature = matrix.columns[ci]
            if cell.kind == "secondary":
                assert signature.name == "ADD_scbFin"

    def test_render(self, small_result):
        text = build_fig8(small_result, extend_classes=False).render()
        assert "transponders" in text and "signatures" in text

    def test_false_positive_signature_count(self, small_result):
        matrix = build_fig8(small_result, extend_classes=False)
        assert matrix.false_positive_signatures == 1


class TestTables:
    def _metadata(self):
        pls = {
            "IF": PerformingLocation("IF", (PlSlot("pl_IF_occ", "pl_IF_pc"),), ("u0",)),
        }
        return DesignMetadata(
            design_name="toy",
            pls=pls,
            ufsms=(MicroFsm("u0", "if_pc", ("if_v",)), MicroFsm("u1", "x_pc", ("x",), pcr_added=True)),
            ifr_signal="IFR",
            commit_signal="commit",
            commit_pc_signal="commit_pc",
            operand_registers=("a", "b"),
            arf_registers=("arf_w0",),
            amem_registers=(),
        )

    def test_table2_columns(self):
        text = table2_report({"toy": self._metadata()})
        assert "uFSMs" in text and "PCRs added" in text and "toy" in text

    def test_annotation_counts(self):
        counts = self._metadata().annotation_counts()
        assert counts["ufsms"] == 2
        assert counts["pcrs_added"] == 1
        assert counts["operand_registers"] == 2

    def test_property_stats_report(self):
        stats = PropertyStats(label="phase1")
        stats.record(CheckResult("a", "reachable", "e", time_seconds=0.5))
        stats.record(CheckResult("b", "undetermined", "e", time_seconds=1.5))
        text = property_stats_report({"phase1": stats})
        assert "phase1" in text and "50.00" in text

    def test_stats_merge_and_summary(self):
        s1 = PropertyStats(label="a")
        s1.record(CheckResult("x", "reachable", "e", time_seconds=1.0))
        s2 = PropertyStats(label="b")
        s2.record(CheckResult("y", "unreachable", "e", time_seconds=3.0))
        merged = s1.merged(s2)
        assert merged.count == 2
        assert merged.mean_time == 2.0
        assert "2 properties" in merged.summary()

    def test_render_table_alignment(self):
        text = render_table(["col", "x"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

"""uHB graph and decision-extraction tests (SS III-B, SS IV-B)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.decisions import Decision, extract_decisions
from repro.core.mhb import CycleAccuratePath, UhbGraph, extract_path
from repro.core.pl import PerformingLocation, PlSlot


def path(*visit_sets):
    return CycleAccuratePath.from_cycles("X", [frozenset(s) for s in visit_sets])


class TestCycleAccuratePath:
    def test_trims_empty_edges(self):
        p = path((), ("IF",), ("ID",), ())
        assert p.latency == 2
        assert p.visits[0] == frozenset({"IF"})

    def test_latency(self):
        assert path(("IF",), ("ID",), ("EX",)).latency == 3

    def test_pl_set(self):
        p = path(("IF",), ("ID", "scb"), ("EX", "scb"))
        assert p.pl_set == {"IF", "ID", "EX", "scb"}

    def test_run_lengths_single(self):
        assert path(("a",), ("a",), ("a",)).run_lengths("a") == [3]

    def test_run_lengths_split(self):
        p = path(("a",), (), ("a",), ("a",))
        assert p.run_lengths("a") == [1, 2]

    def test_revisit_kinds(self):
        assert path(("a",)).revisit_kind("a") == "none"
        assert path(("a",), ("a",)).revisit_kind("a") == "consecutive"
        assert path(("a",), (), ("a",)).revisit_kind("a") == "nonconsecutive"
        assert path(("a",), ("a",), (), ("a",)).revisit_kind("a") == "both"

    def test_next_sets(self):
        p = path(("a",), ("b", "c"), ("a",))
        assert p.next_sets("a") == [frozenset({"b", "c"}), frozenset()]

    @given(st.lists(st.sets(st.sampled_from("abcd")), min_size=1, max_size=8))
    def test_run_lengths_sum_equals_visit_count(self, sets):
        p = CycleAccuratePath.from_cycles("X", [frozenset(s) for s in sets])
        for pl in p.pl_set:
            count = sum(1 for visit in p.visits if pl in visit)
            assert sum(p.run_lengths(pl)) == count


class TestUhbGraph:
    def test_nodes_numbered_per_visit(self):
        g = UhbGraph(path(("IF",), ("ID",), ("ID",)))
        labels = [(n.pl, n.visit, n.cycle) for n in g.nodes]
        assert ("ID", 1, 1) in labels and ("ID", 2, 2) in labels

    def test_edges_are_one_cycle(self):
        g = UhbGraph(path(("IF",), ("ID", "scb")))
        pairs = {(a.pl, b.pl) for a, b in g.edges}
        assert pairs == {("IF", "ID"), ("IF", "scb")}

    def test_summarized_rows(self):
        g = UhbGraph(path(("ID",), ("ID",), ("EX",)))
        rows = g.summarized_rows()
        # ID has one run of length 2 (the paper's Row(1)/Row(l) with l=2)
        assert ("ID", 0, 2, 1) in rows
        assert ("EX", 2, 1, 1) in rows

    def test_summarized_rows_nonconsecutive(self):
        g = UhbGraph(path(("a",), ("b",), ("a",)))
        rows = [r for r in g.summarized_rows() if r[0] == "a"]
        assert len(rows) == 2  # two separate runs -> two row instances

    def test_ascii_render(self):
        g = UhbGraph(path(("IF",), ("ID",)))
        text = g.render_ascii(title="demo")
        assert "demo" in text and "IF" in text and "latency: 2" in text

    def test_dot_render(self):
        g = UhbGraph(path(("IF",), ("ID",)))
        dot = g.render_dot()
        assert dot.startswith("digraph") and "->" in dot


class TestExtractPath:
    PLS = {
        "A": PerformingLocation("A", (PlSlot("a_occ", "a_pc"),)),
        "B": PerformingLocation(
            "B", (PlSlot("b_occ0", "b_pc0"), PlSlot("b_occ1", "b_pc1"))
        ),
    }

    def test_dict_rows(self):
        cycles = [
            {"a_occ": 1, "a_pc": 4, "b_occ0": 0, "b_pc0": 0, "b_occ1": 0, "b_pc1": 0},
            {"a_occ": 0, "a_pc": 4, "b_occ0": 1, "b_pc0": 4, "b_occ1": 0, "b_pc1": 0},
            {"a_occ": 1, "a_pc": 8, "b_occ0": 0, "b_pc0": 0, "b_occ1": 1, "b_pc1": 4},
        ]
        p = extract_path(cycles, self.PLS, iuv_pc=4)
        assert p.visits == (frozenset({"A"}), frozenset({"B"}), frozenset({"B"}))

    def test_other_pc_ignored(self):
        cycles = [{"a_occ": 1, "a_pc": 8, "b_occ0": 0, "b_pc0": 0, "b_occ1": 0, "b_pc1": 0}]
        p = extract_path(cycles, self.PLS, iuv_pc=4)
        assert p.latency == 0


class TestDecisions:
    def test_single_destination_no_decision(self):
        paths = [path(("a",), ("b",)), path(("a",), ("b",))]
        ds = extract_decisions("X", paths)
        assert ds.sources == []

    def test_two_destinations_make_decision(self):
        paths = [path(("a",), ("b",)), path(("a",), ("c",))]
        ds = extract_decisions("X", paths)
        assert ds.sources == ["a"]
        dsts = ds.destinations("a")
        assert frozenset({"b"}) in dsts and frozenset({"c"}) in dsts

    def test_exact_destination_sets(self):
        # {b} vs {b, c} are distinct destinations (exactness matters)
        paths = [path(("a",), ("b",)), path(("a",), ("b", "c"))]
        ds = extract_decisions("X", paths)
        assert len(ds.destinations("a")) == 2

    def test_squash_destination(self):
        paths = [path(("a",), ("b",)), path(("a",))]
        ds = extract_decisions("X", paths)
        assert frozenset() in ds.destinations("a")

    def test_within_path_variability(self):
        # the Fig. 1 pattern: scbIss -> {scbIss, mulU} then scbIss -> {scbFin}
        p = path(("scbIss", "mulU"), ("scbIss",), ("scbFin",))
        ds = extract_decisions("MUL", [p])
        assert "scbIss" in ds.sources

    def test_decision_repr(self):
        d = Decision("a", frozenset())
        assert "squash" in repr(d)

    def test_paper_example_lw(self):
        """SS IV-B: d_LD = {(issue, {ldFin}), (issue, {LSQ, ldStall})}."""
        fast = path(("issue",), ("ldFin",))
        slow = path(("issue",), ("LSQ", "ldStall"))
        ds = extract_decisions("LD", [fast, slow])
        assert ds.sources == ["issue"]
        assert set(ds.destinations("issue")) == {
            frozenset({"ldFin"}),
            frozenset({"LSQ", "ldStall"}),
        }

"""End-to-end IFT soundness on the real core.

The load-bearing guarantee behind SynthLC's decision-taint covers: when
two runs differ only in a transmitter's operand value, any cycle where a
PL's occupancy-by-the-IUV differs must be tainted in at least one of the
runs (taint over-approximates influence).  This is checked here on the
instrumented core for the divider and the store-to-load channels.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.synthlc import instrument_design
from repro.designs import isa, program_driver_factory, slot_pc
from repro.designs.harness import TaintSpec
from repro.sim import Simulator


@pytest.fixture(scope="module")
def ift_core(core_design):
    return core_design, instrument_design(core_design)


def run_tainted(core_design, ift, program, overrides, taint_pc, horizon=40):
    sim = Simulator(ift.netlist)
    sim.reset(overrides)
    taint = TaintSpec(pc=taint_pc, rs1=True, rs2=True)
    driver = program_driver_factory(
        [("feed", tuple(program))], taint=taint, instrumented=True
    )()
    prev = None
    rows = []
    for t in range(horizon):
        prev = sim.step(driver(t, prev))
        rows.append(prev)
    return rows


def occupancy_profiles(core_design, rows, pc):
    """(visits, tainted) per cycle for instruction ``pc``."""
    visits, tainted = [], []
    for obs in rows:
        vset, tset = set(), set()
        for name, pl in core_design.metadata.pls.items():
            for slot in pl.slots:
                if obs[slot.occ_signal] and obs[slot.pc_signal] == pc:
                    vset.add(name)
                    if obs[slot.taint_probe + "__tainted"]:
                        tset.add(name)
        visits.append(frozenset(vset))
        tainted.append(frozenset(tset))
    return visits, tainted


@settings(max_examples=12, deadline=None)
@given(v1=st.integers(0, 255), v2=st.integers(0, 255))
def test_div_occupancy_differences_are_tainted(ift_core, v1, v2):
    core_design, ift = ift_core
    program = [isa.encode("DIVU", rd=3, rs1=1, rs2=2)]
    rows1 = run_tainted(core_design, ift, program, {"arf_w1": v1, "arf_w2": 3}, slot_pc(0))
    rows2 = run_tainted(core_design, ift, program, {"arf_w1": v2, "arf_w2": 3}, slot_pc(0))
    visits1, tainted1 = occupancy_profiles(core_design, rows1, slot_pc(0))
    visits2, tainted2 = occupancy_profiles(core_design, rows2, slot_pc(0))
    for t, (a, b) in enumerate(zip(visits1, visits2)):
        for pl in a ^ b:  # occupancy differs at cycle t
            assert pl in tainted1[t] or pl in tainted2[t], (t, pl)


def test_store_to_load_stall_difference_is_tainted(ift_core):
    core_design, ift = ift_core
    sw = isa.encode("SW", rs1=4, rs2=5)
    lw = isa.encode("LW", rd=3, rs1=1, rs2=1)
    base = {"arf_w1": 0, "arf_w5": 9}
    rows_match = run_tainted(core_design, ift, [sw, lw], dict(base, arf_w4=0), slot_pc(0))
    rows_miss = run_tainted(core_design, ift, [sw, lw], dict(base, arf_w4=1), slot_pc(0))
    v_match, t_match = occupancy_profiles(core_design, rows_match, slot_pc(1))
    v_miss, t_miss = occupancy_profiles(core_design, rows_miss, slot_pc(1))
    diff_cycles = [t for t, (a, b) in enumerate(zip(v_match, v_miss)) if a != b]
    assert diff_cycles  # the load's uPATH really differs
    for t in diff_cycles:
        for pl in v_match[t] ^ v_miss[t]:
            assert pl in t_match[t] or pl in t_miss[t], (t, pl)


def test_untainted_instruction_has_no_taint(ift_core):
    core_design, ift = ift_core
    program = [isa.encode("ADD", rd=3, rs1=1, rs2=2)]
    # taint targets a PC that never appears
    rows = run_tainted(core_design, ift, program, {"arf_w1": 7}, taint_pc=0xFC)
    _visits, tainted = occupancy_profiles(core_design, rows, slot_pc(0))
    assert all(not tset for tset in tainted)

"""Cycle-accurate microarchitectural happens-before (uHB) graphs.

The paper's first technical advance (SS III-B) extends the uHB formalism
with cycle-accurate timing: a node is an instruction updating a set of
state elements *in a specific cycle* (equivalently, visiting a PL in that
cycle), and every edge is a one-cycle happens-before relationship.  A pair
of row labels Row(1)/Row(l) summarizes l consecutive visits.

This module provides:

* :class:`CycleAccuratePath` -- the concrete per-cycle visit schedule of
  one dynamic instruction (the paper's concrete uPATH);
* :class:`UhbGraph` -- the node/edge view of a path, with Row(1)/Row(l)
  run summarization, latency queries, and ASCII / DOT rendering matching
  the figures' conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = ["CycleAccuratePath", "UhbNode", "UhbGraph", "extract_path"]


@dataclass(frozen=True)
class CycleAccuratePath:
    """Per-cycle PL visit sets of one instruction, first visit = cycle 0."""

    iuv: str
    visits: Tuple[FrozenSet[str], ...]

    @staticmethod
    def from_cycles(iuv: str, cycles: Sequence[FrozenSet[str]]) -> "CycleAccuratePath":
        # trim leading/trailing empty cycles; first visit becomes cycle 0
        start = 0
        while start < len(cycles) and not cycles[start]:
            start += 1
        end = len(cycles)
        while end > start and not cycles[end - 1]:
            end -= 1
        return CycleAccuratePath(
            iuv=iuv, visits=tuple(frozenset(c) for c in cycles[start:end])
        )

    @property
    def latency(self) -> int:
        """Cycles from first to last visit, inclusive."""
        return len(self.visits)

    @property
    def pl_set(self) -> FrozenSet[str]:
        out = set()
        for cycle in self.visits:
            out |= cycle
        return frozenset(out)

    def run_lengths(self, pl: str) -> List[int]:
        """Lengths of the consecutive-visit runs of ``pl`` along this path."""
        runs = []
        current = 0
        for cycle in self.visits:
            if pl in cycle:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        return runs

    def revisit_kind(self, pl: str) -> str:
        """"none" | "consecutive" | "nonconsecutive" | "both"."""
        runs = self.run_lengths(pl)
        consecutive = any(r > 1 for r in runs)
        nonconsecutive = len(runs) > 1
        if consecutive and nonconsecutive:
            return "both"
        if consecutive:
            return "consecutive"
        if nonconsecutive:
            return "nonconsecutive"
        return "none"

    def next_sets(self, pl: str) -> List[FrozenSet[str]]:
        """The sets of PLs visited one cycle after each visit to ``pl``."""
        out = []
        for t, cycle in enumerate(self.visits):
            if pl in cycle:
                nxt = self.visits[t + 1] if t + 1 < len(self.visits) else frozenset()
                out.append(nxt)
        return out


@dataclass(frozen=True)
class UhbNode:
    """A uHB node: the n-th visit (1-based) of the instruction to ``pl``."""

    pl: str
    visit: int
    cycle: int

    def label(self) -> str:
        return "%s(%d)@%d" % (self.pl, self.visit, self.cycle)


class UhbGraph:
    """Node/edge view of a concrete cycle-accurate uPATH."""

    def __init__(self, path: CycleAccuratePath):
        self.path = path
        self.nodes: List[UhbNode] = []
        counters: Dict[str, int] = {}
        for cycle, pls in enumerate(path.visits):
            for pl in sorted(pls):
                counters[pl] = counters.get(pl, 0) + 1
                self.nodes.append(UhbNode(pl=pl, visit=counters[pl], cycle=cycle))
        # one-cycle happens-before edges between temporally adjacent nodes
        self.edges: List[Tuple[UhbNode, UhbNode]] = []
        by_cycle: Dict[int, List[UhbNode]] = {}
        for node in self.nodes:
            by_cycle.setdefault(node.cycle, []).append(node)
        for cycle in sorted(by_cycle):
            for a in by_cycle.get(cycle, ()):
                for b in by_cycle.get(cycle + 1, ()):
                    self.edges.append((a, b))

    @property
    def latency(self) -> int:
        return self.path.latency

    def summarized_rows(self) -> List[Tuple[str, int, int, int]]:
        """Row(1)/Row(l) summarization: (pl, start_cycle, run_length, run_no).

        Each consecutive run of visits to the same PL collapses to one row
        entry; ``run_length`` is the paper's ``l``.
        """
        rows = []
        run_counters: Dict[str, int] = {}
        active: Dict[str, Tuple[int, int]] = {}  # pl -> (start, length)
        horizon = len(self.path.visits)
        for cycle in range(horizon + 1):
            pls = self.path.visits[cycle] if cycle < horizon else frozenset()
            for pl in list(active):
                if pl not in pls:
                    start, length = active.pop(pl)
                    run_counters[pl] = run_counters.get(pl, 0) + 1
                    rows.append((pl, start, length, run_counters[pl]))
            for pl in pls:
                if pl in active:
                    start, length = active[pl]
                    active[pl] = (start, length + 1)
                else:
                    active[pl] = (cycle, 1)
        rows.sort(key=lambda r: (r[1], r[0]))
        return rows

    def render_ascii(self, title: Optional[str] = None) -> str:
        """Figure-style text rendering: one row per PL, one column per cycle."""
        horizon = len(self.path.visits)
        pl_first = {}
        for cycle, pls in enumerate(self.path.visits):
            for pl in pls:
                pl_first.setdefault(pl, cycle)
        order = sorted(pl_first, key=lambda p: (pl_first[p], p))
        width = max((len(p) for p in order), default=4) + 2
        lines = []
        if title:
            lines.append(title)
        header = " " * width + " ".join("%2d" % t for t in range(horizon))
        lines.append(header)
        for pl in order:
            cells = []
            for t in range(horizon):
                cells.append(" *" if pl in self.path.visits[t] else " .")
            lines.append(pl.ljust(width) + " ".join(c.strip().rjust(2) for c in cells))
        lines.append("latency: %d cycles" % self.latency)
        return "\n".join(lines)

    def render_dot(self, name="upath") -> str:
        """GraphViz rendering with Row(1)/Row(l) node labels."""
        lines = ["digraph %s {" % name, "  rankdir=TB;"]
        ids = {}
        for i, node in enumerate(self.nodes):
            ids[node] = "n%d" % i
            lines.append(
                '  n%d [label="%s(%d)\\n@%d"];' % (i, node.pl, node.visit, node.cycle)
            )
        for a, b in self.edges:
            lines.append("  %s -> %s;" % (ids[a], ids[b]))
        lines.append("}")
        return "\n".join(lines)


def extract_path(
    trace,  # ConcreteTraceView, or a sequence of per-cycle dicts
    pls,  # Dict[str, PerformingLocation]
    iuv_pc: int,
    iuv: str = "IUV",
    slot_index=None,
) -> CycleAccuratePath:
    """Build the concrete uPATH of instruction ``iuv_pc`` from a trace.

    ``slot_index`` (from :func:`build_slot_index`) avoids re-resolving
    signal positions when extracting many paths from one trace database.
    """
    if hasattr(trace, "cycles"):
        rows = trace.cycles
        if slot_index is None:
            slot_index = build_slot_index(pls, trace.index)
    else:
        rows = trace
        if slot_index is None:
            slot_index = build_slot_index(pls, None)
    visit_sets = []
    for row in rows:
        visited = set()
        for name, occ_key, pc_key in slot_index:
            if row[occ_key] and row[pc_key] == iuv_pc:
                visited.add(name)
        visit_sets.append(frozenset(visited))
    return CycleAccuratePath.from_cycles(iuv, visit_sets)


def build_slot_index(pls, name_index):
    """Precompute (pl_name, occ_key, pc_key) triples for fast extraction.

    Keys are tuple positions when ``name_index`` is given, else signal-name
    strings (dict-row mode).
    """
    out = []
    for name, pl in pls.items():
        for slot in pl.slots:
            if name_index is not None:
                out.append((name, name_index[slot.occ_signal], name_index[slot.pc_signal]))
            else:
                out.append((name, slot.occ_signal, slot.pc_signal))
    return out

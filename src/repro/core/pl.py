"""Micro-op FSMs and performing locations (paper SS III-C).

A micro-op FSM (uFSM) is a tuple <iir, vars>: an instruction-identifying
register (for us, as for RTL2MuPATH, a program-counter register -- PCR)
plus state-variable registers.  A performing location (PL) is <ufsm,
state>: one valid, non-idle valuation of a uFSM's vars.  An instruction
*visits* a PL in a cycle when, at the start of that cycle, the uFSM's IIR
holds the instruction's PC and its vars equal the PL's state.

Designs expose each PL through two named netlist signals per *slot*:

* ``<occ>``  -- 1-bit: the uFSM's vars currently equal this PL's state;
* ``<pc>``   -- the PCR word identifying the occupying instruction.

Symmetric structures (scoreboard entries, store-buffer entries) consist of
several uFSMs that implement the same pipeline role; their PLs are grouped
into one :class:`PerformingLocation` with multiple slots.  This grouping is
how the tools obtain the row labels of the paper's uHB figures (scbIss,
comSTB, ...) while the per-entry uFSMs remain visible in the metadata for
Table II accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..props.exprs import CycleExpr, all_of, any_of, eq, sig

__all__ = ["MicroFsm", "PerformingLocation", "DesignMetadata"]


@dataclass(frozen=True)
class MicroFsm:
    """One micro-op FSM: its PCR (IIR) and state-variable registers."""

    name: str
    pcr: str  # register holding the occupying instruction's PC
    state_vars: Tuple[str, ...]  # registers encoding the FSM state
    pcr_added: bool = False  # True when the PCR exists only for verification


@dataclass(frozen=True)
class PlSlot:
    """One concrete uFSM slot of a PL: its occupancy and PCR signal names.

    ``probe_signal`` optionally names a wider signal (e.g. the concatenated
    uFSM state variables) whose taint companion SynthLC consults when
    checking whether "the uFSM of a decision destination is tainted"
    (SS V-C1); it defaults to the occupancy condition itself.
    """

    occ_signal: str
    pc_signal: str
    probe_signal: Optional[str] = None

    @property
    def taint_probe(self) -> str:
        return self.probe_signal or self.occ_signal


@dataclass(frozen=True)
class PerformingLocation:
    """A (possibly multi-slot) performing location."""

    name: str
    slots: Tuple[PlSlot, ...]
    ufsms: Tuple[str, ...] = ()  # names of the uFSMs backing each slot

    # ---------------------------------------------------------- expressions
    def occupied(self) -> CycleExpr:
        """Some instruction occupies this PL this cycle."""
        return any_of(*(sig(slot.occ_signal) for slot in self.slots))

    def visited_by(self, pc: int) -> CycleExpr:
        """Instruction with identifier ``pc`` occupies this PL this cycle."""
        return any_of(
            *(
                all_of(sig(slot.occ_signal), eq(slot.pc_signal, pc))
                for slot in self.slots
            )
        )

    def tainted_visit_by(self, pc: int) -> CycleExpr:
        """``pc`` occupies this PL and the occupancy condition is tainted.

        Relies on the IFT instrumentation exposing ``<occ>__tainted``
        companions for every named signal.
        """
        return any_of(
            *(
                all_of(
                    sig(slot.occ_signal),
                    eq(slot.pc_signal, pc),
                    sig(slot.taint_probe + "__tainted"),
                )
                for slot in self.slots
            )
        )


@dataclass
class DesignMetadata:
    """The user-supplied annotations of SS V-A, as one object.

    Mirrors Table II's inventory: the IFR, the uFSM list (with which PCRs
    were added for verification), the commit signal, operand registers, and
    the ARF / AMEM register groups for taint blocking.
    """

    design_name: str
    pls: Dict[str, PerformingLocation]
    ufsms: Tuple[MicroFsm, ...]
    ifr_signal: str  # named signal carrying fetched encodings
    commit_signal: str  # 1-bit commit strobe
    commit_pc_signal: str  # PC word of the committing instruction
    operand_registers: Tuple[str, ...]  # issue-stage operand value registers
    arf_registers: Tuple[str, ...]
    amem_registers: Tuple[str, ...]
    persistent_registers: Tuple[str, ...] = ()
    intro_cond_rs1: Optional[str] = None  # taint-introduction condition signals
    intro_cond_rs2: Optional[str] = None
    pc_bits: int = 8
    idle_note: str = "idle states are the all-zero vars valuations"
    # encodable-but-invalid vars valuations, pruned by RTL2MuPATH step 1
    candidate_pls: Dict[str, PerformingLocation] = field(default_factory=dict)

    def pl(self, name: str) -> PerformingLocation:
        return self.pls[name]

    def pl_names(self) -> List[str]:
        return list(self.pls)

    def iuv_inflight(self, pc: int) -> CycleExpr:
        """``pc`` occupies at least one PL this cycle."""
        return any_of(*(pl.visited_by(pc) for pl in self.pls.values()))

    def iuv_gone(self, pc: int) -> CycleExpr:
        """``pc`` occupies no PL this cycle (the SS V-B4 gating condition)."""
        return ~self.iuv_inflight(pc)

    def annotation_counts(self) -> Dict[str, int]:
        """Table II-style accounting of the metadata burden."""
        added_pcrs = sum(1 for fsm in self.ufsms if fsm.pcr_added)
        return {
            "ufsms": len(self.ufsms),
            "pcrs": len({fsm.pcr for fsm in self.ufsms}),
            "pcrs_added": added_pcrs,
            "state_var_registers": len(
                {var for fsm in self.ufsms for var in fsm.state_vars}
            ),
            "pls": len(self.pls),
            "pl_slots": sum(len(pl.slots) for pl in self.pls.values()),
            "operand_registers": len(self.operand_registers),
            "arf_registers": len(self.arf_registers),
            "amem_registers": len(self.amem_registers),
        }

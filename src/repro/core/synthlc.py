"""SynthLC: leakage-signature synthesis (paper SS IV-D, SS V-C).

Pipeline:

1. RTL2MuPATH supplies each instruction's complete uPATH set and decisions;
   instructions with more than one uPATH are *candidate transponders*.
2. The DUV is augmented with CellIFT-style taint logic
   (:mod:`repro.ift.cellift`): one taint bit per data bit, introduction at
   the operand register of the transmitter instance iT while it passes
   issue, architectural blocking at ARF/AMEM, and a flush strobe realizing
   Assumption 3's sticky-taint clearing.
3. For every candidate transponder P, every decision (src, dst), every
   transmitter/operand pair (T, op), and every typing assumption of Fig. 7
   (intrinsic / older dynamic / younger dynamic / static), a decision-taint
   cover asks: does P visit src one cycle before visiting *exactly* the
   PLs in dst with a tainted destination uFSM?  Reachable covers tag the
   decision as dependent on T's unsafe operand op.
4. Decision sources with at least two transmitter-operand-dependent
   decisions yield leakage signatures (footnote 3's two-decision rule).

Beyond the paper's flow, :class:`SynthLC` optionally runs a *differential
cross-check*: it replays the taint contexts grouped by everything except
T's swept operand and asks whether P's decision actually varies, labelling
taint-only tags as possible IFT false positives (the paper's SS VII-B1
analysis, which there required manual inspection).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..designs import isa
from ..ift.cellift import IftConfig, instrument_ift
from ..mc.enumerative import TraceDB
from ..mc.outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from ..mc.stats import PropertyStats
from .decisions import Decision
from .pl import DesignMetadata
from .rtl2mupath import MuPathResult

__all__ = [
    "TransmitterTag",
    "LeakageSignature",
    "SynthLCConfig",
    "SynthLCResult",
    "SynthLC",
    "instrument_design",
]

ASSUMPTIONS = ("intrinsic", "dynamic_older", "dynamic_younger", "static")

_TYPE_MARK = {
    "intrinsic": "N",
    "dynamic_older": "D_O",
    "dynamic_younger": "D_Y",
    "static": "S",
}


@dataclass(frozen=True)
class TransmitterTag:
    """A typed transmitter input to a leakage function."""

    transmitter: str
    ttype: str  # one of ASSUMPTIONS
    operand: str  # "rs1" | "rs2"
    false_positive: bool = False  # set by the differential cross-check

    def render(self) -> str:
        return "%s^%s.%s" % (self.transmitter, _TYPE_MARK[self.ttype], self.operand)


@dataclass
class LeakageSignature:
    """A leakage function restricted to its signature components (SS IV-D)."""

    transponder: str
    src: str
    destinations: Tuple[FrozenSet[str], ...]
    inputs: Tuple[TransmitterTag, ...]

    @property
    def name(self) -> str:
        return "%s_%s" % (self.transponder, self.src)

    @property
    def output_range(self) -> int:
        return len(self.destinations)

    def has_false_positive_inputs(self) -> bool:
        return any(tag.false_positive for tag in self.inputs)

    def render(self) -> str:
        """Fig. 5-style textual rendering of the signature."""
        args = ", ".join(tag.render() for tag in self.inputs)
        dsts = " | ".join(
            "{%s}" % ", ".join(sorted(dst)) if dst else "{squash}"
            for dst in self.destinations
        )
        return "dst %s(%s) -> %s" % (self.name, args, dsts)


@dataclass
class SynthLCConfig:
    operands: Tuple[str, ...] = ("rs1", "rs2")
    assumptions: Tuple[str, ...] = ASSUMPTIONS
    differential_check: bool = True
    undetermined_as: str = UNREACHABLE  # SS VII-B4


@dataclass
class SynthLCResult:
    signatures: List[LeakageSignature]
    transponders: List[str]  # instructions with >1 uPATH and >=1 signature
    candidate_transponders: List[str]
    transmitters: Dict[str, Set[str]]  # ttype -> instruction names
    tags_by_decision: Dict[Tuple[str, str, FrozenSet[str]], Set[TransmitterTag]]
    stats: PropertyStats

    @property
    def intrinsic_transmitters(self) -> Set[str]:
        return set(self.transmitters.get("intrinsic", set()))

    @property
    def dynamic_transmitters(self) -> Set[str]:
        return set(self.transmitters.get("dynamic_older", set())) | set(
            self.transmitters.get("dynamic_younger", set())
        )

    @property
    def static_transmitters(self) -> Set[str]:
        return set(self.transmitters.get("static", set()))

    def signatures_for(self, transponder: str) -> List[LeakageSignature]:
        return [s for s in self.signatures if s.transponder == transponder]


def instrument_design(design, extra_persistent: Iterable[str] = ()):
    """IFT-instrument a design per its metadata (SS V-A's final two inputs)."""
    md: DesignMetadata = design.metadata
    introduce_map = {}
    if md.intro_cond_rs1:
        introduce_map[md.operand_registers[0]] = md.intro_cond_rs1
    if md.intro_cond_rs2 and len(md.operand_registers) > 1:
        introduce_map[md.operand_registers[1]] = md.intro_cond_rs2
    config = IftConfig(
        introduce_map=introduce_map,
        blocked_registers=frozenset(md.arf_registers) | frozenset(md.amem_registers),
        persistent_registers=frozenset(md.persistent_registers)
        | frozenset(extra_persistent),
        add_flush=True,
    )
    return instrument_ift(design.netlist, config)


class _TaintIndex:
    """Per-trace profiles on the IFT-instrumented DUV.

    For transponder PC ``p_pc`` and transmitter PC ``t_pc``:
    ``visits[t]`` -- PLs visited by iP; ``tainted[t]`` -- PLs visited by iP
    whose occupancy condition carries taint; ``t_inflight[t]`` -- iT
    occupies some PL; ``flush_tainted[t]`` -- the flush strobe is tainted
    (destination evidence for squash decisions, whose destination set is
    empty and therefore has no uFSM to inspect).
    """

    def __init__(self, tracedb: TraceDB, metadata: DesignMetadata, p_pc: int, t_pc: int):
        self.complete = tracedb.complete
        self.traces = []
        pls = metadata.pls
        first = tracedb.views[0] if tracedb.views else None
        if first is None:
            return
        index = first.index
        slots = []
        for name, pl in pls.items():
            for slot in pl.slots:
                slots.append(
                    (
                        name,
                        index[slot.occ_signal],
                        index[slot.pc_signal],
                        index.get(slot.taint_probe + "__tainted"),
                    )
                )
        flush_taint_i = index.get("flush_fire__tainted")
        for view in tracedb.views:
            visits: List[FrozenSet[str]] = []
            tainted: List[FrozenSet[str]] = []
            t_inflight: List[bool] = []
            flush_tainted: List[bool] = []
            for row in view.cycles:
                vset = set()
                tset = set()
                t_fly = False
                for name, occ_i, pc_i, taint_i in slots:
                    if row[occ_i]:
                        pc = row[pc_i]
                        if pc == p_pc:
                            vset.add(name)
                            if taint_i is not None and row[taint_i]:
                                tset.add(name)
                        if pc == t_pc:
                            t_fly = True
                visits.append(frozenset(vset))
                tainted.append(frozenset(tset))
                t_inflight.append(t_fly)
                flush_tainted.append(
                    bool(row[flush_taint_i]) if flush_taint_i is not None else False
                )
            self.traces.append((visits, tainted, t_inflight, flush_tainted))


class SynthLC:
    """The leakage-signature synthesis tool."""

    def __init__(
        self,
        design,
        provider,  # taint-context provider (instrumented=True families)
        config: Optional[SynthLCConfig] = None,
        stats: Optional[PropertyStats] = None,
        extra_persistent: Iterable[str] = (),
    ):
        self.design = design
        self.metadata: DesignMetadata = design.metadata
        self.provider = provider
        self.config = config or SynthLCConfig()
        self.stats = stats if stats is not None else PropertyStats(label="synthlc")
        self.extra_persistent = tuple(extra_persistent)
        with obs.span("phase.ift"):
            self.ift = instrument_design(design, extra_persistent=extra_persistent)

    # ------------------------------------------------------------------ main
    def classify(
        self,
        mupath_results: Dict[str, MuPathResult],
        transmitters: Optional[Sequence[str]] = None,
        engine=None,
    ) -> SynthLCResult:
        """Synthesize leakage signatures.

        ``mupath_results`` maps instruction name -> RTL2MuPATH output;
        ``transmitters`` restricts the candidate transmitter list (default:
        every instruction with uPATH results).  Passing a
        :class:`repro.engine.JobScheduler` as ``engine`` fans the
        independent (transponder, transmitter, assumption, operand)
        classification runs across worker processes with proof-cache
        reuse; results and property accounting are identical to the
        serial path.
        """
        candidates = [
            name for name, res in mupath_results.items() if res.multi_path
        ]
        tags_by_decision: Dict[Tuple[str, str, FrozenSet[str]], Set[TransmitterTag]] = {}
        found_types: Dict[str, Set[str]] = {a: set() for a in ASSUMPTIONS}
        items = self._work_items(
            mupath_results, list(transmitters or mupath_results), candidates
        )

        if engine is None:
            for p_name, t_name, assumption, operand, decision_list in items:
                self._classify_one(
                    p_name,
                    t_name,
                    assumption,
                    operand,
                    decision_list,
                    tags_by_decision,
                    found_types,
                )
        else:
            from ..engine.specs import synthlc_jobs_for

            jobs = synthlc_jobs_for(self, items)
            outcome = engine.run(jobs, stats=self.stats)
            for job in jobs:
                for src, dst, t_name, ttype, operand, fp in (
                    outcome.results[job.job_id] or ()
                ):
                    tag = TransmitterTag(
                        transmitter=t_name,
                        ttype=ttype,
                        operand=operand,
                        false_positive=bool(fp),
                    )
                    key = (job.transponder, src, frozenset(dst))
                    tags_by_decision.setdefault(key, set()).add(tag)
                    if not tag.false_positive:
                        found_types[ttype].add(t_name)

        signatures = self._build_signatures(mupath_results, candidates, tags_by_decision)
        transponders = sorted({s.transponder for s in signatures})
        return SynthLCResult(
            signatures=signatures,
            transponders=transponders,
            candidate_transponders=sorted(candidates),
            transmitters={k: v for k, v in found_types.items()},
            tags_by_decision=tags_by_decision,
            stats=self.stats,
        )

    # ------------------------------------------------------------ internals
    def _work_items(self, mupath_results, transmitter_list, candidates):
        """Enumerate the independent classification runs.

        Each yielded (transponder, transmitter, assumption, operand,
        decision_list) tuple is one unit of schedulable work; the list is
        the engine's job granularity and the serial path's loop nest.
        """
        cfg = self.config
        items = []
        for p_name in candidates:
            decision_list = mupath_results[p_name].decisions.decisions()
            if not decision_list:
                continue
            for t_name in transmitter_list:
                spec = isa.BY_NAME.get(t_name)
                for assumption in cfg.assumptions:
                    if assumption == "intrinsic" and t_name != p_name:
                        continue
                    for operand in cfg.operands:
                        if spec is not None:
                            if operand == "rs1" and not spec.reads_rs1:
                                continue
                            if operand == "rs2" and not spec.reads_rs2:
                                continue
                        items.append(
                            (p_name, t_name, assumption, operand, decision_list)
                        )
        return items

    def _classify_one(
        self,
        p_name: str,
        t_name: str,
        assumption: str,
        operand: str,
        decision_list: List[Decision],
        tags_by_decision,
        found_types,
    ):
        with obs.span(
            "synthlc.classify_one",
            transponder=p_name,
            transmitter=t_name,
            assumption=assumption,
            operand=operand,
        ):
            self._classify_one_inner(
                p_name, t_name, assumption, operand, decision_list,
                tags_by_decision, found_types,
            )

    def _classify_one_inner(
        self,
        p_name: str,
        t_name: str,
        assumption: str,
        operand: str,
        decision_list: List[Decision],
        tags_by_decision,
        found_types,
    ):
        groups = self.provider.taint_groups(p_name, t_name, assumption, operand)
        for group in groups:
            with obs.span("phase.elaborate"):
                db = TraceDB(self.ift.netlist, group.contexts, group.complete)
                # one transmitter PC per group: encoded in the driver's
                # TaintSpec; recovering it from the first context's label-free
                # structure is brittle, so providers put it in group via slot
                # convention:
                t_pc = getattr(group, "taint_pc", None)
                if t_pc is None:
                    # transmitter occupies the non-IUV slot in two-slot programs
                    t_pc = group.iuv_pc - 4 if assumption != "dynamic_younger" else group.iuv_pc + 4
                    if assumption == "intrinsic":
                        t_pc = group.iuv_pc
                tindex = _TaintIndex(db, self.metadata, group.iuv_pc, t_pc)
            dynamic = assumption in ("dynamic_older", "dynamic_younger")
            with obs.span("phase.cover.taint"):
                for decision in decision_list:
                    started = time.perf_counter()
                    hit = self._decision_taint_cover(tindex, decision, dynamic)
                    outcome = (
                        REACHABLE
                        if hit
                        else (UNREACHABLE if tindex.complete else UNDETERMINED)
                    )
                    self._record(
                        "taint_%s_%s_%s_%s_%s"
                        % (p_name, t_name, assumption, operand, decision.src),
                        outcome,
                        started,
                    )
                    if outcome == UNDETERMINED:
                        outcome = self.config.undetermined_as
                    if outcome != REACHABLE:
                        continue
                    false_positive = False
                    if self.config.differential_check:
                        false_positive = not self._differential_varies(
                            db, tindex, decision, assumption
                        )
                    tag = TransmitterTag(
                        transmitter=t_name,
                        ttype=assumption,
                        operand=operand,
                        false_positive=false_positive,
                    )
                    key = (p_name, decision.src, decision.dst)
                    tags_by_decision.setdefault(key, set()).add(tag)
                    if not false_positive:
                        found_types[assumption].add(t_name)

    @staticmethod
    def _decision_taint_cover(tindex: _TaintIndex, decision: Decision, dynamic: bool) -> bool:
        """The SS V-C1 cover: src ##1 (exact dst & tainted destination)."""
        src, dst = decision.src, decision.dst
        for visits, tainted, t_inflight, flush_tainted in tindex.traces:
            horizon = len(visits)
            for t in range(horizon - 1):
                if src not in visits[t]:
                    continue
                if visits[t + 1] != dst:
                    continue
                if dynamic and not t_inflight[t]:
                    continue
                if dst:
                    if tainted[t + 1] & dst:
                        return True
                else:
                    # squash arm: the flush control carries the taint
                    if flush_tainted[t]:
                        return True
        return False

    def _differential_varies(self, db: TraceDB, tindex: _TaintIndex, decision: Decision,
                             assumption: str) -> bool:
        """Ground-truth check: does P's decision at src actually vary with
        the transmitter's swept operand values?

        Contexts carry machine-parsable labels ``prefix|v1,v2|w...``; the
        grouping key holds everything fixed except the transmitter's
        operands (the IUV's own values for intrinsic runs, the neighbour's
        otherwise).  Taint-positive tags with no observed variation in any
        group are flagged as possible IFT over-taint (SS VII-B1)."""
        by_key: Dict[Tuple[str, str], Set[FrozenSet[str]]] = {}
        for context, (visits, _, _, _) in zip(db.contexts, tindex.traces):
            label = getattr(context, "label", "")
            parts = label.split("|")
            if len(parts) != 3:
                key = (label, "")
            elif assumption == "intrinsic":
                key = (parts[0], parts[2])  # vary the IUV's own operands
            else:
                key = (parts[0], parts[1])  # vary the neighbour's operands
            dsts = set()
            for t in range(len(visits) - 1):
                if decision.src in visits[t]:
                    dsts.add(visits[t + 1])
            if dsts:
                by_key.setdefault(key, set()).update(dsts)
        return any(len(dsts) > 1 for dsts in by_key.values())

    def _build_signatures(self, mupath_results, candidates, tags_by_decision):
        signatures: List[LeakageSignature] = []
        for p_name in sorted(candidates):
            decisions = mupath_results[p_name].decisions
            for src in decisions.sources:
                dsts = decisions.destinations(src)
                tagged = [
                    dst
                    for dst in dsts
                    if tags_by_decision.get((p_name, src, dst))
                ]
                # footnote 3: at least two operand-dependent decisions are
                # needed to yield >1 receiver observations
                if len(tagged) < 2:
                    continue
                inputs: Set[TransmitterTag] = set()
                for dst in tagged:
                    inputs |= tags_by_decision.get((p_name, src, dst), set())
                # a (T, type, operand) confirmed true in any context group
                # supersedes the false-positive verdict from another group
                confirmed = {
                    (t.transmitter, t.ttype, t.operand)
                    for t in inputs
                    if not t.false_positive
                }
                inputs = {
                    t
                    for t in inputs
                    if not (
                        t.false_positive
                        and (t.transmitter, t.ttype, t.operand) in confirmed
                    )
                }
                signatures.append(
                    LeakageSignature(
                        transponder=p_name,
                        src=src,
                        destinations=tuple(sorted(dsts, key=sorted)),
                        inputs=tuple(
                            sorted(inputs, key=lambda x: (x.transmitter, x.ttype, x.operand))
                        ),
                    )
                )
        return signatures

    def _record(self, name, outcome, started):
        from ..faults import injection_point

        injection_point("solver.check", query=name)
        elapsed = time.perf_counter() - started
        self.stats.record(
            CheckResult(
                query_name=name,
                outcome=outcome,
                engine="enumerative-indexed",
                time_seconds=elapsed,
            )
        )
        obs.note_property(outcome, elapsed)

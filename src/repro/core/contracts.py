"""Leakage-contract derivation (paper SS II-B, SS IV-D, Table I).

SynthLC's output -- uPATHs plus leakage signatures -- is a unifying
formalism from which the paper derives six state-of-the-art leakage
contracts supporting ten defenses.  This module performs those
derivations:

================  ==========================================================
CT / SCT          constant-time contract: transmitters and their unsafe
                  operands (enables CT programming, SCT programming,
                  SpecShield, ConTExt)
MI6               contention-based dynamic channels + static channels
                  (purge/partitioning targets)
OISA              input-dependent arithmetic units
STT / SDO / SPT   explicit channels, implicit channels, implicit branches,
                  prediction-based channels, resolution-based channels
SDO               data-oblivious variants (full uPATH sets + revisit cycle
                  counts for intrinsic transmitters)
Dolma             variable-time micro-ops, contention-based dynamic
                  channels, inducive/resolvent micro-ops, prediction
                  resolution points, persistent-state-modifying micro-ops
================  ==========================================================

Each derivation consumes exactly the signature components Table I marks as
relevant for it; the Table I bench cross-checks this mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .rtl2mupath import MuPathResult
from .synthlc import LeakageSignature, SynthLCResult

__all__ = [
    "CtContract",
    "Mi6Contract",
    "OisaContract",
    "SttContract",
    "SdoContract",
    "DolmaContract",
    "SptContract",
    "derive_all_contracts",
    "TABLE1_COMPONENTS",
]

# Table I: contract component -> leakage-signature components it consumes.
# Components: "u" (uPATHs), "P" (transponder), "src", "TN", "TD", "TS",
# "a" (arguments).
TABLE1_COMPONENTS: Dict[str, Tuple[str, ...]] = {
    "ct.transmitters": ("TN", "TD", "TS", "a"),
    "mi6.dynamic_channels": ("P", "src", "TN", "TD"),
    "mi6.static_channels": ("P", "src", "TS"),
    "oisa.input_dependent_units": ("src", "TN", "a"),
    "stt.explicit_channels": ("P", "src", "TN", "a"),
    "stt.implicit_channels": ("P", "src", "TD", "TS", "a"),
    "stt.implicit_branches": ("P", "TD", "TS", "a"),
    "stt.prediction_channels": ("P", "src", "TS", "a"),
    "stt.resolution_channels": ("P", "src", "TD", "a"),
    "sdo.data_oblivious_variants": ("u", "TN", "a"),
    "dolma.variable_time_uops": ("TN", "a"),
    "dolma.dynamic_channels": ("P", "src", "TN", "TD", "a"),
    "dolma.inducive_uops": ("u", "P", "TD"),
    "dolma.resolvent_uops": ("TD", "a"),
    "dolma.resolution_points": ("P", "src", "TD", "a"),
    "dolma.persistent_state_uops": ("TS", "a"),
}

_DYNAMIC = ("dynamic_older", "dynamic_younger")


def _true_inputs(signature: LeakageSignature):
    """Signature inputs surviving the false-positive cross-check."""
    return [tag for tag in signature.inputs if not tag.false_positive]


def _has_type(signature: LeakageSignature, ttypes) -> bool:
    return any(tag.ttype in ttypes for tag in _true_inputs(signature))


@dataclass
class CtContract:
    """The canonical constant-time contract: unsafe (instruction, operand)."""

    unsafe_operands: FrozenSet[Tuple[str, str]]

    @staticmethod
    def derive(result: SynthLCResult) -> "CtContract":
        unsafe: Set[Tuple[str, str]] = set()
        for signature in result.signatures:
            for tag in _true_inputs(signature):
                unsafe.add((tag.transmitter, tag.operand))
        return CtContract(unsafe_operands=frozenset(unsafe))

    def is_unsafe(self, instruction: str, operand: str) -> bool:
        return (instruction, operand) in self.unsafe_operands

    def transmitters(self) -> List[str]:
        return sorted({instr for instr, _ in self.unsafe_operands})

    def render(self) -> str:
        lines = ["Constant-time contract (unsafe operands):"]
        for instr, operand in sorted(self.unsafe_operands):
            lines.append("  %s.%s" % (instr, operand))
        return "\n".join(lines)


@dataclass
class Mi6Contract:
    """MI6: dynamic (contention) channels + static channels (purge set)."""

    dynamic_channels: Tuple[LeakageSignature, ...]
    static_channels: Tuple[LeakageSignature, ...]

    @staticmethod
    def derive(result: SynthLCResult) -> "Mi6Contract":
        dynamic = tuple(
            s for s in result.signatures if _has_type(s, ("intrinsic",) + _DYNAMIC)
        )
        static = tuple(s for s in result.signatures if _has_type(s, ("static",)))
        return Mi6Contract(dynamic_channels=dynamic, static_channels=static)

    def purge_targets(self) -> List[str]:
        """PLs whose state a purge instruction must flush."""
        out: Set[str] = set()
        for signature in self.static_channels:
            out.add(signature.src)
            for dst in signature.destinations:
                out |= dst
        return sorted(out)


@dataclass
class OisaContract:
    """OISA: arithmetic units occupied an operand-dependent number of cycles."""

    input_dependent_units: FrozenSet[Tuple[str, str, str]]  # (instr, operand, unit PL)

    # PLs that are functional-unit occupancies on our designs
    UNIT_PLS = ("divU", "mulU", "aluU")

    @staticmethod
    def derive(result: SynthLCResult,
               mupath_results: Dict[str, MuPathResult]) -> "OisaContract":
        units: Set[Tuple[str, str, str]] = set()
        for signature in result.signatures:
            intrinsic = [t for t in _true_inputs(signature) if t.ttype == "intrinsic"]
            if not intrinsic:
                continue
            touched = {signature.src}
            for dst in signature.destinations:
                touched |= dst
            res = mupath_results.get(signature.transponder)
            for pl in touched & set(OisaContract.UNIT_PLS):
                variable = (
                    res is not None and len(res.run_lengths.get(pl, ())) > 1
                )
                if variable or pl == signature.src:
                    for tag in intrinsic:
                        units.add((signature.transponder, tag.operand, pl))
        return OisaContract(input_dependent_units=frozenset(units))


@dataclass
class SttContract:
    """STT's five fine-grained components (shared by SDO and SPT)."""

    explicit_channels: Tuple[Tuple[str, str], ...]  # (transponder, src)
    implicit_channels: Tuple[Tuple[str, str], ...]
    implicit_branches: Tuple[str, ...]  # transponders
    prediction_channels: Tuple[Tuple[str, str], ...]  # static-T driven
    resolution_channels: Tuple[Tuple[str, str], ...]  # dynamic-T driven

    @staticmethod
    def derive(result: SynthLCResult) -> "SttContract":
        explicit = set()
        implicit = set()
        branches = set()
        prediction = set()
        resolution = set()
        for s in result.signatures:
            key = (s.transponder, s.src)
            if _has_type(s, ("intrinsic",)):
                explicit.add(key)
            if _has_type(s, _DYNAMIC + ("static",)):
                implicit.add(key)
                branches.add(s.transponder)
            if _has_type(s, ("static",)):
                prediction.add(key)
            if _has_type(s, _DYNAMIC):
                resolution.add(key)
        return SttContract(
            explicit_channels=tuple(sorted(explicit)),
            implicit_channels=tuple(sorted(implicit)),
            implicit_branches=tuple(sorted(branches)),
            prediction_channels=tuple(sorted(prediction)),
            resolution_channels=tuple(sorted(resolution)),
        )


@dataclass
class SdoContract:
    """SDO: STT plus data-oblivious variants of explicit-channel transmitters.

    A data-oblivious variant pins one realizable uPATH (one revisit cycle
    count per variable-latency PL) that the hardware can force regardless
    of operands (SS II-B "SDO").
    """

    stt: SttContract
    variants: Dict[str, Tuple[FrozenSet[str], Dict[str, int]]]

    @staticmethod
    def derive(result: SynthLCResult,
               mupath_results: Dict[str, MuPathResult]) -> "SdoContract":
        stt = SttContract.derive(result)
        variants: Dict[str, Tuple[FrozenSet[str], Dict[str, int]]] = {}
        for transponder, _src in stt.explicit_channels:
            res = mupath_results.get(transponder)
            if res is None or not res.upaths:
                continue
            # the safe variant forces the worst-case (maximum) residency of
            # every variable-latency PL along the largest uPATH
            largest = max(res.upaths, key=lambda u: len(u.pl_set))
            forced = {
                pl: max(lengths)
                for pl, lengths in largest.run_lengths.items()
                if len(lengths) > 1
            }
            variants[transponder] = (largest.pl_set, forced)
        return SdoContract(stt=stt, variants=variants)


@dataclass
class DolmaContract:
    """Dolma's six contract components."""

    variable_time_uops: Tuple[str, ...]
    dynamic_channels: Tuple[Tuple[str, str], ...]
    inducive_uops: Tuple[str, ...]
    resolvent_uops: Tuple[str, ...]
    resolution_points: Tuple[Tuple[str, str], ...]
    persistent_state_uops: Tuple[str, ...]

    @staticmethod
    def derive(result: SynthLCResult,
               mupath_results: Dict[str, MuPathResult]) -> "DolmaContract":
        variable_time = set()
        for name, res in mupath_results.items():
            if any(len(lengths) > 1 for lengths in res.run_lengths.values()):
                if any(
                    t.ttype == "intrinsic"
                    for s in result.signatures_for(name)
                    for t in _true_inputs(s)
                ):
                    variable_time.add(name)
        dynamic_channels = set()
        inducive = set()
        resolvent = set()
        resolution_points = set()
        persistent = set()
        for s in result.signatures:
            if _has_type(s, ("intrinsic",) + _DYNAMIC):
                dynamic_channels.add((s.transponder, s.src))
            dyn_tags = [t for t in _true_inputs(s) if t.ttype in _DYNAMIC]
            if dyn_tags:
                inducive.add(s.transponder)
                resolution_points.add((s.transponder, s.src))
                for tag in dyn_tags:
                    resolvent.add(tag.transmitter)
            for tag in _true_inputs(s):
                if tag.ttype == "static":
                    persistent.add(tag.transmitter)
        return DolmaContract(
            variable_time_uops=tuple(sorted(variable_time)),
            dynamic_channels=tuple(sorted(dynamic_channels)),
            inducive_uops=tuple(sorted(inducive)),
            resolvent_uops=tuple(sorted(resolvent)),
            resolution_points=tuple(sorted(resolution_points)),
            persistent_state_uops=tuple(sorted(persistent)),
        )


@dataclass
class SptContract:
    """SPT: STT's contract plus a CT contract (for its declassification rule)."""

    stt: SttContract
    ct: CtContract

    @staticmethod
    def derive(result: SynthLCResult) -> "SptContract":
        return SptContract(stt=SttContract.derive(result), ct=CtContract.derive(result))


@dataclass
class AllContracts:
    ct: CtContract
    mi6: Mi6Contract
    oisa: OisaContract
    stt: SttContract
    sdo: SdoContract
    dolma: DolmaContract
    spt: SptContract

    def summary(self) -> str:
        lines = [
            "CT: %d unsafe operands over %d transmitters"
            % (len(self.ct.unsafe_operands), len(self.ct.transmitters())),
            "MI6: %d dynamic channels, %d static channels"
            % (len(self.mi6.dynamic_channels), len(self.mi6.static_channels)),
            "OISA: %d input-dependent arithmetic-unit entries"
            % len(self.oisa.input_dependent_units),
            "STT: %d explicit, %d implicit channels, %d implicit branches"
            % (
                len(self.stt.explicit_channels),
                len(self.stt.implicit_channels),
                len(self.stt.implicit_branches),
            ),
            "SDO: %d data-oblivious variants" % len(self.sdo.variants),
            "Dolma: %d variable-time uops, %d inducive, %d resolvent"
            % (
                len(self.dolma.variable_time_uops),
                len(self.dolma.inducive_uops),
                len(self.dolma.resolvent_uops),
            ),
            "SPT: STT + CT (%d unsafe operands)" % len(self.spt.ct.unsafe_operands),
        ]
        return "\n".join(lines)


def derive_all_contracts(result: SynthLCResult,
                         mupath_results: Dict[str, MuPathResult]) -> AllContracts:
    """Derive every Table I contract from one SynthLC result."""
    return AllContracts(
        ct=CtContract.derive(result),
        mi6=Mi6Contract.derive(result),
        oisa=OisaContract.derive(result, mupath_results),
        stt=SttContract.derive(result),
        sdo=SdoContract.derive(result, mupath_results),
        dolma=DolmaContract.derive(result, mupath_results),
        spt=SptContract.derive(result),
    )

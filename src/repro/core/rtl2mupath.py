"""RTL2MuPATH: multi-uPATH synthesis (paper SS V-B).

Given a design (netlist + metadata), instruction encodings, and a context
provider, the pipeline runs the paper's six steps per instruction under
verification (IUV):

1. **PL reachability for the DUV** -- enumerate candidate PLs (all non-idle
   vars valuations, including invalid encodings) and prune those proven
   unreachable by any instruction.  Invalid encodings are discharged with
   unbounded k-induction proofs; valid PLs are witnessed by covers.
2. **PL reachability for the IUV** -- prune PLs the IUV can never visit.
3. **Fine-grained pruning** -- derive ``dominates`` and ``exclusive``
   relations between IUV PLs from cover properties, pruning the power set
   of candidate Reachable PL Sets.
4. **PL-set reachability** -- for each surviving candidate set, cover "the
   IUV visited exactly these PLs and has disappeared"; then classify each
   PL of each reachable set as consecutively / non-consecutively revisited.
5. **Happens-before edges** -- candidate edges are PL pairs connected via
   pure combinational logic (static netlist analysis); each is proven per
   reachable set with an ``a ##1 b`` cover.
6. **Cycle-accurate uPATHs** -- optionally, revisit cycle counts per PL
   (for SDO's data-oblivious variants) and fully concrete uPATHs.

Engine note: cover evaluation over an enumerated context family reduces to
scanning the recorded traces.  The pipeline therefore builds one
*visit-profile index* per (context group, IUV) and answers each template
query from it; every answered template is still recorded individually in
:class:`~repro.mc.stats.PropertyStats`, reproducing the paper's property
accounting (SS VII-B3).  The test suite cross-checks indexed answers
against direct :class:`~repro.props.query.Query` evaluation and against
the SAT-based BMC engine on the same templates.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..mc.enumerative import TraceDB
from ..mc.kinduction import prove_unreachable_kinduction
from ..mc.outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from ..mc.stats import PropertyStats
from ..rtl.analysis import connectivity_matrix
from ..solver.bitblast import paused_gc
from .decisions import DecisionSet, extract_decisions
from .mhb import CycleAccuratePath, build_slot_index, extract_path
from .pl import DesignMetadata

__all__ = ["Rtl2MuPathConfig", "UPathSummary", "MuPathResult", "Rtl2MuPath", "VisitIndex"]


@dataclass
class Rtl2MuPathConfig:
    max_candidate_sets: int = 4096
    collect_run_lengths: bool = True  # SS V-B6 configuration (i), for SDO
    max_run_length: int = 80
    undetermined_as: str = UNREACHABLE  # SS VII-B4 interpretation
    prove_invalid_pls_by_induction: bool = True
    induction_k: int = 1
    induction_conflict_budget: int = 400000
    incremental: bool = True  # shared growing proof context per design
    coi: bool = True  # cone-of-influence slicing before bit-blasting
    preprocess: bool = True  # CNF preprocessing before the first solve
    clause_sharing: bool = True  # portfolio learned-clause exchange
    # verdict certification (repro.cert): "off" | "spot" | "full".  These
    # knobs are excluded from proof-cache keys -- certification changes
    # how much a verdict is *checked*, never what the verdict is
    certify: str = "off"
    certify_proof_limit: int = 200_000
    certify_time_budget: float = 10.0

    def certify_policy(self):
        from ..cert import CertifyPolicy

        return CertifyPolicy.from_mode(
            self.certify,
            proof_limit=self.certify_proof_limit,
            time_budget=self.certify_time_budget,
        )


@dataclass
class UPathSummary:
    """One formally verified Reachable PL Set with its structure."""

    pl_set: FrozenSet[str]
    revisit: Dict[str, str]  # pl -> none|consecutive|nonconsecutive|both
    hb_edges: FrozenSet[Tuple[str, str]]
    run_lengths: Dict[str, FrozenSet[int]]
    example: Optional[CycleAccuratePath] = None

    def __repr__(self):
        return "UPathSummary({%s})" % ", ".join(sorted(self.pl_set))


@dataclass
class MuPathResult:
    """Complete RTL2MuPATH output for one IUV."""

    iuv: str
    iuv_pls: FrozenSet[str]
    dominates: FrozenSet[Tuple[str, str]]
    exclusive: FrozenSet[FrozenSet[str]]
    candidate_sets_considered: int
    naive_power_set_size: int
    upaths: List[UPathSummary]
    concrete_paths: List[CycleAccuratePath]
    decisions: DecisionSet
    run_lengths: Dict[str, FrozenSet[int]]
    truncated: bool  # any context family truncated -> completeness caveat

    @property
    def num_upaths(self) -> int:
        return len(self.upaths)

    @property
    def multi_path(self) -> bool:
        """More than one uPATH: the RTL2uSPEC single-path assumption fails."""
        return len(self.concrete_paths) > 1


class VisitIndex:
    """Per-(context group, IUV) aggregation of concrete visit profiles."""

    def __init__(self, tracedb: TraceDB, metadata: DesignMetadata, iuv_pc: int):
        self.iuv_pc = iuv_pc
        self.complete = tracedb.complete
        self.paths: List[CycleAccuratePath] = []
        pls = metadata.pls
        slot_index = None
        for view in tracedb.views:
            if slot_index is None:
                slot_index = build_slot_index(pls, view.index)
            self.paths.append(extract_path(view, pls, iuv_pc, slot_index=slot_index))

    def observed_sets(self) -> Counter:
        return Counter(path.pl_set for path in self.paths)


def _merge_run_lengths(target: Dict[str, Set[int]], path: CycleAccuratePath):
    for pl in path.pl_set:
        target.setdefault(pl, set()).update(path.run_lengths(pl))


class _CoverCertifier:
    """Replay-checks enumerative cover witnesses (DESIGN SS5j).

    A REACHABLE cover verdict from the synthesis phase is witnessed by
    one concrete simulated uPATH.  The check re-drives the witnessing
    context through a *fresh* simulator, re-extracts the path, and
    re-evaluates the cover predicate on the replayed path -- independent
    of the TraceDB rows and VisitIndex the verdict was read from, so a
    corrupted index cannot vouch for itself.  Replays are memoized per
    (tracedb, context): witnesses are always the *first* matching path,
    so they concentrate on the family's early contexts and even
    ``--certify full`` re-simulates only a handful of contexts per IUV.
    """

    def __init__(self, netlist, pls, policy):
        self.netlist = netlist
        self.pls = pls
        self.policy = policy
        # witness path -> (tracedb, context index, iuv pc); equal paths
        # share an entry -- any context reproducing those visits serves
        self._src: Dict[CycleAccuratePath, Tuple] = {}
        self._replays: Dict[Tuple, CycleAccuratePath] = {}

    def add_index(self, tracedb: TraceDB, index: "VisitIndex") -> None:
        for idx, path in enumerate(index.paths):
            self._src.setdefault(path, (tracedb, idx, index.iuv_pc))

    def _replayed(self, db: TraceDB, idx: int, iuv_pc: int) -> CycleAccuratePath:
        key = (id(db), idx, iuv_pc)
        replayed = self._replays.get(key)
        if replayed is None:
            from ..mc.enumerative import simulate_context
            from ..props.views import ConcreteTraceView
            from ..sim.simulator import Simulator

            sim = Simulator(self.netlist)
            rows = simulate_context(sim, db.contexts[idx])
            view = ConcreteTraceView(rows, names=sim.observable_names)
            replayed = extract_path(view, self.pls, iuv_pc)
            self._replays[key] = replayed
        return replayed

    def certify(self, name, witness, pred) -> Optional[dict]:
        """Certificate for the cover named ``name``, or None when skipped.

        ``witness`` is the first path satisfying the cover (None for
        UNREACHABLE/UNDETERMINED verdicts, which have no finite witness
        to replay).  Spot mode samples covers by name like DRAT checks
        -- unlike SAT-model witnesses, a cover replay costs a full
        context re-simulation, so it is not unconditionally cheap.
        """
        policy = self.policy
        if witness is None or not policy.enabled:
            return None
        if not policy.should_check_proof(name):
            return None
        src = self._src.get(witness)
        if src is None:
            return None
        db, idx, iuv_pc = src
        from ..cert import cover_witness_certificate

        payload = {
            "iuv": witness.iuv,
            "context_index": idx,
            "context": getattr(db.contexts[idx], "label", ""),
            "visits": [sorted(cycle) for cycle in witness.visits],
        }

        def replay() -> bool:
            replayed = self._replayed(db, idx, iuv_pc)
            return replayed.visits == witness.visits and bool(pred(replayed))

        return cover_witness_certificate(name, payload, replay, policy)


class Rtl2MuPath:
    """The synthesis tool.

    Parameters:
        design: object with ``netlist`` and ``metadata`` attributes.
        provider: context provider with ``mupath_groups(iuv_name)``.
        config: pipeline options.
        stats: optional shared property-statistics accumulator.
    """

    def __init__(self, design, provider, config: Optional[Rtl2MuPathConfig] = None,
                 stats: Optional[PropertyStats] = None):
        self.design = design
        self.netlist = design.netlist
        self.metadata: DesignMetadata = design.metadata
        self.provider = provider
        self.config = config or Rtl2MuPathConfig()
        self.stats = stats if stats is not None else PropertyStats(label="rtl2mupath")
        self._duv_pls: Optional[FrozenSet[str]] = None
        self._connectivity: Optional[Dict[str, Set[str]]] = None
        self._induction_pool = None

    def _pool(self):
        """Shared incremental induction pool (None when disabled)."""
        if not self.config.incremental:
            return None
        if self._induction_pool is None:
            from ..mc.incremental import InductionPool

            self._induction_pool = InductionPool(
                coi=self.config.coi,
                preprocess=self.config.preprocess,
                share_namespace=(
                    "local" if self.config.clause_sharing else None
                ),
                certify=self.config.certify_policy(),
            )
        return self._induction_pool

    # ------------------------------------------------------------ accounting
    def _record(self, name: str, outcome: str, started: float, detail: str = "",
                engine="enumerative-indexed", depth=None, solver=None,
                certificate=None):
        from ..faults import injection_point

        injection_point("solver.check", query=name)
        elapsed = time.perf_counter() - started
        self.stats.record(
            CheckResult(
                query_name=name,
                outcome=outcome,
                engine=engine,
                time_seconds=elapsed,
                detail=detail,
                depth=depth,
                solver=solver,
                certificate=certificate,
            )
        )
        obs.note_property(outcome, elapsed)

    def _cover_outcome(self, hit: bool, complete: bool) -> str:
        if hit:
            return REACHABLE
        return UNREACHABLE if complete else UNDETERMINED

    def _resolve(self, outcome: str) -> str:
        """Apply the configured undetermined-outcome interpretation."""
        if outcome == UNDETERMINED:
            return self.config.undetermined_as
        return outcome

    # ------------------------------------------------- step 1: DUV PL pruning
    def duv_pl_reachability(self, representative_iuvs: Sequence[str]) -> FrozenSet[str]:
        """Prune PLs unreachable by any instruction (run once per DUV)."""
        if self._duv_pls is not None:
            return self._duv_pls
        with obs.span("rtl2mupath.duv_pl_reachability"):
            reachable: Set[str] = set()
            with obs.span("phase.elaborate"):
                groups = []
                for name in representative_iuvs:
                    groups.extend(self.provider.mupath_groups(name))
                tracedbs = [
                    TraceDB(self.netlist, g.contexts, g.complete) for g in groups
                ]

            with obs.span("phase.cover.duv_pls"):
                for pl_name, pl in self.metadata.pls.items():
                    started = time.perf_counter()
                    hit = any(
                        any(view.bit(slot.occ_signal, t) for slot in pl.slots)
                        for db in tracedbs
                        for view in db.views
                        for t in range(view.horizon)
                    )
                    outcome = self._cover_outcome(
                        hit, all(db.complete for db in tracedbs)
                    )
                    self._record("duvpl_reach_%s" % pl_name, outcome, started)
                    if self._resolve(outcome) == REACHABLE or hit:
                        reachable.add(pl_name)

            # invalid vars valuations: discharge with unbounded induction
            # proofs.  The whole phase runs with the cyclic collector
            # paused: its allocations (one pool context plus per-property
            # gates) are acyclic and stay reachable, so mid-phase
            # collections only scan the growing clause database -- any
            # deferred collection fires at the phase boundary instead of
            # inside a timed proof
            with obs.span("phase.induction"), paused_gc():
                for pl_name, pl in self.metadata.candidate_pls.items():
                    started = time.perf_counter()
                    if self.config.prove_invalid_pls_by_induction:
                        result = prove_unreachable_kinduction(
                            self.netlist,
                            pl.occupied(),
                            k=self.config.induction_k,
                            conflict_budget=self.config.induction_conflict_budget,
                            pool=self._pool(),
                            preprocess=self.config.preprocess,
                            certify=self.config.certify_policy(),
                        )
                        self._record(
                            "duvpl_reach_%s" % pl_name,
                            result.outcome,
                            started,
                            detail=result.detail,
                            engine="k-induction",
                            depth=result.depth,
                            solver=result.solver,
                            certificate=result.certificate,
                        )
                        if result.outcome == REACHABLE:
                            reachable.add(pl_name)
                    else:
                        hit = any(
                            any(view.bit(slot.occ_signal, t) for slot in pl.slots)
                            for db in tracedbs
                            for view in db.views
                            for t in range(view.horizon)
                        )
                        outcome = self._cover_outcome(hit, False)
                        self._record("duvpl_reach_%s" % pl_name, outcome, started)
                        if hit:
                            reachable.add(pl_name)
            self._duv_pls = frozenset(reachable)
            return self._duv_pls

    # --------------------------------------------------------- main synthesis
    def synthesize(self, iuv_name: str) -> MuPathResult:
        with obs.span("rtl2mupath.synthesize", iuv=iuv_name):
            return self._synthesize(iuv_name)

    def _synthesize(self, iuv_name: str) -> MuPathResult:
        cfg = self.config
        with obs.span("phase.elaborate"):
            groups = self.provider.mupath_groups(iuv_name)
            certifier = _CoverCertifier(
                self.netlist, self.metadata.pls, cfg.certify_policy()
            )
            indexes: List[VisitIndex] = []
            truncated = False
            for group in groups:
                db = TraceDB(self.netlist, group.contexts, group.complete)
                index = VisitIndex(db, self.metadata, group.iuv_pc)
                indexes.append(index)
                certifier.add_index(db, index)
                truncated = truncated or not group.complete
            all_paths = [path for index in indexes for path in index.paths]
        complete = not truncated

        # ---- step 2: IUV PL reachability
        with obs.span("phase.cover.iuv_pls"):
            duv_pls = self._duv_pls or frozenset(self.metadata.pls)
            iuv_pls: Set[str] = set()
            for pl_name in sorted(duv_pls & set(self.metadata.pls)):
                started = time.perf_counter()
                pred = lambda p, pl=pl_name: pl in p.pl_set
                witness = next((p for p in all_paths if pred(p)), None)
                outcome = self._cover_outcome(witness is not None, complete)
                name = "iuvpl_%s_%s" % (iuv_name, pl_name)
                self._record(
                    name, outcome, started,
                    certificate=certifier.certify(name, witness, pred),
                )
                if witness is not None:
                    iuv_pls.add(pl_name)
            iuv_pl_list = sorted(iuv_pls)

        # ---- step 3: dominates / exclusive pruning
        with obs.span("phase.cover.pruning"):
            dominates: Set[Tuple[str, str]] = set()
            for pl0 in iuv_pl_list:
                for pl1 in iuv_pl_list:
                    if pl0 == pl1:
                        continue
                    started = time.perf_counter()
                    # cover(!pl0_visited & pl1_visited): unreachable => dominates
                    pred = lambda p, a=pl0, b=pl1: (
                        b in p.pl_set and a not in p.pl_set
                    )
                    witness = next((p for p in all_paths if pred(p)), None)
                    outcome = self._cover_outcome(witness is not None, complete)
                    name = "dom_%s_%s_%s" % (iuv_name, pl0, pl1)
                    self._record(
                        name, outcome, started,
                        certificate=certifier.certify(name, witness, pred),
                    )
                    if self._resolve(outcome) == UNREACHABLE:
                        dominates.add((pl0, pl1))
            exclusive: Set[FrozenSet[str]] = set()
            for i, pl0 in enumerate(iuv_pl_list):
                for pl1 in iuv_pl_list[i + 1 :]:
                    started = time.perf_counter()
                    pred = lambda p, a=pl0, b=pl1: (
                        a in p.pl_set and b in p.pl_set
                    )
                    witness = next((p for p in all_paths if pred(p)), None)
                    outcome = self._cover_outcome(witness is not None, complete)
                    name = "excl_%s_%s_%s" % (iuv_name, pl0, pl1)
                    self._record(
                        name, outcome, started,
                        certificate=certifier.certify(name, witness, pred),
                    )
                    if self._resolve(outcome) == UNREACHABLE:
                        exclusive.add(frozenset((pl0, pl1)))

        # ---- step 4: candidate enumeration + PL-set reachability
        with obs.span("phase.cover.plsets"):
            candidates = self._enumerate_candidates(iuv_pl_list, dominates, exclusive)
            observed: Counter = Counter()
            for index in indexes:
                observed.update(index.observed_sets())
            observed.pop(frozenset(), None)

            witness_by_set: Dict[FrozenSet[str], CycleAccuratePath] = {}
            for path in all_paths:
                witness_by_set.setdefault(path.pl_set, path)
            reachable_sets: List[FrozenSet[str]] = []
            for cand in candidates:
                started = time.perf_counter()
                hit = cand in observed
                outcome = self._cover_outcome(hit, complete)
                name = "plset_%s_{%s}" % (iuv_name, ",".join(sorted(cand)))
                self._record(
                    name, outcome, started,
                    certificate=certifier.certify(
                        name,
                        witness_by_set.get(cand) if hit else None,
                        lambda p, c=cand: p.pl_set == c,
                    ),
                )
                if hit:
                    reachable_sets.append(cand)
            # any observed set must have survived pruning (sanity of the relations)
            for seen in observed:
                if seen not in candidates:
                    reachable_sets.append(seen)

        # ---- steps 4b/5/6 per reachable set
        with obs.span("phase.cover.structure"):
            conn = self._pl_connectivity()
            upaths: List[UPathSummary] = []
            global_run_lengths: Dict[str, Set[int]] = {}
            paths_by_set: Dict[FrozenSet[str], List[CycleAccuratePath]] = {}
            for path in all_paths:
                if path.pl_set:
                    paths_by_set.setdefault(path.pl_set, []).append(path)
            for pl_set in sorted(reachable_sets, key=sorted):
                set_paths = paths_by_set.get(pl_set, [])
                revisit: Dict[str, str] = {}
                run_lengths: Dict[str, FrozenSet[int]] = {}
                for pl in sorted(pl_set):
                    started = time.perf_counter()
                    pred_c = lambda p, pl=pl: p.revisit_kind(pl) in (
                        "consecutive", "both"
                    )
                    consec_w = next((p for p in set_paths if pred_c(p)), None)
                    consec = consec_w is not None
                    name = "revisit_c_%s_%s" % (iuv_name, pl)
                    self._record(
                        name,
                        self._cover_outcome(consec, complete),
                        started,
                        certificate=certifier.certify(name, consec_w, pred_c),
                    )
                    started = time.perf_counter()
                    pred_n = lambda p, pl=pl: p.revisit_kind(pl) in (
                        "nonconsecutive", "both"
                    )
                    nonconsec_w = next(
                        (p for p in set_paths if pred_n(p)), None
                    )
                    nonconsec = nonconsec_w is not None
                    name = "revisit_n_%s_%s" % (iuv_name, pl)
                    self._record(
                        name,
                        self._cover_outcome(nonconsec, complete),
                        started,
                        certificate=certifier.certify(name, nonconsec_w, pred_n),
                    )
                    if consec and nonconsec:
                        revisit[pl] = "both"
                    elif consec:
                        revisit[pl] = "consecutive"
                    elif nonconsec:
                        revisit[pl] = "nonconsecutive"
                    else:
                        revisit[pl] = "none"
                    if cfg.collect_run_lengths:
                        lengths = set()
                        for p in set_paths:
                            lengths.update(p.run_lengths(pl))
                        for length in sorted(lengths):
                            started = time.perf_counter()
                            pred_l = lambda p, pl=pl, n=length: (
                                n in p.run_lengths(pl)
                            )
                            length_w = next(
                                (p for p in set_paths if pred_l(p)), None
                            )
                            name = "runlen_%s_%s_%d" % (iuv_name, pl, length)
                            self._record(
                                name,
                                REACHABLE,
                                started,
                                certificate=certifier.certify(
                                    name, length_w, pred_l
                                ),
                            )
                        run_lengths[pl] = frozenset(lengths)
                        global_run_lengths.setdefault(pl, set()).update(lengths)

                hb_edges: Set[Tuple[str, str]] = set()
                for pl0 in sorted(pl_set):
                    for pl1 in sorted(pl_set):
                        if pl1 not in conn.get(pl0, ()):
                            continue  # not combinationally connected: no candidate
                        started = time.perf_counter()
                        pred_e = lambda p, a=pl0, b=pl1: self._has_edge(
                            p, a, b
                        )
                        edge_w = next(
                            (p for p in set_paths if pred_e(p)), None
                        )
                        outcome = self._cover_outcome(
                            edge_w is not None, complete
                        )
                        name = "hbedge_%s_%s_%s" % (iuv_name, pl0, pl1)
                        self._record(
                            name, outcome, started,
                            certificate=certifier.certify(name, edge_w, pred_e),
                        )
                        if edge_w is not None:
                            hb_edges.add((pl0, pl1))

                upaths.append(
                    UPathSummary(
                        pl_set=pl_set,
                        revisit=revisit,
                        hb_edges=frozenset(hb_edges),
                        run_lengths=run_lengths,
                        example=set_paths[0] if set_paths else None,
                    )
                )

        # concrete cycle-accurate uPATHs (deduplicated)
        with obs.span("phase.decisions"):
            unique_paths: Dict[Tuple, CycleAccuratePath] = {}
            for path in all_paths:
                if path.pl_set:
                    unique_paths.setdefault(path.visits, path)
            concrete = sorted(unique_paths.values(), key=lambda p: (p.latency, sorted(p.pl_set)))

            decisions = extract_decisions(iuv_name, concrete)
        return MuPathResult(
            iuv=iuv_name,
            iuv_pls=frozenset(iuv_pls),
            dominates=frozenset(dominates),
            exclusive=frozenset(exclusive),
            candidate_sets_considered=len(candidates),
            naive_power_set_size=2 ** len(iuv_pl_list),
            upaths=upaths,
            concrete_paths=concrete,
            decisions=decisions,
            run_lengths={pl: frozenset(v) for pl, v in global_run_lengths.items()},
            truncated=truncated,
        )

    # ------------------------------------------------------- batch synthesis
    def synthesize_all(
        self, iuv_names: Sequence[str], engine=None
    ) -> Dict[str, MuPathResult]:
        """Synthesize every IUV in ``iuv_names``.

        With ``engine=None`` this is the serial reference path.  Passing a
        :class:`repro.engine.JobScheduler` fans the per-IUV jobs (which are
        independent; the paper runs 72 of them per DUV) across worker
        processes, replays proof-cache hits, and folds every per-property
        result -- fresh or replayed -- back into ``self.stats``, so the
        SS VII-B3 accounting is identical to a serial run's.
        """
        if engine is None:
            return {name: self.synthesize(name) for name in iuv_names}
        from ..engine.specs import synthesis_jobs_for

        jobs = synthesis_jobs_for(self, iuv_names)
        outcome = engine.run(jobs, stats=self.stats)
        return {job.iuv: outcome.results[job.job_id] for job in jobs}

    # ------------------------------------------------------------- internals
    @staticmethod
    def _has_edge(path: CycleAccuratePath, pl0: str, pl1: str) -> bool:
        for t in range(len(path.visits) - 1):
            if pl0 in path.visits[t] and pl1 in path.visits[t + 1]:
                return True
        return False

    def _enumerate_candidates(
        self,
        iuv_pls: List[str],
        dominates: Set[Tuple[str, str]],
        exclusive: Set[FrozenSet[str]],
    ) -> List[FrozenSet[str]]:
        """DFS over the power set, pruning dominates/exclusive violations."""
        cap = self.config.max_candidate_sets
        dominators: Dict[str, List[str]] = {}
        for pl0, pl1 in dominates:
            dominators.setdefault(pl1, []).append(pl0)
        out: List[FrozenSet[str]] = []

        def consistent(selection: Set[str]) -> bool:
            for pl in selection:
                for dom in dominators.get(pl, ()):
                    if dom not in selection and dom in iuv_pls:
                        return False
            for pair in exclusive:
                if pair <= selection:
                    return False
            return True

        def dfs(i: int, selection: Set[str]):
            if len(out) >= cap:
                return
            if i == len(iuv_pls):
                if selection and consistent(selection):
                    out.append(frozenset(selection))
                return
            pl = iuv_pls[i]
            # include (check exclusivity incrementally for early pruning)
            ok = all(
                frozenset((pl, other)) not in exclusive for other in selection
            )
            if ok:
                selection.add(pl)
                dfs(i + 1, selection)
                selection.remove(pl)
            # exclude: only if nothing already selected requires pl
            dfs(i + 1, selection)

        dfs(0, set())
        return out

    def _pl_connectivity(self) -> Dict[str, Set[str]]:
        """Class-level combinational connectivity between PLs (SS V-B5)."""
        if self._connectivity is not None:
            return self._connectivity
        slot_signals = []
        slot_owner = {}
        for name, pl in self.metadata.pls.items():
            for slot in pl.slots:
                slot_signals.append(slot.occ_signal)
                slot_owner[slot.occ_signal] = name
        matrix = connectivity_matrix(self.netlist, slot_signals)
        lifted: Dict[str, Set[str]] = {}
        for src_sig, dsts in matrix.items():
            src = slot_owner[src_sig]
            for dst_sig in dsts:
                lifted.setdefault(src, set()).add(slot_owner[dst_sig])
        self._connectivity = lifted
        return lifted

"""The paper's contributions: RTL2MuPATH, SynthLC, and contract derivation."""

from .pl import DesignMetadata, MicroFsm, PerformingLocation
from .mhb import CycleAccuratePath, UhbGraph, UhbNode, extract_path
from .decisions import Decision, DecisionSet, extract_decisions
from .rtl2mupath import MuPathResult, Rtl2MuPath, Rtl2MuPathConfig, UPathSummary
from .synthlc import (
    LeakageSignature,
    SynthLC,
    SynthLCConfig,
    SynthLCResult,
    TransmitterTag,
    instrument_design,
)
from .security import (
    ScSafeViolation,
    UPathReceiver,
    check_sc_safe,
    violation_explained_by_signatures,
)
from .contracts import (
    CtContract,
    DolmaContract,
    Mi6Contract,
    OisaContract,
    SdoContract,
    SptContract,
    SttContract,
    derive_all_contracts,
)

__all__ = [
    "DesignMetadata",
    "MicroFsm",
    "PerformingLocation",
    "CycleAccuratePath",
    "UhbGraph",
    "UhbNode",
    "extract_path",
    "Decision",
    "DecisionSet",
    "extract_decisions",
    "MuPathResult",
    "Rtl2MuPath",
    "Rtl2MuPathConfig",
    "UPathSummary",
    "LeakageSignature",
    "SynthLC",
    "SynthLCConfig",
    "SynthLCResult",
    "TransmitterTag",
    "instrument_design",
    "ScSafeViolation",
    "UPathReceiver",
    "check_sc_safe",
    "violation_explained_by_signatures",
    "CtContract",
    "DolmaContract",
    "Mi6Contract",
    "OisaContract",
    "SdoContract",
    "SptContract",
    "SttContract",
    "derive_all_contracts",
]

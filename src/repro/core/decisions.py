"""Decisions: formalized instances of uPATH variability (paper SS IV-B).

A decision of instruction I on microarchitecture M is a pair (src, dst):
``src`` a single decision-source PL and ``dst`` a *set* of decision-
destination PLs, such that in some execution I visits src one cycle before
visiting exactly the PLs in dst, and in another execution the same visit
is followed by a different set.  The empty destination set is meaningful:
it is the squash/disappearance arm of flush-induced decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .mhb import CycleAccuratePath

__all__ = ["Decision", "DecisionSet", "extract_decisions"]


@dataclass(frozen=True)
class Decision:
    """One (source PL, destination PL set) pair."""

    src: str
    dst: FrozenSet[str]

    def __repr__(self):
        dst = "{%s}" % ", ".join(sorted(self.dst)) if self.dst else "{} (squash)"
        return "(%s -> %s)" % (self.src, dst)


@dataclass
class DecisionSet:
    """All decisions of one instruction: d_I^M, plus src_I^M."""

    iuv: str
    by_source: Dict[str, Set[FrozenSet[str]]]

    @property
    def sources(self) -> List[str]:
        """Decision sources: PLs with more than one observed destination set."""
        return sorted(src for src, dsts in self.by_source.items() if len(dsts) > 1)

    def decisions(self) -> List[Decision]:
        out = []
        for src in self.sources:
            for dst in sorted(self.by_source[src], key=sorted):
                out.append(Decision(src=src, dst=dst))
        return out

    def destinations(self, src: str) -> List[FrozenSet[str]]:
        return sorted(self.by_source.get(src, ()), key=sorted)


def extract_decisions(iuv: str, paths: Iterable[CycleAccuratePath]) -> DecisionSet:
    """Derive d_I^M from a complete set of concrete uPATHs.

    Every visit to every PL contributes one (src, next-set) observation;
    sources whose observations include at least two distinct next-sets are
    decision sources (SS IV-B: decisions are defined per PL irrespective of
    how many times it has been visited).
    """
    by_source: Dict[str, Set[FrozenSet[str]]] = {}
    for path in paths:
        for pl in path.pl_set:
            for nxt in path.next_sets(pl):
                by_source.setdefault(pl, set()).add(nxt)
    return DecisionSet(iuv=iuv, by_source=by_source)

"""Hardware side-channel safety (Definition V.1) as an executable oracle.

The paper's security argument states that SynthLC's leakage signatures
capture *all* violations of SC-Safe(M, R_uPATH), where the receiver
R_uPATH observes the PLs occupied by in-flight instructions each cycle.
This module makes the definition executable on our designs:

* :class:`UPathReceiver` -- the R_uPATH observer: per-cycle multisets of
  occupied PLs (with occupying-instruction identity erased, since the
  attacker sees resource usage, not tags);
* :func:`check_sc_safe` -- runs one program from pairs of low-equivalent
  architectural states and compares observation traces; any mismatch is
  an SC-Safe violation witness;
* :func:`violation_explained_by_signatures` -- checks that a violation's
  diverging instruction is accounted for by some synthesized leakage
  signature (the empirical counterpart of the paper's completeness proof).

This is the cross-check the test-suite uses to validate SynthLC end to
end: programs that keep secrets away from CT-contract unsafe operands
produce identical observation traces; programs that feed a secret to a
transmitter's unsafe operand produce detectably different ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..designs.harness import program_driver_factory
from ..sim.simulator import Simulator
from .pl import DesignMetadata

__all__ = [
    "UPathReceiver",
    "Observation",
    "ScSafeViolation",
    "check_sc_safe",
    "violation_explained_by_signatures",
]


class UPathReceiver:
    """R_uPATH: observes which PLs are occupied in each cycle."""

    def __init__(self, metadata: DesignMetadata):
        self.metadata = metadata
        self._slots = [
            (name, slot.occ_signal)
            for name, pl in metadata.pls.items()
            for slot in pl.slots
        ]

    def observe(self, obs_row: Dict[str, int]) -> FrozenSet[str]:
        """One cycle's observation: the set of occupied PL slots."""
        return frozenset(
            "%s#%s" % (name, occ) for name, occ in self._slots if obs_row[occ]
        )


@dataclass(frozen=True)
class ScSafeViolation:
    """A witness that SC-Safe(M, R) fails for this program & policy."""

    secret_register: str
    value_a: int
    value_b: int
    first_divergence_cycle: int
    observation_a: FrozenSet[str]
    observation_b: FrozenSet[str]

    def diverging_pls(self) -> FrozenSet[str]:
        sym_diff = self.observation_a ^ self.observation_b
        return frozenset(entry.split("#")[0] for entry in sym_diff)


def _observation_trace(netlist, metadata, program, overrides, horizon):
    receiver = UPathReceiver(metadata)
    sim = Simulator(netlist)
    sim.reset(overrides)
    driver = program_driver_factory([("feed", tuple(program))])()
    prev = None
    trace = []
    for t in range(horizon):
        prev = sim.step(driver(t, prev))
        trace.append(receiver.observe(prev))
    return trace


def check_sc_safe(
    design,
    program: Sequence[int],
    secret_registers: Sequence[str],
    public_overrides: Optional[Dict[str, int]] = None,
    secret_values: Sequence[int] = (0, 1, 3, 8, 128, 255),
    horizon: int = 48,
) -> Optional[ScSafeViolation]:
    """Check Eq. V.1 for one straight-line program.

    All registers outside ``secret_registers`` are fixed by
    ``public_overrides`` (low-equivalence); secret registers sweep over
    pairs from ``secret_values``.  Returns the first violation found, or
    None when every pair yields identical observation traces.
    """
    public_overrides = dict(public_overrides or {})
    netlist = design.netlist
    metadata = design.metadata
    for register in secret_registers:
        baseline = None
        for value in secret_values:
            overrides = dict(public_overrides)
            overrides[register] = value
            trace = _observation_trace(netlist, metadata, program, overrides, horizon)
            if baseline is None:
                baseline = (value, trace)
                continue
            base_value, base_trace = baseline
            for cycle, (obs_a, obs_b) in enumerate(zip(base_trace, trace)):
                if obs_a != obs_b:
                    return ScSafeViolation(
                        secret_register=register,
                        value_a=base_value,
                        value_b=value,
                        first_divergence_cycle=cycle,
                        observation_a=obs_a,
                        observation_b=obs_b,
                    )
    return None


def violation_explained_by_signatures(violation: ScSafeViolation, signatures) -> bool:
    """Is the violation accounted for by a synthesized leakage signature?

    True when some signature's decision source or destination PLs
    intersect the PLs that diverged in the violation witness -- the
    empirical form of the paper's claim that the signature set captures
    all SC-Safe violations under R_uPATH.
    """
    diverged = violation.diverging_pls()
    for signature in signatures:
        touched = {signature.src}
        for dst in signature.destinations:
            touched |= set(dst)
        if touched & diverged:
            return True
    return False

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``upath INSTR``  -- synthesize and render INSTR's uPATH set on the core
* ``decisions INSTR`` -- print INSTR's decision set
* ``uspec INSTR [INSTR...]`` -- emit a uSPEC-style model
* ``table2``       -- print the metadata (Table II) report
* ``sc-safe INSTR REG`` -- Definition V.1 check: run INSTR with REG secret
* ``synth-all [INSTR...]`` -- batch uPATH synthesis through the parallel
  verification job engine (default: one representative per functional
  class).  Flags:

  * ``--jobs N`` -- worker processes (default: all cores; ``1`` = the
    serial in-process reference path);
  * ``--cache-dir DIR`` -- persistent proof cache: re-runs replay prior
    REACHABLE/UNREACHABLE verdicts instead of re-checking them, and any
    change to the netlist, context family, or tool config invalidates
    entries automatically (UNDETERMINED is never cached as final);
  * ``--trace FILE`` -- append structured JSONL run telemetry (job
    start/finish, cache hit/miss, verdicts, retries, timings) plus a
    run-manifest summary that reconciles with the SS VII-B3 property
    accounting;
  * ``--timeout SECONDS`` / ``--max-attempts N`` -- per-job wall-clock
    deadline and the retry-with-escalated-conflict-budget ladder for
    UNDETERMINED outcomes;
  * ``--run-dir DIR`` / ``--resume DIR`` -- checkpoint completed job
    reports (fsynced JSONL) and resume an interrupted run: ``--resume``
    replays the checkpoint and executes only the unfinished jobs,
    producing verdicts identical to an uninterrupted run;
  * ``--keep-going`` -- degrade failed/quarantined jobs to reported
    failures instead of aborting the whole batch;
  * ``--max-rss-mb MB`` -- per-worker memory soft ceiling: attempts
    crossing it abort as degraded results before the kernel OOM-killer
    takes the worker;
  * ``--backoff SECONDS`` -- base delay (exponential, seeded jitter)
    between process-pool rebuilds after worker deaths;
  * ``--fault-plan FILE`` -- arm a deterministic fault-injection plan
    (see :mod:`repro.faults`) for chaos testing;
  * ``--metrics FILE`` -- dump the process metrics registry (Prometheus
    text exposition) at run end; ``--metrics-port N`` serves the same
    registry live on ``127.0.0.1:N/metrics`` for the run's duration;
  * ``--duv-prune`` -- run the paper's step 1 (DUV-level PL
    reachability: cover scans plus unbounded k-induction proofs for
    candidate PLs) before synthesis, accounted in its own stats block;
  * ``--no-incremental`` -- rebuild fresh solvers per induction proof
    instead of reusing one growing proof context per design (the legacy
    reference path; verdicts are identical, only slower);
  * ``--no-coi`` -- disable cone-of-influence slicing, bit-blasting the
    full design for every property.

* ``fuzz`` -- run a differential fuzz campaign: generate seeded random
  sequential designs, cross-check every engine (simulator vs reference
  model, bit-blaster, BMC, k-induction, enumerative, portfolio) on the
  REACHABLE/UNREACHABLE/UNDETERMINED lattice, shrink any disagreement
  to a minimal reproducer, and write it to ``--out``.  Flags:

  * ``--seed N`` -- campaign seed (design seeds stream from it);
  * ``--budget SECS`` -- wall-clock budget (default 30);
  * ``--out DIR`` -- reproducer directory (default ``fuzz-out``);
  * ``--max-designs N`` -- stop after N designs even under budget;
  * ``--horizon N`` -- oracle unrolling depth (default 4);
  * ``--no-shrink`` -- write unshrunk reproducers;
  * ``--trace FILE`` -- JSONL span telemetry, analyzable by ``profile``;
  * ``--metrics FILE`` -- dump the metrics registry at campaign end.

  Exit status 1 when any oracle disagreement was found.

* ``profile TRACE`` -- analyze a ``--trace`` JSONL file: per-phase and
  per-instruction time breakdowns, hotspot ranking, and the checker-time
  reconciliation against the run's property statistics.  Flags:

  * ``--top N`` -- hotspot count (default 10);
  * ``--export-chrome-trace FILE`` -- write a Chrome-tracing / Perfetto
    JSON rendering of the span tree (opens in ``ui.perfetto.dev``);
  * ``--check`` -- exit non-zero if the trace is malformed (unbalanced
    or mis-nested spans, events without timestamps) or the checker-time
    reconciliation fails; used by CI.

The CLI is a thin veneer over the library; see ``examples/`` for richer
workflows.
"""

from __future__ import annotations

import argparse
import sys

from .core import Rtl2MuPath, Rtl2MuPathConfig, UhbGraph, check_sc_safe
from .designs import ContextFamilyConfig, CoreContextProvider, build_core, isa
from .report import CLASS_REPRESENTATIVES, render_uspec_model, table2_report


def _default_provider(xlen: int) -> CoreContextProvider:
    return CoreContextProvider(
        xlen=xlen,
        config=ContextFamilyConfig(
            horizon=44,
            neighbors=("DIV", "SW", "BEQ"),
            iuv_values=(0, 1, 2, 8, 128, 255),
            neighbor_values=(0, 1, 2, 255),
        ),
    )


def _synthesize(names):
    design = build_core()
    tool = Rtl2MuPath(design, _default_provider(design.config.xlen))
    return design, {name: tool.synthesize(name) for name in names}, tool


def cmd_upath(args):
    _design, results, tool = _synthesize([args.instr])
    result = results[args.instr]
    print(
        "%s: %d uPATH families, %d concrete cycle-accurate uPATHs"
        % (args.instr, result.num_upaths, len(result.concrete_paths))
    )
    for path in result.concrete_paths[: args.max_paths]:
        print()
        print(UhbGraph(path).render_ascii())
    print()
    print(tool.stats.summary())
    return 0


def cmd_decisions(args):
    _design, results, _tool = _synthesize([args.instr])
    decisions = results[args.instr].decisions
    print("decision sources:", ", ".join(decisions.sources) or "(none)")
    for decision in decisions.decisions():
        print(" ", decision)
    return 0


def cmd_uspec(args):
    _design, results, _tool = _synthesize(args.instrs)
    sys.stdout.write(render_uspec_model(results))
    return 0


def cmd_table2(args):
    from .designs.cache import build_cache

    core = build_core()
    cache = build_cache()
    print(table2_report({"core": core.metadata, "cache": cache.metadata}))
    return 0


def cmd_sc_safe(args):
    design = build_core()
    program = [isa.encode(args.instr, rd=3, rs1=1, rs2=2)]
    violation = check_sc_safe(design, program, [args.register])
    if violation is None:
        print("SC-Safe holds for %s with %s secret (sampled pairs)"
              % (args.instr, args.register))
        return 0
    print("SC-Safe VIOLATION:")
    print("  secret %s = %d vs %d diverges at cycle %d through PLs %s"
          % (
              violation.secret_register,
              violation.value_a,
              violation.value_b,
              violation.first_divergence_cycle,
              sorted(violation.diverging_pls()),
          ))
    return 1


def cmd_synth_all(args):
    import json
    import os

    from .engine import EngineConfig, EngineError, JobScheduler
    from .faults import FaultPlan
    from .obs import get_registry, start_metrics_server

    run_dir = args.resume or args.run_dir
    resume = args.resume is not None
    names = list(args.instrs)
    run_meta_path = os.path.join(run_dir, "run.json") if run_dir else None
    if not names and resume and run_meta_path and os.path.isfile(run_meta_path):
        # an interrupted run's job list is part of its checkpoint state:
        # `--resume DIR` alone re-runs exactly what the original asked for
        with open(run_meta_path, "r", encoding="utf-8") as handle:
            names = list(json.load(handle).get("instrs", []))
    if not names:
        names = sorted(set(CLASS_REPRESENTATIVES.values()))
    known = {s.name for s in isa.INSTRUCTIONS}
    unknown = [name for name in names if name not in known]
    if unknown:
        print("unknown instruction(s): %s" % ", ".join(unknown))
        return 2
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as exc:
            print("error loading fault plan: %s" % exc)
            return 2
        if fault_plan.state_dir is None:
            # firing counts must survive the worker deaths the plan causes
            import tempfile

            state_dir = (
                os.path.join(run_dir, "fault-state")
                if run_dir
                else tempfile.mkdtemp(prefix="repro-fault-state-")
            )
            fault_plan = fault_plan.with_state_dir(state_dir)
        print("fault plan armed: %s (%d spec(s), state in %s)"
              % (args.fault_plan, len(fault_plan.specs), fault_plan.state_dir))
    server = None
    if args.metrics_port is not None:
        server = start_metrics_server(args.metrics_port)
        print(
            "serving metrics on http://127.0.0.1:%d/metrics"
            % server.server_address[1]
        )
    if run_meta_path is not None:
        os.makedirs(run_dir, exist_ok=True)
        with open(run_meta_path, "w", encoding="utf-8") as handle:
            json.dump({"instrs": names}, handle, indent=2, sort_keys=True)
            handle.write("\n")
    design = build_core()
    tool = Rtl2MuPath(
        design,
        _default_provider(design.config.xlen),
        config=Rtl2MuPathConfig(
            incremental=not args.no_incremental,
            coi=not args.no_coi,
        ),
    )
    engine = JobScheduler(
        EngineConfig(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            trace_path=args.trace,
            timeout_seconds=args.timeout,
            max_attempts=args.max_attempts,
            keep_going=args.keep_going,
            max_rss_mb=args.max_rss_mb,
            backoff_seconds=args.backoff,
            fault_plan=fault_plan,
            run_dir=run_dir,
            resume=resume,
        )
    )
    try:
        if args.duv_prune:
            # the paper's step 1 (DUV-level PL pruning, SS V-B1): cover
            # scans for named PLs plus k-induction proofs for candidate
            # (invalid-valuation) PLs.  Accounted in its own stats object
            # so the engine manifest still reconciles with the synthesis
            # phase's property totals alone.
            from .mc.stats import PropertyStats

            duv_stats = PropertyStats(label="duv-reach")
            synth_stats = tool.stats
            tool.stats = duv_stats
            try:
                reachable = tool.duv_pl_reachability(names)
            finally:
                tool.stats = synth_stats
            total = len(tool.metadata.pls) + len(tool.metadata.candidate_pls)
            print(
                "DUV PL pruning: %d/%d PLs reachable (%s)"
                % (
                    len(reachable),
                    total,
                    "incremental induction"
                    if not args.no_incremental
                    else "legacy per-property induction",
                )
            )
            print(duv_stats.summary())
            print()
        results = tool.synthesize_all(names, engine=engine)
    except EngineError as exc:
        print("engine error: %s" % exc)
        manifest = engine.last_manifest
        if manifest is not None:
            print(manifest.summary())
        return 1
    except OSError as exc:
        print("error: %s" % exc)
        return 1
    finally:
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(get_registry().to_prometheus())
        if server is not None:
            server.shutdown()
    failed = []
    for name in names:
        result = results[name]
        if result is None:  # a --keep-going run degraded this job
            failed.append(name)
            print("%-6s FAILED (see telemetry; job degraded or quarantined)"
                  % name)
            continue
        print(
            "%-6s %d uPATH families, %d concrete paths, %d decision sources%s"
            % (
                name,
                result.num_upaths,
                len(result.concrete_paths),
                len(result.decisions.sources),
                " [multi-path]" if result.multi_path else "",
            )
        )
    print()
    print(tool.stats.summary())
    manifest = engine.last_manifest
    print(manifest.summary())
    if not manifest.reconciles(tool.stats):
        print("WARNING: telemetry manifest does not reconcile with stats")
        return 1
    return 1 if failed else 0


def cmd_fuzz(args):
    import json
    import os

    from . import obs
    from .engine.telemetry import TelemetryLog
    from .fuzz import CampaignConfig, OracleConfig, run_campaign
    from .obs import get_registry
    from .obs.tracer import Tracer

    config = CampaignConfig(
        seed=args.seed,
        budget_seconds=args.budget,
        out_dir=args.out,
        max_designs=args.max_designs,
        shrink=not args.no_shrink,
        oracle=OracleConfig(horizon=args.horizon),
    )
    tracer = None
    log = None
    if args.trace:
        log = TelemetryLog(args.trace)
        tracer = Tracer(sink=log.event)
        obs.activate(tracer)
    try:
        result = run_campaign(config)
    finally:
        if tracer is not None:
            obs.deactivate(tracer)
        if log is not None:
            log.close()
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(get_registry().to_prometheus())
    os.makedirs(config.out_dir, exist_ok=True)
    summary_path = os.path.join(config.out_dir, "summary.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(result.summary())
    print("summary: %s" % summary_path)
    return 0 if result.ok else 1


def cmd_profile(args):
    import json

    from .obs import TraceProfile
    from .report import render_profile

    try:
        profile = TraceProfile.load(args.trace)
    except OSError as exc:
        print("error: %s" % exc)
        return 1
    sys.stdout.write(render_profile(profile, top=args.top))
    if args.export_chrome_trace:
        with open(args.export_chrome_trace, "w", encoding="utf-8") as handle:
            json.dump(profile.to_chrome_trace(), handle)
        print("chrome trace written to %s" % args.export_chrome_trace)
    if args.check:
        if not profile.ok:
            print("trace FAILED integrity checks (%d errors)"
                  % len(profile.errors))
            return 1
        stats = profile.stats
        if stats and isinstance(stats.get("total_time"), (int, float)):
            if not profile.reconciles_total_time(float(stats["total_time"])):
                print("trace FAILED checker-time reconciliation")
                return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RTL2MuPATH + SynthLC reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("upath", help="synthesize an instruction's uPATH set")
    p.add_argument("instr", choices=[s.name for s in isa.INSTRUCTIONS])
    p.add_argument("--max-paths", type=int, default=4)
    p.set_defaults(func=cmd_upath)

    p = sub.add_parser("decisions", help="print an instruction's decisions")
    p.add_argument("instr", choices=[s.name for s in isa.INSTRUCTIONS])
    p.set_defaults(func=cmd_decisions)

    p = sub.add_parser("uspec", help="emit a uSPEC-style model")
    p.add_argument("instrs", nargs="+")
    p.set_defaults(func=cmd_uspec)

    p = sub.add_parser("table2", help="metadata report (Table II)")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("sc-safe", help="Definition V.1 check")
    p.add_argument("instr", choices=[s.name for s in isa.INSTRUCTIONS])
    p.add_argument("register", help="architectural register, e.g. arf_w1")
    p.set_defaults(func=cmd_sc_safe)

    p = sub.add_parser(
        "synth-all",
        help="batch uPATH synthesis via the parallel job engine",
    )
    p.add_argument(
        "instrs",
        nargs="*",
        metavar="INSTR",
        help="instructions (default: one representative per class)",
    )
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: all cores)")
    p.add_argument("--cache-dir", default=None,
                   help="persistent proof-cache directory")
    p.add_argument("--trace", default=None,
                   help="JSONL telemetry output path")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock deadline in seconds")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="attempts per job (retries escalate conflict budget)")
    p.add_argument("--keep-going", action="store_true",
                   help="report failed jobs and continue instead of aborting")
    p.add_argument("--run-dir", default=None, metavar="DIR",
                   help="run directory: checkpoint completed jobs to "
                        "DIR/checkpoint.jsonl for later --resume")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="resume an interrupted run from DIR's checkpoint "
                        "(replays completed jobs; executes only the rest)")
    p.add_argument("--max-rss-mb", type=float, default=None, metavar="MB",
                   help="per-worker RSS soft ceiling; attempts exceeding it "
                        "abort as degraded instead of being OOM-killed")
    p.add_argument("--backoff", type=float, default=0.1, metavar="SECONDS",
                   help="base delay before rebuilding a broken worker pool "
                        "(exponential, jittered; default 0.1)")
    p.add_argument("--fault-plan", default=None, metavar="FILE",
                   help="arm a JSON fault-injection plan (chaos testing)")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="dump Prometheus text-format metrics at run end")
    p.add_argument("--metrics-port", type=int, default=None, metavar="N",
                   help="serve /metrics on 127.0.0.1:N during the run "
                        "(0 = ephemeral port)")
    p.add_argument("--duv-prune", action="store_true",
                   help="run the DUV-level PL reachability phase (cover "
                        "scans + k-induction proofs for candidate PLs) "
                        "before synthesis")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable incremental solving: rebuild a fresh "
                        "solver per induction proof (legacy reference "
                        "path; the verdicts must not change)")
    p.add_argument("--no-coi", action="store_true",
                   help="disable cone-of-influence slicing before "
                        "bit-blasting induction proofs")
    p.set_defaults(func=cmd_synth_all)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzz campaign across all verification engines",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--budget", type=float, default=30.0,
                   help="wall-clock budget in seconds (default 30)")
    p.add_argument("--out", default="fuzz-out", metavar="DIR",
                   help="directory for shrunk reproducers (default fuzz-out)")
    p.add_argument("--max-designs", type=int, default=None, metavar="N",
                   help="stop after N designs even if budget remains")
    p.add_argument("--horizon", type=int, default=4,
                   help="oracle unrolling horizon in cycles (default 4)")
    p.add_argument("--no-shrink", action="store_true",
                   help="write reproducers without delta-debugging them")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="JSONL span telemetry (readable by 'repro profile')")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="dump Prometheus text-format metrics at campaign end")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "profile",
        help="analyze a --trace JSONL file (phases, hotspots, reconciliation)",
    )
    p.add_argument("trace", help="path to the JSONL trace")
    p.add_argument("--top", type=int, default=10,
                   help="hotspot spans to show (default 10)")
    p.add_argument("--export-chrome-trace", default=None, metavar="FILE",
                   help="write Chrome-tracing / Perfetto JSON to FILE")
    p.add_argument("--check", action="store_true",
                   help="exit 1 if the trace is malformed or does not "
                        "reconcile")
    p.set_defaults(func=cmd_profile)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``upath INSTR``  -- synthesize and render INSTR's uPATH set on the core
* ``decisions INSTR`` -- print INSTR's decision set
* ``uspec INSTR [INSTR...]`` -- emit a uSPEC-style model
* ``table2``       -- print the metadata (Table II) report
* ``sc-safe INSTR REG`` -- Definition V.1 check: run INSTR with REG secret
* ``synth-all [INSTR...]`` -- batch uPATH synthesis through the parallel
  verification job engine (default: one representative per functional
  class).  Flags:

  * ``--jobs N`` -- worker processes (default: all cores; ``1`` = the
    serial in-process reference path);
  * ``--cache-dir DIR`` -- persistent proof cache: re-runs replay prior
    REACHABLE/UNREACHABLE verdicts instead of re-checking them, and any
    change to the netlist, context family, or tool config invalidates
    entries automatically (UNDETERMINED is never cached as final);
  * ``--trace FILE`` -- append structured JSONL run telemetry (job
    start/finish, cache hit/miss, verdicts, retries, timings) plus a
    run-manifest summary that reconciles with the SS VII-B3 property
    accounting;
  * ``--timeout SECONDS`` / ``--max-attempts N`` -- per-job wall-clock
    deadline and the retry-with-escalated-conflict-budget ladder for
    UNDETERMINED outcomes;
  * ``--run-dir DIR`` / ``--resume DIR`` -- checkpoint completed job
    reports (fsynced JSONL) and resume an interrupted run: ``--resume``
    replays the checkpoint and executes only the unfinished jobs,
    producing verdicts identical to an uninterrupted run;
  * ``--keep-going`` -- degrade failed/quarantined jobs to reported
    failures instead of aborting the whole batch;
  * ``--max-rss-mb MB`` -- per-worker memory soft ceiling: attempts
    crossing it abort as degraded results before the kernel OOM-killer
    takes the worker;
  * ``--backoff SECONDS`` -- base delay (exponential, seeded jitter)
    between process-pool rebuilds after worker deaths;
  * ``--fault-plan FILE`` -- arm a deterministic fault-injection plan
    (see :mod:`repro.faults`) for chaos testing;
  * ``--metrics FILE`` -- dump the process metrics registry (Prometheus
    text exposition) at run end; ``--metrics-port N`` serves the same
    registry live on ``127.0.0.1:N/metrics`` for the run's duration;
  * ``--duv-prune`` -- run the paper's step 1 (DUV-level PL
    reachability: cover scans plus unbounded k-induction proofs for
    candidate PLs) before synthesis, accounted in its own stats block;
  * ``--no-incremental`` -- rebuild fresh solvers per induction proof
    instead of reusing one growing proof context per design (the legacy
    reference path; verdicts are identical, only slower);
  * ``--no-coi`` -- disable cone-of-influence slicing, bit-blasting the
    full design for every property;
  * ``--no-preprocess`` -- skip CNF preprocessing (bounded variable
    elimination, subsumption) ahead of each proof context's first solve;
  * ``--no-clause-sharing`` -- disable the portfolio learned-clause
    exchange between same-design workers (verdicts never depend on it);
  * ``--broker HOST:PORT`` -- dispatch the jobs through a campaign
    broker (see ``repro broker`` / ``repro worker``) instead of a local
    process pool.  Verdicts, labels, and manifests are byte-identical
    to a local ``--jobs N`` run; the broker's shared proof cache (when
    it has one) replaces ``--cache-dir``;
  * ``--priority N`` -- broker queue priority for this campaign
    (higher runs first; default 0);
  * ``--cache-server HOST:PORT`` -- keep dispatch local but read/write
    the broker's shared proof cache (read-through gets, write-behind
    puts), so multiple machines share one store's verdicts.

  A clean Ctrl-C drains in-flight results into the checkpoint (with
  ``--run-dir``) and exits 130 with the resume command printed; the
  run directory is never left torn.

* ``broker`` -- run the distributed campaign broker: an asyncio
  TCP/JSON-lines server with priority queues, group-sticky sharding,
  backpressure (park/shed), node quarantine, and an optional shared
  proof cache (``--cache-dir``; read-through gets, write-behind puts
  flushed on shutdown).  SIGTERM/SIGINT drain gracefully.
  ``--metrics-port N`` serves the fleet-merged Prometheus registry
  (broker gauges plus every worker's pushed snapshot, tagged by node).

* ``worker`` -- run one worker node against a broker: registers its
  ``--slots``, heartbeats, executes dispatched job batches in a local
  process pool, and streams results back.  ``--fault-plan`` arms chaos
  on this node only.  SIGTERM/SIGINT finish in-flight batches first.
  ``--metrics-port N`` serves the node's own registry.

* ``top`` -- live fleet dashboard over a running broker: per-node
  throughput, cache hit rate, ETA, slowest in-flight jobs, and the
  join/leave/quarantine event ring.  ``--once --json`` emits a single
  machine-readable sample for scripting and CI.

* ``cache-info DIR`` -- summarize a proof-cache directory (entry and
  quarantine counts, sizes, age range); ``--json`` for machine output.

* ``fuzz`` -- run a differential fuzz campaign: generate seeded random
  sequential designs, cross-check every engine (simulator vs reference
  model, bit-blaster, BMC, k-induction, enumerative, portfolio) on the
  REACHABLE/UNREACHABLE/UNDETERMINED lattice, shrink any disagreement
  to a minimal reproducer, and write it to ``--out``.  Flags:

  * ``--seed N`` -- campaign seed (design seeds stream from it);
  * ``--budget SECS`` -- wall-clock budget (default 30);
  * ``--out DIR`` -- reproducer directory (default ``fuzz-out``);
  * ``--max-designs N`` -- stop after N designs even under budget;
  * ``--horizon N`` -- oracle unrolling depth (default 4);
  * ``--no-shrink`` -- write unshrunk reproducers;
  * ``--trace FILE`` -- JSONL span telemetry, analyzable by ``profile``;
  * ``--metrics FILE`` -- dump the metrics registry at campaign end.

  Exit status 1 when any oracle disagreement was found.

* ``perf`` -- compile the μPATH-derived performance model for a case-
  study core and fuzz it differentially against :mod:`repro.sim`:
  seeded straight-line sequences run through both the cycle predictor
  and the RTL simulator, every cycle-count divergence classified as a
  perf-model bug or a missed μPATH (a completeness check on the
  synthesis), shrunk, and written to ``--out``.  Prints the per-
  instruction timing-variability table (the SynthLC cross-check) and
  the predicted stall-cycle breakdown per hazard class.  Flags:

  * ``--design NAME`` -- ``core`` (baseline), ``cva6-mul`` (zero-skip
    multiplier), or ``fixed`` (default ``core``);
  * ``--xlen N`` -- datapath width (default 4);
  * ``--seed N`` / ``--budget SECS`` / ``--max-sequences N`` -- campaign
    size controls;
  * ``--out DIR`` -- reproducer directory (default ``perf-out``);
  * ``--no-shrink`` -- write unshrunk reproducers;
  * ``--trace FILE`` / ``--metrics FILE`` -- telemetry, as for ``fuzz``.

  Exit status 1 when any mismatch was found (unclassified mismatches
  are always fatal; CI gates on them).

* ``profile TRACE`` -- analyze a ``--trace`` JSONL file: per-phase and
  per-instruction time breakdowns, hotspot ranking, and the checker-time
  reconciliation against the run's property statistics.  Flags:

  * ``--top N`` -- hotspot count (default 10);
  * ``--export-chrome-trace FILE`` -- write a Chrome-tracing / Perfetto
    JSON rendering of the span tree (opens in ``ui.perfetto.dev``);
  * ``--check`` -- exit non-zero if the trace is malformed (unbalanced
    or mis-nested spans, events without timestamps) or the checker-time
    reconciliation fails; on merged fleet traces it additionally fails
    when any checker time lacks a ``node_id`` attribution.  Used by CI.

The CLI is a thin veneer over the library; see ``examples/`` for richer
workflows.
"""

from __future__ import annotations

import argparse
import sys

from .core import Rtl2MuPath, Rtl2MuPathConfig, UhbGraph, check_sc_safe
from .designs import ContextFamilyConfig, CoreContextProvider, build_core, isa
from .report import CLASS_REPRESENTATIVES, render_uspec_model, table2_report


def _default_provider(xlen: int) -> CoreContextProvider:
    return CoreContextProvider(
        xlen=xlen,
        config=ContextFamilyConfig(
            horizon=44,
            neighbors=("DIV", "SW", "BEQ"),
            iuv_values=(0, 1, 2, 8, 128, 255),
            neighbor_values=(0, 1, 2, 255),
        ),
    )


def _synthesize(names):
    design = build_core()
    tool = Rtl2MuPath(design, _default_provider(design.config.xlen))
    return design, {name: tool.synthesize(name) for name in names}, tool


def cmd_upath(args):
    _design, results, tool = _synthesize([args.instr])
    result = results[args.instr]
    print(
        "%s: %d uPATH families, %d concrete cycle-accurate uPATHs"
        % (args.instr, result.num_upaths, len(result.concrete_paths))
    )
    for path in result.concrete_paths[: args.max_paths]:
        print()
        print(UhbGraph(path).render_ascii())
    print()
    print(tool.stats.summary())
    return 0


def cmd_decisions(args):
    _design, results, _tool = _synthesize([args.instr])
    decisions = results[args.instr].decisions
    print("decision sources:", ", ".join(decisions.sources) or "(none)")
    for decision in decisions.decisions():
        print(" ", decision)
    return 0


def cmd_uspec(args):
    _design, results, _tool = _synthesize(args.instrs)
    sys.stdout.write(render_uspec_model(results))
    return 0


def cmd_table2(args):
    from .designs.cache import build_cache

    core = build_core()
    cache = build_cache()
    print(table2_report({"core": core.metadata, "cache": cache.metadata}))
    return 0


def cmd_sc_safe(args):
    design = build_core()
    program = [isa.encode(args.instr, rd=3, rs1=1, rs2=2)]
    violation = check_sc_safe(design, program, [args.register])
    if violation is None:
        print("SC-Safe holds for %s with %s secret (sampled pairs)"
              % (args.instr, args.register))
        return 0
    print("SC-Safe VIOLATION:")
    print("  secret %s = %d vs %d diverges at cycle %d through PLs %s"
          % (
              violation.secret_register,
              violation.value_a,
              violation.value_b,
              violation.first_divergence_cycle,
              sorted(violation.diverging_pls()),
          ))
    return 1


def cmd_synth_all(args):
    import json
    import os

    from .engine import EngineConfig, EngineError, JobScheduler
    from .faults import FaultPlan
    from .obs import get_registry, start_metrics_server

    run_dir = args.resume or args.run_dir
    resume = args.resume is not None
    names = list(args.instrs)
    run_meta_path = os.path.join(run_dir, "run.json") if run_dir else None
    if not names and resume and run_meta_path and os.path.isfile(run_meta_path):
        # an interrupted run's job list is part of its checkpoint state:
        # `--resume DIR` alone re-runs exactly what the original asked for
        with open(run_meta_path, "r", encoding="utf-8") as handle:
            names = list(json.load(handle).get("instrs", []))
    if not names:
        names = sorted(set(CLASS_REPRESENTATIVES.values()))
    known = {s.name for s in isa.INSTRUCTIONS}
    unknown = [name for name in names if name not in known]
    if unknown:
        print("unknown instruction(s): %s" % ", ".join(unknown))
        return 2
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as exc:
            print("error loading fault plan: %s" % exc)
            return 2
        if fault_plan.state_dir is None:
            # firing counts must survive the worker deaths the plan causes
            import tempfile

            state_dir = (
                os.path.join(run_dir, "fault-state")
                if run_dir
                else tempfile.mkdtemp(prefix="repro-fault-state-")
            )
            fault_plan = fault_plan.with_state_dir(state_dir)
        print("fault plan armed: %s (%d spec(s), state in %s)"
              % (args.fault_plan, len(fault_plan.specs), fault_plan.state_dir))
    server = None
    if args.metrics_port is not None:
        server = start_metrics_server(args.metrics_port)
        print(
            "serving metrics on http://127.0.0.1:%d/metrics"
            % server.server_address[1]
        )
    if run_meta_path is not None:
        os.makedirs(run_dir, exist_ok=True)
        with open(run_meta_path, "w", encoding="utf-8") as handle:
            json.dump({"instrs": names}, handle, indent=2, sort_keys=True)
            handle.write("\n")
    design = build_core()
    tool = Rtl2MuPath(
        design,
        _default_provider(design.config.xlen),
        config=Rtl2MuPathConfig(
            incremental=not args.no_incremental,
            coi=not args.no_coi,
            preprocess=not args.no_preprocess,
            clause_sharing=not args.no_clause_sharing,
            certify=args.certify,
            certify_proof_limit=args.certify_proof_limit,
            certify_time_budget=args.certify_time_budget,
        ),
    )
    engine_config = EngineConfig(
        jobs=args.jobs,
        clause_sharing=not args.no_clause_sharing,
        cache_dir=args.cache_dir,
        trace_path=args.trace,
        timeout_seconds=args.timeout,
        max_attempts=args.max_attempts,
        keep_going=args.keep_going,
        max_rss_mb=args.max_rss_mb,
        backoff_seconds=args.backoff,
        fault_plan=fault_plan,
        run_dir=run_dir,
        resume=resume,
    )
    if args.broker:
        from .dist import DistScheduler

        engine = DistScheduler(
            engine_config, broker=args.broker, priority=args.priority
        )
    elif args.cache_server:
        from .dist.scheduler import CacheOnlyScheduler

        engine = CacheOnlyScheduler(
            engine_config, broker=args.cache_server, priority=args.priority
        )
    else:
        engine = JobScheduler(engine_config)
    try:
        if args.duv_prune:
            # the paper's step 1 (DUV-level PL pruning, SS V-B1): cover
            # scans for named PLs plus k-induction proofs for candidate
            # (invalid-valuation) PLs.  Accounted in its own stats object
            # so the engine manifest still reconciles with the synthesis
            # phase's property totals alone.
            from .mc.stats import PropertyStats

            duv_stats = PropertyStats(label="duv-reach")
            synth_stats = tool.stats
            tool.stats = duv_stats
            try:
                reachable = tool.duv_pl_reachability(names)
            finally:
                tool.stats = synth_stats
            total = len(tool.metadata.pls) + len(tool.metadata.candidate_pls)
            print(
                "DUV PL pruning: %d/%d PLs reachable (%s)"
                % (
                    len(reachable),
                    total,
                    "incremental induction"
                    if not args.no_incremental
                    else "legacy per-property induction",
                )
            )
            print(duv_stats.summary())
            print()
        results = tool.synthesize_all(names, engine=engine)
    except EngineError as exc:
        print("engine error: %s" % exc)
        manifest = engine.last_manifest
        if manifest is not None:
            print(manifest.summary())
        return 1
    except KeyboardInterrupt:
        # the scheduler already drained finished workers and synced the
        # checkpoint; tell the user how to pick the run back up
        print()
        if run_dir:
            print(
                "interrupted; completed jobs are checkpointed -- resume "
                "with: python -m repro synth-all --resume %s" % run_dir
            )
        else:
            print("interrupted (no --run-dir, so nothing was checkpointed)")
        manifest = engine.last_manifest
        if manifest is not None:
            print(manifest.summary())
        return 130
    except OSError as exc:
        print("error: %s" % exc)
        return 1
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(get_registry().to_prometheus())
        if server is not None:
            server.shutdown()
    failed = []
    for name in names:
        result = results[name]
        if result is None:  # a --keep-going run degraded this job
            failed.append(name)
            print("%-6s FAILED (see telemetry; job degraded or quarantined)"
                  % name)
            continue
        print(
            "%-6s %d uPATH families, %d concrete paths, %d decision sources%s"
            % (
                name,
                result.num_upaths,
                len(result.concrete_paths),
                len(result.decisions.sources),
                " [multi-path]" if result.multi_path else "",
            )
        )
    print()
    print(tool.stats.summary())
    manifest = engine.last_manifest
    print(manifest.summary())
    if not manifest.reconciles(tool.stats):
        print("WARNING: telemetry manifest does not reconcile with stats")
        return 1
    if manifest.cert_uncaught:
        # the campaign completed, but some verdict's certificate failed
        # and the conservative re-solve could not vouch for it either --
        # that verdict is untrusted, so the run must not exit clean
        print(
            "WARNING: %d uncaught certification failure(s) -- the affected "
            "verdicts are untrusted" % manifest.cert_uncaught
        )
        return 1
    return 1 if failed else 0


def cmd_broker(args):
    import asyncio
    import signal as signal_mod

    from .dist import Broker, BrokerConfig
    from .obs import start_metrics_server

    config = BrokerConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        max_queue=args.max_queue,
        high_water=args.high_water,
        pipeline_depth=args.pipeline_depth,
        heartbeat_seconds=args.heartbeat,
        node_poison_limit=args.node_poison_limit,
        job_poison_limit=args.job_poison_limit,
    )
    broker = Broker(config)

    async def _main():
        await broker.start()
        print(
            "broker listening on %s:%d%s"
            % (
                config.host,
                broker.port,
                " (shared cache: %s)" % config.cache_dir
                if config.cache_dir
                else "",
            ),
            flush=True,
        )
        server = None
        if args.metrics_port is not None:
            # the fleet registry merges the broker's own counters with
            # every worker's pushed snapshot, so one scrape endpoint
            # covers the whole campaign
            server = start_metrics_server(
                args.metrics_port, registry=broker.fleet
            )
            print(
                "serving fleet metrics on http://127.0.0.1:%d/metrics"
                % server.server_address[1],
                flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_event_loop()
        for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("broker draining (inflight jobs, write-behind cache)...")
        await broker.stop()
        if server is not None:
            server.shutdown()
        counts = broker.stats_counts
        print(
            "broker stopped: %d job(s) completed, %d cache put(s) flushed"
            % (counts["completed"], counts["cache_puts"])
        )

    asyncio.run(_main())
    return 0


def cmd_worker(args):
    from .dist.scheduler import parse_broker_address
    from .dist.worker import run_worker
    from .faults import FaultPlan

    try:
        host, port = parse_broker_address(args.broker)
    except ValueError as exc:
        print("error: %s" % exc)
        return 2
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as exc:
            print("error loading fault plan: %s" % exc)
            return 2
        if fault_plan.state_dir is None:
            import tempfile

            fault_plan = fault_plan.with_state_dir(
                tempfile.mkdtemp(prefix="repro-fault-state-")
            )
        print(
            "fault plan armed on this node: %s (%d spec(s))"
            % (args.fault_plan, len(fault_plan.specs))
        )
    server = None
    if args.metrics_port is not None:
        from .obs import start_metrics_server

        # the node's own registry: solver counters, cache hits, batch
        # wait -- the same snapshot it pushes to the broker's fleet view
        server = start_metrics_server(args.metrics_port)
        print(
            "serving node metrics on http://127.0.0.1:%d/metrics"
            % server.server_address[1],
            flush=True,
        )
    print(
        "worker connecting to %s:%d (slots=%d, node=%s)"
        % (host, port, args.slots, args.node_id or "pid-default"),
        flush=True,
    )
    try:
        run_worker(
            host,
            port,
            slots=args.slots,
            mode=args.mode,
            fault_plan=fault_plan,
            node_id=args.node_id,
            heartbeat_seconds=args.heartbeat,
        )
    except (ConnectionError, OSError) as exc:
        print("worker connection failed: %s" % exc)
        return 1
    finally:
        if server is not None:
            server.shutdown()
    print("worker drained; exiting")
    return 0


def cmd_cache_info(args):
    import json
    import os

    from .engine.cache import ProofCache

    if not os.path.isdir(args.dir):
        print("error: %s is not a directory" % args.dir)
        return 2
    if args.verify:
        # deep walk: re-parse every entry, re-derive its byte checksum
        # and its certificate digest, and quarantine what fails --
        # checksums prove the bytes are intact, certificate digests prove
        # the payload is the one that was checked
        report = ProofCache(args.dir).verify_store()
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                "verified %d entr%s: %d ok, %d with certificates, "
                "%d quarantined"
                % (
                    report["checked"],
                    "y" if report["checked"] == 1 else "ies",
                    report["ok"],
                    report["with_certificates"],
                    report["quarantined"],
                )
            )
            if report["stale_format"]:
                print("  stale format:  %d" % report["stale_format"])
            for reason, count in sorted(
                report["quarantined_by_reason"].items()
            ):
                print("  %-14s %d" % (reason + ":", count))
        return 1 if report["quarantined"] else 0
    if args.json:
        # the JSON view adds per-node provenance rows (entries tagged by
        # the worker node that produced them); the text view keeps the
        # cheap stat()-only walk
        stats = ProofCache(args.dir).stats(per_node=True)
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    stats = ProofCache(args.dir).stats()
    import datetime

    def _when(ts):
        if ts is None:
            return "-"
        return datetime.datetime.fromtimestamp(ts).isoformat(
            sep=" ", timespec="seconds"
        )

    print("proof cache: %s (format v%d)" % (stats["cache_dir"], stats["format"]))
    print(
        "  entries:     %d (%.1f KiB)"
        % (stats["entries"], stats["entry_bytes"] / 1024.0)
    )
    print(
        "  quarantined: %d (%.1f KiB)"
        % (stats["quarantined"], stats["quarantined_bytes"] / 1024.0)
    )
    print("  oldest:      %s" % _when(stats["oldest_entry"]))
    print("  newest:      %s" % _when(stats["newest_entry"]))
    return 0


def cmd_fuzz(args):
    import json
    import os

    from . import obs
    from .engine.telemetry import TelemetryLog
    from .fuzz import CampaignConfig, OracleConfig, run_campaign
    from .obs import get_registry
    from .obs.tracer import Tracer

    config = CampaignConfig(
        seed=args.seed,
        budget_seconds=args.budget,
        out_dir=args.out,
        max_designs=args.max_designs,
        shrink=not args.no_shrink,
        oracle=OracleConfig(horizon=args.horizon),
    )
    tracer = None
    log = None
    if args.trace:
        log = TelemetryLog(args.trace)
        tracer = Tracer(sink=log.event)
        obs.activate(tracer)
    try:
        result = run_campaign(config)
    finally:
        if tracer is not None:
            obs.deactivate(tracer)
        if log is not None:
            log.close()
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(get_registry().to_prometheus())
    os.makedirs(config.out_dir, exist_ok=True)
    summary_path = os.path.join(config.out_dir, "summary.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(result.summary())
    print("summary: %s" % summary_path)
    return 0 if result.ok else 1


def cmd_perf(args):
    import json
    import os

    from . import obs
    from .designs import build_core, build_cva6_mul, build_fixed_core
    from .designs.core import CoreConfig
    from .designs.harness import STRAIGHT_LINE_POOL
    from .engine.telemetry import TelemetryLog
    from .obs import get_registry
    from .obs.tracer import Tracer
    from .perf import (
        PerfCampaignConfig,
        collect_upath_summaries,
        compile_model,
        run_perf_campaign,
    )
    from .report import stall_breakdown_report, timing_variability_report

    builders = {
        "core": lambda: build_core(CoreConfig(xlen=args.xlen)),
        "cva6-mul": lambda: build_cva6_mul(xlen=args.xlen),
        "fixed": lambda: build_fixed_core(xlen=args.xlen),
    }
    config = PerfCampaignConfig(
        seed=args.seed,
        budget_seconds=args.budget,
        out_dir=args.out,
        max_sequences=args.max_sequences,
        shrink=not args.no_shrink,
    )
    tracer = None
    log = None
    if args.trace:
        log = TelemetryLog(args.trace)
        tracer = Tracer(sink=log.event)
        obs.activate(tracer)
    try:
        design = builders[args.design]()
        summaries = collect_upath_summaries(
            design, ["ADD", "MUL", "DIV", "DIVU", "LW", "SW"]
        )
        model = compile_model(design, summaries, names=STRAIGHT_LINE_POOL)
        result = run_perf_campaign(design, model, config)
    finally:
        if tracer is not None:
            obs.deactivate(tracer)
        if log is not None:
            log.close()
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(get_registry().to_prometheus())
    os.makedirs(config.out_dir, exist_ok=True)
    summary_path = os.path.join(config.out_dir, "summary.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(timing_variability_report(model))
    print()
    print(stall_breakdown_report(result.predicted_stalls))
    print()
    print(result.summary())
    print("summary: %s" % summary_path)
    return 0 if result.ok else 1


def cmd_profile(args):
    import json

    from .obs import TraceProfile
    from .report import render_profile

    try:
        profile = TraceProfile.load(args.trace)
    except OSError as exc:
        print("error: %s" % exc)
        return 1
    sys.stdout.write(render_profile(profile, top=args.top))
    if args.export_chrome_trace:
        with open(args.export_chrome_trace, "w", encoding="utf-8") as handle:
            json.dump(profile.to_chrome_trace(), handle)
        print("chrome trace written to %s" % args.export_chrome_trace)
    if args.check:
        if not profile.ok:
            print("trace FAILED integrity checks (%d errors)"
                  % len(profile.errors))
            return 1
        stats = profile.stats
        if stats and isinstance(stats.get("total_time"), (int, float)):
            if not profile.reconciles_total_time(float(stats["total_time"])):
                print("trace FAILED checker-time reconciliation")
                return 1
        if profile.is_distributed:
            unattributed = profile.unattributed_check_seconds()
            if unattributed > 1e-4:
                print(
                    "trace FAILED fleet attribution: %.6fs of checker "
                    "time carries no node_id" % unattributed
                )
                return 1
    return 0


def cmd_top(args):
    from .dist.top import run_top

    return run_top(
        args.broker,
        interval=args.interval,
        once=args.once,
        as_json=args.json,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RTL2MuPATH + SynthLC reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("upath", help="synthesize an instruction's uPATH set")
    p.add_argument("instr", choices=[s.name for s in isa.INSTRUCTIONS])
    p.add_argument("--max-paths", type=int, default=4)
    p.set_defaults(func=cmd_upath)

    p = sub.add_parser("decisions", help="print an instruction's decisions")
    p.add_argument("instr", choices=[s.name for s in isa.INSTRUCTIONS])
    p.set_defaults(func=cmd_decisions)

    p = sub.add_parser("uspec", help="emit a uSPEC-style model")
    p.add_argument("instrs", nargs="+")
    p.set_defaults(func=cmd_uspec)

    p = sub.add_parser("table2", help="metadata report (Table II)")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("sc-safe", help="Definition V.1 check")
    p.add_argument("instr", choices=[s.name for s in isa.INSTRUCTIONS])
    p.add_argument("register", help="architectural register, e.g. arf_w1")
    p.set_defaults(func=cmd_sc_safe)

    p = sub.add_parser(
        "synth-all",
        help="batch uPATH synthesis via the parallel job engine",
    )
    p.add_argument(
        "instrs",
        nargs="*",
        metavar="INSTR",
        help="instructions (default: one representative per class)",
    )
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: all cores)")
    p.add_argument("--cache-dir", default=None,
                   help="persistent proof-cache directory")
    p.add_argument("--trace", default=None,
                   help="JSONL telemetry output path")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock deadline in seconds")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="attempts per job (retries escalate conflict budget)")
    p.add_argument("--keep-going", action="store_true",
                   help="report failed jobs and continue instead of aborting")
    p.add_argument("--run-dir", default=None, metavar="DIR",
                   help="run directory: checkpoint completed jobs to "
                        "DIR/checkpoint.jsonl for later --resume")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="resume an interrupted run from DIR's checkpoint "
                        "(replays completed jobs; executes only the rest)")
    p.add_argument("--max-rss-mb", type=float, default=None, metavar="MB",
                   help="per-worker RSS soft ceiling; attempts exceeding it "
                        "abort as degraded instead of being OOM-killed")
    p.add_argument("--backoff", type=float, default=0.1, metavar="SECONDS",
                   help="base delay before rebuilding a broken worker pool "
                        "(exponential, jittered; default 0.1)")
    p.add_argument("--fault-plan", default=None, metavar="FILE",
                   help="arm a JSON fault-injection plan (chaos testing)")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="dump Prometheus text-format metrics at run end")
    p.add_argument("--metrics-port", type=int, default=None, metavar="N",
                   help="serve /metrics on 127.0.0.1:N during the run "
                        "(0 = ephemeral port)")
    p.add_argument("--duv-prune", action="store_true",
                   help="run the DUV-level PL reachability phase (cover "
                        "scans + k-induction proofs for candidate PLs) "
                        "before synthesis")
    p.add_argument("--no-incremental", action="store_true",
                   help="disable incremental solving: rebuild a fresh "
                        "solver per induction proof (legacy reference "
                        "path; the verdicts must not change)")
    p.add_argument("--no-coi", action="store_true",
                   help="disable cone-of-influence slicing before "
                        "bit-blasting induction proofs")
    p.add_argument("--no-preprocess", action="store_true",
                   help="disable CNF preprocessing (variable elimination, "
                        "subsumption) before the first solve of each "
                        "proof context; the verdicts must not change")
    p.add_argument("--no-clause-sharing", action="store_true",
                   help="disable the portfolio learned-clause exchange "
                        "between workers; the verdicts must not change")
    p.add_argument("--certify", choices=("off", "spot", "full"),
                   default="off",
                   help="verdict certification (repro.cert): 'spot' logs "
                        "proofs and checks a sample (witness replays always "
                        "run); 'full' checks every certificate; failures "
                        "quarantine the result and re-solve it on the "
                        "conservative path")
    p.add_argument("--certify-proof-limit", type=int, default=200000,
                   metavar="N",
                   help="max DRAT proof entries per leg a single check "
                        "will attempt (larger proofs are skipped as "
                        "'budget', never failed; default 200000)")
    p.add_argument("--certify-time-budget", type=float, default=10.0,
                   metavar="SECONDS",
                   help="wall-clock budget per DRAT certificate check "
                        "(default 10.0)")
    p.add_argument("--broker", default=None, metavar="HOST:PORT",
                   help="dispatch jobs through a campaign broker (see "
                        "'repro broker' / 'repro worker'); verdicts are "
                        "byte-identical to a local --jobs N run")
    p.add_argument("--priority", type=int, default=0, metavar="N",
                   help="broker queue priority for this campaign "
                        "(higher first; default 0)")
    p.add_argument("--cache-server", default=None, metavar="HOST:PORT",
                   help="keep dispatch local but use the broker's shared "
                        "proof cache (read-through gets, write-behind puts)")
    p.set_defaults(func=cmd_synth_all)

    p = sub.add_parser(
        "broker",
        help="run the distributed campaign broker (TCP/JSON-lines)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7340,
                   help="bind port (default 7340; 0 = ephemeral)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="serve a shared proof cache from DIR (read-through "
                        "gets, write-behind puts)")
    p.add_argument("--max-queue", type=int, default=100000, metavar="N",
                   help="shed submits that would push the queue past N")
    p.add_argument("--high-water", type=int, default=80000, metavar="N",
                   help="park submits arriving while the queue is >= N")
    p.add_argument("--pipeline-depth", type=int, default=2, metavar="N",
                   help="per-node inflight bound = slots * N (default 2)")
    p.add_argument("--heartbeat", type=float, default=5.0, metavar="SECONDS",
                   help="worker heartbeat interval (default 5.0); nodes "
                        "silent for 3 intervals are evicted")
    p.add_argument("--node-poison-limit", type=int, default=2, metavar="N",
                   help="node failures before the node is quarantined")
    p.add_argument("--job-poison-limit", type=int, default=2, metavar="N",
                   help="node-failure implications before a job is "
                        "quarantined as a failed report")
    p.add_argument("--metrics-port", type=int, default=None, metavar="N",
                   help="serve fleet-merged Prometheus metrics on "
                        "127.0.0.1:N/metrics (0 = ephemeral; broker "
                        "counters plus every worker's pushed snapshot)")
    p.set_defaults(func=cmd_broker)

    p = sub.add_parser(
        "worker",
        help="run one worker node against a campaign broker",
    )
    p.add_argument("--broker", default="127.0.0.1:7340", metavar="HOST:PORT",
                   help="broker address (default 127.0.0.1:7340)")
    p.add_argument("--slots", type=int, default=1, metavar="N",
                   help="concurrent jobs this node executes (default 1)")
    p.add_argument("--mode", choices=("process", "inline"), default="process",
                   help="execution mode: 'process' pool (default; SIGALRM "
                        "deadlines work) or 'inline' threads (tests)")
    p.add_argument("--node-id", default=None, metavar="ID",
                   help="stable node identity (default pid-<PID>); the "
                        "broker tracks quarantine by this id")
    p.add_argument("--heartbeat", type=float, default=2.0, metavar="SECONDS",
                   help="heartbeat interval (default 2.0)")
    p.add_argument("--fault-plan", default=None, metavar="FILE",
                   help="arm a JSON fault-injection plan on this node "
                        "(chaos is never shipped over the wire)")
    p.add_argument("--metrics-port", type=int, default=None, metavar="N",
                   help="serve this node's Prometheus metrics on "
                        "127.0.0.1:N/metrics (0 = ephemeral)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "top",
        help="live fleet dashboard over a running broker",
    )
    p.add_argument("--broker", default="127.0.0.1:7340", metavar="HOST:PORT",
                   help="broker address (default 127.0.0.1:7340)")
    p.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="refresh interval in streaming mode (default 2.0)")
    p.add_argument("--once", action="store_true",
                   help="print a single sample and exit")
    p.add_argument("--json", action="store_true",
                   help="with --once: emit the raw fleet sample plus "
                        "derived rates/ETA as JSON (for scripting and CI)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "cache-info",
        help="summarize a proof-cache directory",
    )
    p.add_argument("dir", metavar="DIR", help="proof-cache directory")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as JSON")
    p.add_argument("--verify", action="store_true",
                   help="deep-verify every entry (byte checksums and "
                        "certificate digests), quarantining failures; "
                        "exit 1 if anything was quarantined")
    p.set_defaults(func=cmd_cache_info)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzz campaign across all verification engines",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--budget", type=float, default=30.0,
                   help="wall-clock budget in seconds (default 30)")
    p.add_argument("--out", default="fuzz-out", metavar="DIR",
                   help="directory for shrunk reproducers (default fuzz-out)")
    p.add_argument("--max-designs", type=int, default=None, metavar="N",
                   help="stop after N designs even if budget remains")
    p.add_argument("--horizon", type=int, default=4,
                   help="oracle unrolling horizon in cycles (default 4)")
    p.add_argument("--no-shrink", action="store_true",
                   help="write reproducers without delta-debugging them")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="JSONL span telemetry (readable by 'repro profile')")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="dump Prometheus text-format metrics at campaign end")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "perf",
        help="differential cycle-count oracle: μPATH-derived predictor "
             "vs RTL simulation",
    )
    p.add_argument("--design", choices=("core", "cva6-mul", "fixed"),
                   default="core",
                   help="case-study core variant (default core)")
    p.add_argument("--xlen", type=int, default=4,
                   help="datapath width in bits (default 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--budget", type=float, default=30.0,
                   help="wall-clock budget in seconds (default 30)")
    p.add_argument("--max-sequences", type=int, default=None, metavar="N",
                   help="stop after N sequences even if budget remains")
    p.add_argument("--out", default="perf-out", metavar="DIR",
                   help="directory for shrunk reproducers (default perf-out)")
    p.add_argument("--no-shrink", action="store_true",
                   help="write reproducers without delta-debugging them")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="JSONL span telemetry (readable by 'repro profile')")
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="dump Prometheus text-format metrics at campaign end")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser(
        "profile",
        help="analyze a --trace JSONL file (phases, hotspots, reconciliation)",
    )
    p.add_argument("trace", help="path to the JSONL trace")
    p.add_argument("--top", type=int, default=10,
                   help="hotspot spans to show (default 10)")
    p.add_argument("--export-chrome-trace", default=None, metavar="FILE",
                   help="write Chrome-tracing / Perfetto JSON to FILE")
    p.add_argument("--check", action="store_true",
                   help="exit 1 if the trace is malformed or does not "
                        "reconcile")
    p.set_defaults(func=cmd_profile)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Static netlist analysis.

RTL2MuPATH relies on two structural analyses of the elaborated design
(paper SS V-B5):

* **fan-in cones** -- the set of registers / inputs that can influence a
  signal through combinational logic only; and
* **combinational connectivity** between named signals -- used to restrict
  candidate happens-before edges to PL pairs "connected via pure
  combinational logic in the DUV".

Both are simple reachability problems over the expression DAG, stopping at
sequential boundaries (register outputs).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from .netlist import Netlist
from .nodes import Node

__all__ = [
    "comb_fanin_registers",
    "comb_fanin_inputs",
    "registers_feeding_next_state",
    "comb_connected",
    "connectivity_matrix",
]


def _walk_comb(node: Node) -> Iterable[Node]:
    """Yield all nodes in the combinational cone of ``node``.

    Register outputs and inputs are yielded but not traversed through
    (registers are sequential boundaries; inputs are leaves anyway).
    """
    seen: Set[int] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.uid in seen:
            continue
        seen.add(current.uid)
        yield current
        if current.op == "reg":
            continue
        stack.extend(current.args)


def comb_fanin_registers(node: Node) -> FrozenSet[str]:
    """Names of registers whose *current* value combinationally feeds ``node``."""
    return frozenset(n.name for n in _walk_comb(node) if n.op == "reg")


def comb_fanin_inputs(node: Node) -> FrozenSet[str]:
    """Names of primary inputs that combinationally feed ``node``."""
    return frozenset(n.name for n in _walk_comb(node) if n.op == "input")


def registers_feeding_next_state(netlist: Netlist, register_name: str) -> FrozenSet[str]:
    """Registers that feed the next-state function of ``register_name``."""
    for reg, next_node in netlist.registers:
        if reg.name == register_name:
            return comb_fanin_registers(next_node)
    raise KeyError("no register named %r" % register_name)


def comb_connected(netlist: Netlist, src_signal: str, dst_signal: str) -> bool:
    """True when the *state supporting* ``src_signal`` can influence
    ``dst_signal`` within one cycle.

    ``src`` influences ``dst`` within one cycle when some register in the
    combinational support of ``src`` feeds (combinationally, possibly
    through one register update) the support of ``dst``.  This is the
    structural filter RTL2MuPATH applies before proving candidate HB edges.
    """
    src_regs = comb_fanin_registers(netlist.signal(src_signal))
    dst_regs = comb_fanin_registers(netlist.signal(dst_signal))
    if src_regs & dst_regs:
        return True
    # registers updated as a function of src's support
    influenced = set()
    for reg, next_node in netlist.registers:
        if comb_fanin_registers(next_node) & src_regs:
            influenced.add(reg.name)
    return bool(influenced & dst_regs)


def connectivity_matrix(netlist: Netlist, signal_names: List[str]) -> Dict[str, Set[str]]:
    """All-pairs one-cycle-influence relation over ``signal_names``.

    Returns ``{src: {dst, ...}}``.  Computed with the supports cached so the
    cost is linear in netlist size plus quadratic in the (small) number of
    named signals, not quadratic netlist walks.
    """
    supports = {name: comb_fanin_registers(netlist.signal(name)) for name in signal_names}
    # register -> registers it feeds next cycle
    feeds: Dict[str, Set[str]] = {}
    for reg, next_node in netlist.registers:
        for upstream in comb_fanin_registers(next_node):
            feeds.setdefault(upstream, set()).add(reg.name)
    result: Dict[str, Set[str]] = {name: set() for name in signal_names}
    for src in signal_names:
        one_step: Set[str] = set(supports[src])
        for reg_name in supports[src]:
            one_step.update(feeds.get(reg_name, ()))
        for dst in signal_names:
            if supports[dst] & one_step:
                result[src].add(dst)
    return result

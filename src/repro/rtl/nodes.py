"""Word-level RTL expression nodes.

This module defines the expression language of the netlist IR.  A design is a
directed acyclic graph of :class:`Node` objects rooted at register
next-state functions and module outputs.  Nodes are immutable; structural
sharing is achieved through the per-module node cache (see
:mod:`repro.rtl.module`).

Supported operations (the ``op`` field):

========== =========================================================
``input``  primary input, free every cycle
``const``  constant value
``reg``    register output (current-cycle value, i.e. the ``q`` pin)
``not``    bitwise complement
``and``    bitwise AND (2 args, equal widths)
``or``     bitwise OR
``xor``    bitwise XOR
``add``    modular addition
``sub``    modular subtraction
``mul``    modular multiplication (result truncated to operand width)
``eq``     equality, 1-bit result
``ult``    unsigned less-than, 1-bit result
``shl``    logical shift left by constant amount
``shr``    logical shift right by constant amount
``mux``    2:1 multiplexer: ``mux(sel, a, b)`` is ``a`` when sel else ``b``
``concat`` bit concatenation; args listed most-significant first
``slice``  bit slice ``[lo, lo+width)``
``redor``  reduction OR, 1-bit result
``redand`` reduction AND, 1-bit result
========== =========================================================

Widths are checked strictly at construction time; use :func:`zext`,
:func:`sext` and :func:`trunc` for explicit width conversion.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "Node",
    "WidthError",
    "mux",
    "cat",
    "zext",
    "sext",
    "trunc",
    "redor",
    "redand",
]


class WidthError(ValueError):
    """Raised when operand widths are inconsistent."""


_COMMUTATIVE = frozenset({"and", "or", "xor", "add", "mul", "eq"})

# ops whose result width equals the operand width
_SAME_WIDTH_BINOPS = frozenset({"and", "or", "xor", "add", "sub", "mul"})
_BOOL_BINOPS = frozenset({"eq", "ult"})


class Node:
    """One node of the word-level expression DAG.

    Nodes must be created through a :class:`repro.rtl.module.Module` (which
    owns the structural-sharing cache), or through the free functions in
    this module which delegate to the module recorded on their operands.
    """

    __slots__ = ("op", "width", "args", "value", "name", "module", "uid")

    def __init__(self, op, width, args=(), value=None, name=None, module=None, uid=None):
        if width <= 0:
            raise WidthError("node width must be positive, got %r" % width)
        self.op = op
        self.width = width
        self.args = tuple(args)
        self.value = value  # const payload, slice lo bit, or shift amount
        self.name = name
        self.module = module
        self.uid = uid

    # -- pretty printing ---------------------------------------------------
    def __repr__(self):
        if self.op == "const":
            return "Const(%d, w=%d)" % (self.value, self.width)
        if self.op in ("input", "reg"):
            return "%s(%s, w=%d)" % (self.op.capitalize(), self.name, self.width)
        return "%s(w=%d, #%s)" % (self.op, self.width, self.uid)

    # -- module plumbing ---------------------------------------------------
    def _mod(self):
        if self.module is None:
            raise ValueError("node %r is not attached to a module" % (self,))
        return self.module

    def _coerce(self, other):
        """Turn a Python int into a constant node of our width."""
        if isinstance(other, Node):
            return other
        if isinstance(other, int):
            return self._mod().const(other, self.width)
        raise TypeError("cannot use %r in an RTL expression" % (other,))

    def _bin(self, op, other):
        other = self._coerce(other)
        return self._mod()._make(op, (self, other))

    # -- operator overloads ------------------------------------------------
    def __and__(self, other):
        return self._bin("and", other)

    def __rand__(self, other):
        return self._bin("and", other)

    def __or__(self, other):
        return self._bin("or", other)

    def __ror__(self, other):
        return self._bin("or", other)

    def __xor__(self, other):
        return self._bin("xor", other)

    def __rxor__(self, other):
        return self._bin("xor", other)

    def __add__(self, other):
        return self._bin("add", other)

    def __radd__(self, other):
        return self._bin("add", other)

    def __sub__(self, other):
        return self._bin("sub", other)

    def __mul__(self, other):
        return self._bin("mul", other)

    def __invert__(self):
        return self._mod()._make("not", (self,))

    def __lshift__(self, amount):
        if not isinstance(amount, int):
            raise TypeError("shift amounts must be constant ints")
        return self._mod()._make("shl", (self,), value=amount)

    def __rshift__(self, amount):
        if not isinstance(amount, int):
            raise TypeError("shift amounts must be constant ints")
        return self._mod()._make("shr", (self,), value=amount)

    def __getitem__(self, idx):
        """Bit-slice.  ``sig[i]`` is bit i; ``sig[lo:hi]`` is bits [lo, hi)."""
        if isinstance(idx, int):
            lo, width = idx, 1
        elif isinstance(idx, slice):
            if idx.step is not None:
                raise WidthError("strided slices are not supported")
            lo = idx.start or 0
            hi = self.width if idx.stop is None else idx.stop
            width = hi - lo
        else:
            raise TypeError("bad slice index %r" % (idx,))
        if lo < 0 or width <= 0 or lo + width > self.width:
            raise WidthError(
                "slice [%d:+%d) out of range for width %d" % (lo, width, self.width)
            )
        return self._mod()._make("slice", (self,), value=lo, width=width)

    # NOTE: == and != keep Python identity semantics so nodes stay hashable;
    # use .eq / .ne for RTL comparison.
    def eq(self, other):
        return self._bin("eq", other)

    def ne(self, other):
        return ~self.eq(other)

    def ult(self, other):
        return self._bin("ult", other)

    def ule(self, other):
        other = self._coerce(other)
        return ~other.ult(self)

    def ugt(self, other):
        other = self._coerce(other)
        return other.ult(self)

    def uge(self, other):
        return ~self.ult(other)

    # -- misc helpers --------------------------------------------------------
    def bool(self):
        """Reduce to a single bit: nonzero test."""
        if self.width == 1:
            return self
        return redor(self)

    def is_const(self):
        return self.op == "const"


def mux(sel, a, b):
    """2:1 mux: returns ``a`` when ``sel`` (1-bit) is true, else ``b``."""
    if not isinstance(sel, Node):
        raise TypeError("mux selector must be a Node")
    m = sel._mod()
    if isinstance(a, int) and isinstance(b, int):
        raise WidthError("mux needs at least one Node data operand")
    if isinstance(a, int):
        a = m.const(a, b.width)
    if isinstance(b, int):
        b = m.const(b, a.width)
    if sel.width != 1:
        sel = sel.bool()
    return m._make("mux", (sel, a, b))


def cat(*parts):
    """Concatenate ``parts`` (most-significant first) into one node."""
    parts = tuple(parts)
    if not parts:
        raise WidthError("cat() needs at least one operand")
    m = parts[0]._mod()
    return m._make("concat", parts)


def zext(node, width):
    """Zero-extend ``node`` to ``width`` bits (no-op when already as wide)."""
    if width < node.width:
        raise WidthError("zext target %d narrower than %d" % (width, node.width))
    if width == node.width:
        return node
    pad = node._mod().const(0, width - node.width)
    return cat(pad, node)


def sext(node, width):
    """Sign-extend ``node`` to ``width`` bits."""
    if width < node.width:
        raise WidthError("sext target %d narrower than %d" % (width, node.width))
    if width == node.width:
        return node
    sign = node[node.width - 1]
    pad_parts = [sign] * (width - node.width)
    return cat(*(pad_parts + [node]))


def trunc(node, width):
    """Truncate ``node`` to its low ``width`` bits."""
    if width > node.width:
        raise WidthError("trunc target %d wider than %d" % (width, node.width))
    if width == node.width:
        return node
    return node[0:width]


def redor(node):
    """Reduction OR over all bits of ``node`` (1-bit result)."""
    return node._mod()._make("redor", (node,), width=1)


def redand(node):
    """Reduction AND over all bits of ``node`` (1-bit result)."""
    return node._mod()._make("redand", (node,), width=1)

"""Cone-of-influence (COI) slicing.

Property checks only constrain the signals a property mentions, so the
formula handed to the solver only needs the part of the design that can
ever influence those signals.  The *sequential* cone of influence of a
signal set is the least set of nodes closed under

* combinational fan-in: every argument of an in-cone node is in-cone; and
* sequential fan-in: when a register's ``q`` pin is in-cone, the
  register's next-state function is in-cone (its value one cycle earlier
  can influence the targets).

:func:`coi_slice` computes that closure and returns a new
:class:`~repro.rtl.netlist.Netlist` restricted to it -- same node
objects, original topological order, with out-of-cone registers, inputs,
named signals, and outputs dropped.  The sliced netlist is a sound,
complete substitute for the original with respect to any property over
the target signals: every retained node's transitive support is retained,
so simulation and bit-blasting of the slice agree cycle-for-cycle with
the full design on all in-cone signals.

Beyond solver-side slicing, the cone defines the *observable* part of a
design: :func:`observable_names` (all named signals plus outputs) is the
slice the proof-cache fingerprint hashes, so RTL edits outside every
property's cone do not invalidate cached verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .netlist import Netlist
from .nodes import Node

__all__ = ["CoiSlice", "coi_cone", "coi_slice", "observable_names"]


def _register_frontier(next_node: Node) -> Iterable[Node]:
    """Nodes to enqueue when the closure reaches a register's ``q`` pin.

    Module-level so tests can monkeypatch it (mutation testing of the
    sequential-closure invariant); the correct frontier is exactly the
    register's next-state root.
    """
    return (next_node,)


@dataclass(frozen=True)
class CoiSlice:
    """A sliced netlist plus the reduction accounting."""

    netlist: Netlist
    targets: Tuple[str, ...]
    kept_cells: int
    dropped_cells: int
    kept_registers: int
    dropped_registers: int

    @property
    def cell_reduction(self) -> float:
        total = self.kept_cells + self.dropped_cells
        return self.dropped_cells / total if total else 0.0


def coi_cone(netlist: Netlist, targets: Iterable[str]) -> FrozenSet[int]:
    """Uids of every node in the sequential cone of the named ``targets``.

    Raises KeyError for names not in ``netlist.named`` or ``outputs``.
    """
    next_of: Dict[str, Node] = {
        reg.name: next_node for reg, next_node in netlist.registers
    }
    roots: List[Node] = []
    for name in targets:
        node = netlist.named.get(name)
        if node is None:
            node = netlist.outputs[name]
        roots.append(node)

    cone: Set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.uid in cone:
            continue
        cone.add(node.uid)
        if node.op == "reg":
            stack.extend(_register_frontier(next_of[node.name]))
        else:
            stack.extend(node.args)
    return frozenset(cone)


def coi_slice(netlist: Netlist, targets: Iterable[str]) -> CoiSlice:
    """Slice ``netlist`` to the sequential cone of the named ``targets``.

    The result preserves the original topological order (a subsequence of
    ``netlist.order``), keeps only in-cone registers/inputs, and restricts
    ``named``/``outputs`` to in-cone entries -- target names always
    survive.  The slice is closed: every argument of a retained node is
    retained, so it is directly usable by the simulator and bit-blaster.
    """
    targets = tuple(dict.fromkeys(targets))  # stable de-dup
    cone = coi_cone(netlist, targets)

    order = [node for node in netlist.order if node.uid in cone]
    inputs = [node for node in netlist.inputs if node.uid in cone]
    registers = [
        (reg, next_node)
        for reg, next_node in netlist.registers
        if reg.q.uid in cone
    ]
    for reg, next_node in registers:
        if next_node.uid not in cone:
            # closure invariant: an in-cone register's next-state function
            # is in-cone.  A violation means the sequential frontier was
            # computed wrong; slicing anyway would silently free the
            # register, so fail loudly instead.
            raise ValueError(
                "COI closure broken: register %r kept without its "
                "next-state cone" % reg.name
            )
    named = {
        name: node for name, node in netlist.named.items() if node.uid in cone
    }
    outputs = {
        name: node for name, node in netlist.outputs.items() if node.uid in cone
    }
    sliced = Netlist(
        name=netlist.name,
        order=order,
        inputs=inputs,
        registers=registers,
        named=named,
        outputs=outputs,
    )
    dropped_cells = netlist.num_cells - sliced.num_cells
    dropped_regs = len(netlist.registers) - len(registers)
    if dropped_cells:
        from ..obs.metrics import REGISTRY

        REGISTRY.counter(
            "repro_coi_cells_dropped_total",
            "combinational cells removed by cone-of-influence slicing",
        ).inc(dropped_cells, design=netlist.name)
    return CoiSlice(
        netlist=sliced,
        targets=targets,
        kept_cells=sliced.num_cells,
        dropped_cells=dropped_cells,
        kept_registers=len(registers),
        dropped_registers=dropped_regs,
    )


def observable_names(netlist: Netlist) -> Tuple[str, ...]:
    """Every externally observable signal: named signals plus outputs.

    The cone of these names is the behaviorally relevant part of the
    design for any property the toolchain can state; the proof cache
    fingerprints the netlist sliced to it.
    """
    return tuple(dict.fromkeys(list(netlist.named) + list(netlist.outputs)))

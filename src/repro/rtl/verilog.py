"""Verilog export of elaborated netlists.

The case-study designs are built in the Python netlist IR; this module
emits them as synthesizable Verilog-2001 so they can be inspected,
simulated, or linted with standard EDA tooling.  Each combinational node
becomes a ``wire``/``assign`` pair, registers become one clocked
``always`` block with synchronous reset, and named signals surface as
suffix-free wires (plus module outputs).

The export is for human inspection and external cross-checking; all
in-repo analyses run on the IR directly.
"""

from __future__ import annotations

from typing import Dict, List

from .netlist import Netlist

__all__ = ["netlist_to_verilog"]


def _escape(name: str) -> str:
    """Make a legal Verilog identifier (escaping is rare: our names are
    already [A-Za-z0-9_$], but PL names may contain odd characters)."""
    if all(c.isalnum() or c in "_$" for c in name) and not name[0].isdigit():
        return name
    return "\\%s " % name


def _width_decl(width: int) -> str:
    return "" if width == 1 else "[%d:0] " % (width - 1)


def netlist_to_verilog(netlist: Netlist, module_name: str = None) -> str:
    """Render ``netlist`` as one flat Verilog module."""
    module_name = module_name or netlist.name
    wire_name: Dict[int, str] = {}
    lines: List[str] = []

    ports = ["input wire clk", "input wire rst"]
    for node in netlist.inputs:
        ports.append("input wire %s%s" % (_width_decl(node.width), _escape(node.name)))
        wire_name[node.uid] = _escape(node.name)
    for name, node in netlist.outputs.items():
        ports.append("output wire %s%s" % (_width_decl(node.width), _escape(name)))

    lines.append("module %s (" % _escape(module_name))
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    lines.append("")

    for reg, _next in netlist.registers:
        lines.append(
            "  reg %s%s; // reset: %d"
            % (_width_decl(reg.width), _escape(reg.name), reg.reset)
        )
        wire_name[reg.q.uid] = _escape(reg.name)
    lines.append("")

    body: List[str] = []
    for node in netlist.order:
        if node.uid in wire_name:
            continue
        if node.op == "const":
            wire_name[node.uid] = "%d'd%d" % (node.width, node.value)
            continue
        name = "n%d" % node.uid
        wire_name[node.uid] = name
        expr = _node_expr(node, wire_name)
        body.append(
            "  wire %s%s = %s;" % (_width_decl(node.width), name, expr)
        )
    lines.extend(body)
    lines.append("")

    for name, node in netlist.named.items():
        lines.append(
            "  wire %s%s = %s; // named signal"
            % (_width_decl(node.width), _escape("sig_" + name), wire_name[node.uid])
        )
    for name, node in netlist.outputs.items():
        lines.append("  assign %s = %s;" % (_escape(name), wire_name[node.uid]))
    lines.append("")

    lines.append("  always @(posedge clk) begin")
    lines.append("    if (rst) begin")
    for reg, _next in netlist.registers:
        lines.append(
            "      %s <= %d'd%d;" % (_escape(reg.name), reg.width, reg.reset)
        )
    lines.append("    end else begin")
    for reg, next_node in netlist.registers:
        lines.append(
            "      %s <= %s;" % (_escape(reg.name), wire_name[next_node.uid])
        )
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _node_expr(node, wire_name: Dict[int, str]) -> str:
    def ref(arg):
        return wire_name[arg.uid]

    op = node.op
    if op == "and":
        return "%s & %s" % (ref(node.args[0]), ref(node.args[1]))
    if op == "or":
        return "%s | %s" % (ref(node.args[0]), ref(node.args[1]))
    if op == "xor":
        return "%s ^ %s" % (ref(node.args[0]), ref(node.args[1]))
    if op == "not":
        return "~%s" % ref(node.args[0])
    if op == "add":
        return "%s + %s" % (ref(node.args[0]), ref(node.args[1]))
    if op == "sub":
        return "%s - %s" % (ref(node.args[0]), ref(node.args[1]))
    if op == "mul":
        return "%s * %s" % (ref(node.args[0]), ref(node.args[1]))
    if op == "eq":
        return "%s == %s" % (ref(node.args[0]), ref(node.args[1]))
    if op == "ult":
        return "%s < %s" % (ref(node.args[0]), ref(node.args[1]))
    if op == "shl":
        return "%s << %d" % (ref(node.args[0]), node.value)
    if op == "shr":
        return "%s >> %d" % (ref(node.args[0]), node.value)
    if op == "mux":
        sel, a, b = node.args
        return "%s ? %s : %s" % (ref(sel), ref(a), ref(b))
    if op == "concat":
        return "{%s}" % ", ".join(ref(a) for a in node.args)
    if op == "slice":
        if node.width == 1:
            return "%s[%d]" % (ref(node.args[0]), node.value)
        return "%s[%d:%d]" % (
            ref(node.args[0]),
            node.value + node.width - 1,
            node.value,
        )
    if op == "redor":
        return "|%s" % ref(node.args[0])
    if op == "redand":
        return "&%s" % ref(node.args[0])
    raise NotImplementedError("verilog export: unknown op %r" % op)

"""Module builder: the constructive front-end of the netlist IR.

A :class:`Module` plays the role that elaborated SystemVerilog source plays
for the paper's tools: designers build a synchronous design out of inputs,
registers, memories and combinational expressions, and *name* the internal
signals that verification metadata refers to (performing-location occupancy
conditions, commit signals, operand registers, ...).

The builder performs structural hashing and local constant folding so that
equivalent sub-expressions share one node -- this keeps downstream
bit-blasting and simulation compact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .nodes import Node, WidthError, cat, mux, zext

__all__ = ["Module", "Register", "Memory"]


def _mask(width):
    return (1 << width) - 1


class Register:
    """A clocked state element.

    ``reg.q`` is the current-cycle value node; assign the next-cycle value
    with ``reg.next = expr`` (defaults to holding its value).
    """

    def __init__(self, module, name, width, reset):
        self.module = module
        self.name = name
        self.width = width
        self.reset = reset & _mask(width)
        self.q = Node("reg", width, name=name, module=module, uid=module._next_uid())
        self._next: Optional[Node] = None
        module._nodes.append(self.q)

    @property
    def next(self):
        return self._next if self._next is not None else self.q

    @next.setter
    def next(self, expr):
        if isinstance(expr, int):
            expr = self.module.const(expr, self.width)
        if expr.width != self.width:
            raise WidthError(
                "register %s is %d bits; next-state expression is %d bits"
                % (self.name, self.width, expr.width)
            )
        self._next = expr

    def __repr__(self):
        return "Register(%s, w=%d)" % (self.name, self.width)


class Memory:
    """A small word-addressed memory, lowered onto one register per word.

    Lowering memories to registers keeps the netlist core minimal (wires,
    cells, registers only), which is exactly how our model checker and the
    CellIFT-style instrumentation want to see the design.  Reads are
    combinational muxes; at most one write port takes effect per cycle
    (last ``write`` call wins on address collision, matching typical
    write-port priority in RTL).
    """

    def __init__(self, module, name, width, depth, reset_words=None):
        if depth <= 0:
            raise WidthError("memory depth must be positive")
        self.module = module
        self.name = name
        self.width = width
        self.depth = depth
        self.addr_width = max(1, (depth - 1).bit_length())
        reset_words = reset_words or [0] * depth
        self.words: List[Register] = [
            module.reg("%s_w%d" % (name, i), width, reset=reset_words[i])
            for i in range(depth)
        ]

    def read(self, addr):
        """Combinational read of the word at ``addr`` (extra bits ignored)."""
        addr = self._check_addr(addr)
        out = self.words[0].q
        for i in range(1, self.depth):
            out = mux(addr.eq(i), self.words[i].q, out)
        return out

    def write(self, enable, addr, data):
        """Schedule a synchronous write: when ``enable``, word[addr] <= data."""
        addr = self._check_addr(addr)
        if data.width != self.width:
            raise WidthError("memory %s write data width mismatch" % self.name)
        if enable.width != 1:
            enable = enable.bool()
        for i, word in enumerate(self.words):
            hit = enable & addr.eq(i)
            word.next = mux(hit, data, word.next)

    def _check_addr(self, addr):
        if isinstance(addr, int):
            addr = self.module.const(addr, self.addr_width)
        if addr.width > self.addr_width:
            addr = addr[0 : self.addr_width]
        elif addr.width < self.addr_width:
            addr = zext(addr, self.addr_width)
        return addr


class Module:
    """A synchronous design under construction."""

    def __init__(self, name):
        self.name = name
        self._nodes: List[Node] = []
        self._cache: Dict[tuple, Node] = {}
        self._uid = 0
        self.inputs: List[Node] = []
        self.registers: List[Register] = []
        self.memories: List[Memory] = []
        self.outputs: Dict[str, Node] = {}
        self.named: Dict[str, Node] = {}

    def _next_uid(self):
        self._uid += 1
        return self._uid

    # -- leaf constructors ---------------------------------------------------
    def input(self, name, width=1):
        node = Node("input", width, name=name, module=self, uid=self._next_uid())
        self.inputs.append(node)
        self._nodes.append(node)
        return node

    def const(self, value, width):
        value &= _mask(width)
        key = ("const", width, value)
        node = self._cache.get(key)
        if node is None:
            node = Node("const", width, value=value, module=self, uid=self._next_uid())
            self._cache[key] = node
            self._nodes.append(node)
        return node

    def reg(self, name, width=1, reset=0):
        register = Register(self, name, width, reset)
        self.registers.append(register)
        return register

    def memory(self, name, width, depth, reset_words=None):
        memory = Memory(self, name, width, depth, reset_words)
        self.memories.append(memory)
        return memory

    # -- interface -------------------------------------------------------------
    def output(self, name, node):
        if name in self.outputs:
            raise ValueError("duplicate output %r" % name)
        self.outputs[name] = node
        return node

    def name_signal(self, name, node):
        """Expose an internal signal under a stable name.

        Named signals are how design metadata (performing locations, commit
        signals, operand registers) refers into the netlist; they survive
        elaboration and are addressable from properties and the simulator.
        """
        if name in self.named:
            raise ValueError("duplicate named signal %r" % name)
        self.named[name] = node
        return node

    def signal(self, name):
        """Look up a previously named signal."""
        return self.named[name]

    # -- structural construction with folding -----------------------------------
    def _make(self, op, args, value=None, width=None):
        args = tuple(args)
        if width is None:
            width = self._infer_width(op, args, value)
        folded = self._fold(op, args, value, width)
        if folded is not None:
            return folded
        if op in ("and", "or", "xor", "add", "mul", "eq"):
            # canonical order for commutative ops improves sharing
            args = tuple(sorted(args, key=lambda n: n.uid))
        key = (op, width, value, tuple(a.uid for a in args))
        node = self._cache.get(key)
        if node is None:
            node = Node(op, width, args=args, value=value, module=self, uid=self._next_uid())
            self._cache[key] = node
            self._nodes.append(node)
        return node

    def _infer_width(self, op, args, value):
        if op in ("and", "or", "xor", "add", "sub", "mul"):
            a, b = args
            if a.width != b.width:
                raise WidthError("%s operands differ: %d vs %d" % (op, a.width, b.width))
            return a.width
        if op in ("eq", "ult"):
            a, b = args
            if a.width != b.width:
                raise WidthError("%s operands differ: %d vs %d" % (op, a.width, b.width))
            return 1
        if op == "not":
            return args[0].width
        if op in ("shl", "shr"):
            return args[0].width
        if op == "mux":
            sel, a, b = args
            if sel.width != 1:
                raise WidthError("mux selector must be 1 bit")
            if a.width != b.width:
                raise WidthError("mux data operands differ: %d vs %d" % (a.width, b.width))
            return a.width
        if op == "concat":
            return sum(a.width for a in args)
        raise WidthError("cannot infer width of op %r" % op)

    def _fold(self, op, args, value, width):
        """Local constant folding / identity simplification."""
        consts = [a.value for a in args if a.op == "const"]
        if len(consts) == len(args) and op != "concat" or (
            op == "concat" and len(consts) == len(args)
        ):
            return self._fold_all_const(op, args, value, width)

        if op == "and":
            a, b = args
            for x, y in ((a, b), (b, a)):
                if x.op == "const":
                    if x.value == 0:
                        return self.const(0, width)
                    if x.value == _mask(width):
                        return y
            if a is b:
                return a
        elif op == "or":
            a, b = args
            for x, y in ((a, b), (b, a)):
                if x.op == "const":
                    if x.value == 0:
                        return y
                    if x.value == _mask(width):
                        return self.const(_mask(width), width)
            if a is b:
                return a
        elif op == "xor":
            a, b = args
            if a is b:
                return self.const(0, width)
            for x, y in ((a, b), (b, a)):
                if x.op == "const" and x.value == 0:
                    return y
        elif op == "add":
            a, b = args
            for x, y in ((a, b), (b, a)):
                if x.op == "const" and x.value == 0:
                    return y
        elif op == "sub":
            a, b = args
            if b.op == "const" and b.value == 0:
                return a
            if a is b:
                return self.const(0, width)
        elif op == "mux":
            sel, a, b = args
            if sel.op == "const":
                return a if sel.value else b
            if a is b:
                return a
        elif op == "eq":
            a, b = args
            if a is b:
                return self.const(1, 1)
        elif op == "ult":
            a, b = args
            if a is b:
                return self.const(0, 1)
            if b.op == "const" and b.value == 0:
                return self.const(0, 1)
        elif op == "not":
            (a,) = args
            if a.op == "not":
                return a.args[0]
        elif op in ("shl", "shr") and value == 0:
            return args[0]
        elif op == "slice":
            (a,) = args
            if value == 0 and width == a.width:
                return a
        elif op in ("redor", "redand") and args[0].width == 1:
            return args[0]
        return None

    def _fold_all_const(self, op, args, value, width):
        vals = [a.value for a in args]
        m = _mask(width)
        if op == "and":
            return self.const(vals[0] & vals[1], width)
        if op == "or":
            return self.const(vals[0] | vals[1], width)
        if op == "xor":
            return self.const(vals[0] ^ vals[1], width)
        if op == "add":
            return self.const((vals[0] + vals[1]) & m, width)
        if op == "sub":
            return self.const((vals[0] - vals[1]) & m, width)
        if op == "mul":
            return self.const((vals[0] * vals[1]) & m, width)
        if op == "eq":
            return self.const(1 if vals[0] == vals[1] else 0, 1)
        if op == "ult":
            return self.const(1 if vals[0] < vals[1] else 0, 1)
        if op == "not":
            return self.const(~vals[0] & m, width)
        if op == "shl":
            return self.const((vals[0] << value) & m, width)
        if op == "shr":
            return self.const(vals[0] >> value, width)
        if op == "mux":
            return self.const(vals[1] if vals[0] else vals[2], width)
        if op == "concat":
            out = 0
            for a in args:  # most-significant first
                out = (out << a.width) | a.value
            return self.const(out, width)
        if op == "slice":
            return self.const((vals[0] >> value) & m, width)
        if op == "redor":
            return self.const(1 if vals[0] else 0, 1)
        if op == "redand":
            return self.const(1 if vals[0] == _mask(args[0].width) else 0, 1)
        return None

    # -- convenience expression helpers ------------------------------------------
    def all_of(self, *conds):
        """AND a list of 1-bit conditions (true when empty)."""
        out = self.const(1, 1)
        for cond in conds:
            out = out & cond.bool()
        return out

    def any_of(self, *conds):
        """OR a list of 1-bit conditions (false when empty)."""
        out = self.const(0, 1)
        for cond in conds:
            out = out | cond.bool()
        return out

    def onehot_select(self, selectors_and_values, default):
        """Priority mux: first true selector wins, else ``default``."""
        out = default
        for sel, val in reversed(list(selectors_and_values)):
            out = mux(sel, val, out)
        return out

"""Netlist IR: the elaborated-RTL substrate all tools operate on.

The paper's tools consume SystemVerilog through Verific/Yosys and operate on
the resulting elaborated netlist.  This package *is* that netlist layer:
:class:`Module` builds designs, :func:`elaborate` freezes them into
:class:`Netlist` objects, and :mod:`repro.rtl.analysis` provides the static
analyses (combinational connectivity, fan-in cones) RTL2MuPATH needs.
"""

from .nodes import Node, WidthError, cat, mux, redand, redor, sext, trunc, zext
from .module import Memory, Module, Register
from .netlist import CombinationalLoopError, Netlist, elaborate
from .analysis import (
    comb_connected,
    comb_fanin_inputs,
    comb_fanin_registers,
    connectivity_matrix,
    registers_feeding_next_state,
)

__all__ = [
    "Node",
    "WidthError",
    "cat",
    "mux",
    "redand",
    "redor",
    "sext",
    "trunc",
    "zext",
    "Memory",
    "Module",
    "Register",
    "CombinationalLoopError",
    "Netlist",
    "elaborate",
    "comb_connected",
    "comb_fanin_inputs",
    "comb_fanin_registers",
    "connectivity_matrix",
    "registers_feeding_next_state",
]

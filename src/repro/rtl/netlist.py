"""Elaboration: freeze a :class:`~repro.rtl.module.Module` into a Netlist.

A :class:`Netlist` is the analysis-ready form of a design: a topologically
ordered list of combinational nodes, the register set with next-state
references, primary inputs, and the named-signal table.  It is immutable
with respect to structure; all downstream tools (simulator, bit-blaster,
IFT instrumentation, static analysis) consume netlists.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .module import Module, Register
from .nodes import Node

__all__ = ["Netlist", "elaborate", "CombinationalLoopError"]


class CombinationalLoopError(ValueError):
    """Raised when the combinational logic contains a cycle."""


class Netlist:
    """An elaborated synchronous design.

    Attributes:
        name: design name.
        order: all live nodes in topological (evaluation) order.
        inputs: primary input nodes, in declaration order.
        registers: list of ``(Register, next_node)`` pairs.
        named: name -> node mapping for metadata-addressable signals.
        outputs: output name -> node mapping.
    """

    def __init__(self, name, order, inputs, registers, named, outputs):
        self.name = name
        self.order: List[Node] = order
        self.inputs: List[Node] = inputs
        self.registers: List[Tuple[Register, Node]] = registers
        self.named: Dict[str, Node] = named
        self.outputs: Dict[str, Node] = outputs
        self._by_uid = {n.uid: n for n in order}

    # -- stats used by reports & tests ---------------------------------------
    @property
    def num_state_bits(self):
        return sum(reg.width for reg, _ in self.registers)

    @property
    def num_input_bits(self):
        return sum(node.width for node in self.inputs)

    @property
    def num_cells(self):
        leaf_ops = ("input", "const", "reg")
        return sum(1 for node in self.order if node.op not in leaf_ops)

    def signal(self, name):
        return self.named[name]

    def reset_state(self):
        """The architectural reset valuation: register name -> value."""
        return {reg.name: reg.reset for reg, _ in self.registers}

    def describe(self):
        return (
            "Netlist(%s: %d inputs bits, %d state bits, %d cells, %d named signals)"
            % (
                self.name,
                self.num_input_bits,
                self.num_state_bits,
                self.num_cells,
                len(self.named),
            )
        )

    def __repr__(self):
        return self.describe()


def elaborate(module: Module) -> Netlist:
    """Elaborate ``module``: dead-code-eliminate, topo-sort, and freeze.

    The live set is everything reachable from register next-state functions,
    outputs, and named signals.  Register ``q`` nodes and primary inputs act
    as sources; a combinational cycle raises :class:`CombinationalLoopError`.
    """
    roots: List[Node] = []
    register_pairs: List[Tuple[Register, Node]] = []
    for reg in module.registers:
        next_node = reg.next
        register_pairs.append((reg, next_node))
        roots.append(next_node)
    roots.extend(module.outputs.values())
    roots.extend(module.named.values())
    for reg in module.registers:
        roots.append(reg.q)
    roots.extend(module.inputs)

    order = _topo_sort(roots)
    return Netlist(
        name=module.name,
        order=order,
        inputs=list(module.inputs),
        registers=register_pairs,
        named=dict(module.named),
        outputs=dict(module.outputs),
    )


def _topo_sort(roots: List[Node]) -> List[Node]:
    """Iterative post-order DFS over the expression DAG."""
    order: List[Node] = []
    state: Dict[int, int] = {}  # uid -> 0 visiting, 1 done
    stack: List[Tuple[Node, bool]] = [(node, False) for node in reversed(roots)]
    while stack:
        node, processed = stack.pop()
        if processed:
            state[node.uid] = 1
            order.append(node)
            continue
        mark = state.get(node.uid)
        if mark is not None:
            # Either fully processed (1) or already scheduled (0): the DAG is
            # acyclic by construction (nodes are immutable and arguments are
            # created before their parents), so a 0 mark here is a diamond
            # reconvergence, not a loop.
            continue
        state[node.uid] = 0
        stack.append((node, True))
        for arg in node.args:
            if state.get(arg.uid) != 1:
                stack.append((arg, False))
    return order

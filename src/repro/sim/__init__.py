"""Cycle-accurate simulation of elaborated netlists."""

from .simulator import Simulator, Trace, compile_netlist
from .vcd import trace_to_vcd

__all__ = ["Simulator", "Trace", "compile_netlist", "trace_to_vcd"]

"""Minimal VCD (value change dump) export for recorded traces.

The paper's workflow inspects RTL waveforms produced by reachable cover
properties (SS VII-B2 -- that is how the SCB under-utilization bug was
found).  This module gives our traces the same affordance: any
:class:`~repro.sim.simulator.Trace` can be dumped to a standards-compliant
VCD file and opened in GTKWave or similar.
"""

from __future__ import annotations

from typing import Dict, Optional

from .simulator import Trace

__all__ = ["trace_to_vcd"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index):
    """Short VCD identifier codes: !, ", #, ... then two-char codes."""
    if index < len(_ID_CHARS):
        return _ID_CHARS[index]
    hi, lo = divmod(index - len(_ID_CHARS), len(_ID_CHARS))
    return _ID_CHARS[hi] + _ID_CHARS[lo]


def trace_to_vcd(trace: Trace, widths: Optional[Dict[str, int]] = None, design="duv"):
    """Render ``trace`` as VCD text; ``widths`` overrides per-signal widths.

    Widths default to the smallest width that fits the largest observed
    value (minimum 1).  Returns the VCD document as a string.
    """
    widths = dict(widths or {})
    for name in trace.signal_names:
        if name not in widths:
            peak = max((obs.get(name, 0) for obs in trace.cycles), default=0)
            widths[name] = max(1, peak.bit_length())

    ids = {name: _identifier(i) for i, name in enumerate(trace.signal_names)}
    lines = [
        "$date reproduction run $end",
        "$version repro.sim.vcd $end",
        "$timescale 1ns $end",
        "$scope module %s $end" % design,
    ]
    for name in trace.signal_names:
        lines.append("$var wire %d %s %s $end" % (widths[name], ids[name], name))
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    previous: Dict[str, Optional[int]] = {name: None for name in trace.signal_names}
    for cycle, obs in enumerate(trace.cycles):
        changes = []
        for name in trace.signal_names:
            value = obs.get(name, 0)
            if value != previous[name]:
                previous[name] = value
                if widths[name] == 1:
                    changes.append("%d%s" % (value & 1, ids[name]))
                else:
                    changes.append("b%s %s" % (format(value, "b"), ids[name]))
        if changes:
            lines.append("#%d" % cycle)
            lines.extend(changes)
    lines.append("#%d" % len(trace.cycles))
    return "\n".join(lines) + "\n"

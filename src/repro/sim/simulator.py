"""Cycle-accurate two-valued simulator over elaborated netlists.

The simulator compiles the expression DAG to a flat Python function once
(straight-line code, one local per node), then steps it.  Compilation makes
exhaustive context enumeration -- the workhorse of the fast verification
engine -- run one to two orders of magnitude faster than tree-walking
evaluation, which matters when a single RTL2MuPATH run executes hundreds of
thousands of simulated cycles.

Semantics match the paper's timing model: observable (named) signals are
functions of the register state *at the start of a cycle* plus that cycle's
inputs; register updates take effect at the start of the next cycle
(SS III-C: "state updates ... take effect at the start of the next cycle").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..rtl.netlist import Netlist

__all__ = ["Simulator", "Trace"]


class Trace:
    """A recorded execution: per-cycle named-signal values and states."""

    def __init__(self, signal_names):
        self.signal_names = list(signal_names)
        self.cycles: List[Dict[str, int]] = []
        self.states: List[Dict[str, int]] = []

    def append(self, observation, state):
        self.cycles.append(observation)
        self.states.append(state)

    def __len__(self):
        return len(self.cycles)

    def value(self, cycle, signal):
        return self.cycles[cycle][signal]

    def column(self, signal):
        return [obs[signal] for obs in self.cycles]

    def retire_times(
        self, commit_signal: str = "commit_fire", pc_signal: str = "commit_pc"
    ) -> Dict[int, int]:
        """Per-instruction retire timestamps: committed PC -> cycle index.

        On cores whose frontend numbers instructions by unique fetch PCs
        (the case-study cores), this is the per-instruction cycle
        accounting: each PC appears at most once on the commit port, so
        the map records the cycle every retired instruction committed.
        Flushed (never-committed) instructions are absent.
        """
        times: Dict[int, int] = {}
        for cycle, obs in enumerate(self.cycles):
            if obs.get(commit_signal):
                times.setdefault(obs[pc_signal], cycle)
        return times


def _mask_expr(width):
    return (1 << width) - 1


def compile_netlist(netlist: Netlist):
    """Compile ``netlist`` into a step function.

    Returns ``(step, observable_names)`` where
    ``step(state_tuple, input_tuple) -> (next_state_tuple, obs_tuple)``.
    State ordering follows ``netlist.registers``; input ordering follows
    ``netlist.inputs``; observables are named signals then outputs.
    """
    lines = ["def _step(state, inputs):"]
    reg_index = {reg.q.uid: i for i, (reg, _) in enumerate(netlist.registers)}
    input_index = {node.uid: i for i, node in enumerate(netlist.inputs)}

    for node in netlist.order:
        var = "v%d" % node.uid
        op = node.op
        if op == "const":
            lines.append("    %s = %d" % (var, node.value))
        elif op == "input":
            lines.append("    %s = inputs[%d]" % (var, input_index[node.uid]))
        elif op == "reg":
            lines.append("    %s = state[%d]" % (var, reg_index[node.uid]))
        elif op == "and":
            a, b = node.args
            lines.append("    %s = v%d & v%d" % (var, a.uid, b.uid))
        elif op == "or":
            a, b = node.args
            lines.append("    %s = v%d | v%d" % (var, a.uid, b.uid))
        elif op == "xor":
            a, b = node.args
            lines.append("    %s = v%d ^ v%d" % (var, a.uid, b.uid))
        elif op == "add":
            a, b = node.args
            lines.append("    %s = (v%d + v%d) & %d" % (var, a.uid, b.uid, _mask_expr(node.width)))
        elif op == "sub":
            a, b = node.args
            lines.append("    %s = (v%d - v%d) & %d" % (var, a.uid, b.uid, _mask_expr(node.width)))
        elif op == "mul":
            a, b = node.args
            lines.append("    %s = (v%d * v%d) & %d" % (var, a.uid, b.uid, _mask_expr(node.width)))
        elif op == "eq":
            a, b = node.args
            lines.append("    %s = 1 if v%d == v%d else 0" % (var, a.uid, b.uid))
        elif op == "ult":
            a, b = node.args
            lines.append("    %s = 1 if v%d < v%d else 0" % (var, a.uid, b.uid))
        elif op == "not":
            (a,) = node.args
            lines.append("    %s = v%d ^ %d" % (var, a.uid, _mask_expr(node.width)))
        elif op == "shl":
            (a,) = node.args
            lines.append("    %s = (v%d << %d) & %d" % (var, a.uid, node.value, _mask_expr(node.width)))
        elif op == "shr":
            (a,) = node.args
            lines.append("    %s = v%d >> %d" % (var, a.uid, node.value))
        elif op == "mux":
            sel, a, b = node.args
            lines.append("    %s = v%d if v%d else v%d" % (var, a.uid, sel.uid, b.uid))
        elif op == "concat":
            # args are most-significant first
            parts = []
            shift = 0
            for arg in reversed(node.args):
                if shift:
                    parts.append("(v%d << %d)" % (arg.uid, shift))
                else:
                    parts.append("v%d" % arg.uid)
                shift += arg.width
            lines.append("    %s = %s" % (var, " | ".join(parts)))
        elif op == "slice":
            (a,) = node.args
            lines.append("    %s = (v%d >> %d) & %d" % (var, a.uid, node.value, _mask_expr(node.width)))
        elif op == "redor":
            (a,) = node.args
            lines.append("    %s = 1 if v%d else 0" % (var, a.uid))
        elif op == "redand":
            (a,) = node.args
            lines.append("    %s = 1 if v%d == %d else 0" % (var, a.uid, _mask_expr(node.args[0].width)))
        else:
            raise NotImplementedError("simulator: unknown op %r" % op)

    next_vars = ", ".join("v%d" % nxt.uid for _, nxt in netlist.registers)
    if len(netlist.registers) == 1:
        next_vars += ","
    observable_names = list(netlist.named) + [
        name for name in netlist.outputs if name not in netlist.named
    ]
    obs_nodes = [
        netlist.named[name] if name in netlist.named else netlist.outputs[name]
        for name in observable_names
    ]
    obs_vars = ", ".join("v%d" % node.uid for node in obs_nodes)
    if len(obs_nodes) == 1:
        obs_vars += ","
    lines.append("    return (%s), (%s)" % (next_vars or "()", obs_vars or "()"))
    source = "\n".join(lines)
    namespace: Dict[str, object] = {}
    exec(compile(source, "<netlist:%s>" % netlist.name, "exec"), namespace)
    return namespace["_step"], observable_names


class Simulator:
    """Steppable simulator with trace recording."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._step_fn, self.observable_names = compile_netlist(netlist)
        self._reg_names = [reg.name for reg, _ in netlist.registers]
        self._input_names = [node.name for node in netlist.inputs]
        self._reset_values = tuple(reg.reset for reg, _ in netlist.registers)
        self._obs_index = {
            name: i for i, name in enumerate(self.observable_names)
        }
        self.state = self._reset_values
        self.cycle = 0

    def observable_index(self, name: str) -> int:
        """Position of observable ``name`` in ``step_tuple`` results."""
        return self._obs_index[name]

    def reset(self, overrides: Optional[Dict[str, int]] = None):
        """Return to the reset state; ``overrides`` sets named registers.

        Overrides model the paper's "only architectural state is symbolically
        initialized" reset: the verification harness enumerates or solves for
        architectural register/memory contents while everything else takes
        its RTL reset value.
        """
        values = list(self._reset_values)
        if overrides:
            index = {name: i for i, name in enumerate(self._reg_names)}
            for name, value in overrides.items():
                values[index[name]] = value
        self.state = tuple(values)
        self.cycle = 0

    def step(self, inputs: Optional[Dict[str, int]] = None):
        """Advance one cycle; returns the observation dict for this cycle."""
        return dict(zip(self.observable_names, self.step_tuple(inputs)))

    def step_tuple(self, inputs: Optional[Dict[str, int]] = None):
        """Advance one cycle; returns the raw observation tuple (fast path).

        Tuple entries follow ``observable_names`` ordering.
        """
        input_tuple = self._pack_inputs(inputs)
        next_state, obs = self._step_fn(self.state, input_tuple)
        self.state = next_state
        self.cycle += 1
        return obs

    def run(self, input_seq: Sequence[Dict[str, int]], record_states=False) -> Trace:
        """Run from the current state over ``input_seq``; returns a Trace."""
        trace = Trace(self.observable_names)
        for inputs in input_seq:
            state_snapshot = self.state_dict() if record_states else {}
            observation = self.step(inputs)
            trace.append(observation, state_snapshot)
        return trace

    def state_dict(self):
        return dict(zip(self._reg_names, self.state))

    def _pack_inputs(self, inputs):
        inputs = inputs or {}
        unknown = set(inputs) - set(self._input_names)
        if unknown:
            raise KeyError("unknown inputs: %s" % sorted(unknown))
        return tuple(inputs.get(name, 0) for name in self._input_names)

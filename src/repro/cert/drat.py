"""A pure-Python backward DRAT (RUP) proof checker.

Checks the proof logs :class:`~repro.solver.sat.SatSolver` emits when
built with ``proof=True``.  A log is a sequence of entries
``(tag, lits)`` over DIMACS literals:

* ``"i"`` -- an input (axiom) clause, taken on trust: it is part of the
  formula whose unsatisfiability is being certified;
* ``"a"`` -- an *addition* (CDCL-learned clause, preprocessing
  derivation, validated clause-sharing import): must have the RUP
  property against everything logged before it;
* ``"d"`` -- an advisory deletion.  The checker ignores deletions:
  checking against a superset of the solver's live database only makes
  the implied-clause test easier to pass for real derivations and is
  therefore sound for RUP-only (DRAT-without-RAT) logs -- a clause is
  never *added* on the strength of a deletion.

The terminal lemma of an UNSAT verdict (the negation of the assumption
core; the empty clause for a root refutation) is checked first, at the
full log, and the check runs *backward*: only lemmas the terminal
conflict (transitively) depends on are themselves checked, each against
the strict prefix that precedes it.  Antecedent marking uses the
propagation reason graph, so a forged-but-unused entry is ignored while
a forged load-bearing entry fails its own RUP check.

This module deliberately shares no code with the solver: it rebuilds
watch lists and propagation from the logged clauses alone, so it cannot
inherit a solver soundness bug.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["check_proof", "verify_model", "ProofCheckOutcome"]


@dataclass
class ProofCheckOutcome:
    status: str  # "ok" | "failed" | "budget"
    detail: str = ""
    lemmas_checked: int = 0
    steps: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _enc(lit: int) -> int:
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


class _Checker:
    """Watched-literal unit propagation over a birth-ordered clause list."""

    def __init__(self, clauses: List[Tuple[List[int], bool]], num_vars: int):
        # clauses[ci] = (encoded_lits, is_lemma); ci is the birth index
        self.clauses = clauses
        self.val = [0] * (2 * num_vars + 2)
        self.reason: List[Optional[int]] = [None] * (num_vars + 1)
        self.trail: List[int] = []
        self.steps = 0
        # watches[enc] -> clause indices watching enc (the clause's first
        # two literal slots, swapped in place as watches move)
        self.watch: Dict[int, List[int]] = {}
        self.units: List[Tuple[int, int]] = []  # (birth ci, enc)
        self.empties: List[int] = []  # birth indices of empty clauses
        for ci, (lits, _lemma) in enumerate(clauses):
            if not lits:
                self.empties.append(ci)
            elif len(lits) == 1:
                self.units.append((ci, lits[0]))
            else:
                self.watch.setdefault(lits[0], []).append(ci)
                self.watch.setdefault(lits[1], []).append(ci)

    # ------------------------------------------------------------ assignment
    def _assign(self, enc: int, reason: Optional[int]) -> Optional[int]:
        """Make ``enc`` true; returns a conflicting clause index or None."""
        val = self.val
        if val[enc] == 1:
            return None
        if val[enc] == -1:
            # enc already false: the clause forcing it conflicts with the
            # assignment's existing reason chain
            return reason
        val[enc] = 1
        val[enc ^ 1] = -1
        self.reason[enc >> 1] = reason
        self.trail.append(enc)
        return None

    def _undo(self) -> None:
        val = self.val
        for enc in self.trail:
            val[enc] = 0
            val[enc ^ 1] = 0
        del self.trail[:]

    # ----------------------------------------------------------- propagation
    def _propagate(self, limit: int, qhead: int) -> Optional[int]:
        """Propagate to fixpoint over clauses born before ``limit``."""
        val = self.val
        trail = self.trail
        clauses = self.clauses
        watch = self.watch
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            false_lit = p ^ 1
            wl = watch.get(false_lit)
            if not wl:
                continue
            j = 0
            i = 0
            n = len(wl)
            while i < n:
                ci = wl[i]
                i += 1
                self.steps += 1
                if ci >= limit:
                    wl[j] = ci
                    j += 1
                    continue
                lits = clauses[ci][0]
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if val[first] == 1:
                    wl[j] = ci
                    j += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    if val[lk] != -1:
                        lits[1], lits[k] = lk, false_lit
                        watch.setdefault(lk, []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                wl[j] = ci
                j += 1
                if val[first] == -1:
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    return ci
                conflict = self._assign(first, ci)
                if conflict is not None:
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    return conflict
            del wl[j:]
        return None

    # -------------------------------------------------------------- marking
    def _mark(self, conflict_ci: int, needed: set) -> None:
        """Mark the lemmas the conflict's reason graph depends on."""
        clauses = self.clauses
        reason = self.reason
        visited = set()
        stack = [conflict_ci]
        while stack:
            ci = stack.pop()
            if ci in visited:
                continue
            visited.add(ci)
            lits, is_lemma = clauses[ci]
            if is_lemma:
                needed.add(ci)
            for enc in lits:
                r = reason[enc >> 1]
                if r is not None and r not in visited:
                    stack.append(r)

    def _mark_chain(self, enc: int, needed: set) -> None:
        r = self.reason[enc >> 1]
        if r is not None:
            self._mark(r, needed)

    # ------------------------------------------------------------- RUP check
    def rup(self, lemma_encs: Sequence[int], limit: int, needed: set) -> bool:
        """True iff the lemma is RUP against clauses born before ``limit``."""
        try:
            for ci in self.empties:
                if ci < limit:
                    # an empty clause precedes the lemma: everything is
                    # implied (but a *derived* empty clause must itself
                    # be justified, so mark it)
                    if self.clauses[ci][1]:
                        needed.add(ci)
                    return True
            conflict = None
            # unit axioms/lemmas first: their closure is the root state
            for ci, enc in self.units:
                if ci >= limit:
                    continue
                conflict = self._assign(enc, ci)
                if conflict is not None:
                    break
            if conflict is None:
                # assume the negation of the lemma
                for enc in lemma_encs:
                    if self.val[enc] == 1:
                        # lemma satisfied by the unit closure (or it is a
                        # tautology): trivially implied -- but the units
                        # that satisfy it must themselves be justified
                        self._mark_chain(enc, needed)
                        return True
                    if self.val[enc] == -1:
                        continue
                    conflict = self._assign(enc ^ 1, None)
                    if conflict is not None:
                        break
            if conflict is None:
                conflict = self._propagate(limit, 0)
            if conflict is None:
                return False
            self._mark(conflict, needed)
            return True
        finally:
            self._undo()


def check_proof(
    entries: Sequence[Tuple[str, Sequence[int]]],
    final: Sequence[int] = (),
    max_seconds: Optional[float] = None,
) -> ProofCheckOutcome:
    """Backward-check a proof log against its terminal lemma.

    ``final`` is the clause the UNSAT verdict claims (empty = the empty
    clause).  Returns ``ok`` when the terminal lemma and every addition
    it depends on are RUP, ``failed`` with a pinpointing detail
    otherwise, and ``budget`` when ``max_seconds`` ran out first
    (a skip, not a refutation).
    """
    deadline = (
        time.monotonic() + max_seconds if max_seconds is not None else None
    )
    clauses: List[Tuple[List[int], bool]] = []
    max_var = 0
    for lit in final:
        max_var = max(max_var, abs(lit))
    for tag, lits in entries:
        if tag == "d":
            continue
        # dedupe literals and drop tautologies: logs carry clauses as the
        # caller wrote them, and a clause holding duplicate literals must
        # not masquerade as a wider (non-unit) clause here
        seen: set = set()
        encs: List[int] = []
        tautology = False
        for lit in lits:
            max_var = max(max_var, abs(lit))
            enc = _enc(lit)
            if enc ^ 1 in seen:
                tautology = True
                break
            if enc not in seen:
                seen.add(enc)
                encs.append(enc)
        if tautology:
            # never falsifiable and never forcing; as a lemma, trivially RUP
            continue
        clauses.append((encs, tag == "a"))
    checker = _Checker(clauses, max_var)
    needed: set = set()
    outcome = ProofCheckOutcome("ok")
    if not checker.rup([_enc(l) for l in final], len(clauses), needed):
        return ProofCheckOutcome(
            "failed", "terminal lemma is not implied (RUP check failed)"
        )
    # walk additions newest-first; only marked (load-bearing) ones are
    # checked, each against the strict prefix that precedes it
    for ci in range(len(clauses) - 1, -1, -1):
        lits, is_lemma = clauses[ci]
        if not is_lemma or ci not in needed:
            continue
        if deadline is not None and time.monotonic() > deadline:
            return ProofCheckOutcome(
                "budget",
                f"time budget exhausted after {outcome.lemmas_checked} lemmas",
                outcome.lemmas_checked,
                checker.steps,
            )
        if not checker.rup(lits, ci, needed):
            return ProofCheckOutcome(
                "failed",
                f"addition #{ci} is not RUP against its prefix",
                outcome.lemmas_checked,
                checker.steps,
            )
        outcome.lemmas_checked += 1
    outcome.steps = checker.steps
    return outcome


def verify_model(
    entries: Sequence[Tuple[str, Sequence[int]]], model
) -> Tuple[bool, str]:
    """Check a claimed model satisfies every input clause of a log.

    ``model`` maps a variable to its truth value (a dict or a callable).
    Only ``"i"`` entries are consulted -- additions are consequences, so
    a model of the inputs satisfies them too.  This is the SAT-side
    counterpart of :func:`check_proof`: a solver that answered SAT with
    a corrupt model (the flipped-bit mutation) fails here.
    """
    lookup = model if callable(model) else model.get
    for index, (tag, lits) in enumerate(entries):
        if tag != "i":
            continue
        satisfied = False
        for lit in lits:
            value = lookup(abs(lit))
            if bool(value) == (lit > 0):
                satisfied = True
                break
        if not satisfied:
            return False, f"input clause #{index} {tuple(lits)} is falsified"
    return True, ""

"""repro.cert: certified verdicts for the model-checking engines.

The verdict lattice (REACHABLE / UNREACHABLE / UNDETERMINED, paper
SS V-B, SS VII-B3) is only as trustworthy as the solve path that produced
it -- and PRs 5-8 stacked four verdict-affecting optimizations on that
path (incremental contexts, COI slicing, CNF preprocessing with variable
elimination, cross-worker clause sharing).  This package removes the
"trusted model checker" assumption by making every final verdict carry
an independently checkable *certificate*:

* **REACHABLE** -- a *witness* certificate: the SAT model decoded into an
  initial register state plus a per-cycle input trace, replayed on the
  concrete simulator (:mod:`repro.sim`) to confirm the cover actually
  fires at the claimed depth.  The replay shares zero code with the
  SAT engine, so a solver soundness bug cannot vouch for itself.
* **UNREACHABLE** -- a *DRAT* certificate: the solver's proof log (input
  clauses, CDCL-learned clauses, preprocessing derivations, validated
  clause-sharing imports) plus the terminal negation-of-core lemma, for
  *both* legs of a k-induction proof, checked by the pure-Python
  backward RUP checker in :mod:`.drat` -- independent of the solver's
  watch lists, trail, and heuristics.
* **UNDETERMINED** -- honestly uncertifiable: budget exhaustion has no
  finite refutation or witness, so undetermined results never carry a
  certificate (and, as before, are never cached).

Certificates travel inside :class:`~repro.mc.outcomes.CheckResult`
bundles, through the format-v2 proof cache (digest-verified on
read-through) and the dist wire protocol (oversized payloads degrade to
digest-only instead of killing the connection).  A certification
*failure* never aborts a campaign: the scheduler quarantines the result
and re-solves the job on the conservative path (no preprocessing, no
clause sharing, fresh non-incremental context) -- see DESIGN SS5j.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import span as _span
from ..obs.metrics import REGISTRY

__all__ = [
    "CertifyPolicy",
    "MODES",
    "canonical_payload_bytes",
    "payload_digest",
    "make_certificate",
    "verify_certificate_digest",
    "certificate_failed",
    "failed_certificates",
    "checked_certificates",
    "strip_payload",
    "drat_certificate",
    "witness_certificate",
    "cover_witness_certificate",
    "replay_witness",
]

MODES = ("off", "spot", "full")

_CHECKS = REGISTRY.counter(
    "repro_cert_checks_total", "certificate checks, by kind and status"
)
_CHECK_SECONDS = REGISTRY.histogram(
    "repro_cert_check_seconds", "wall-clock seconds per certificate check"
)
_UNCAUGHT = REGISTRY.counter(
    "repro_cert_uncaught_total",
    "certification failures that survived into final results",
)
_WIRE_DEGRADED = REGISTRY.counter(
    "repro_cert_wire_degraded_total",
    "certificates degraded to digest-only to fit the wire frame cap",
)


@dataclass(frozen=True)
class CertifyPolicy:
    """How aggressively to check certificates (``--certify`` knobs).

    ``off`` disables proof logging entirely (zero overhead); ``spot``
    logs everything but only *checks* a deterministic 1-in-``spot_modulus``
    sample of certificates (witness replays are cheap and always run);
    ``full`` checks every certificate, subject to the per-check proof
    size and time budgets -- a budgeted skip is reported as ``skipped``,
    never as a failure.
    """

    mode: str = "off"
    # max proof entries a single DRAT leg may have and still be checked
    proof_limit: int = 200_000
    # wall-clock seconds budget per DRAT check
    time_budget: float = 10.0
    # max canonical-JSON bytes of payload retained inside the bundle;
    # larger payloads are checked, then dropped to digest-only
    payload_limit: int = 2_000_000
    spot_modulus: int = 4

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def should_check_proof(self, name: str) -> bool:
        """Whether to run the (expensive) DRAT check for ``name``."""
        if self.mode == "full":
            return True
        if self.mode != "spot":
            return False
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        return digest[0] % max(1, self.spot_modulus) == 0

    @classmethod
    def from_mode(
        cls,
        mode: str,
        proof_limit: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> "CertifyPolicy":
        if mode not in MODES:
            raise ValueError(f"unknown certify mode: {mode!r}")
        kwargs = {"mode": mode}
        if proof_limit is not None:
            kwargs["proof_limit"] = proof_limit
        if time_budget is not None:
            kwargs["time_budget"] = time_budget
        return cls(**kwargs)


# ----------------------------------------------------------------- bundles
def canonical_payload_bytes(payload) -> bytes:
    """Canonical JSON encoding (sorted keys, no whitespace) of a payload."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")


def payload_digest(payload) -> str:
    return hashlib.sha256(canonical_payload_bytes(payload)).hexdigest()


def make_certificate(
    kind: str,
    payload,
    status: str,
    detail: str = "",
    policy: Optional[CertifyPolicy] = None,
) -> dict:
    """Assemble a certificate bundle around a checked (or skipped) payload.

    ``status`` is one of ``verified`` / ``failed`` / ``skipped`` /
    ``budget`` / ``overflow``; ``verified`` is the derived tri-state the
    rest of the system branches on (True / False / None-for-unchecked).
    The payload is retained only under the policy's size limit -- a
    dropped payload keeps its digest, so cache and wire spot checks can
    still prove the bytes they *do* see are the bytes that were checked.
    """
    data = canonical_payload_bytes(payload)
    cert = {
        "kind": kind,
        "status": status,
        "verified": True if status == "verified" else (
            False if status == "failed" else None
        ),
        "digest": hashlib.sha256(data).hexdigest(),
    }
    if detail:
        cert["detail"] = detail
    limit = policy.payload_limit if policy is not None else 2_000_000
    if len(data) <= limit:
        cert["payload"] = payload
    else:
        cert["payload"] = None
        cert["payload_dropped"] = True
    _CHECKS.inc(kind=kind, status=status)
    return cert


def verify_certificate_digest(cert: dict) -> bool:
    """Re-derive the payload digest; True when intact or payload absent."""
    if not isinstance(cert, dict):
        return False
    payload = cert.get("payload")
    if payload is None:
        return True  # digest-only bundles have nothing left to corrupt
    return payload_digest(payload) == cert.get("digest")


def strip_payload(cert: dict) -> dict:
    """A digest-only copy of ``cert`` (wire/frame-cap degradation)."""
    out = dict(cert)
    out["payload"] = None
    out["payload_dropped"] = True
    _WIRE_DEGRADED.inc()
    return out


def certificate_failed(result) -> bool:
    """Whether a CheckResult (or bare bundle) carries a *failed* certificate."""
    cert = getattr(result, "certificate", result)
    return isinstance(cert, dict) and cert.get("verified") is False


def failed_certificates(results: Iterable) -> List[str]:
    """Query names whose results carry failed certificates."""
    return [
        getattr(r, "query_name", "?") for r in results if certificate_failed(r)
    ]


def checked_certificates(results: Iterable) -> int:
    """How many results carry a certificate that was actually checked."""
    count = 0
    for r in results:
        cert = getattr(r, "certificate", None)
        if isinstance(cert, dict) and cert.get("verified") is not None:
            count += 1
    return count


def note_uncaught(count: int) -> None:
    if count:
        _UNCAUGHT.inc(count)


# ------------------------------------------------------------- DRAT bundles
def drat_certificate(
    legs: Dict[str, Tuple[Sequence, Sequence[int]]],
    policy: CertifyPolicy,
    name: str = "",
    overflow: bool = False,
) -> dict:
    """Build (and per policy, check) a DRAT certificate over proof legs.

    ``legs`` maps a leg label (``base`` / ``step`` for k-induction,
    ``proof`` for plain BMC exhaustion) to ``(entries, final)`` where
    ``entries`` is the solver's proof log slice and ``final`` the
    terminal lemma (empty tuple = empty clause).  All legs must verify
    for the certificate to verify; a budget/overflow skip on any leg
    demotes the whole bundle to unchecked rather than failed.

    For a query the policy will *not* check (spot-unsampled), a leg's
    ``entries`` may be a bare int (the solver's ``proof_length()``)
    instead of the materialized log -- the engines use this to skip the
    snapshot copy of a shared incremental log entirely.
    """
    from . import drat

    if not policy.should_check_proof(name):
        # Nothing will be checked, so don't pay for materializing +
        # canonicalizing + digesting a payload nobody will ever look at
        # (that cost alone blows the spot-mode overhead budget).  The
        # bundle is digest-only from birth; its digest pins the proof
        # *shape* (per-leg entry counts + final lemma), which is all an
        # unchecked bundle can vouch for.
        shape = {
            label: {
                "entries": entries if isinstance(entries, int)
                else len(entries),
                "final": list(final),
            }
            for label, (entries, final) in legs.items()
        }
        status = "overflow" if overflow else "skipped"
        cert = {
            "kind": "drat",
            "status": status,
            "verified": None,
            "digest": payload_digest({"shape": shape}),
            "payload": None,
            "payload_dropped": True,
        }
        if overflow:
            cert["detail"] = "proof log overflowed the retention cap"
        _CHECKS.inc(kind="drat", status=status)
        return cert

    payload = {
        "legs": {
            label: {
                "entries": [[tag, list(lits)] for tag, lits in entries],
                "final": list(final),
            }
            for label, (entries, final) in legs.items()
        }
    }
    if overflow:
        return make_certificate(
            "drat", payload, "overflow",
            detail="proof log overflowed the retention cap", policy=policy,
        )
    status = "verified"
    detail = ""
    started = time.perf_counter()
    with _span("cert.check", kind="drat", query=name) as sp:
        for label, (entries, final) in legs.items():
            if len(entries) > policy.proof_limit:
                status, detail = "budget", f"{label}: {len(entries)} entries"
                break
            remaining = policy.time_budget - (time.perf_counter() - started)
            outcome = drat.check_proof(
                entries, final, max_seconds=max(0.1, remaining)
            )
            if outcome.status == "budget":
                status, detail = "budget", f"{label}: {outcome.detail}"
                break
            if outcome.status != "ok":
                status, detail = "failed", f"{label}: {outcome.detail}"
                break
        sp.set("status", status)
    _CHECK_SECONDS.observe(time.perf_counter() - started)
    return make_certificate("drat", payload, status, detail=detail, policy=policy)


# ---------------------------------------------------------- witness bundles
def witness_certificate(
    netlist,
    registers: Dict[str, int],
    inputs: Sequence[Dict[str, int]],
    evaluate,
    policy: CertifyPolicy,
    name: str = "",
) -> dict:
    """Build and replay-check a witness certificate for a REACHABLE verdict.

    ``registers`` is the decoded initial register state, ``inputs`` the
    decoded per-cycle input words, and ``evaluate`` a callable mapping
    the replayed :class:`~repro.props.views.ConcreteTraceView` to a bool
    (the cover/property, interpreted concretely).  Witness replays are
    cheap -- depth-many simulator steps -- so every REACHABLE verdict is
    replay-confirmed in both ``spot`` and ``full`` modes.
    """
    payload = {
        "depth": len(inputs),
        "registers": {k: int(v) for k, v in registers.items()},
        "inputs": [{k: int(v) for k, v in cycle.items()} for cycle in inputs],
    }
    started = time.perf_counter()
    with _span("cert.check", kind="witness", query=name) as sp:
        try:
            ok = replay_witness(netlist, payload, evaluate)
        except Exception as exc:  # replay crash = the witness is bogus
            ok = False
            detail = f"replay error: {exc}"
        else:
            detail = "" if ok else "replayed trace does not satisfy the property"
        status = "verified" if ok else "failed"
        sp.set("status", status)
    _CHECK_SECONDS.observe(time.perf_counter() - started)
    return make_certificate(
        "witness", payload, status, detail=detail, policy=policy
    )


def cover_witness_certificate(
    name: str,
    payload: dict,
    replay,
    policy: CertifyPolicy,
) -> dict:
    """Bundle a replay check of an enumerative cover witness.

    The synthesis phase's REACHABLE verdicts come from scanning simulated
    trace databases, not the SAT engine -- each one is witnessed by a
    concrete context.  ``replay`` re-simulates that context on a fresh
    simulator and re-evaluates the cover predicate on the replayed path
    (see :class:`repro.core.rtl2mupath._CoverCertifier`); this function
    wraps the outcome in a standard certificate bundle so the scheduler's
    quarantine/degrade machinery treats cover verdicts and solver
    verdicts uniformly.
    """
    started = time.perf_counter()
    with _span("cert.check", kind="cover-witness", query=name) as sp:
        try:
            ok = replay()
        except Exception as exc:  # replay crash = the witness is bogus
            ok, detail = False, f"replay error: {exc}"
        else:
            detail = (
                "" if ok else "replayed context does not witness the cover"
            )
        status = "verified" if ok else "failed"
        sp.set("status", status)
    _CHECK_SECONDS.observe(time.perf_counter() - started)
    return make_certificate(
        "cover-witness", payload, status, detail=detail, policy=policy
    )


def replay_witness(netlist, payload: dict, evaluate) -> bool:
    """Re-simulate a witness payload and evaluate the property on it.

    Independent path: uses only :mod:`repro.sim` (the enumerative
    engine's simulator) and the concrete property interpretation --
    nothing the SAT engine touched.
    """
    from ..sim.simulator import Simulator
    from .witness import replay_view

    view = replay_view(Simulator(netlist), payload)
    return bool(evaluate(view))

"""Witness decoding and replay for REACHABLE certificates.

A SAT answer from the bounded model checker is a symbolic trace: the
model assigns the initial (symbolically reset) register words and every
per-cycle input word.  :func:`decode_model_witness` reads those words
back through the bit-blaster *at SAT time* (models are transient --
the next solve destroys them), producing a plain-JSON payload; a
witness certificate then *replays* the payload on the concrete
simulator (:mod:`repro.sim`) -- a completely SAT-free execution path --
and re-evaluates the property on the replayed trace.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..props.views import ConcreteTraceView

__all__ = ["decode_model_witness", "replay_view"]


def decode_model_witness(builder, frames) -> Dict:
    """Decode a SAT model into ``(registers, inputs)`` payload pieces.

    ``frames`` are the unrolling's bit-blasted cycles: the first frame's
    ``state_in`` words are the initial register state (symbolic or
    reset-constant -- decoding a constant word just returns the reset
    value), and each frame's ``inputs`` words are that cycle's input
    assignment.  Must be called while the model is live.
    """
    registers: Dict[str, int] = {}
    if frames:
        registers = {
            name: builder.word_value(word)
            for name, word in frames[0].state_in.items()
        }
    inputs: List[Dict[str, int]] = [
        {name: builder.word_value(word) for name, word in frame.inputs.items()}
        for frame in frames
    ]
    return {"registers": registers, "inputs": inputs}


def replay_view(sim, payload: Dict) -> ConcreteTraceView:
    """Re-simulate a witness payload; returns the concrete trace view.

    Raises on malformed payloads (unknown register or input names) --
    the caller treats any replay exception as a failed certificate.
    """
    sim.reset(overrides=dict(payload.get("registers") or {}))
    cycles = [
        sim.step(dict(cycle)) for cycle in payload.get("inputs") or []
    ]
    return ConcreteTraceView(cycles)

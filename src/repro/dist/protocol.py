"""The distributed runner's wire protocol: JSON-lines frames plus exact
job / report round-trips.

Every connection (client->broker, worker->broker) speaks newline-
delimited JSON: one UTF-8 encoded JSON object per line, each carrying a
``type`` field.  The framing is deliberately boring -- it is inspectable
with ``nc`` and fuzzable with a random-bytes generator -- and every
decode failure maps to :class:`ProtocolError`, never to an unhandled
exception inside the broker (the protocol-fuzz tests assert exactly
this).

Three invariants make distribution a no-op for verdict semantics:

* **Jobs round-trip exactly.**  The engine's job specs are frozen
  dataclasses of scalars and (nested) tuples; :func:`encode_job` /
  :func:`decode_job` rebuild an ``==``-equal spec on the worker, so
  ``cache_key()`` -- a canonical hash over the spec's contents -- is
  *identical* on every node.  Tuples survive JSON via a tagged encoding
  (``{"__tuple__": [...]}``), the one container JSON would silently
  degrade to lists.
* **Reports round-trip exactly.**  Worker reports reuse the proof
  cache's CheckResult dicts and the job's own ``encode_value`` /
  ``decode_value`` payload codec, so a report that crossed the network
  folds into stats, cache, and checkpoint byte-identically to one from
  a local ``ProcessPoolExecutor`` worker.
* **Opaque routing metadata.**  The broker routes on ``job_id`` /
  ``group`` / ``priority`` alone and never decodes the spec itself, so
  new job types need no broker changes -- they register here
  (:func:`register_job_type`) and both endpoints agree.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple, Type

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "register_job_type",
    "encode_job",
    "decode_job",
    "report_to_wire",
    "report_from_wire",
]

#: bumped when frame or payload semantics change; hello/welcome exchange it
PROTOCOL_VERSION = 1

#: hard per-frame ceiling -- a peer sending an unterminated line cannot
#: balloon broker memory (asyncio's readline enforces it for us)
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed, oversized, or semantically invalid frame."""


# ------------------------------------------------------------------- framing
def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message -> one newline-terminated JSON line."""
    try:
        line = json.dumps(message, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError("unencodable frame: %s" % exc) from None
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError("frame of %d bytes exceeds limit" % len(data))
    return data


def decode_frame(line: bytes) -> Dict[str, Any]:
    """One received line -> a validated message dict (must carry ``type``)."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError("frame of %d bytes exceeds limit" % len(line))
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc) from None
    if not isinstance(message, dict):
        raise ProtocolError(
            "frame is %s, not an object" % type(message).__name__
        )
    kind = message.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("frame has no 'type' field")
    return message


# ---------------------------------------------------- tagged value encoding
#
# Job specs contain tuples (often nested: frozen config params are tuples
# of (key, value) pairs whose values are themselves tuples).  JSON would
# silently turn them into lists and the rebuilt dataclass would no longer
# equal -- or hash like -- the original, so tuples and frozensets travel
# under explicit tags.

_TUPLE = "__tuple__"
_FROZENSET = "__frozenset__"


def _encode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return {_TUPLE: [_encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {_FROZENSET: sorted(_encode_value(v) for v in value)}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ProtocolError(
        "job field value of type %r is not wire-encodable"
        % type(value).__name__
    )


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_TUPLE}:
            return tuple(_decode_value(v) for v in value[_TUPLE])
        if set(value) == {_FROZENSET}:
            return frozenset(_decode_value(v) for v in value[_FROZENSET])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


# --------------------------------------------------------- job registration
_JOB_TYPES: Dict[str, Type] = {}


def register_job_type(cls: Type) -> Type:
    """Register a frozen-dataclass job type for wire transport.

    Both endpoints must register the same types (the built-in engine
    jobs are registered below at import time).  Returns ``cls`` so it
    doubles as a decorator for test-local job types.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError("job type %r is not a dataclass" % cls.__name__)
    _JOB_TYPES[cls.__name__] = cls
    return cls


def _builtin_job_types() -> None:
    from ..engine import specs

    register_job_type(specs.SynthesisJob)
    register_job_type(specs.SynthLCJob)
    register_job_type(specs.ReachJob)
    register_job_type(specs.PerfJob)
    register_job_type(specs.DesignSpec)
    register_job_type(specs.ProviderSpec)


def _encode_dataclass(obj: Any) -> Dict[str, Any]:
    name = type(obj).__name__
    if name not in _JOB_TYPES or type(obj) is not _JOB_TYPES[name]:
        raise ProtocolError("unregistered job type %r" % name)
    fields = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            fields[field.name] = {"__dc__": _encode_dataclass(value)}
        else:
            fields[field.name] = _encode_value(value)
    return {"kind": name, "fields": fields}


def _decode_dataclass(payload: Any) -> Any:
    if not isinstance(payload, dict):
        raise ProtocolError("job payload is not an object")
    name = payload.get("kind")
    cls = _JOB_TYPES.get(name)
    if cls is None:
        raise ProtocolError("unregistered job type %r" % name)
    raw = payload.get("fields")
    if not isinstance(raw, dict):
        raise ProtocolError("job payload for %r has no fields" % name)
    known = {f.name for f in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in raw.items():
        if key not in known:
            raise ProtocolError("unknown field %r for job type %r" % (key, name))
        if isinstance(value, dict) and set(value) == {"__dc__"}:
            kwargs[key] = _decode_dataclass(value["__dc__"])
        else:
            kwargs[key] = _decode_value(value)
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            "cannot rebuild %s from wire payload: %s" % (name, exc)
        ) from None


def encode_job(job: Any) -> Dict[str, Any]:
    """Job spec -> wire dict: opaque spec plus the broker's routing keys."""
    getter = getattr(job, "group_key", None)
    group = getter() if callable(getter) else "job:%s" % job.job_id
    return {
        "job_id": job.job_id,
        "group": group,
        "spec": _encode_dataclass(job),
    }


def decode_job(wire: Dict[str, Any]) -> Any:
    """Wire dict -> an ``==``-equal job spec (workers call this)."""
    if not isinstance(wire, dict):
        raise ProtocolError("wire job is not an object")
    job = _decode_dataclass(wire.get("spec"))
    job_id = wire.get("job_id")
    if job_id is not None and job.job_id != job_id:
        raise ProtocolError(
            "wire job_id %r does not match rebuilt spec %r"
            % (job_id, job.job_id)
        )
    return job


# ------------------------------------------------------------------ reports
#: headroom reserved for the result frame's envelope around the report
#: (type / tag / job_id) when deciding whether certificates must degrade
_FRAME_MARGIN = 64 * 1024


def _wire_bytes(wire: Dict[str, Any]) -> int:
    try:
        return len(
            json.dumps(wire, sort_keys=True, separators=(",", ":"))
        ) + 1
    except (TypeError, ValueError) as exc:
        raise ProtocolError("unencodable report: %s" % exc) from None


def _fit_certificates(wire: Dict[str, Any], limit: int) -> None:
    """Degrade certificate payloads until the report fits under ``limit``.

    A verdict whose proof log outgrew the frame cap must not kill the
    connection -- the report degrades to digest-only bundles (largest
    payload first; the digest still pins the checked bytes) and only the
    proof *transport* is lost, never the verdict or its check status.
    Result dicts are copied before stripping so the worker's in-memory
    CheckResults keep their full bundles.
    """
    from ..cert import canonical_payload_bytes, strip_payload

    if _wire_bytes(wire) <= limit:
        return
    results = wire.get("results") or []
    sized = []
    for index, result in enumerate(results):
        cert = result.get("certificate") if isinstance(result, dict) else None
        if isinstance(cert, dict) and cert.get("payload") is not None:
            sized.append((len(canonical_payload_bytes(cert["payload"])), index))
    for _size, index in sorted(sized, reverse=True):
        stripped = dict(results[index])
        stripped["certificate"] = strip_payload(stripped["certificate"])
        results[index] = stripped
        if _wire_bytes(wire) <= limit:
            return


def report_to_wire(report, job) -> Dict[str, Any]:
    """WorkerReport -> JSON-safe dict (worker side).

    The value payload uses the job's own codec -- the same one the proof
    cache stores -- and CheckResults their to_dict form, so the client
    rebuilds exactly what a local worker would have handed back.  Reports
    whose certificate payloads would overflow the frame cap degrade those
    bundles to digest-only (see :func:`_fit_certificates`).
    """
    payload = None
    if report.error is None:
        encode = getattr(job, "encode_value", None)
        payload = encode(report.value) if encode else report.value
    wire = {
        "job_id": report.job_id,
        "error": report.error,
        "quarantined": bool(report.quarantined),
        "payload": payload,
        "results": [r.to_dict() for r in report.results],
        "attempts": [dataclasses.asdict(a) for a in report.attempts],
        "spans": [[kind, fields] for kind, fields in report.spans],
        "node": getattr(report, "node_id", None),
    }
    cert_failures = int(getattr(report, "cert_failures", 0) or 0)
    cert_degraded = bool(getattr(report, "cert_degraded", False))
    cert_divergences = list(getattr(report, "cert_divergences", ()) or ())
    cert_uncaught = int(getattr(report, "cert_uncaught", 0) or 0)
    if cert_failures or cert_degraded or cert_divergences or cert_uncaught:
        wire["cert_failures"] = cert_failures
        wire["cert_degraded"] = cert_degraded
        wire["cert_divergences"] = cert_divergences
        wire["cert_uncaught"] = cert_uncaught
    _fit_certificates(wire, MAX_FRAME_BYTES - _FRAME_MARGIN)
    return wire


def _spot_check_certificates(results) -> int:
    """Verify arrived certificate digests; demote corrupted ones to failed.

    Broker-received reports are spot-checkable on arrival: the digest in
    every bundle pins the payload bytes that were checked worker-side, so
    a bundle corrupted in flight (or by a hostile peer) is detectable
    without re-running the proof.  A mismatch marks that certificate
    failed rather than raising -- the verdict still folds, and the
    client's manifest accounting surfaces the failure.
    """
    from ..cert import verify_certificate_digest

    demoted = 0
    for result in results:
        cert = getattr(result, "certificate", None)
        if isinstance(cert, dict) and not verify_certificate_digest(cert):
            result.certificate = dict(
                cert,
                status="failed",
                verified=False,
                detail="wire digest mismatch",
            )
            demoted += 1
    return demoted


def report_from_wire(wire: Dict[str, Any], job) -> Any:
    """JSON dict -> WorkerReport with decoded value/results (client side)."""
    from ..engine.scheduler import AttemptRecord, WorkerReport
    from ..mc.outcomes import CheckResult

    if not isinstance(wire, dict):
        raise ProtocolError("wire report is not an object")
    error = wire.get("error")
    value = None
    if error is None:
        decode = getattr(job, "decode_value", None)
        payload = wire.get("payload")
        value = decode(payload) if decode is not None else payload
    try:
        results = [CheckResult.from_dict(d) for d in wire.get("results") or []]
        attempts = [
            AttemptRecord(**record) for record in wire.get("attempts") or []
        ]
        spans: List[Tuple[str, Dict[str, Any]]] = [
            (kind, fields) for kind, fields in wire.get("spans") or []
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("malformed wire report: %s" % exc) from None
    node = wire.get("node")
    demoted = _spot_check_certificates(results)
    return WorkerReport(
        job_id=wire.get("job_id") or job.job_id,
        value=value,
        results=results,
        attempts=attempts,
        error=error,
        quarantined=bool(wire.get("quarantined")),
        spans=spans,
        node_id=node if isinstance(node, str) else None,
        # cert accounting travels only when nonzero; reports from pre-cert
        # workers decode with the zero defaults.  An arrival-time digest
        # mismatch counts as a failure the worker could not have degraded
        # (it happened after the solve), hence uncaught.
        cert_failures=int(wire.get("cert_failures") or 0) + demoted,
        cert_degraded=bool(wire.get("cert_degraded")),
        cert_divergences=list(wire.get("cert_divergences") or []),
        cert_uncaught=int(wire.get("cert_uncaught") or 0) + demoted,
    )


def worker_options(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """The scheduler's worker kwargs, restricted to the wire-safe subset.

    Fault plans are deliberately not shipped: chaos injection is armed on
    the node that should suffer it (``repro worker --fault-plan``), not
    dictated by a remote client.

    The filter also runs worker-side on received run options, so keys
    that ride in the options dict but are not scheduler kwargs (the
    ``trace`` context a tracing client attaches) are dropped here
    instead of leaking into ``_run_job_with_retries``.
    """
    allowed = (
        "max_attempts",
        "timeout_seconds",
        "escalation_factor",
        "collect_spans",
        "max_rss_mb",
    )
    return {key: kwargs[key] for key in allowed if key in kwargs}


_builtin_job_types()

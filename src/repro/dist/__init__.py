"""repro.dist: sharded multi-node campaign runner.

Distributes the engine's verification jobs across worker nodes through a
central broker, with a shared proof cache and streaming verdicts:

* :mod:`repro.dist.protocol` -- JSON-lines framing plus exact job /
  report round-trips (tuples survive, rebuilt specs hash identically);
* :mod:`repro.dist.broker` -- the asyncio broker: priority queues,
  group-sticky sharding, backpressure (park / shed), node quarantine,
  and the shared proof-cache backend (read-through / write-behind);
* :mod:`repro.dist.worker` -- the worker node daemon wrapping the
  scheduler's worker loop in a process pool (or inline threads for
  tests), with heartbeats and graceful drain;
* :mod:`repro.dist.client` -- async + sync client APIs and the
  broker-backed :class:`~repro.dist.client.RemoteProofCache`;
* :mod:`repro.dist.top` -- the `repro top` live fleet dashboard
  (per-node throughput, cache hit rate, ETA, slowest inflight,
  quarantine events) over the broker's ``fleet`` frame;
* :mod:`repro.dist.scheduler` -- :class:`DistScheduler`, a
  :class:`~repro.engine.scheduler.JobScheduler` whose dispatch goes
  through a broker.  Everything else -- cache replay, checkpoint /
  resume, stats folding, manifest accounting, span re-rooting -- is
  inherited unchanged, which is what makes distributed runs
  byte-identical to ``--jobs N``.

The serial and single-process pool paths are untouched; they remain the
parity reference the distributed path is tested against.
"""

from .broker import Broker, BrokerConfig
from .client import (
    AsyncBrokerClient,
    BrokerClient,
    BrokerShed,
    DistError,
    RemoteProofCache,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    decode_job,
    encode_frame,
    encode_job,
    register_job_type,
    report_from_wire,
    report_to_wire,
)
from .scheduler import CacheOnlyScheduler, DistScheduler, parse_broker_address
from .top import derive, fetch_fleet, render_fleet, run_top
from .worker import WorkerNode, run_worker

__all__ = [
    "Broker",
    "BrokerConfig",
    "derive",
    "fetch_fleet",
    "render_fleet",
    "run_top",
    "AsyncBrokerClient",
    "BrokerClient",
    "BrokerShed",
    "DistError",
    "RemoteProofCache",
    "DistScheduler",
    "CacheOnlyScheduler",
    "parse_broker_address",
    "WorkerNode",
    "run_worker",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "encode_job",
    "decode_job",
    "report_to_wire",
    "report_from_wire",
    "register_job_type",
]

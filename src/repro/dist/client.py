"""Client-side APIs: async streaming, a sync facade, and the remote cache.

:class:`AsyncBrokerClient` is the native surface: connect, submit a
batch of wire-encoded jobs, and consume verdicts as an async stream in
completion order.  Backpressure is handled inside the stream -- a
*parked* response sleeps ``retry_after`` and resubmits, a *shed*
response raises :class:`BrokerShed` (the campaign was refused, nothing
was enqueued).

:class:`BrokerClient` wraps it for synchronous callers (the
:class:`~repro.dist.scheduler.DistScheduler` runs inside the ordinary
blocking engine): it owns a private event loop and steps the async
generator one verdict at a time.

:class:`RemoteProofCache` duck-types the on-disk
:class:`~repro.engine.cache.ProofCache` against the broker's shared
backend.  Reads are validating read-throughs -- the client re-verifies
format version, per-entry SHA-256 checksum, and finality on every entry
it receives, so a corrupt byte anywhere between broker disk and this
process degrades to a miss, never a wrong verdict.  Writes are
fire-and-forget into the broker's write-behind queue; they carry the
same checksummed format-v2 entry a local put would write, which is why
a cache populated over the network is byte-compatible with one written
locally.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, AsyncIterator, Dict, Iterator, List, Optional, Tuple

from ..engine.cache import CACHE_FORMAT_VERSION, entry_checksum
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "DistError",
    "BrokerShed",
    "AsyncBrokerClient",
    "BrokerClient",
    "RemoteProofCache",
]


class DistError(RuntimeError):
    """A distributed-run failure outside the job protocol (connection
    loss, broker shutdown, protocol violation)."""


class BrokerShed(DistError):
    """The broker refused the submit outright (queue over ``max_queue``)."""


class AsyncBrokerClient:
    """One broker connection; submit once, stream verdicts, cache ops."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.welcome: Dict[str, Any] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def cache_enabled(self) -> bool:
        return bool(self.welcome.get("cache"))

    async def connect(self) -> Dict[str, Any]:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_FRAME_BYTES
        )
        await self._write(
            {"type": "hello", "role": "client", "version": PROTOCOL_VERSION}
        )
        welcome = await self._read()
        if welcome.get("type") != "welcome":
            raise DistError("broker refused connection: %r" % (welcome,))
        self.welcome = welcome
        return welcome

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.write(encode_frame({"type": "goodbye"}))
                await self._writer.drain()
            except (ConnectionError, ProtocolError, RuntimeError):
                pass
            self._writer.close()
            self._writer = None
        self._reader = None

    # ------------------------------------------------------------------- I/O
    async def _write(self, message: Dict[str, Any]) -> None:
        if self._writer is None:
            raise DistError("client is not connected")
        try:
            self._writer.write(encode_frame(message))
            await self._writer.drain()
        except ConnectionError as exc:
            raise DistError("broker connection lost: %s" % exc) from None

    async def _read(self) -> Dict[str, Any]:
        if self._reader is None:
            raise DistError("client is not connected")
        try:
            line = await self._reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise ProtocolError("frame exceeds the size limit") from None
        except ConnectionError as exc:
            raise DistError("broker connection lost: %s" % exc) from None
        if not line:
            raise DistError("broker closed the connection")
        frame = decode_frame(line)
        if frame["type"] == "error":
            raise DistError("broker error: %s" % frame.get("error"))
        if frame["type"] == "stopping":
            raise DistError("broker is stopping")
        return frame

    async def _request(self, message, expect: str) -> Dict[str, Any]:
        await self._write(message)
        frame = await self._read()
        if frame["type"] != expect:
            raise DistError(
                "expected %r from broker, got %r" % (expect, frame["type"])
            )
        return frame

    # ---------------------------------------------------------------- submit
    async def submit_stream(
        self,
        jobs: List[Dict[str, Any]],
        options: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        park_timeout: float = 60.0,
    ) -> AsyncIterator[Tuple[str, Dict[str, Any]]]:
        """Submit ``jobs`` (wire dicts from :func:`~repro.dist.protocol.
        encode_job`) and yield ``(job_id, wire_report)`` as verdicts
        arrive.  Parked submits retry until ``park_timeout`` elapses;
        shed submits raise :class:`BrokerShed`."""
        submit = {
            "type": "submit",
            "jobs": jobs,
            "options": options or {},
            "priority": priority,
        }
        deadline = time.monotonic() + park_timeout
        # submit/park loop (parked is a valid reply, not an error)
        while True:
            await self._write(submit)
            reply = await self._read()
            kind = reply["type"]
            if kind == "accepted":
                break
            if kind == "parked":
                if time.monotonic() >= deadline:
                    raise BrokerShed(
                        "submit parked past the %gs park timeout" % park_timeout
                    )
                await asyncio.sleep(float(reply.get("retry_after") or 0.05))
                continue
            if kind == "shed":
                raise BrokerShed(str(reply.get("error") or "submit shed"))
            raise DistError("unexpected %r reply to submit" % kind)
        outstanding = {wire["job_id"] for wire in jobs}
        while outstanding:
            frame = await self._read()
            if frame["type"] != "verdict":
                raise DistError(
                    "expected a verdict frame, got %r" % frame["type"]
                )
            job_id = frame.get("job_id")
            if job_id not in outstanding:
                continue  # duplicate delivery; first one won
            outstanding.discard(job_id)
            yield job_id, frame.get("report") or {}

    # ----------------------------------------------------------------- cache
    async def cache_get(self, key: str) -> Optional[Dict[str, Any]]:
        frame = await self._request(
            {"type": "cache_get", "key": key}, expect="cache_entry"
        )
        entry = frame.get("entry")
        return entry if isinstance(entry, dict) else None

    async def cache_put(self, entry: Dict[str, Any]) -> None:
        """Fire-and-forget write-behind put (no response frame, so it is
        safe to call while a verdict stream is active)."""
        await self._write({"type": "cache_put", "entry": entry})

    async def cache_stats(self) -> Dict[str, Any]:
        return await self._request({"type": "cache_stats"}, expect="cache_stats")

    async def stats(self) -> Dict[str, Any]:
        frame = await self._request({"type": "stats"}, expect="stats")
        return frame.get("stats") or {}

    async def fleet(self) -> Dict[str, Any]:
        """One fleet-observability sample: routing stats, per-node metric
        pushes, slowest inflight jobs, recent events (`repro top` polls
        this)."""
        frame = await self._request({"type": "fleet"}, expect="fleet")
        return frame.get("fleet") or {}


class BrokerClient:
    """Synchronous facade over :class:`AsyncBrokerClient` for blocking
    callers; owns a private event loop and steps the verdict stream one
    item per ``run_until_complete``."""

    def __init__(self, host: str, port: int):
        self._loop = asyncio.new_event_loop()
        self._async = AsyncBrokerClient(host, port)
        self.welcome: Dict[str, Any] = {}

    @property
    def cache_enabled(self) -> bool:
        return self._async.cache_enabled

    def connect(self) -> Dict[str, Any]:
        self.welcome = self._loop.run_until_complete(self._async.connect())
        return self.welcome

    def close(self) -> None:
        if not self._loop.is_closed():
            self._loop.run_until_complete(self._async.close())
            self._loop.close()

    def submit_iter(
        self,
        jobs: List[Dict[str, Any]],
        options: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        park_timeout: float = 60.0,
    ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        agen = self._async.submit_stream(
            jobs, options=options, priority=priority, park_timeout=park_timeout
        )
        while True:
            try:
                yield self._loop.run_until_complete(agen.__anext__())
            except StopAsyncIteration:
                return

    def cache_get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._loop.run_until_complete(self._async.cache_get(key))

    def cache_put(self, entry: Dict[str, Any]) -> None:
        self._loop.run_until_complete(self._async.cache_put(entry))

    def cache_stats(self) -> Dict[str, Any]:
        return self._loop.run_until_complete(self._async.cache_stats())

    def stats(self) -> Dict[str, Any]:
        return self._loop.run_until_complete(self._async.stats())

    def fleet(self) -> Dict[str, Any]:
        return self._loop.run_until_complete(self._async.fleet())

    def __enter__(self):
        self.connect()
        return self

    def __exit__(self, *exc_info):
        self.close()


class RemoteProofCache:
    """The broker's shared proof cache, duck-typed as a local
    :class:`~repro.engine.cache.ProofCache` for the scheduler."""

    def __init__(self, client: BrokerClient):
        self._client = client
        #: entries this client rejected on read (checksum / format); the
        #: scheduler folds this into ``manifest.cache_quarantined``
        self.quarantined_session = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._client.cache_get(key)
        if entry is None:
            return None
        if entry.get("format") != CACHE_FORMAT_VERSION:
            return None
        if entry.get("checksum") != entry_checksum(entry):
            # damaged in flight or at rest past the broker's own checks;
            # treat as a miss and recompute (never trust a bad checksum)
            self.quarantined_session += 1
            return None
        if not entry.get("final"):
            return None
        return entry

    def put(
        self,
        key: str,
        job_id: str,
        payload: Any,
        results: list,
        final: bool = True,
        node_id: Optional[str] = None,
    ) -> bool:
        if not final:
            return False
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "job_id": job_id,
            "created": time.time(),
            "final": True,
            "payload": payload,
            "results": results,
        }
        if node_id:
            entry["node"] = node_id
        # checksum last: it must cover the node attribution too
        entry["checksum"] = entry_checksum(entry)
        self._client.cache_put(entry)
        return True

    def stats(self) -> Dict[str, Any]:
        return self._client.cache_stats()

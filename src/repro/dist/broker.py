"""The campaign broker: priority queues, group-sticky sharding,
backpressure, node quarantine, and the shared proof-cache backend.

One asyncio process owns three responsibilities:

* **Job routing.**  Clients submit batches of wire-encoded jobs with a
  priority; the broker queues them (higher priority first, FIFO within
  a priority) and dispatches to registered worker nodes.  Jobs sharing
  a ``group`` (same design) are *sticky-sharded*: the first dispatch of
  a group picks the least-loaded node and every later job of that group
  follows it, so one node drains a design group against its warm
  memoized builders and incremental induction pool -- the distributed
  analogue of the scheduler's same-design batching.  The broker never
  decodes job specs; it routes on ``{job_id, group, priority}`` alone.

* **Backpressure.**  Each node's in-flight job count is bounded by
  ``slots * pipeline_depth``; jobs beyond that stay queued.  A submit
  arriving while the queue is at or above ``high_water`` is *parked*
  (the client sleeps ``retry_after`` and retries); one that would push
  the queue past ``max_queue`` is *shed* (the client gets an error).
  Nothing is ever silently dropped.

* **Fault policy at node granularity.**  A node that dies with work in
  flight (connection lost, or a ``batch_failed`` report) poisons both
  the node and every implicated job.  Jobs are re-sharded onto healthy
  nodes until their own poison count reaches ``job_poison_limit``, at
  which point the client receives a quarantined failure report -- the
  same graceful degradation the in-process scheduler applies.  A node
  implicated ``node_poison_limit`` times is quarantined: it may stay
  connected, but no further work is dispatched to it (tracked by
  ``node_id``, so a crash-looping daemon cannot reconnect its way back
  into the rotation).

The proof-cache backend wraps the on-disk :class:`ProofCache`
(format v2, per-entry SHA-256 checksums) behind two operations:
``cache_get`` is read-through (served inline, corrupt entries
quarantined exactly as locally), and ``cache_put`` is write-behind --
the entry is acknowledged into an in-memory queue and persisted by a
background task, with the checksum re-verified before the atomic
temp-file + rename write.  Graceful shutdown drains worker in-flight,
then flushes the write-behind queue, so a broker restart loses nothing
that was acknowledged.
"""

from __future__ import annotations

import asyncio
import heapq
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..engine.cache import CACHE_FORMAT_VERSION, ProofCache, entry_checksum
from ..obs.fleet import FleetRegistry
from ..obs.metrics import REGISTRY
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = ["BrokerConfig", "Broker"]

_JOBS = REGISTRY.counter(
    "repro_dist_jobs_total", "broker job transitions, by disposition"
)
_SUBMITS = REGISTRY.counter(
    "repro_dist_submits_total", "client submit batches, by disposition"
)
_NODES = REGISTRY.counter(
    "repro_dist_nodes_total", "worker node lifecycle events"
)
_CACHE_REQS = REGISTRY.counter(
    "repro_dist_cache_requests_total", "shared-cache operations, by op"
)
_BAD_FRAMES = REGISTRY.counter(
    "repro_dist_frames_rejected_total", "protocol errors dropped by the broker"
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_dist_queue_depth", "jobs currently queued at the broker"
)
_QUEUE_DEPTH_PRIO = REGISTRY.gauge(
    "repro_dist_queue_depth_priority",
    "jobs currently queued at the broker, by priority",
)
_INFLIGHT = REGISTRY.gauge(
    "repro_dist_inflight", "jobs in flight, by worker node"
)
_QUARANTINE_SIZE = REGISTRY.gauge(
    "repro_dist_quarantine_size", "node ids currently quarantined"
)
_WB_BACKLOG = REGISTRY.gauge(
    "repro_dist_write_behind_backlog",
    "cache puts acknowledged but not yet persisted",
)


@dataclass
class BrokerConfig:
    """Broker knobs (the ``repro broker`` CLI maps here)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 -> ephemeral; Broker.port holds the bound port
    cache_dir: Optional[str] = None  # enables the shared proof cache
    max_queue: int = 100000  # submits that would exceed this are shed
    high_water: int = 80000  # submits at/above this are parked
    pipeline_depth: int = 2  # per-node inflight bound = slots * this
    retry_after: float = 0.05  # parked clients sleep this long
    heartbeat_seconds: float = 5.0
    heartbeat_misses: int = 3  # silence budget before eviction
    node_poison_limit: int = 2  # crashes before a node is quarantined
    job_poison_limit: int = 2  # implications before a job is quarantined
    drain_timeout: float = 30.0  # graceful-stop wait for inflight


@dataclass
class _JobEntry:
    seq: int
    priority: int
    client_id: str
    job_id: str
    group: str
    wire: Dict[str, Any]
    options: Dict[str, Any]
    poison: int = 0
    dispatched_at: float = 0.0  # monotonic; 0 while queued


@dataclass
class _Node:
    node_id: str
    writer: asyncio.StreamWriter
    slots: int = 1
    inflight: Dict[str, _JobEntry] = field(default_factory=dict)
    quarantined: bool = False
    draining: bool = False
    last_seen: float = 0.0
    dispatched: int = 0
    completed: int = 0
    max_inflight_observed: int = 0


@dataclass
class _Client:
    client_id: str
    writer: asyncio.StreamWriter


class Broker:
    """The asyncio campaign broker; see module docs for the policies."""

    def __init__(self, config: Optional[BrokerConfig] = None):
        self.config = config or BrokerConfig()
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._nodes: Dict[str, _Node] = {}
        self._clients: Dict[str, _Client] = {}
        self._queue: List[Tuple[int, int, _JobEntry]] = []
        self._shards: Dict[str, str] = {}  # group -> node_id (sticky)
        self._node_poison: Dict[str, int] = {}  # by node_id, survives reconnect
        self._seq = 0
        self._client_seq = 0
        self._node_seq = 0
        self._stopping = False
        self._tasks: List[asyncio.Task] = []
        self._conn_tasks: set = set()
        self._cache = (
            ProofCache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self._wb_queue: Optional[asyncio.Queue] = None
        # fleet observability: per-node metric pushes, a recent-events
        # ring for the dashboard, and per-priority queue depth counters
        self.fleet = FleetRegistry(local=REGISTRY)
        self.events: deque = deque(maxlen=64)
        self.started_at: Optional[float] = None
        self._started_mono: Optional[float] = None
        self._queued_by_priority: Dict[int, int] = {}
        # counters surfaced by the `stats` frame (and asserted by tests)
        self.stats_counts: Dict[str, int] = {
            "submitted": 0,
            "dispatched": 0,
            "completed": 0,
            "requeued": 0,
            "quarantined_jobs": 0,
            "quarantined_nodes": 0,
            "parked": 0,
            "shed": 0,
            "dropped_verdicts": 0,  # client vanished before its verdict
            "cache_gets": 0,
            "cache_hits": 0,
            "cache_puts": 0,
            "cache_puts_rejected": 0,
            "max_inflight_observed": 0,
        }

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        cfg = self.config
        self._server = await asyncio.start_server(
            self._handle, cfg.host, cfg.port, limit=MAX_FRAME_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self._tasks.append(asyncio.ensure_future(self._sweep_heartbeats()))
        if self._cache is not None:
            self._wb_queue = asyncio.Queue()
            self._tasks.append(asyncio.ensure_future(self._write_behind()))

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain worker inflight, flush write-behind,
        then close every connection and the listening socket."""
        self._stopping = True
        for node in list(self._nodes.values()):
            self._send(node.writer, {"type": "drain"})
        if drain:
            # wait for worker inflight AND for attached clients to wind
            # down -- a client that already closed its socket still has
            # buffered frames (final write-behind puts among them) that
            # its read loop must enqueue before the flush below
            deadline = time.monotonic() + self.config.drain_timeout
            while time.monotonic() < deadline and (
                self._clients
                or any(node.inflight for node in self._nodes.values())
            ):
                await asyncio.sleep(0.02)
        if self._wb_queue is not None:
            await self._wb_queue.join()
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        for client in list(self._clients.values()):
            self._send(client.writer, {"type": "stopping"})
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for peer in list(self._nodes.values()) + list(self._clients.values()):
            try:
                peer.writer.close()
            except Exception:
                pass
        if self._conn_tasks:
            # closed transports pop every read loop out with EOF; reap
            # the handler tasks so the loop shuts down quietly
            await asyncio.wait(list(self._conn_tasks), timeout=5)

    # ------------------------------------------------------------------- I/O
    @staticmethod
    def _send(writer: asyncio.StreamWriter, message: Dict[str, Any]) -> None:
        try:
            writer.write(encode_frame(message))
        except (ProtocolError, ConnectionError, RuntimeError):
            pass  # the read loop notices the dead peer and cleans up

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader):
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise ProtocolError("frame exceeds the size limit") from None
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not line:
            return None
        return decode_frame(line)

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            hello = await self._read_frame(reader)
            if hello is None:
                return
            if hello["type"] != "hello":
                raise ProtocolError("expected hello, got %r" % hello["type"])
            if hello.get("version") != PROTOCOL_VERSION:
                raise ProtocolError(
                    "protocol version mismatch: broker speaks %d, peer %r"
                    % (PROTOCOL_VERSION, hello.get("version"))
                )
            role = hello.get("role")
            if role == "worker":
                await self._serve_worker(hello, reader, writer)
            elif role == "client":
                await self._serve_client(hello, reader, writer)
            else:
                raise ProtocolError("unknown role %r" % role)
        except ProtocolError as exc:
            _BAD_FRAMES.inc()
            self._send(writer, {"type": "error", "error": str(exc)})
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # -------------------------------------------------------- fleet telemetry
    def _note_event(self, kind: str, **fields) -> None:
        """Append to the bounded recent-events ring `repro top` renders."""
        event = {"ts": time.time(), "event": kind}
        event.update(fields)
        self.events.append(event)

    def _queue_push(self, entry: _JobEntry) -> None:
        entry.dispatched_at = 0.0
        heapq.heappush(self._queue, (-entry.priority, entry.seq, entry))
        count = self._queued_by_priority.get(entry.priority, 0) + 1
        self._queued_by_priority[entry.priority] = count
        _QUEUE_DEPTH.set(len(self._queue))
        _QUEUE_DEPTH_PRIO.set(count, priority=str(entry.priority))

    def _queue_pop(self) -> Tuple[int, int, _JobEntry]:
        item = heapq.heappop(self._queue)
        entry = item[2]
        count = max(0, self._queued_by_priority.get(entry.priority, 0) - 1)
        self._queued_by_priority[entry.priority] = count
        _QUEUE_DEPTH.set(len(self._queue))
        _QUEUE_DEPTH_PRIO.set(count, priority=str(entry.priority))
        return item

    def _update_quarantine_gauge(self) -> None:
        limit = self.config.node_poison_limit
        _QUARANTINE_SIZE.set(
            sum(1 for c in self._node_poison.values() if c >= limit)
        )

    # ---------------------------------------------------------------- workers
    async def _serve_worker(self, hello, reader, writer) -> None:
        self._node_seq += 1
        node_id = str(hello.get("node") or "node-%d" % self._node_seq)
        node = _Node(
            node_id=node_id,
            writer=writer,
            slots=max(1, int(hello.get("slots") or 1)),
            last_seen=time.monotonic(),
        )
        node.quarantined = (
            self._node_poison.get(node_id, 0) >= self.config.node_poison_limit
        )
        self._nodes[node_id] = node
        _NODES.inc(event="joined")
        self._note_event("node_joined", node=node_id, slots=node.slots,
                         quarantined=node.quarantined)
        self._send(
            writer,
            {
                "type": "welcome",
                "version": PROTOCOL_VERSION,
                "node": node_id,
                "quarantined": node.quarantined,
            },
        )
        self._pump()
        try:
            while True:
                frame = await self._read_frame(reader)
                if frame is None:
                    break
                node.last_seen = time.monotonic()
                kind = frame["type"]
                if kind == "heartbeat":
                    continue
                if kind == "result":
                    self._on_result(node, frame)
                elif kind == "metrics":
                    self._on_metrics(node, frame)
                elif kind == "batch_failed":
                    self._on_batch_failed(node, frame)
                elif kind == "draining":
                    node.draining = True
                    self._note_event("node_draining", node=node_id)
                    self._reshard_away(node_id)
                elif kind == "goodbye":
                    break
                else:
                    raise ProtocolError(
                        "unexpected %r frame from worker" % kind
                    )
        finally:
            if self._nodes.get(node_id) is node:
                del self._nodes[node_id]
            _NODES.inc(event="left")
            self._note_event(
                "node_left", node=node_id, inflight_lost=len(node.inflight)
            )
            self._node_lost(node)
            _INFLIGHT.set(0, node=node_id)
            self._pump()

    def _on_metrics(self, node: _Node, frame) -> None:
        """Fold one worker metrics push into the fleet registry.

        Replace-on-update (last snapshot wins), so duplicated pushes and
        reconnects under the same node_id never double-count."""
        snapshot = frame.get("snapshot")
        if not isinstance(snapshot, dict):
            raise ProtocolError("metrics frame carries no snapshot object")
        self.fleet.update(node.node_id, snapshot, frame.get("process"))

    def _node_lost(self, node: _Node) -> None:
        """A node vanished: requeue or quarantine its in-flight jobs and
        poison the node if it still owed work (a graceful drain owes none)."""
        self._reshard_away(node.node_id)
        if not node.inflight:
            return
        count = self._node_poison[node.node_id] = (
            self._node_poison.get(node.node_id, 0) + 1
        )
        if count == self.config.node_poison_limit:
            self.stats_counts["quarantined_nodes"] += 1
            _NODES.inc(event="quarantined")
            self._note_event("node_quarantined", node=node.node_id)
        self._update_quarantine_gauge()
        for entry in node.inflight.values():
            self._implicate(entry)
        node.inflight.clear()

    def _reshard_away(self, node_id: str) -> None:
        for group in [g for g, n in self._shards.items() if n == node_id]:
            del self._shards[group]

    def _implicate(self, entry: _JobEntry) -> None:
        """One job lost to a node failure: requeue it for a healthy node,
        or give up with a quarantined report once it exceeds its budget."""
        entry.poison += 1
        if entry.poison >= self.config.job_poison_limit:
            self.stats_counts["quarantined_jobs"] += 1
            _JOBS.inc(disposition="quarantined")
            self._note_event(
                "job_quarantined", job_id=entry.job_id, poison=entry.poison
            )
            self._deliver(
                entry,
                {
                    "job_id": entry.job_id,
                    "error": "quarantined: job implicated in %d node failure(s)"
                    % entry.poison,
                    "quarantined": True,
                    "payload": None,
                    "results": [],
                    "attempts": [],
                    "spans": [],
                },
            )
            return
        self.stats_counts["requeued"] += 1
        _JOBS.inc(disposition="requeued")
        self._queue_push(entry)

    def _on_result(self, node: _Node, frame) -> None:
        tag = frame.get("tag")
        entry = node.inflight.pop(tag, None)
        if entry is None:
            return  # late result for a job the broker already requeued
        report = frame.get("report")
        if not isinstance(report, dict):
            raise ProtocolError("result frame carries no report object")
        node.completed += 1
        self.stats_counts["completed"] += 1
        _JOBS.inc(disposition="completed")
        _INFLIGHT.set(len(node.inflight), node=node.node_id)
        self._deliver(entry, report)
        self._pump()

    def _on_batch_failed(self, node: _Node, frame) -> None:
        tags = frame.get("tags")
        if not isinstance(tags, list):
            raise ProtocolError("batch_failed frame carries no tags list")
        implicated = [
            node.inflight.pop(tag) for tag in tags if tag in node.inflight
        ]
        if not implicated:
            return
        count = self._node_poison[node.node_id] = (
            self._node_poison.get(node.node_id, 0) + 1
        )
        if count >= self.config.node_poison_limit and not node.quarantined:
            node.quarantined = True
            self.stats_counts["quarantined_nodes"] += 1
            _NODES.inc(event="quarantined")
            self._note_event("node_quarantined", node=node.node_id)
            self._reshard_away(node.node_id)
        self._update_quarantine_gauge()
        _INFLIGHT.set(len(node.inflight), node=node.node_id)
        for entry in implicated:
            self._implicate(entry)
        self._pump()

    def _deliver(self, entry: _JobEntry, report: Dict[str, Any]) -> None:
        client = self._clients.get(entry.client_id)
        if client is None:
            self.stats_counts["dropped_verdicts"] += 1
            return
        self._send(
            client.writer,
            {"type": "verdict", "job_id": entry.job_id, "report": report},
        )

    async def _sweep_heartbeats(self) -> None:
        cfg = self.config
        while True:
            await asyncio.sleep(cfg.heartbeat_seconds)
            cutoff = time.monotonic() - cfg.heartbeat_seconds * cfg.heartbeat_misses
            for node in list(self._nodes.values()):
                if node.last_seen < cutoff:
                    _NODES.inc(event="evicted")
                    self._note_event("node_evicted", node=node.node_id)
                    # closing the transport pops the node out of its read
                    # loop, which runs the shared _node_lost cleanup
                    node.writer.close()

    # ---------------------------------------------------------------- clients
    async def _serve_client(self, hello, reader, writer) -> None:
        self._client_seq += 1
        client = _Client(client_id="c%d" % self._client_seq, writer=writer)
        self._clients[client.client_id] = client
        self._send(
            writer,
            {
                "type": "welcome",
                "version": PROTOCOL_VERSION,
                "client": client.client_id,
                "cache": self._cache is not None,
            },
        )
        try:
            while True:
                frame = await self._read_frame(reader)
                if frame is None:
                    break
                kind = frame["type"]
                if kind == "submit":
                    self._on_submit(client, frame)
                elif kind == "cache_get":
                    self._on_cache_get(client, frame)
                elif kind == "cache_put":
                    self._on_cache_put(frame)
                elif kind == "cache_stats":
                    self._on_cache_stats(client)
                elif kind == "stats":
                    self._send(
                        writer, {"type": "stats", "stats": self.stats_dict()}
                    )
                elif kind == "fleet":
                    self._send(
                        writer, {"type": "fleet", "fleet": self.fleet_dict()}
                    )
                elif kind == "goodbye":
                    break
                else:
                    raise ProtocolError(
                        "unexpected %r frame from client" % kind
                    )
        finally:
            self._clients.pop(client.client_id, None)

    def _on_submit(self, client: _Client, frame) -> None:
        cfg = self.config
        jobs = frame.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise ProtocolError("submit frame carries no jobs list")
        options = frame.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("submit options must be an object")
        try:
            priority = int(frame.get("priority") or 0)
        except (TypeError, ValueError):
            raise ProtocolError("submit priority must be an integer") from None
        if self._stopping:
            self._send(
                client.writer, {"type": "shed", "error": "broker is stopping"}
            )
            return
        if len(self._queue) >= cfg.high_water:
            self.stats_counts["parked"] += 1
            _SUBMITS.inc(disposition="parked")
            self._send(
                client.writer,
                {"type": "parked", "retry_after": cfg.retry_after},
            )
            return
        if len(self._queue) + len(jobs) > cfg.max_queue:
            self.stats_counts["shed"] += 1
            _SUBMITS.inc(disposition="shed")
            self._send(
                client.writer,
                {
                    "type": "shed",
                    "error": "queue of %d cannot absorb %d more job(s) "
                    "(max_queue=%d)" % (len(self._queue), len(jobs), cfg.max_queue),
                },
            )
            return
        entries = []
        for wire in jobs:
            if not isinstance(wire, dict) or "spec" not in wire:
                raise ProtocolError("submitted job carries no spec")
            job_id = wire.get("job_id")
            if not isinstance(job_id, str) or not job_id:
                raise ProtocolError("submitted job carries no job_id")
            group = wire.get("group")
            if not isinstance(group, str) or not group:
                group = "job:%s" % job_id
            self._seq += 1
            entries.append(
                _JobEntry(
                    seq=self._seq,
                    priority=priority,
                    client_id=client.client_id,
                    job_id=job_id,
                    group=group,
                    wire=wire,
                    options=options,
                )
            )
        for entry in entries:
            self._queue_push(entry)
        self.stats_counts["submitted"] += len(entries)
        _SUBMITS.inc(disposition="accepted")
        self._send(client.writer, {"type": "accepted", "count": len(entries)})
        self._pump()

    # --------------------------------------------------------------- dispatch
    def _node_capacity(self, node: _Node) -> int:
        return node.slots * max(1, self.config.pipeline_depth)

    def _route(self, group: str, active: List[_Node]) -> Optional[_Node]:
        """The sticky shard target for ``group`` (assigning one if new)."""
        node = self._nodes.get(self._shards.get(group, ""))
        if node is None or node.quarantined or node.draining:
            node = min(
                active,
                key=lambda n: (len(n.inflight) / n.slots, n.node_id),
            )
            self._shards[group] = node.node_id
        return node

    def _pump(self) -> None:
        """Move queued jobs onto nodes with capacity, preserving priority
        order and group stickiness; jobs whose shard node is saturated
        stay queued (affinity beats immediate dispatch)."""
        if self._stopping or not self._queue:
            _QUEUE_DEPTH.set(len(self._queue))
            return
        active = [
            n for n in self._nodes.values()
            if not n.quarantined and not n.draining
        ]
        if not active:
            return
        leftover: List[_JobEntry] = []
        batches: Dict[Tuple[str, int], List[Tuple[str, _JobEntry]]] = {}
        touched: set = set()
        now = time.monotonic()
        while self._queue:
            entry = self._queue_pop()[2]
            node = self._route(entry.group, active)
            if node is None or len(node.inflight) >= self._node_capacity(node):
                leftover.append(entry)
                continue
            tag = "t%d" % entry.seq
            entry.dispatched_at = now
            node.inflight[tag] = entry
            node.dispatched += 1
            touched.add(node.node_id)
            node.max_inflight_observed = max(
                node.max_inflight_observed, len(node.inflight)
            )
            self.stats_counts["max_inflight_observed"] = max(
                self.stats_counts["max_inflight_observed"], len(node.inflight)
            )
            self.stats_counts["dispatched"] += 1
            _JOBS.inc(disposition="dispatched")
            batches.setdefault((node.node_id, id(entry.options)), []).append(
                (tag, entry)
            )
        for entry in leftover:
            self._queue_push(entry)
        for node_id in touched:
            node = self._nodes.get(node_id)
            if node is not None:
                _INFLIGHT.set(len(node.inflight), node=node_id)
        for (node_id, _opts), pairs in batches.items():
            node = self._nodes.get(node_id)
            if node is None:
                continue
            self._send(
                node.writer,
                {
                    "type": "run",
                    "jobs": [dict(entry.wire, tag=tag) for tag, entry in pairs],
                    "options": pairs[0][1].options,
                },
            )

    # ------------------------------------------------------------------ cache
    def _on_cache_get(self, client: _Client, frame) -> None:
        key = frame.get("key")
        if not isinstance(key, str) or not key:
            raise ProtocolError("cache_get frame carries no key")
        entry = None
        if self._cache is not None:
            self.stats_counts["cache_gets"] += 1
            entry = self._cache.get(key)
            if entry is not None:
                self.stats_counts["cache_hits"] += 1
                _CACHE_REQS.inc(op="hit")
            else:
                _CACHE_REQS.inc(op="miss")
        self._send(
            client.writer, {"type": "cache_entry", "key": key, "entry": entry}
        )

    def _on_cache_put(self, frame) -> None:
        """Write-behind: acknowledge by enqueueing; a background task
        persists.  No response frame -- puts are fire-and-forget, so they
        never interleave with a client's streaming verdicts."""
        if self._cache is None or self._wb_queue is None:
            return
        entry = frame.get("entry")
        if not isinstance(entry, dict):
            raise ProtocolError("cache_put frame carries no entry object")
        self._wb_queue.put_nowait(entry)
        _WB_BACKLOG.set(self._wb_queue.qsize())

    async def _write_behind(self) -> None:
        while True:
            entry = await self._wb_queue.get()
            try:
                self._store_entry(entry)
            except Exception:
                self.stats_counts["cache_puts_rejected"] += 1
                _CACHE_REQS.inc(op="put_rejected")
            finally:
                self._wb_queue.task_done()
                _WB_BACKLOG.set(self._wb_queue.qsize())

    def _store_entry(self, entry: Dict[str, Any]) -> None:
        """Persist one client-supplied cache entry, re-verifying its
        integrity before the atomic write (a corrupt put is rejected,
        never stored)."""
        key = entry.get("key")
        if (
            not isinstance(key, str)
            or not key
            or os.sep in key
            or entry.get("format") != CACHE_FORMAT_VERSION
            or not entry.get("final")
            or entry.get("checksum") != entry_checksum(entry)
        ):
            self.stats_counts["cache_puts_rejected"] += 1
            _CACHE_REQS.inc(op="put_rejected")
            return
        import json

        path = self._cache._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats_counts["cache_puts"] += 1
        _CACHE_REQS.inc(op="put")

    def _on_cache_stats(self, client: _Client) -> None:
        stats = self._cache.stats() if self._cache is not None else None
        self._send(
            client.writer,
            {
                "type": "cache_stats",
                "stats": stats,
                "write_behind_pending": (
                    self._wb_queue.qsize() if self._wb_queue is not None else 0
                ),
            },
        )

    # ------------------------------------------------------------------ stats
    def stats_dict(self) -> Dict[str, Any]:
        return {
            "queued": len(self._queue),
            "inflight": sum(len(n.inflight) for n in self._nodes.values()),
            "nodes": {
                node.node_id: {
                    "slots": node.slots,
                    "inflight": len(node.inflight),
                    "dispatched": node.dispatched,
                    "completed": node.completed,
                    "max_inflight_observed": node.max_inflight_observed,
                    "quarantined": node.quarantined,
                    "draining": node.draining,
                }
                for node in self._nodes.values()
            },
            "shards": dict(self._shards),
            "cache": {
                "enabled": self._cache is not None,
                "dir": self.config.cache_dir,
                "write_behind_pending": (
                    self._wb_queue.qsize() if self._wb_queue is not None else 0
                ),
            },
            "counts": dict(self.stats_counts),
        }

    def fleet_dict(self) -> Dict[str, Any]:
        """Everything `repro top` renders, in one JSON-safe frame:
        routing stats, per-node metric pushes, the oldest in-flight jobs,
        and the recent-events ring."""
        now = time.monotonic()
        inflight = [
            (entry, node.node_id)
            for node in self._nodes.values()
            for entry in node.inflight.values()
            if entry.dispatched_at
        ]
        inflight.sort(key=lambda pair: pair[0].dispatched_at)
        return {
            "ts": time.time(),
            "uptime_seconds": (
                round(now - self._started_mono, 3)
                if self._started_mono is not None
                else 0.0
            ),
            "stats": self.stats_dict(),
            "metrics": self.fleet.nodes(),
            "fleet_totals": self.fleet.merged_totals(),
            "slowest_inflight": [
                {
                    "job_id": entry.job_id,
                    "group": entry.group,
                    "node": node_id,
                    "age_seconds": round(now - entry.dispatched_at, 3),
                }
                for entry, node_id in inflight[:5]
            ],
            "events": list(self.events),
        }

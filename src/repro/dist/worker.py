"""The worker node daemon: the scheduler's worker loop behind a socket.

A node connects to the broker, registers its capabilities (``slots`` --
how many jobs it executes concurrently), heartbeats, and executes the
``run`` batches the broker dispatches.  Two execution modes:

* ``process`` (the daemon default): a local ``ProcessPoolExecutor`` of
  ``slots`` workers.  Each batch -- one group chunk, thanks to the
  broker's sticky sharding -- runs as a unit through the scheduler's own
  :func:`~repro.engine.scheduler._run_job_group`, so the pool child's
  memoized design builders and shared incremental induction pool drain
  the whole batch exactly as a local ``--jobs N`` worker would, SIGALRM
  deadlines included.  A child death (OOM-kill, injected chaos) breaks
  the pool; the node reports ``batch_failed`` -- handing the poison /
  quarantine / re-shard decision to the broker -- and rebuilds its pool.

* ``inline``: jobs run on executor threads inside the daemon process.
  No process churn, so the localhost integration tests can spin up two
  nodes per test cheaply; wall-clock deadlines are disabled (SIGALRM is
  main-thread-only) and a simulated :class:`InjectedWorkerDeath` fails
  the rest of the batch just like a real child death would.

Fault plans are armed node-side (``repro worker --fault-plan``): chaos
is a property of the machine that should suffer it, never shipped over
the wire by a client.

Graceful shutdown (SIGTERM / SIGINT, or a broker ``drain`` frame): the
node tells the broker it is draining (so nothing new is dispatched and
its groups re-shard), finishes the batches it already accepted, streams
their results, and says goodbye -- the broker requeues nothing, and the
campaign's verdicts are unchanged.
"""

from __future__ import annotations

import asyncio
import functools
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Tuple

from ..engine.scheduler import (
    _run_job_group,
    _run_job_with_retries,
    current_rss_mb,
)
from ..faults import InjectedWorkerDeath
from ..obs.metrics import REGISTRY
from ..obs.tracer import TraceContext, brand_spans
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    decode_job,
    encode_frame,
    worker_options,
)

__all__ = ["WorkerNode", "run_worker"]

_BATCHES = REGISTRY.counter(
    "repro_dist_worker_batches_total", "worker node batches, by disposition"
)
# node-level accounting fed from report contents, so the numbers are
# identical in inline mode and process mode (where pool children own
# their own registries that die with them)
_NODE_JOBS = REGISTRY.counter(
    "repro_dist_node_jobs_total", "jobs executed on this worker node"
)
_NODE_PROPERTIES = REGISTRY.counter(
    "repro_dist_node_properties_total",
    "properties evaluated on this worker node",
)
_NODE_CHECK_SECONDS = REGISTRY.counter(
    "repro_dist_node_check_seconds_total",
    "checker wall-clock seconds spent on this worker node",
)
_BATCH_WAIT = REGISTRY.histogram(
    "repro_dist_node_batch_wait_seconds",
    "delay between receiving a run frame and starting its batch",
)

#: the scheduler's retry-policy defaults; broker-shipped options override
_DEFAULT_OPTIONS: Dict[str, Any] = {
    "max_attempts": 3,
    "timeout_seconds": None,
    "escalation_factor": 4,
    "collect_spans": False,
    "max_rss_mb": None,
}


class WorkerNode:
    """One worker node; ``await run()`` serves until drained or dropped."""

    def __init__(
        self,
        host: str,
        port: int,
        slots: int = 1,
        mode: str = "process",
        fault_plan=None,
        node_id: Optional[str] = None,
        heartbeat_seconds: float = 2.0,
        metrics_interval: float = 2.0,
    ):
        if mode not in ("process", "inline"):
            raise ValueError("mode must be 'process' or 'inline'")
        self.host = host
        self.port = port
        self.slots = max(1, slots)
        self.mode = mode
        self.fault_plan = fault_plan
        self.node_id = node_id or "pid-%d" % os.getpid()
        self.heartbeat_seconds = heartbeat_seconds
        self.metrics_interval = metrics_interval
        self.jobs_done = 0
        self.batches_failed = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._batches: set = set()
        self._draining = False

    # ------------------------------------------------------------------- I/O
    def _send(self, message: Dict[str, Any]) -> None:
        if self._writer is None:
            return
        try:
            self._writer.write(encode_frame(message))
        except (ProtocolError, ConnectionError, RuntimeError):
            pass

    async def _read_frame(self):
        try:
            line = await self._reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise ProtocolError("frame exceeds the size limit") from None
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not line:
            return None
        return decode_frame(line)

    # ------------------------------------------------------------------- run
    async def run(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_FRAME_BYTES
        )
        self._send(
            {
                "type": "hello",
                "role": "worker",
                "version": PROTOCOL_VERSION,
                "node": self.node_id,
                "slots": self.slots,
            }
        )
        welcome = await self._read_frame()
        if welcome is None or welcome["type"] != "welcome":
            raise ProtocolError(
                "broker refused registration: %r" % (welcome,)
            )
        if self.mode == "process":
            self._pool = ProcessPoolExecutor(max_workers=self.slots)
        heartbeat = asyncio.ensure_future(self._heartbeat())
        metrics = asyncio.ensure_future(self._metrics_loop())
        self._push_metrics()
        try:
            while True:
                frame = await self._read_frame()
                if frame is None:
                    break
                kind = frame["type"]
                if kind == "run":
                    frame["_received"] = time.monotonic()
                    task = asyncio.ensure_future(self._run_batch(frame))
                    self._batches.add(task)
                    task.add_done_callback(self._batches.discard)
                elif kind == "drain":
                    await self.drain()
                    break
                elif kind in ("error", "stopping"):
                    break
                # anything else from the broker is ignorable chatter
        finally:
            heartbeat.cancel()
            metrics.cancel()
            if self._batches:
                for task in list(self._batches):
                    task.cancel()
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            try:
                self._writer.close()
            except Exception:
                pass

    async def drain(self) -> None:
        """Graceful exit: stop accepting work, finish in-flight batches,
        stream their results, then say goodbye."""
        if self._draining:
            return
        self._draining = True
        self._send({"type": "draining"})
        while self._batches:
            await asyncio.gather(*list(self._batches), return_exceptions=True)
        self._push_metrics()
        self._send({"type": "goodbye"})

    async def _heartbeat(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_seconds)
            self._send({"type": "heartbeat"})

    # --------------------------------------------------------------- metrics
    def _push_metrics(self) -> None:
        """Ship this node's metric state to the broker's fleet registry.

        The push carries the *entire* current snapshot (not a delta), so
        the broker's replace-on-update merge stays idempotent across
        reconnects and duplicated pushes."""
        self._send(
            {
                "type": "metrics",
                "snapshot": REGISTRY.fleet_snapshot(),
                "process": {
                    "rss_mb": current_rss_mb() or 0.0,
                    "jobs_done": self.jobs_done,
                    "batches_failed": self.batches_failed,
                    "slots": self.slots,
                    "mode": self.mode,
                },
            }
        )

    async def _metrics_loop(self) -> None:
        if self.metrics_interval <= 0:
            return
        while True:
            await asyncio.sleep(self.metrics_interval)
            self._push_metrics()

    # ----------------------------------------------------------------- batch
    def _batch_kwargs(self, options: Dict[str, Any]) -> Dict[str, Any]:
        kwargs = dict(_DEFAULT_OPTIONS)
        kwargs.update(worker_options(options))
        kwargs["fault_plan"] = self.fault_plan
        return kwargs

    async def _run_batch(self, frame) -> None:
        jobs = frame.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            return
        received = frame.get("_received")
        if isinstance(received, float):
            _BATCH_WAIT.observe(max(0.0, time.monotonic() - received))
        tags = [wire.get("tag") for wire in jobs if isinstance(wire, dict)]
        try:
            decoded: List[Tuple[str, int, Any]] = []
            for index, wire in enumerate(jobs):
                if not isinstance(wire, dict):
                    raise ProtocolError("run frame job is not an object")
                seq = wire.get("seq")
                decoded.append(
                    (
                        wire.get("tag"),
                        seq if isinstance(seq, int) else index,
                        decode_job(wire),
                    )
                )
            options = frame.get("options")
            if not isinstance(options, dict):
                options = {}
            kwargs = self._batch_kwargs(options)
            trace = TraceContext.from_wire(options.get("trace"))
        except ProtocolError as exc:
            self._batch_failed(tags, "undecodable batch: %s" % exc)
            return
        if self.mode == "process":
            await self._run_batch_process(decoded, kwargs, tags, trace)
        else:
            await self._run_batch_inline(decoded, kwargs, trace)
        self._push_metrics()

    async def _run_batch_process(self, decoded, kwargs, tags, trace) -> None:
        loop = asyncio.get_event_loop()
        entries = [(seq, job) for _tag, seq, job in decoded]
        pool = self._pool
        try:
            reports = await loop.run_in_executor(
                pool, functools.partial(_run_job_group, entries, **kwargs)
            )
        except BrokenProcessPool:
            self._batch_failed(tags, "worker process died")
            if self._pool is pool and not self._draining:
                pool.shutdown(wait=False, cancel_futures=True)
                self._pool = ProcessPoolExecutor(max_workers=self.slots)
            return
        except InjectedWorkerDeath as exc:
            self._batch_failed(tags, "injected worker death: %s" % exc)
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._batch_failed(tags, "batch crashed: %s" % exc)
            return
        for (tag, _seq, job), report in zip(decoded, reports):
            self._send_result(tag, job, report, trace)
        _BATCHES.inc(disposition="completed")

    async def _run_batch_inline(self, decoded, kwargs, trace) -> None:
        """Thread-executor mode: per-job dispatch so verdicts stream as
        they finish; a simulated death fails the batch's remainder the
        way a real child death loses the whole batch."""
        loop = asyncio.get_event_loop()
        for index, (tag, seq, job) in enumerate(decoded):
            try:
                report = await loop.run_in_executor(
                    None,
                    functools.partial(
                        _run_job_with_retries, job, job_seq=seq, **kwargs
                    ),
                )
            except InjectedWorkerDeath as exc:
                self._batch_failed(
                    [t for t, _s, _j in decoded[index:]],
                    "injected worker death: %s" % exc,
                )
                return
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._batch_failed(
                    [t for t, _s, _j in decoded[index:]],
                    "batch crashed: %s" % exc,
                )
                return
            self._send_result(tag, job, report, trace)
        _BATCHES.inc(disposition="completed")

    def _send_result(self, tag, job, report, trace) -> None:
        """Brand, account, and ship one report.

        Spans are stamped with this node's identity and re-rooted under
        the campaign's carried run span *before* they hit the wire, so
        the client's merged trace attributes every span to its node and
        needs no re-rooting of its own.
        """
        from ..dist import protocol

        report.node_id = self.node_id
        if report.spans:
            brand_spans(
                report.spans,
                attrs={"node_id": self.node_id, "job_id": job.job_id},
                reparent=trace.span_id if trace is not None else None,
            )
        self.jobs_done += 1
        _NODE_JOBS.inc()
        if report.results:
            _NODE_PROPERTIES.inc(len(report.results))
            _NODE_CHECK_SECONDS.inc(
                sum(
                    max(0.0, getattr(r, "time_seconds", 0.0) or 0.0)
                    for r in report.results
                )
            )
        self._send(
            {
                "type": "result",
                "tag": tag,
                "job_id": job.job_id,
                "report": protocol.report_to_wire(report, job),
            }
        )

    def _batch_failed(self, tags, error: str) -> None:
        self.batches_failed += 1
        _BATCHES.inc(disposition="failed")
        self._send(
            {
                "type": "batch_failed",
                "tags": [t for t in tags if t is not None],
                "error": error,
            }
        )


def run_worker(
    host: str,
    port: int,
    slots: int = 1,
    mode: str = "process",
    fault_plan=None,
    node_id: Optional[str] = None,
    heartbeat_seconds: float = 2.0,
    metrics_interval: float = 2.0,
) -> None:
    """Run one worker node until the broker drops it or a signal drains
    it (the ``repro worker`` CLI entry point)."""
    node = WorkerNode(
        host,
        port,
        slots=slots,
        mode=mode,
        fault_plan=fault_plan,
        node_id=node_id,
        heartbeat_seconds=heartbeat_seconds,
        metrics_interval=metrics_interval,
    )

    async def _main():
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(node.drain())
                )
            except (NotImplementedError, RuntimeError):
                pass
        await node.run()

    asyncio.run(_main())

"""DistScheduler: the engine's scheduler with broker-backed dispatch.

The distributed path earns byte-parity by *inheriting* it.  This class
subclasses :class:`~repro.engine.scheduler.JobScheduler` and overrides
exactly two hooks:

* ``_make_cache`` returns a :class:`~repro.dist.client.RemoteProofCache`
  when the broker advertises a shared cache (falling back to the local
  ``cache_dir`` / no cache otherwise), so cache replay -- including the
  UNDETERMINED-never-cached and checksum-or-miss rules -- runs the
  parent's unchanged code against the shared store;
* ``_execute_iter`` ships the pending jobs to the broker and yields
  ``(job, key, report)`` as verdicts stream back, in completion order,
  exactly the contract the in-process pool dispatcher fulfils.

Everything downstream of those hooks -- checkpoint/resume, stats
folding, manifest accounting, failure/quarantine handling, worker span
re-rooting under the run span -- is the parent's code, which is what
the localhost parity suite (``tests/test_dist.py``) pins: a broker plus
two worker nodes must produce the same canonical μPATH sets, SynthLC
labels, and reconciling manifests as ``--jobs 2``.

Worker options that cross the wire are whitelisted
(:func:`~repro.dist.protocol.worker_options`): retry policy, deadlines,
span collection.  Fault plans never travel -- chaos is armed on the node
that should suffer it (``repro worker --fault-plan``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..engine.scheduler import EngineConfig, JobScheduler
from ..obs.metrics import REGISTRY
from ..obs.tracer import TraceContext
from .client import BrokerClient, RemoteProofCache
from .protocol import encode_job, report_from_wire, worker_options

__all__ = ["parse_broker_address", "DistScheduler", "CacheOnlyScheduler"]

_CLIENT_JOBS = REGISTRY.counter(
    "repro_dist_client_jobs_total", "jobs a DistScheduler shipped / received"
)


def parse_broker_address(address: str) -> Tuple[str, int]:
    """``HOST:PORT`` -> (host, port); a bare port means localhost."""
    text = address.strip()
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", text
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ValueError("invalid broker address %r (want HOST:PORT)" % address)


class DistScheduler(JobScheduler):
    """A JobScheduler whose dispatch goes through a campaign broker."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        broker: str = "127.0.0.1:7340",
        priority: int = 0,
        client: Optional[BrokerClient] = None,
    ):
        super().__init__(config)
        self.broker_address = broker
        self.priority = priority
        self._client = client
        self._owns_client = client is None

    # ------------------------------------------------------------ connection
    def _ensure_client(self) -> BrokerClient:
        if self._client is None:
            host, port = parse_broker_address(self.broker_address)
            self._client = BrokerClient(host, port)
            self._client.connect()
        elif not self._client.welcome:
            self._client.connect()
        return self._client

    def close(self) -> None:
        if self._client is not None and self._owns_client:
            self._client.close()
            self._client = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ---------------------------------------------------------------- hooks
    def _make_cache(self):
        """The broker's shared cache when it has one; the parent's local
        behaviour otherwise (so a cache-less broker still benefits from
        a client-side ``--cache-dir``)."""
        client = self._ensure_client()
        if client.cache_enabled:
            return RemoteProofCache(client)
        return super()._make_cache()

    def _execute_iter(self, pending, log, manifest):
        """Ship pending jobs to the broker; yield verdicts as they stream."""
        if not pending:
            return
        client = self._ensure_client()
        for _seq, job, _key in pending:
            log.event("job_start", job=job.job_id)
        by_id = {job.job_id: (job, key) for _seq, job, key in pending}
        wire_jobs = [
            dict(encode_job(job), seq=seq) for seq, job, _key in pending
        ]
        options = worker_options(self._worker_kwargs(log))
        # cross-node span propagation: _execute_iter runs on the thread
        # that opened the `engine.run` span, so capture() sees it; the
        # context rides in the options dict (opaque to the broker,
        # filtered out of scheduler kwargs worker-side) and workers
        # re-root their span trees under it before reports ship back
        trace = TraceContext.capture() if options.get("collect_spans") else None
        if trace is not None:
            options = dict(options, trace=trace.to_wire())
        _CLIENT_JOBS.inc(len(wire_jobs), direction="submitted")
        log.event(
            "dist_submit",
            jobs=len(wire_jobs),
            broker=self.broker_address,
            priority=self.priority,
            trace_span=trace.span_id if trace is not None else None,
        )
        for job_id, wire_report in client.submit_iter(
            wire_jobs, options=options, priority=self.priority
        ):
            job, key = by_id[job_id]
            report = report_from_wire(wire_report, job)
            _CLIENT_JOBS.inc(direction="completed")
            yield job, key, report


class CacheOnlyScheduler(DistScheduler):
    """Local dispatch, shared remote cache (``synth-all --cache-server``).

    Jobs run in this machine's process pool exactly as ``--jobs N``
    would; only the proof cache is broker-backed, so several machines
    can share one store's verdicts without routing work through the
    broker."""

    _execute_iter = JobScheduler._execute_iter

"""`repro top`: a live text dashboard over the broker's fleet frame.

Polls the broker's ``fleet`` request (routing stats + per-node metric
pushes + slowest inflight + recent events) and renders a terminal
dashboard: per-node throughput, fleet cache hit rate, an ETA computed
from completed/remaining jobs, the oldest in-flight properties, and the
quarantine/join/leave event ring.  ``--once`` takes a single sample
(``--json`` emits it raw for scripting and CI gates); the default mode
streams, redrawing every ``--interval`` seconds.

Throughput is measured between consecutive samples (completed-count
deltas over the poll interval); the first sample -- and ``--once`` --
falls back to completed/uptime, which understates bursty campaigns but
never fabricates a rate.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from .client import BrokerClient, DistError
from .scheduler import parse_broker_address

__all__ = ["fetch_fleet", "derive", "render_fleet", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_fleet(address: str) -> Dict[str, Any]:
    """One fleet sample from a fresh connection (closed afterwards)."""
    host, port = parse_broker_address(address)
    with BrokerClient(host, port) as client:
        return client.fleet()


def _node_jobs_done(sample: Dict[str, Any], node_id: str) -> float:
    """Completed-job count for one node: prefer the broker's routing view
    (exact), fall back to the node's own pushed process block."""
    nodes = sample.get("stats", {}).get("nodes", {})
    if node_id in nodes:
        return float(nodes[node_id].get("completed", 0))
    process = sample.get("metrics", {}).get(node_id, {}).get("process", {})
    value = process.get("jobs_done", 0)
    return float(value) if isinstance(value, (int, float)) else 0.0


def derive(sample: Dict[str, Any],
           prev: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Rates, ETA, and cache hit rate computed from one (or two) samples.

    The returned dict is JSON-safe and merged into ``--once --json``
    output, so CI can gate on it without re-deriving."""
    counts = sample.get("stats", {}).get("counts", {})
    completed = float(counts.get("completed", 0))
    submitted = float(counts.get("submitted", 0))
    quarantined = float(counts.get("quarantined_jobs", 0))
    uptime = float(sample.get("uptime_seconds", 0) or 0)

    if prev is not None:
        dt = float(sample.get("ts", 0)) - float(prev.get("ts", 0))
        prev_completed = float(
            prev.get("stats", {}).get("counts", {}).get("completed", 0)
        )
        rate = (completed - prev_completed) / dt if dt > 0 else 0.0
    else:
        rate = completed / uptime if uptime > 0 else 0.0

    remaining = max(0.0, submitted - completed - quarantined)
    eta = remaining / rate if rate > 0 else None

    gets = float(counts.get("cache_gets", 0))
    hits = float(counts.get("cache_hits", 0))
    hit_rate = hits / gets if gets > 0 else None

    node_rates: Dict[str, float] = {}
    node_ids = set(sample.get("stats", {}).get("nodes", {}))
    node_ids.update(sample.get("metrics", {}))
    for node_id in node_ids:
        done = _node_jobs_done(sample, node_id)
        if prev is not None:
            dt = float(sample.get("ts", 0)) - float(prev.get("ts", 0))
            delta = done - _node_jobs_done(prev, node_id)
            node_rates[node_id] = delta / dt if dt > 0 else 0.0
        else:
            node_rates[node_id] = done / uptime if uptime > 0 else 0.0

    return {
        "rate_jobs_per_second": round(rate, 3),
        "remaining_jobs": int(remaining),
        "eta_seconds": round(eta, 1) if eta is not None else None,
        "cache_hit_rate": round(hit_rate, 4) if hit_rate is not None else None,
        "node_rates": {k: round(v, 3) for k, v in sorted(node_rates.items())},
    }


def _fmt_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "--"
    if eta >= 3600:
        return "%dh%02dm" % (eta // 3600, (eta % 3600) // 60)
    if eta >= 60:
        return "%dm%02ds" % (eta // 60, eta % 60)
    return "%.0fs" % eta


def render_fleet(sample: Dict[str, Any],
                 derived: Dict[str, Any],
                 address: str) -> str:
    """The dashboard screen as one string (no ANSI except the caller's
    clear), so tests can assert on it and ``--once`` can print it."""
    stats = sample.get("stats", {})
    counts = stats.get("counts", {})
    cache = stats.get("cache", {})
    metrics = sample.get("metrics", {})
    lines: List[str] = []
    lines.append(
        "repro top -- broker %s  up %ss  sampled %s"
        % (
            address,
            int(sample.get("uptime_seconds", 0) or 0),
            time.strftime("%H:%M:%S", time.localtime(sample.get("ts", 0))),
        )
    )
    lines.append(
        "jobs: %d submitted | %d completed | %d inflight | %d queued | "
        "%d requeued | %d quarantined   ETA %s (%.1f jobs/s)"
        % (
            counts.get("submitted", 0),
            counts.get("completed", 0),
            stats.get("inflight", 0),
            stats.get("queued", 0),
            counts.get("requeued", 0),
            counts.get("quarantined_jobs", 0),
            _fmt_eta(derived.get("eta_seconds")),
            derived.get("rate_jobs_per_second", 0.0),
        )
    )
    hit_rate = derived.get("cache_hit_rate")
    lines.append(
        "cache: %s | %d gets, %d hits (%s) | %d puts | backlog %d"
        % (
            "shared" if cache.get("enabled") else "off",
            counts.get("cache_gets", 0),
            counts.get("cache_hits", 0),
            "%.1f%%" % (hit_rate * 100) if hit_rate is not None else "--",
            counts.get("cache_puts", 0),
            cache.get("write_behind_pending", 0),
        )
    )
    lines.append("")
    lines.append(
        "%-16s %5s %8s %9s %9s %8s %8s  %s"
        % ("node", "slots", "inflight", "done", "jobs/s", "rss MB",
           "props", "state")
    )
    node_ids = sorted(set(stats.get("nodes", {})) | set(metrics))
    for node_id in node_ids:
        routing = stats.get("nodes", {}).get(node_id, {})
        pushed = metrics.get(node_id, {})
        process = pushed.get("process", {}) if isinstance(pushed, dict) else {}
        snapshot = (
            pushed.get("snapshot", {}) if isinstance(pushed, dict) else {}
        )
        props = snapshot.get("repro_dist_node_properties_total", {})
        props_data = props.get("data") if isinstance(props, dict) else None
        if routing.get("quarantined"):
            state = "QUARANTINED"
        elif routing.get("draining"):
            state = "draining"
        elif node_id not in stats.get("nodes", {}):
            state = "gone"
        else:
            state = "ok"
        lines.append(
            "%-16s %5s %8d %9d %9.1f %8.1f %8s  %s"
            % (
                node_id[:16],
                routing.get("slots", process.get("slots", "?")),
                routing.get("inflight", 0),
                int(_node_jobs_done(sample, node_id)),
                derived.get("node_rates", {}).get(node_id, 0.0),
                float(process.get("rss_mb", 0) or 0),
                (
                    "%d" % props_data
                    if isinstance(props_data, (int, float))
                    else "-"
                ),
                state,
            )
        )
    slowest = sample.get("slowest_inflight") or []
    if slowest:
        lines.append("")
        lines.append("slowest inflight:")
        for row in slowest:
            lines.append(
                "  %-40s %6.1fs on %s"
                % (row.get("job_id", "?")[:40], row.get("age_seconds", 0),
                   row.get("node", "?"))
            )
    events = sample.get("events") or []
    if events:
        lines.append("")
        lines.append("recent events:")
        for event in events[-8:]:
            when = time.strftime(
                "%H:%M:%S", time.localtime(event.get("ts", 0))
            )
            detail = " ".join(
                "%s=%s" % (k, v)
                for k, v in sorted(event.items())
                if k not in ("ts", "event")
            )
            lines.append(
                "  %s %-18s %s" % (when, event.get("event", "?"), detail)
            )
    return "\n".join(lines)


def run_top(
    address: str,
    interval: float = 2.0,
    once: bool = False,
    as_json: bool = False,
) -> int:
    """The ``repro top`` entry point; returns a process exit code."""
    try:
        sample = fetch_fleet(address)
    except (DistError, OSError) as exc:
        print("repro top: cannot reach broker at %s: %s" % (address, exc))
        return 1
    derived = derive(sample)
    if once:
        if as_json:
            print(json.dumps(dict(sample, derived=derived), sort_keys=True))
        else:
            print(render_fleet(sample, derived, address))
        return 0
    host, port = parse_broker_address(address)
    try:
        with BrokerClient(host, port) as client:
            prev = sample
            while True:
                print(_CLEAR + render_fleet(sample, derived, address))
                time.sleep(max(0.1, interval))
                sample = client.fleet()
                derived = derive(sample, prev)
                prev = sample
    except KeyboardInterrupt:
        return 0
    except (DistError, OSError) as exc:
        print("repro top: broker connection lost: %s" % exc)
        return 1

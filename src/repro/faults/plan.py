"""Declarative fault plans: which failure fires where, deterministically.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultSpec` entries.  Specs are matched at injection points (see
:mod:`repro.faults.injector`) by point name, optionally narrowed to one
job (``job`` matches the job id exactly, ``at_job`` matches the
scheduler-assigned dispatch sequence number), and fire on the
``at_hit``-th matching visit, at most ``times`` times.

Plans are plain JSON (``to_dict`` / ``from_dict`` / ``load`` / ``save``)
so a chaos campaign is a committed artifact: the same plan file replays
the same failures in CI, in tests, and at the command line
(``synth-all --fault-plan plan.json``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Tuple

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

#: the failure modes the injector knows how to fire
FAULT_KINDS = (
    "kill_worker",   # os._exit(137) in a worker (simulated kill inline)
    "raise",         # raise InjectedFault at the point
    "delay",         # sleep `seconds` at the point
    "corrupt_cache", # truncate the cache entry named by the point context
    "memory_spike",  # allocate `mb` MB of ballast (held while armed)
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what fires (kind), where (point), and when (matching)."""

    kind: str                    # one of FAULT_KINDS
    point: str                   # injection point name, e.g. "worker.job_start"
    job: Optional[str] = None    # fire only for this job id
    at_job: Optional[int] = None # fire only at this dispatch sequence number
    at_hit: int = 1              # fire from the Nth matching visit (1-based)
    times: int = 1               # total firings before the spec disarms
    seconds: float = 0.0         # delay duration / spike hold time
    mb: int = 0                  # memory-spike ballast size
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r (expected one of %s)"
                % (self.kind, ", ".join(FAULT_KINDS))
            )

    def matches(self, point: str, job: Optional[str],
                job_seq: Optional[int]) -> bool:
        if self.point != point:
            return False
        if self.job is not None and self.job != job:
            return False
        if self.at_job is not None and self.at_job != job_seq:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of fault specs plus firing-state home.

    ``state_dir``, when set, persists per-spec firing counts to disk so
    limits like ``times=1`` survive the process deaths the plan itself
    causes (a re-spawned worker must see that its killer already fired).
    """

    seed: int = 0
    state_dir: Optional[str] = None
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def with_state_dir(self, state_dir: str) -> "FaultPlan":
        return replace(self, state_dir=state_dir)

    # ------------------------------------------------------------- serialize
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "state_dir": self.state_dir,
            "specs": [
                {k: v for k, v in asdict(spec).items()}
                for spec in self.specs
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            state_dir=payload.get("state_dir"),
            specs=tuple(FaultSpec(**spec) for spec in payload.get("specs", ())),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

"""The active fault injector: arming, matching, and firing.

Injection points are free function calls scattered through the engine
and solver stack::

    from ..faults import injection_point
    injection_point("worker.job_start", job=job.job_id)

With no plan armed the call is a module-global ``None`` check.  Arming
(:func:`arm` + :func:`activate`) installs an :class:`ArmedPlan` that
counts visits per spec and fires matching ones.  Activation nests --
``activate`` returns the previously active plan so a worker can re-arm
the plan with its own job scope and restore the parent's arming after.

Points currently wired in:

* ``worker.job_start`` -- :func:`repro.engine.scheduler._run_job_with_retries`,
  once per dispatched job, inside the worker (or inline);
* ``worker.attempt`` -- same site, once per attempt;
* ``job.execute`` -- :meth:`repro.engine.specs.SynthesisJob.execute` /
  :meth:`~repro.engine.specs.SynthLCJob.execute`;
* ``solver.check`` -- once per property query, at every per-property
  boundary: :meth:`repro.mc.portfolio.PortfolioEngine.check` plus the
  synthesis pipelines' property-accounting sites
  (``Rtl2MuPath._record`` / ``SynthLC._record``);
* ``cache.put`` -- :meth:`repro.engine.cache.ProofCache.put`, after the
  entry file lands on disk (``path=`` names it, so ``corrupt_cache``
  faults can damage exactly the bytes a real partial write would).

Firing counts are persisted under ``FaultPlan.state_dir`` when set
(one append-only tally file per spec), which is what lets a
``kill_worker`` spec with ``times=1`` stay fired in the replacement
worker that only exists because the spec fired.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from ..obs.metrics import REGISTRY
from .plan import FaultPlan, FaultSpec

__all__ = [
    "InjectedFault",
    "InjectedWorkerDeath",
    "ArmedPlan",
    "arm",
    "activate",
    "deactivate",
    "injection_point",
]

_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total", "fault-injector firings, by kind and point"
)


class InjectedFault(RuntimeError):
    """An exception deliberately raised by the fault injector."""


class InjectedWorkerDeath(InjectedFault):
    """Inline-mode stand-in for a hard worker kill.

    In a real worker process a ``kill_worker`` fault calls
    ``os._exit(137)`` -- the parent sees a broken pool, exactly like a
    kernel OOM-kill.  Inline (jobs=1) execution has no worker to kill,
    so the injector raises this instead and the scheduler applies the
    same poison-counter accounting to it.
    """


class ArmedPlan:
    """A plan plus mutable matching state, scoped to one activation."""

    def __init__(self, plan: FaultPlan, job: Optional[str] = None,
                 job_seq: Optional[int] = None):
        self.plan = plan
        self.job = job
        self.job_seq = job_seq
        self._hits: Dict[int, int] = {}
        self._fired_mem: Dict[int, int] = {}
        self.ballast: List[bytearray] = []  # memory_spike allocations

    # -------------------------------------------------------- firing budget
    def _state_path(self, index: int) -> str:
        return os.path.join(self.plan.state_dir, "fired-%03d" % index)

    def _fired(self, index: int) -> int:
        if self.plan.state_dir is None:
            return self._fired_mem.get(index, 0)
        try:
            return os.path.getsize(self._state_path(index))
        except OSError:
            return 0

    def _record_firing(self, index: int) -> None:
        if self.plan.state_dir is None:
            self._fired_mem[index] = self._fired_mem.get(index, 0) + 1
            return
        os.makedirs(self.plan.state_dir, exist_ok=True)
        # one byte per firing, O_APPEND so concurrent workers never lose
        # a tally; the count is simply the file size
        fd = os.open(
            self._state_path(index), os.O_WRONLY | os.O_CREAT | os.O_APPEND
        )
        try:
            os.write(fd, b"!")
        finally:
            os.close(fd)

    # --------------------------------------------------------------- visits
    def visit(self, point: str, job: Optional[str], context: Dict[str, Any]):
        job = job if job is not None else self.job
        for index, spec in enumerate(self.plan.specs):
            if not spec.matches(point, job, self.job_seq):
                continue
            self._hits[index] = self._hits.get(index, 0) + 1
            if self._hits[index] < spec.at_hit:
                continue
            if self._fired(index) >= spec.times:
                continue
            self._record_firing(index)
            _INJECTED.inc(kind=spec.kind, point=point)
            self._fire(spec, context)

    def _fire(self, spec: FaultSpec, context: Dict[str, Any]):
        if spec.kind == "raise":
            raise InjectedFault(spec.message)
        if spec.kind == "delay":
            time.sleep(spec.seconds)
            return
        if spec.kind == "memory_spike":
            # held until release() so an RSS watcher has time to see it
            self.ballast.append(bytearray(spec.mb * 1024 * 1024))
            if spec.seconds:
                time.sleep(spec.seconds)
            return
        if spec.kind == "corrupt_cache":
            self._corrupt(context.get("path"))
            return
        if spec.kind == "kill_worker":
            import multiprocessing

            if multiprocessing.parent_process() is not None:
                os._exit(137)  # the exit status of a kernel OOM-kill
            raise InjectedWorkerDeath(spec.message)

    @staticmethod
    def _corrupt(path: Optional[str]) -> None:
        """Truncate an on-disk entry to half its bytes -- the shape a
        crash mid-write (or disk-full) leaves behind."""
        if not path or not os.path.isfile(path):
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)

    def release(self) -> None:
        self.ballast.clear()


# ------------------------------------------------------------- global scope
_ACTIVE: Optional[ArmedPlan] = None


def arm(plan: FaultPlan, job: Optional[str] = None,
        job_seq: Optional[int] = None) -> ArmedPlan:
    """Bind a plan to a scope (optionally one job) without activating it."""
    return ArmedPlan(plan, job=job, job_seq=job_seq)


def activate(armed: Optional[ArmedPlan]) -> Optional[ArmedPlan]:
    """Install ``armed`` as the process's active plan; returns the
    previously active one so callers can nest and restore."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = armed
    return previous


def deactivate(previous: Optional[ArmedPlan] = None) -> None:
    """Release the active plan's ballast and restore ``previous``."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.release()
    _ACTIVE = previous


def injection_point(point: str, job: Optional[str] = None, **context: Any):
    """Fire any armed faults matching ``point``; a no-op when none armed."""
    armed = _ACTIVE
    if armed is None:
        return
    armed.visit(point, job, context)

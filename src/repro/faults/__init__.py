"""repro.faults: deterministic fault injection for chaos testing.

The paper's verification campaign (SS VII) is a days-long run of
thousands of model-checking queries where solver timeouts, memory
exhaustion, and tool crashes are routine operating conditions, not
exceptional ones -- RTL2MuPATH folds bounded-resource UNDETERMINED
verdicts into its verdict lattice for exactly this reason.  The engine
therefore has to *prove* its failure paths, and this package provides
the controlled failures to prove them with:

* :class:`FaultSpec` / :class:`FaultPlan` -- a declarative, seeded,
  JSON-serializable description of which faults fire where: kill the
  worker at job N, raise inside the solver, delay an attempt, corrupt a
  proof-cache entry as it is written, or spike the worker's memory;
* :func:`injection_point` -- the hook the scheduler, job specs, solver
  portfolio, and proof cache call at their fault-injectable sites.  With
  no plan active it is a single ``None`` check; with a plan armed, the
  matching specs fire deterministically;
* :func:`arm` / :func:`activate` / :func:`deactivate` -- plan
  activation, scoped per process (the scheduler arms the plan in the
  parent for cache-side points and re-arms it inside each worker with
  the job's dispatch sequence number for worker/solver-side points).

Firing counts can be persisted under ``FaultPlan.state_dir`` so a
"kill the worker once" spec stays fired across the very worker
re-spawns it causes (a fresh forked worker would otherwise reset an
in-memory counter and kill forever).

Every firing increments the ``repro_faults_injected_total`` metric (by
kind and point), so injected chaos is visible in ``repro profile`` and
the metrics exposition exactly like organic failures.
"""

from .injector import (
    InjectedFault,
    InjectedWorkerDeath,
    activate,
    arm,
    deactivate,
    injection_point,
)
from .plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedWorkerDeath",
    "activate",
    "arm",
    "deactivate",
    "injection_point",
]

"""repro: a from-scratch reproduction of RTL2MuPATH + SynthLC (MICRO 2024).

Layers (bottom-up):

* :mod:`repro.rtl`     -- netlist IR, elaboration, static analysis
* :mod:`repro.sim`     -- compiled cycle-accurate simulation, VCD export
* :mod:`repro.solver`  -- CDCL SAT, gate-level construction, bit-blasting
* :mod:`repro.mc`      -- model-checking engines (enumerative, BMC,
  k-induction) with reachable/unreachable/undetermined verdicts
* :mod:`repro.props`   -- SVA-style cover/assume property templates
* :mod:`repro.ift`     -- CellIFT-style taint instrumentation
* :mod:`repro.designs` -- the CVA6-like core, CVA6-MUL / CVA6-OP variants,
  the L1 data-cache DUV, and verification-context providers
* :mod:`repro.core`    -- RTL2MuPATH, SynthLC, leakage contracts
* :mod:`repro.report`  -- Fig. 8 / Table II / SS VII-B3 reports

Quickstart::

    from repro.designs import build_core, CoreContextProvider, ContextFamilyConfig
    from repro.core import Rtl2MuPath

    design = build_core()
    provider = CoreContextProvider(xlen=8, config=ContextFamilyConfig())
    result = Rtl2MuPath(design, provider).synthesize("LW")
    for path in result.concrete_paths:
        print(path.latency, sorted(path.pl_set))
"""

__version__ = "1.0.0"

__all__ = ["rtl", "sim", "solver", "mc", "props", "ift", "designs", "core", "report"]

"""Model-checker verdicts.

The paper's entire methodology is phrased over the three JasperGold cover
outcomes (SS V-B): *reachable* (a witness trace exists), *unreachable* (a
proof that none exists), and *undetermined* (timeout / resource limits).
``UNDETERMINED`` handling is load-bearing: RTL2MuPATH/SynthLC can interpret
it as reachable or unreachable, trading completeness against soundness
(SS VII-B4), and our engines reproduce that trichotomy honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["REACHABLE", "UNREACHABLE", "UNDETERMINED", "CheckResult"]

REACHABLE = "reachable"
UNREACHABLE = "unreachable"
UNDETERMINED = "undetermined"


@dataclass
class CheckResult:
    """Outcome of one query evaluation."""

    query_name: str
    outcome: str
    engine: str
    witness: Optional[List[Dict[str, int]]] = None  # per-cycle observations
    time_seconds: float = 0.0
    detail: str = ""

    @property
    def reachable(self):
        return self.outcome == REACHABLE

    @property
    def unreachable(self):
        return self.outcome == UNREACHABLE

    @property
    def undetermined(self):
        return self.outcome == UNDETERMINED

    def interpret_undetermined(self, as_outcome: str) -> str:
        """Resolve an undetermined verdict per tool configuration (SS VII-B4)."""
        if self.outcome == UNDETERMINED:
            return as_outcome
        return self.outcome

    def to_dict(self) -> Dict:
        """JSON-ready form; exact inverse of :meth:`from_dict`."""
        return {
            "query_name": self.query_name,
            "outcome": self.outcome,
            "engine": self.engine,
            "witness": self.witness,
            "time_seconds": self.time_seconds,
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(payload: Dict) -> "CheckResult":
        return CheckResult(
            query_name=payload["query_name"],
            outcome=payload["outcome"],
            engine=payload["engine"],
            witness=payload.get("witness"),
            time_seconds=payload.get("time_seconds", 0.0),
            detail=payload.get("detail", ""),
        )

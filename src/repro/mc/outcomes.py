"""Model-checker verdicts.

The paper's entire methodology is phrased over the three JasperGold cover
outcomes (SS V-B): *reachable* (a witness trace exists), *unreachable* (a
proof that none exists), and *undetermined* (timeout / resource limits).
``UNDETERMINED`` handling is load-bearing: RTL2MuPATH/SynthLC can interpret
it as reachable or unreachable, trading completeness against soundness
(SS VII-B4), and our engines reproduce that trichotomy honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["REACHABLE", "UNREACHABLE", "UNDETERMINED", "CheckResult"]

REACHABLE = "reachable"
UNREACHABLE = "unreachable"
UNDETERMINED = "undetermined"


@dataclass
class CheckResult:
    """Outcome of one query evaluation.

    ``depth`` and ``solver`` carry the engine's effort accounting:
    ``depth`` is the unroll horizon (BMC), induction depth k
    (k-induction), or trace horizon (enumerative); ``solver`` is a dict
    of per-check search-effort counters -- for SAT-backed engines the
    :attr:`repro.solver.sat.SatSolver.last_solve` delta (conflicts,
    decisions, propagations, restarts, learned clauses, formula sizes),
    for the enumerative engine the contexts scanned.  Both default to
    None and round-trip through :meth:`to_dict`/:meth:`from_dict`
    backward-compatibly: payloads written before these fields existed
    still load (the proof cache replays old entries unchanged).
    """

    query_name: str
    outcome: str
    engine: str
    witness: Optional[List[Dict[str, int]]] = None  # per-cycle observations
    time_seconds: float = 0.0
    detail: str = ""
    depth: Optional[int] = None
    solver: Optional[Dict[str, int]] = None
    # verdict certificate bundle (see repro.cert): a "witness" bundle for
    # REACHABLE (decoded input trace, replay-confirmed on the simulator)
    # or a "drat" bundle for UNREACHABLE (checkable proof logs for every
    # solve leg).  None = uncertified (certify off, or a pre-certificate
    # cache entry); UNDETERMINED verdicts are honestly uncertifiable and
    # never carry one.
    certificate: Optional[Dict] = None

    @property
    def reachable(self):
        return self.outcome == REACHABLE

    @property
    def unreachable(self):
        return self.outcome == UNREACHABLE

    @property
    def undetermined(self):
        return self.outcome == UNDETERMINED

    def interpret_undetermined(self, as_outcome: str) -> str:
        """Resolve an undetermined verdict per tool configuration (SS VII-B4)."""
        if self.outcome == UNDETERMINED:
            return as_outcome
        return self.outcome

    def to_dict(self) -> Dict:
        """JSON-ready form; exact inverse of :meth:`from_dict`.

        The effort fields are emitted only when present, so payloads
        stay byte-compatible with pre-observability readers.
        """
        payload = {
            "query_name": self.query_name,
            "outcome": self.outcome,
            "engine": self.engine,
            "witness": self.witness,
            "time_seconds": self.time_seconds,
            "detail": self.detail,
        }
        if self.depth is not None:
            payload["depth"] = self.depth
        if self.solver is not None:
            payload["solver"] = self.solver
        if self.certificate is not None:
            payload["certificate"] = self.certificate
        return payload

    @staticmethod
    def from_dict(payload: Dict) -> "CheckResult":
        return CheckResult(
            query_name=payload["query_name"],
            outcome=payload["outcome"],
            engine=payload["engine"],
            witness=payload.get("witness"),
            time_seconds=payload.get("time_seconds", 0.0),
            detail=payload.get("detail", ""),
            depth=payload.get("depth"),
            solver=payload.get("solver"),
            certificate=payload.get("certificate"),
        )

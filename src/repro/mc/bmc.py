"""SAT-backed bounded model checking.

:class:`BmcContext` unrolls a netlist once over a symbolic context (free or
constrained inputs per cycle, symbolically initialized architectural state)
and then answers many cover queries against that single unrolling with
solver assumptions -- the same amortization a commercial property verifier
performs when it compiles the design once and evaluates a property file.

Verdicts:

* SAT on the cover target  -> ``REACHABLE`` plus a concrete witness trace;
* UNSAT when the caller declared the horizon complete -> ``UNREACHABLE``;
* UNSAT under an incomplete horizon, or conflict budget exhausted
  -> ``UNDETERMINED``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..props.query import Query
from ..props.views import SymbolicOps, SymbolicTraceView
from ..rtl.netlist import Netlist
from ..solver.bitblast import Frame, blast_frame
from ..solver.bits import BitBuilder
from ..solver.sat import SAT, UNKNOWN, UNSAT, SatSolver
from .outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from .stats import PropertyStats

__all__ = ["BmcContext", "SymbolicContextSpec"]


class SymbolicContextSpec:
    """Declares how the symbolic environment drives the DUV.

    ``symbolic_registers``: register names whose initial value is free
    (architectural state under the paper's valid-reset-state convention);
    all other registers start at their RTL reset value.

    ``drive``: callable ``(builder, cycle) -> {input_name: bits or int}``.
    Inputs omitted from the returned dict are free (fresh variables).

    ``constrain``: optional callable ``(builder, frames) -> [literals]``
    returning environment assumptions (e.g. "fetch inputs always carry a
    valid encoding"), asserted globally.
    """

    def __init__(self, symbolic_registers=(), drive=None, constrain=None):
        self.symbolic_registers = frozenset(symbolic_registers)
        self.drive = drive
        self.constrain = constrain


class BmcContext:
    """One unrolling of ``netlist`` for ``horizon`` cycles."""

    name = "bmc"

    def __init__(
        self,
        netlist: Netlist,
        horizon: int,
        context: Optional[SymbolicContextSpec] = None,
        complete_horizon: bool = False,
        conflict_budget: Optional[int] = 200000,
        stats: Optional[PropertyStats] = None,
    ):
        self.netlist = netlist
        self.horizon = horizon
        self.context = context or SymbolicContextSpec()
        self.complete_horizon = complete_horizon
        self.conflict_budget = conflict_budget
        self.stats = stats

        self.solver = SatSolver()
        self.builder = BitBuilder(self.solver)
        self.frames: List[Frame] = []
        self._unroll()
        self.view = SymbolicTraceView(self.frames, self.builder)
        self.ops = SymbolicOps(self.builder)

    # ------------------------------------------------------------------ build
    def _unroll(self):
        builder = self.builder
        state: Dict[str, List[int]] = {}
        for reg, _ in self.netlist.registers:
            if reg.name in self.context.symbolic_registers:
                state[reg.name] = builder.fresh_word(reg.width)
            else:
                state[reg.name] = builder.const_word(reg.reset, reg.width)
        for t in range(self.horizon):
            input_bits = self._drive_inputs(t)
            frame = blast_frame(builder, self.netlist, state, input_bits)
            self.frames.append(frame)
            state = frame.next_state
        if self.context.constrain is not None:
            for lit in self.context.constrain(builder, self.frames):
                self.solver.add_clause([lit])

    def _drive_inputs(self, t) -> Dict[str, List[int]]:
        builder = self.builder
        driven = self.context.drive(builder, t) if self.context.drive else {}
        input_bits: Dict[str, List[int]] = {}
        for node in self.netlist.inputs:
            if node.name in driven:
                value = driven[node.name]
                if isinstance(value, int):
                    value = builder.const_word(value, node.width)
                input_bits[node.name] = value
            else:
                input_bits[node.name] = builder.fresh_word(node.width)
        return input_bits

    # ------------------------------------------------------------------ check
    def check(self, query: Query) -> CheckResult:
        with obs.span("mc.check", engine=self.name, query=query.name) as sp:
            start = time.perf_counter()
            assumptions = []
            for expr in query.assumes:
                combined = self.builder.TRUE
                for t in range(self.horizon):
                    combined = self.builder.and_(
                        combined, expr.evaluate(self.view, t, self.ops)
                    )
                assumptions.append(combined)
            target = query.prop.evaluate(self.view, self.ops)
            assumptions.append(target)
            verdict = self.solver.solve(
                assumptions=assumptions, max_conflicts=self.conflict_budget
            )
            if verdict == SAT:
                outcome = REACHABLE
                witness = self._extract_witness()
                detail = ""
            elif verdict == UNSAT:
                if self.complete_horizon:
                    outcome = UNREACHABLE
                    detail = "UNSAT within declared-complete horizon"
                else:
                    outcome = UNDETERMINED
                    detail = "UNSAT within bounded horizon %d" % self.horizon
                witness = None
            else:
                outcome = UNDETERMINED
                detail = "conflict budget exhausted"
                witness = None
            elapsed = time.perf_counter() - start
            result = CheckResult(
                query_name=query.name,
                outcome=outcome,
                engine=self.name,
                witness=witness,
                time_seconds=elapsed,
                detail=detail,
                depth=self.horizon,
                solver=dict(self.solver.last_solve),
            )
            sp.set("outcome", outcome)
            if self.stats is not None:
                self.stats.record(result)
                obs.note_property(outcome, elapsed)
            return result

    def _extract_witness(self) -> List[Dict[str, int]]:
        witness = []
        for frame in self.frames:
            observation = {
                name: self.builder.word_value(bits)
                for name, bits in frame.named.items()
            }
            witness.append(observation)
        return witness

"""SAT-backed bounded model checking.

:class:`BmcContext` unrolls a netlist once over a symbolic context (free or
constrained inputs per cycle, symbolically initialized architectural state)
and then answers many cover queries against that single unrolling with
solver assumptions -- the same amortization a commercial property verifier
performs when it compiles the design once and evaluates a property file.

Verdicts:

* SAT on the cover target  -> ``REACHABLE`` plus a concrete witness trace;
* UNSAT when the caller declared the horizon complete -> ``UNREACHABLE``;
* UNSAT under an incomplete horizon, or conflict budget exhausted
  -> ``UNDETERMINED``.

The context is incremental along two axes: properties are swapped via
solver assumptions against the single unrolling (learned clauses carry
over between checks), and :meth:`BmcContext.extend_to` deepens the
unrolling in place -- frames k..k'-1 are blasted on top of the existing
ones instead of rebuilding the whole formula.  Passing ``coi_targets``
slices the netlist to the sequential cone of influence of those named
signals before any bit-blasting, so properties over a corner of the
design never pay for the rest of it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..props.query import Query
from ..props.views import SymbolicOps, SymbolicTraceView
from ..rtl.netlist import Netlist
from ..solver.bitblast import Frame, blast_frame, paused_gc
from ..solver.bits import BitBuilder
from ..solver.sat import SAT, UNKNOWN, UNSAT, SatSolver
from .outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from .stats import PropertyStats

__all__ = ["BmcContext", "SymbolicContextSpec"]


class SymbolicContextSpec:
    """Declares how the symbolic environment drives the DUV.

    ``symbolic_registers``: register names whose initial value is free
    (architectural state under the paper's valid-reset-state convention);
    all other registers start at their RTL reset value.

    ``drive``: callable ``(builder, cycle) -> {input_name: bits or int}``.
    Inputs omitted from the returned dict are free (fresh variables).

    ``constrain``: optional callable ``(builder, frames) -> [literals]``
    returning environment assumptions (e.g. "fetch inputs always carry a
    valid encoding"), asserted globally.
    """

    def __init__(self, symbolic_registers=(), drive=None, constrain=None):
        self.symbolic_registers = frozenset(symbolic_registers)
        self.drive = drive
        self.constrain = constrain


class BmcContext:
    """One unrolling of ``netlist`` for ``horizon`` cycles."""

    name = "bmc"

    def __init__(
        self,
        netlist: Netlist,
        horizon: int,
        context: Optional[SymbolicContextSpec] = None,
        complete_horizon: bool = False,
        conflict_budget: Optional[int] = 200000,
        stats: Optional[PropertyStats] = None,
        coi_targets: Optional[Sequence[str]] = None,
        preprocess: bool = True,
        certify=None,
    ):
        from ..cert import CertifyPolicy

        self.certify = certify or CertifyPolicy()
        self.coi = None
        if coi_targets is not None:
            from ..rtl.coi import coi_slice

            self.coi = coi_slice(netlist, coi_targets)
            netlist = self.coi.netlist
        self.netlist = netlist
        self.horizon = horizon
        self.context = context or SymbolicContextSpec()
        self.complete_horizon = complete_horizon
        self.conflict_budget = conflict_budget
        self.stats = stats

        self.solver = SatSolver(preprocess=preprocess, proof=self.certify.enabled)
        self.builder = BitBuilder(self.solver)
        self.frames: List[Frame] = []
        self._frozen_frames = 0
        self._checks = 0
        self._unroll()
        self.view = SymbolicTraceView(self.frames, self.builder)
        self.ops = SymbolicOps(self.builder)

    # ------------------------------------------------------------------ build
    def _unroll(self):
        builder = self.builder
        state: Dict[str, List[int]] = {}
        for reg, _ in self.netlist.registers:
            if reg.name in self.context.symbolic_registers:
                state[reg.name] = builder.fresh_word(reg.width)
            else:
                state[reg.name] = builder.const_word(reg.reset, reg.width)
        self._frontier_state = state
        self._extend(self.horizon)

    def _extend(self, new_horizon: int):
        builder = self.builder
        state = self._frontier_state
        with paused_gc():
            for t in range(len(self.frames), new_horizon):
                input_bits = self._drive_inputs(t)
                frame = blast_frame(builder, self.netlist, state, input_bits)
                self.frames.append(frame)
                state = frame.next_state
        self._frontier_state = state
        # freeze the interface bits later queries build gates over, so
        # preprocessing's variable elimination never removes them
        freeze = self.solver.freeze_many
        for frame in self.frames[self._frozen_frames :]:
            for bits in frame.named.values():
                freeze(abs(lit) for lit in bits)
            for bits in frame.next_state.values():
                freeze(abs(lit) for lit in bits)
        self._frozen_frames = len(self.frames)
        if self.context.constrain is not None:
            # constraint literals are built through the builder's gate
            # caches, so re-running the callable over the full frame list
            # re-asserts the old cycles' (deduplicated) literals and picks
            # up the new cycles
            for lit in self.context.constrain(builder, self.frames):
                self.solver.add_clause([lit])

    def extend_to(self, new_horizon: int, complete_horizon: Optional[bool] = None):
        """Deepen the unrolling in place to ``new_horizon`` cycles.

        Only the new frames are bit-blasted; learned clauses and the
        existing formula carry over, so growing k -> k+1 costs one frame,
        not a rebuild.  ``complete_horizon`` may be updated alongside
        (a deeper horizon can become the declared-complete one).
        """
        if new_horizon < self.horizon:
            raise ValueError(
                "cannot shrink horizon %d -> %d" % (self.horizon, new_horizon)
            )
        if new_horizon > self.horizon:
            self._extend(new_horizon)
            self.horizon = new_horizon
        if complete_horizon is not None:
            self.complete_horizon = complete_horizon

    def _drive_inputs(self, t) -> Dict[str, List[int]]:
        builder = self.builder
        driven = self.context.drive(builder, t) if self.context.drive else {}
        input_bits: Dict[str, List[int]] = {}
        for node in self.netlist.inputs:
            if node.name in driven:
                value = driven[node.name]
                if isinstance(value, int):
                    value = builder.const_word(value, node.width)
                input_bits[node.name] = value
            else:
                input_bits[node.name] = builder.fresh_word(node.width)
        return input_bits

    # ------------------------------------------------------------------ check
    def check(self, query: Query) -> CheckResult:
        with obs.span("mc.check", engine=self.name, query=query.name) as sp:
            start = time.perf_counter()
            if self._checks:
                from ..obs.metrics import REGISTRY

                REGISTRY.counter(
                    "repro_solver_incremental_reuse_total",
                    "solve() calls answered on a reused solver "
                    "(learned clauses retained)",
                ).inc(context="bmc")
            self._checks += 1
            assumptions = []
            for expr in query.assumes:
                combined = self.builder.TRUE
                for t in range(self.horizon):
                    combined = self.builder.and_(
                        combined, expr.evaluate(self.view, t, self.ops)
                    )
                assumptions.append(combined)
            target = query.prop.evaluate(self.view, self.ops)
            assumptions.append(target)
            verdict = self.solver.solve(
                assumptions=assumptions, max_conflicts=self.conflict_budget
            )
            certificate = None
            if verdict == SAT:
                outcome = REACHABLE
                witness = self._extract_witness()
                detail = ""
                if self.certify.enabled:
                    certificate = self._witness_certificate(query)
            elif verdict == UNSAT:
                if self.complete_horizon:
                    outcome = UNREACHABLE
                    detail = "UNSAT within declared-complete horizon"
                    if self.certify.enabled:
                        certificate = self._drat_certificate(query)
                else:
                    outcome = UNDETERMINED
                    detail = "UNSAT within bounded horizon %d" % self.horizon
                witness = None
            else:
                outcome = UNDETERMINED
                detail = "conflict budget exhausted"
                witness = None
            elapsed = time.perf_counter() - start
            result = CheckResult(
                query_name=query.name,
                outcome=outcome,
                engine=self.name,
                witness=witness,
                time_seconds=elapsed,
                detail=detail,
                depth=self.horizon,
                solver=dict(self.solver.last_solve),
                certificate=certificate,
            )
            sp.set("outcome", outcome)
            if self.stats is not None:
                self.stats.record(result)
                obs.note_property(outcome, elapsed)
            return result

    def _witness_certificate(self, query: Query) -> Dict:
        """Decode the live SAT model and replay-confirm it (repro.cert)."""
        from ..cert import witness_certificate
        from ..cert.witness import decode_model_witness
        from ..props.views import ConcreteOps

        decoded = decode_model_witness(self.builder, self.frames)

        def _holds(view):
            for expr in query.assumes:
                for t in range(view.horizon):
                    if not expr.evaluate(view, t, ConcreteOps):
                        return False
            return bool(query.prop.evaluate(view, ConcreteOps))

        return witness_certificate(
            self.netlist,
            decoded["registers"],
            decoded["inputs"],
            _holds,
            self.certify,
            name=query.name,
        )

    def _drat_certificate(self, query: Query) -> Dict:
        """Bundle the solver's proof log for this UNSAT answer (repro.cert)."""
        from ..cert import drat_certificate

        # spot-unsampled queries get a count-only leg: no snapshot copy
        # of the shared incremental log (see drat_certificate)
        entries = (
            self.solver.proof_entries()
            if self.certify.should_check_proof(query.name)
            else self.solver.proof_length()
        )
        return drat_certificate(
            {"proof": (entries, self.solver.final_lemma())},
            self.certify,
            name=query.name,
            overflow=self.solver.proof_overflowed(),
        )

    def _extract_witness(self) -> List[Dict[str, int]]:
        witness = []
        for frame in self.frames:
            observation = {
                name: self.builder.word_value(bits)
                for name, bits in frame.named.items()
            }
            witness.append(observation)
        return witness

"""Model-checking engines with JasperGold-style verdicts.

Three engines share the :class:`~repro.props.query.Query` interface:

* :class:`EnumerativeEngine` -- exhaustive simulation of a finite context
  family (fast path; sound and complete within the family);
* :class:`BmcContext` -- SAT-based bounded model checking over a symbolic
  context (one unrolling amortized over many queries);
* :func:`prove_unreachable_kinduction` -- unbounded invariant proofs.

All report the paper's verdict trichotomy: reachable / unreachable /
undetermined.
"""

from .outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from .stats import PropertyStats
from .enumerative import Context, EnumerativeEngine, ReactiveContext, TraceDB
from .bmc import BmcContext, SymbolicContextSpec
from .kinduction import prove_unreachable_kinduction
from .portfolio import PortfolioEngine

__all__ = [
    "REACHABLE",
    "UNDETERMINED",
    "UNREACHABLE",
    "CheckResult",
    "PropertyStats",
    "Context",
    "ReactiveContext",
    "EnumerativeEngine",
    "TraceDB",
    "BmcContext",
    "SymbolicContextSpec",
    "prove_unreachable_kinduction",
    "PortfolioEngine",
]

"""k-induction: unbounded proofs of state invariants.

Used by RTL2MuPATH's first pruning step (DUV-level PL reachability,
SS V-B1): proving that a performing location is unreachable by *any*
instruction is an invariant proof, not a bounded cover, so BMC alone cannot
conclude it.  k-induction establishes ``G !bad``:

* **base**: no state within k steps of reset satisfies ``bad``;
* **step**: no length-(k+1) path of *arbitrary* states, all of whose first
  k states avoid ``bad``, ends in ``bad`` (with simple-path strengthening
  on request).

Both checks honor a conflict budget and can report UNDETERMINED.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .. import obs
from ..props.exprs import CycleExpr
from ..props.views import SymbolicOps, SymbolicTraceView
from ..rtl.netlist import Netlist
from ..solver.bitblast import blast_frame, paused_gc
from ..solver.bits import BitBuilder
from ..solver.sat import SAT, UNKNOWN, UNSAT, SatSolver
from .outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult

__all__ = ["prove_unreachable_kinduction"]


def _unroll(builder, netlist, initial_state, horizon, solver):
    frames = []
    state = initial_state
    for _ in range(horizon):
        input_bits = {
            node.name: builder.fresh_word(node.width) for node in netlist.inputs
        }
        frame = blast_frame(builder, netlist, state, input_bits)
        frames.append(frame)
        state = frame.next_state
    return frames


def _merge_counters(*deltas):
    """Sum per-solve counter dicts (base + inductive step)."""
    merged: Dict[str, int] = {}
    for delta in deltas:
        for key, value in delta.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def prove_unreachable_kinduction(
    netlist: Netlist,
    bad: CycleExpr,
    k: int = 4,
    symbolic_registers=(),
    conflict_budget: Optional[int] = 200000,
    simple_path: bool = True,
    pool=None,
    preprocess: bool = True,
    certify=None,
) -> CheckResult:
    """Try to prove ``bad`` globally unreachable via k-induction.

    Returns REACHABLE (base-case witness), UNREACHABLE (induction closed),
    or UNDETERMINED (induction failed at this k, or budget exhausted).

    With ``pool`` (an :class:`~repro.mc.incremental.InductionPool`) the
    proof runs on a shared incremental context -- one growing unrolling
    per design/cone instead of fresh solvers per property.  Without it,
    this is the legacy per-property rebuild path, kept as the independent
    reference the verdict-parity suite compares against.
    """
    if pool is not None:
        return pool.prove(
            netlist,
            bad,
            k=k,
            symbolic_registers=symbolic_registers,
            conflict_budget=conflict_budget,
            simple_path=simple_path,
            certify=certify,
        )
    from ..cert import CertifyPolicy

    policy = certify or CertifyPolicy()
    start = time.perf_counter()
    symbolic_registers = frozenset(symbolic_registers)
    query_name = "kind(%r)" % (bad,)

    def _finish(sp, outcome, detail, solver_delta, witness=None, certificate=None):
        # note: no check_seconds accounting here -- the caller records the
        # induction verdict into its PropertyStats and accounts the time
        elapsed = time.perf_counter() - start
        sp.set("outcome", outcome)
        return CheckResult(
            query_name=query_name,
            outcome=outcome,
            engine="k-induction",
            witness=witness,
            time_seconds=elapsed,
            detail=detail,
            depth=k,
            solver=solver_delta,
            certificate=certificate,
        )

    with obs.span("mc.kinduction", k=k) as root:
        # ---- base case: BMC from reset for k steps
        with obs.span("mc.kinduction.base"):
            base_solver = SatSolver(preprocess=preprocess, proof=policy.enabled)
            base_builder = BitBuilder(base_solver)
            with paused_gc():
                reset_state: Dict[str, List[int]] = {}
                for reg, _ in netlist.registers:
                    if reg.name in symbolic_registers:
                        reset_state[reg.name] = base_builder.fresh_word(reg.width)
                    else:
                        reset_state[reg.name] = base_builder.const_word(
                            reg.reset, reg.width
                        )
                base_frames = _unroll(
                    base_builder, netlist, reset_state, k, base_solver
                )
            base_view = SymbolicTraceView(base_frames, base_builder)
            base_ops = SymbolicOps(base_builder)
            target = base_builder.FALSE
            for t in range(k):
                target = base_builder.or_(
                    target, bad.evaluate(base_view, t, base_ops)
                )
            verdict = base_solver.solve(
                assumptions=[target], max_conflicts=conflict_budget
            )
            base_delta = dict(base_solver.last_solve)
        if verdict == SAT:
            witness = [
                {
                    name: base_builder.word_value(bits)
                    for name, bits in frame.named.items()
                }
                for frame in base_frames
            ]
            certificate = None
            if policy.enabled:
                from ..cert import witness_certificate
                from ..cert.witness import decode_model_witness
                from ..props.views import ConcreteOps

                decoded = decode_model_witness(base_builder, base_frames)

                def _fires(view):
                    return any(
                        bad.evaluate(view, t, ConcreteOps)
                        for t in range(min(k, view.horizon))
                    )

                certificate = witness_certificate(
                    netlist,
                    decoded["registers"],
                    decoded["inputs"],
                    _fires,
                    policy,
                    name=query_name,
                )
            return _finish(
                root, REACHABLE, "base-case witness at k=%d" % k, base_delta,
                witness=witness, certificate=certificate,
            )
        if verdict == UNKNOWN:
            return _finish(
                root, UNDETERMINED, "base case budget exhausted", base_delta
            )

        # ---- inductive step: arbitrary start state, k good steps, bad at k
        with obs.span("mc.kinduction.step"):
            step_solver = SatSolver(preprocess=preprocess, proof=policy.enabled)
            step_builder = BitBuilder(step_solver)
            with paused_gc():
                free_state: Dict[str, List[int]] = {
                    reg.name: step_builder.fresh_word(reg.width)
                    for reg, _ in netlist.registers
                }
                step_frames = _unroll(
                    step_builder, netlist, free_state, k + 1, step_solver
                )
            step_view = SymbolicTraceView(step_frames, step_builder)
            step_ops = SymbolicOps(step_builder)
            for t in range(k):
                good = -bad.evaluate(step_view, t, step_ops)
                step_solver.add_clause([good])
            if simple_path:
                # distinctness as one clause of per-bit difference gates
                # per state pair -- the exact encoding the incremental
                # context asserts, so the parity legs compare identical
                # step formulas
                states = [free_state] + [
                    frame.next_state for frame in step_frames[:-1]
                ]
                with paused_gc():
                    for i in range(len(states)):
                        for j in range(i + 1, len(states)):
                            diff: List[int] = []
                            for name in states[i]:
                                diff.extend(
                                    step_builder.xor_(x, y)
                                    for x, y in zip(
                                        states[i][name], states[j][name]
                                    )
                                )
                            step_solver.add_clause(diff)
            bad_at_k = bad.evaluate(step_view, k, step_ops)
            verdict = step_solver.solve(
                assumptions=[bad_at_k], max_conflicts=conflict_budget
            )
            merged = _merge_counters(base_delta, step_solver.last_solve)
        if verdict == UNSAT:
            certificate = None
            if policy.enabled:
                from ..cert import drat_certificate

                # the base leg is also UNSAT here (REACHABLE returned
                # above), so both legs of the unbounded proof are bundled
                certificate = drat_certificate(
                    {
                        "base": (
                            base_solver.proof_entries(),
                            base_solver.final_lemma(),
                        ),
                        "step": (
                            step_solver.proof_entries(),
                            step_solver.final_lemma(),
                        ),
                    },
                    policy,
                    name=query_name,
                    overflow=base_solver.proof_overflowed()
                    or step_solver.proof_overflowed(),
                )
            return _finish(
                root, UNREACHABLE, "induction closed at k=%d" % k, merged,
                certificate=certificate,
            )
        detail = (
            "induction step SAT (k too small or property not inductive)"
            if verdict == SAT
            else "induction step budget exhausted"
        )
        return _finish(root, UNDETERMINED, detail, merged)

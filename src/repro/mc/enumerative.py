"""Enumerative (explicit-context) model-checking engine.

This engine exhaustively simulates a *finite context family* -- a declared
set of (initial architectural state, input sequence) pairs -- and evaluates
cover queries concretely over the recorded traces.  Within its family it is
both sound and complete: a cover is REACHABLE iff some enumerated trace
satisfies it.  When the family had to be truncated (sampled), negative
verdicts degrade to UNDETERMINED, mirroring the resource-limited verdicts
of a commercial model checker.

Why it exists: the paper evaluates ~160k SVA properties at minutes per
property on a Xeon cluster.  Our designs are width-scaled so that the
relevant context space is small enough to enumerate, which turns each of
those minutes into microseconds while preserving the verdicts.  The
SAT-based :mod:`repro.mc.bmc` engine answers the same queries symbolically
and is cross-checked against this engine in the test suite.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..props.query import Query
from ..props.views import ConcreteOps, ConcreteTraceView
from ..sim.simulator import Simulator
from ..rtl.netlist import Netlist
from .outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from .stats import PropertyStats

__all__ = [
    "Context",
    "ReactiveContext",
    "TraceDB",
    "EnumerativeEngine",
    "simulate_context",
]


@dataclass(frozen=True)
class Context:
    """One concrete execution context.

    ``reset_overrides`` assigns initial values to architectural registers
    (the paper's "only architectural state is symbolically initialized");
    ``input_sequence`` drives the DUV's primary inputs cycle by cycle.
    """

    reset_overrides: Tuple[Tuple[str, int], ...]
    input_sequence: Tuple[Tuple[Tuple[str, int], ...], ...]
    label: str = ""

    @staticmethod
    def make(reset_overrides: Dict[str, int], inputs: Sequence[Dict[str, int]], label=""):
        return Context(
            reset_overrides=tuple(sorted(reset_overrides.items())),
            input_sequence=tuple(
                tuple(sorted(cycle.items())) for cycle in inputs
            ),
            label=label,
        )


@dataclass(frozen=True)
class ReactiveContext:
    """A context whose inputs react to observations (e.g. fetch handshakes).

    ``driver_factory()`` returns a fresh callable ``f(t, prev_obs) -> dict``
    invoked once per cycle; ``prev_obs`` is the previous cycle's observation
    dict (None at t=0), letting program drivers replay instructions until
    the DUV's fetch interface accepts them.
    """

    reset_overrides: Tuple[Tuple[str, int], ...]
    driver_factory: Callable[[], Callable]
    horizon: int
    label: str = ""
    # the named signals the driver reads from prev_obs; keeping this list
    # small avoids materializing every observable as a dict each cycle
    feedback_signals: Tuple[str, ...] = ("fetch_ready", "pipe_quiesce")

    @staticmethod
    def make(reset_overrides: Dict[str, int], driver_factory, horizon: int, label="",
             feedback_signals=("fetch_ready", "pipe_quiesce")):
        return ReactiveContext(
            reset_overrides=tuple(sorted(reset_overrides.items())),
            driver_factory=driver_factory,
            horizon=horizon,
            label=label,
            feedback_signals=tuple(feedback_signals),
        )


def simulate_context(simulator: Simulator, context) -> List[Tuple[int, ...]]:
    """Reset ``simulator`` and drive one context through it, returning rows.

    Shared between :class:`TraceDB` (which builds views for many queries)
    and cover-witness replay (:mod:`repro.cert`), which re-drives the
    same stimulus through a *fresh* simulator so its check is independent
    of the rows the original verdict was read from.
    """
    simulator.reset(dict(context.reset_overrides))
    if isinstance(context, ReactiveContext):
        # hand the driver a minimal dict of its declared feedback
        # signals instead of materializing every observable
        index = getattr(simulator, "_observable_index", None)
        if index is None:
            index = {
                name: i for i, name in enumerate(simulator.observable_names)
            }
            simulator._observable_index = index
        feedback = [
            (name, index[name])
            for name in context.feedback_signals
            if name in index
        ]
        driver = context.driver_factory()
        rows = []
        prev_obs = None
        for t in range(context.horizon):
            row = simulator.step_tuple(driver(t, prev_obs))
            rows.append(row)
            prev_obs = {name: row[i] for name, i in feedback}
        return rows
    return [
        simulator.step_tuple(dict(cycle_inputs))
        for cycle_inputs in context.input_sequence
    ]


class TraceDB:
    """Simulated traces for a context family, reusable across many queries."""

    def __init__(self, netlist: Netlist, contexts: Iterable, complete: bool):
        self.netlist = netlist
        self.complete = complete
        self.contexts: List = []
        self.views: List[ConcreteTraceView] = []
        simulator = Simulator(netlist)
        names = simulator.observable_names
        for context in contexts:
            rows = simulate_context(simulator, context)
            self.contexts.append(context)
            self.views.append(ConcreteTraceView(rows, names=names))

    def __len__(self):
        return len(self.views)


class EnumerativeEngine:
    """Checks queries against a :class:`TraceDB`."""

    name = "enumerative"

    def __init__(self, tracedb: TraceDB, stats: Optional[PropertyStats] = None):
        self.tracedb = tracedb
        self.stats = stats

    def check(self, query: Query) -> CheckResult:
        start = time.perf_counter()
        ops = ConcreteOps
        witness = None
        outcome = UNREACHABLE if self.tracedb.complete else UNDETERMINED
        scanned = 0
        depth = 0
        for context, view in zip(self.tracedb.contexts, self.tracedb.views):
            scanned += 1
            depth = max(depth, view.horizon)
            if not self._satisfies_assumes(view, query.assumes):
                continue
            if query.prop.evaluate(view, ops):
                outcome = REACHABLE
                witness = view.as_dicts()
                break
        elapsed = time.perf_counter() - start
        result = CheckResult(
            query_name=query.name,
            outcome=outcome,
            engine=self.name,
            witness=witness,
            time_seconds=elapsed,
            detail="" if self.tracedb.complete else "context family truncated",
            depth=depth,
            solver={"contexts_scanned": scanned,
                    "contexts_total": len(self.tracedb)},
        )
        if self.stats is not None:
            self.stats.record(result)
            obs.note_property(outcome, elapsed)
        return result

    @staticmethod
    def _satisfies_assumes(view, assumes):
        ops = ConcreteOps
        for expr in assumes:
            for t in range(view.horizon):
                if not expr.evaluate(view, t, ops):
                    return False
        return True

"""Property-evaluation statistics.

Reproduces the accounting of SS VII-B3: number of properties evaluated,
mean time per property, and the fraction of undetermined outcomes, broken
down by tool phase (RTL2MuPATH vs SynthLC) and DUV (core vs cache).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from .outcomes import CheckResult

__all__ = ["PropertyStats"]


@dataclass
class PropertyStats:
    """Mutable accumulator shared by a verification run."""

    label: str = ""
    results: List[CheckResult] = field(default_factory=list)

    def record(self, result: CheckResult):
        self.results.append(result)

    @property
    def count(self):
        return len(self.results)

    @property
    def total_time(self):
        return sum(r.time_seconds for r in self.results)

    @property
    def mean_time(self):
        return self.total_time / self.count if self.count else 0.0

    @property
    def outcome_histogram(self) -> Dict[str, int]:
        return dict(Counter(r.outcome for r in self.results))

    @property
    def undetermined_fraction(self):
        if not self.count:
            return 0.0
        histogram = self.outcome_histogram
        return histogram.get("undetermined", 0) / self.count

    def merged(self, other: "PropertyStats") -> "PropertyStats":
        # skip empty labels so one unlabeled side does not yield "+bmc"
        labels = [label for label in (self.label, other.label) if label]
        merged = PropertyStats(label="+".join(labels))
        merged.results = list(self.results) + list(other.results)
        return merged

    def to_dict(self) -> Dict:
        """JSON/pickle-ready form, so worker-process stats can be shipped
        back and merged into the parent; exact inverse of :meth:`from_dict`."""
        return {
            "label": self.label,
            "results": [r.to_dict() for r in self.results],
        }

    @staticmethod
    def from_dict(payload: Dict) -> "PropertyStats":
        stats = PropertyStats(label=payload.get("label", ""))
        stats.results = [CheckResult.from_dict(d) for d in payload["results"]]
        return stats

    def summary(self) -> str:
        return (
            "%s: %d properties, %.4fs/property mean, %.2f%% undetermined"
            % (
                self.label or "run",
                self.count,
                self.mean_time,
                100.0 * self.undetermined_fraction,
            )
        )

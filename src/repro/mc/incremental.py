"""Incremental k-induction: one growing proof context per design.

The legacy :func:`~repro.mc.kinduction.prove_unreachable_kinduction`
builds two fresh solvers (base + inductive step) and re-bit-blasts the
whole design for every property.  :class:`IncrementalInductionContext`
builds each unrolling once and answers every subsequent property against
it:

* the **base case** swaps properties via solver assumptions on the single
  reset-rooted unrolling (Tseitin definitions of each property's target
  accumulate through the builder's gate caches, so repeated structure is
  shared);
* the **inductive step** installs each property's "good at t < k"
  constraints behind an activation literal, solves under
  ``[activation, bad_at_k]``, and retracts the group afterwards --
  learned clauses survive from property to property, only the
  per-property constraints come and go;
* simple-path (state-distinctness) strengthening is asserted once,
  permanently, since it is property-independent.

:meth:`IncrementalInductionContext.extend_k` deepens both unrollings in
place (k -> k+1 blasts one more frame each and adds the new distinctness
pairs) instead of rebuilding.  Soundness caveat: the step formula's
simple-path constraints span exactly ``k + 1`` states, so a context
answers at its *current* k only -- extension is monotonic.

:class:`InductionPool` memoizes contexts per (netlist, sequential
support, symbolic-register set, simple-path flag).  With ``coi=True``
each property is sliced to its sequential cone of influence
(:mod:`repro.rtl.coi`) enriched with every named signal computable from
the same support, so properties whose support is covered by an existing
context's cone reuse it -- that sharing is how a worker drains a whole
same-design property group on a single solver.

Verdict parity with the legacy path is the soundness argument (see
``tests/test_parity_incremental.py``): definite verdicts must coincide,
and an UNDETERMINED may only be traded up when it was caused by a
conflict-budget exhaustion -- "step SAT, k too small" and "no witness in
a bounded horizon" are definite facts both paths must agree on.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..obs.metrics import REGISTRY
from ..props.exprs import CycleExpr
from ..props.views import SymbolicOps, SymbolicTraceView
from ..rtl.coi import coi_cone, coi_slice
from ..rtl.netlist import Netlist
from ..solver.bitblast import blast_frame, paused_gc
from ..solver.bits import BitBuilder
from ..solver.sat import SAT, UNKNOWN, UNSAT, SatSolver
from ..solver.share import EXCHANGE
from .outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult

__all__ = ["IncrementalInductionContext", "InductionPool"]


def _reuse_counter():
    return REGISTRY.counter(
        "repro_solver_incremental_reuse_total",
        "solve() calls answered on a reused solver (learned clauses retained)",
    )


class _Unrolling:
    """One growing transition unrolling over its own solver."""

    def __init__(
        self,
        netlist: Netlist,
        symbolic_init: bool,
        symbolic_registers,
        preprocess: bool = True,
        proof: bool = False,
    ):
        self.netlist = netlist
        self.solver = SatSolver(preprocess=preprocess, proof=proof)
        self.builder = BitBuilder(self.solver)
        self.frames: List = []
        self._frozen_frames = 0
        state: Dict[str, List[int]] = {}
        for reg, _ in netlist.registers:
            if symbolic_init or reg.name in symbolic_registers:
                state[reg.name] = self.builder.fresh_word(reg.width)
            else:
                state[reg.name] = self.builder.const_word(reg.reset, reg.width)
        self.initial_state = state
        self._frontier = state
        for bits in state.values():
            self.solver.freeze_many(abs(lit) for lit in bits)
        self.view = SymbolicTraceView(self.frames, self.builder)
        self.ops = SymbolicOps(self.builder)

    def extend_to(self, horizon: int):
        state = self._frontier
        for _ in range(len(self.frames), horizon):
            input_bits = {
                node.name: self.builder.fresh_word(node.width)
                for node in self.netlist.inputs
            }
            frame = blast_frame(self.builder, self.netlist, state, input_bits)
            self.frames.append(frame)
            state = frame.next_state
        self._frontier = state
        # freeze the interface bits future clauses will mention (property
        # targets over named signals, distinctness over state words):
        # preprocessing must never variable-eliminate them
        freeze = self.solver.freeze_many
        for frame in self.frames[self._frozen_frames :]:
            for bits in frame.named.values():
                freeze(abs(lit) for lit in bits)
            for bits in frame.next_state.values():
                freeze(abs(lit) for lit in bits)
        self._frozen_frames = len(self.frames)

    @property
    def states(self):
        """State vectors s_0 .. s_h (initial plus each frame's next)."""
        return [self.initial_state] + [f.next_state for f in self.frames]


class _ShareEnd:
    """One solver's hookup to the process-local clause exchange."""

    def __init__(self, key: str, solver: SatSolver, activation: int):
        self.key = key
        self.solver = solver
        self.activation = activation
        self.cursor = 0
        self.own: set = set()


class _SharedLink:
    """Wires a context's base/step solvers into the portfolio exchange.

    Armed exactly once, over the context's *creation* build (frames plus
    distinctness, before any property): that is the prefix every peer
    worker constructs identically, so clauses learned over it are valid
    lemmas for all of them.  The share key embeds the prefix variable
    count and a sampled clause fingerprint -- builds that diverged for
    any reason get distinct keys and exchange nothing.
    """

    def __init__(self, key: str, k: int, base: _Unrolling, step: _Unrolling):
        self.ends: List[_ShareEnd] = []
        for role, unrolling in (("base", base), ("step", step)):
            solver = unrolling.solver
            limit = solver.mark_share_prefix()
            clauses = solver._clauses
            stride = max(1, len(clauses) // 64)
            sample = tuple(tuple(c) for c in clauses[::stride])
            # int-tuple hashes are not randomized across processes, so
            # this fingerprint is stable worker-to-worker
            fingerprint = hash((limit, len(clauses), sample)) & 0xFFFFFFFFFFFF
            full_key = "%s|k%d|%s|v%d|f%x" % (key, k, role, limit, fingerprint)
            # the import guard: a post-prefix activation literal assumed
            # on every solve, so foreign clauses stay retractable and can
            # never leak into an unrelated check's assumption state
            activation = solver.new_activation()
            self.ends.append(_ShareEnd(full_key, solver, activation))

    @property
    def base_activation(self) -> int:
        return self.ends[0].activation

    @property
    def step_activation(self) -> int:
        return self.ends[1].activation

    def pull(self) -> int:
        """Import peers' newly published clauses (activation-guarded)."""
        imported = 0
        for end in self.ends:
            batch = EXCHANGE.snapshot(end.key, end.cursor)
            if not batch:
                continue
            end.cursor += len(batch)
            fresh = [c for c in batch if c not in end.own]
            if fresh:
                imported += end.solver.import_shared(fresh, end.activation)
        return imported

    def push(self) -> int:
        """Publish this context's newly exportable learned clauses."""
        published = 0
        for end in self.ends:
            batch = end.solver.export_shared()
            if batch:
                end.own.update(batch)
                published += EXCHANGE.publish(end.key, batch)
        return published

    def freeze_export(self) -> None:
        """Stop exporting (the prefix is about to grow non-conservatively).

        Importing continues: creation-prefix lemmas remain implied when
        the formula only gains clauses.
        """
        for end in self.ends:
            end.solver.freeze_share_export()


class IncrementalInductionContext:
    """Reusable k-induction context for one netlist.

    Answers :meth:`prove` for many ``bad`` properties on a single pair of
    unrollings; see the module docstring for the sharing scheme.
    """

    def __init__(
        self,
        netlist: Netlist,
        k: int,
        symbolic_registers=(),
        simple_path: bool = True,
        preprocess: bool = True,
        share_key: Optional[str] = None,
        certify=None,
    ):
        if k < 1:
            raise ValueError("k-induction needs k >= 1, got %d" % k)
        from ..cert import CertifyPolicy

        self.certify = certify or CertifyPolicy()
        self.netlist = netlist
        self.k = k
        self.symbolic_registers = frozenset(symbolic_registers)
        self.simple_path = simple_path
        self.preprocess = preprocess
        self.checks = 0
        proof = self.certify.enabled
        self._base = _Unrolling(
            netlist, False, self.symbolic_registers, preprocess=preprocess,
            proof=proof,
        )
        self._step = _Unrolling(netlist, True, (), preprocess=preprocess, proof=proof)
        self._asserted_pairs: set = set()
        self._build(k)
        # portfolio sharing is armed over the creation build only: after
        # extend_k the variable numbering depends on the property history,
        # so peers could no longer be assumed prefix-identical
        self._shared = (
            _SharedLink(share_key, k, self._base, self._step)
            if share_key is not None
            else None
        )

    def _build(self, k: int):
        with paused_gc():
            self._base.extend_to(k)
            self._step.extend_to(k + 1)
            if self.simple_path:
                # pairwise distinctness over s_0 .. s_k; on extension only
                # the pairs involving the new states are asserted.  Two
                # states differ iff some bit differs: one clause over the
                # per-bit difference gates -- the same constraint the
                # legacy path asserts, encoded without the equality-gate
                # tree and its unit-propagation cascade per pair
                states = self._step.states[: k + 1]
                xor_ = self._step.builder.xor_
                add_clause = self._step.solver.add_clause
                for i in range(len(states)):
                    for j in range(i + 1, len(states)):
                        if (i, j) in self._asserted_pairs:
                            continue
                        diff: List[int] = []
                        for name in states[i]:
                            diff.extend(
                                xor_(x, y)
                                for x, y in zip(states[i][name], states[j][name])
                            )
                        add_clause(diff)
                        self._asserted_pairs.add((i, j))

    def extend_k(self, new_k: int):
        """Monotonically deepen the context to answer at ``new_k``.

        Blasts only the new frames and asserts only the new distinctness
        pairs; afterwards :meth:`prove` answers at ``new_k``.
        """
        if new_k < self.k:
            raise ValueError(
                "induction context cannot shrink k %d -> %d" % (self.k, new_k)
            )
        if new_k > self.k:
            if self._shared is not None:
                # the deeper simple-path constraints are not conservative
                # over the creation prefix: clauses learned after them are
                # no longer lemmas of the shared formula, so stop exporting
                # (imports of creation-prefix lemmas remain sound)
                self._shared.freeze_export()
            self._build(new_k)
            self.k = new_k

    def prove(
        self, bad: CycleExpr, conflict_budget: Optional[int] = 200000
    ) -> CheckResult:
        """Try to prove ``bad`` globally unreachable at this context's k."""
        start = time.perf_counter()
        k = self.k
        if self.checks:
            _reuse_counter().inc(context="kinduction")
        self.checks += 1

        query_name = "kind(%r)" % (bad,)

        def _finish(sp, outcome, detail, solver_delta, witness=None, certificate=None):
            if self._shared is not None:
                self._shared.push()
            elapsed = time.perf_counter() - start
            sp.set("outcome", outcome)
            return CheckResult(
                query_name=query_name,
                outcome=outcome,
                engine="k-induction",
                witness=witness,
                time_seconds=elapsed,
                detail=detail,
                depth=k,
                solver=solver_delta,
                certificate=certificate,
            )

        with obs.span("mc.kinduction", k=k, incremental=True) as root:
            shared = self._shared
            if shared is not None:
                shared.pull()
            # ---- base case: BMC from reset for k steps, property assumed
            with obs.span("mc.kinduction.base"):
                base = self._base
                target = base.builder.FALSE
                for t in range(k):
                    target = base.builder.or_(
                        target, bad.evaluate(base.view, t, base.ops)
                    )
                assumptions = [target]
                if shared is not None:
                    assumptions.insert(0, shared.base_activation)
                verdict = base.solver.solve(
                    assumptions=assumptions, max_conflicts=conflict_budget
                )
                base_delta = dict(base.solver.last_solve)
                # snapshot the proof leg while the verdict is fresh: later
                # properties (and their retraction units) append to the
                # same shared log.  For a query the policy won't check
                # (spot-unsampled) the leg carries just the log length --
                # copying the whole shared log per query is the dominant
                # spot-mode cost otherwise.
                base_leg = None
                if self.certify.enabled and verdict == UNSAT:
                    base_leg = (
                        base.solver.proof_entries()
                        if self.certify.should_check_proof(query_name)
                        else base.solver.proof_length(),
                        base.solver.final_lemma(),
                    )
            if verdict == SAT:
                witness = [
                    {
                        name: base.builder.word_value(bits)
                        for name, bits in frame.named.items()
                    }
                    for frame in base.frames[:k]
                ]
                certificate = None
                if self.certify.enabled:
                    from ..cert import witness_certificate
                    from ..cert.witness import decode_model_witness
                    from ..props.views import ConcreteOps

                    decoded = decode_model_witness(base.builder, base.frames[:k])

                    def _fires(view):
                        return any(
                            bad.evaluate(view, t, ConcreteOps)
                            for t in range(min(k, view.horizon))
                        )

                    certificate = witness_certificate(
                        self.netlist,
                        decoded["registers"],
                        decoded["inputs"],
                        _fires,
                        self.certify,
                        name=query_name,
                    )
                return _finish(
                    root, REACHABLE, "base-case witness at k=%d" % k,
                    base_delta, witness=witness, certificate=certificate,
                )
            if verdict == UNKNOWN:
                return _finish(
                    root, UNDETERMINED, "base case budget exhausted", base_delta
                )

            # ---- inductive step: per-property constraints behind an
            # activation literal, retracted afterwards
            with obs.span("mc.kinduction.step"):
                step = self._step
                act = step.solver.new_activation()
                for t in range(k):
                    good = -bad.evaluate(step.view, t, step.ops)
                    step.solver.add_clause([good], activation=act)
                bad_at_k = bad.evaluate(step.view, k, step.ops)
                assumptions = [act, bad_at_k]
                if shared is not None:
                    assumptions.insert(0, shared.step_activation)
                verdict = step.solver.solve(
                    assumptions=assumptions, max_conflicts=conflict_budget
                )
                step_delta = dict(step.solver.last_solve)
                # capture the step leg BEFORE retract(): retraction logs a
                # root unit (-act) that would make the terminal lemma
                # (which contains -act) trivially implied -- a vacuous
                # certificate
                step_leg = None
                if self.certify.enabled and verdict == UNSAT:
                    step_leg = (
                        step.solver.proof_entries()
                        if self.certify.should_check_proof(query_name)
                        else step.solver.proof_length(),
                        step.solver.final_lemma(),
                    )
                step.solver.retract(act)
                merged: Dict[str, int] = {}
                for delta in (base_delta, step_delta):
                    for key, value in delta.items():
                        merged[key] = merged.get(key, 0) + value
            if verdict == UNSAT:
                certificate = None
                if self.certify.enabled and base_leg and step_leg:
                    from ..cert import drat_certificate

                    certificate = drat_certificate(
                        {"base": base_leg, "step": step_leg},
                        self.certify,
                        name=query_name,
                        overflow=base.solver.proof_overflowed()
                        or step.solver.proof_overflowed(),
                    )
                return _finish(
                    root, UNREACHABLE, "induction closed at k=%d" % k, merged,
                    certificate=certificate,
                )
            detail = (
                "induction step SAT (k too small or property not inductive)"
                if verdict == SAT
                else "induction step budget exhausted"
            )
            return _finish(root, UNDETERMINED, detail, merged)


class InductionPool:
    """Memoized :class:`IncrementalInductionContext` instances.

    One pool per process (or per worker) is enough: contexts are keyed by
    (netlist, sequential support, symbolic registers, simple-path), and a
    property whose support is covered by an existing context's cone
    reuses that context's solvers -- the "one worker drains a property
    group" pattern the engine's same-design batching sets up.
    """

    def __init__(
        self,
        coi: bool = True,
        preprocess: bool = True,
        share_namespace: Optional[str] = None,
        certify=None,
    ):
        self.coi = coi
        self.preprocess = preprocess
        self.certify = certify
        # non-None arms portfolio clause sharing: contexts publish/import
        # short learned clauses through the process-local exchange under
        # keys rooted at this namespace (workers proving the same design
        # recipe use the same namespace, so their peers' lemmas connect)
        self.share_namespace = share_namespace
        self._contexts: Dict[Tuple, IncrementalInductionContext] = {}
        self._supports: Dict[int, Dict[str, Tuple]] = {}

    def _share_key(self, support, symbolic_registers, simple_path) -> Optional[str]:
        if self.share_namespace is None:
            return None
        if support is None:
            token = "full"
        else:
            token = "r:%s;i:%s" % (
                ",".join(sorted(support[0])),
                ",".join(sorted(support[1])),
            )
        return "%s|%s|%s|%s|%s" % (
            self.share_namespace,
            token,
            ",".join(sorted(symbolic_registers)),
            "sp" if simple_path else "nosp",
            "coi" if self.coi else "nocoi",
        )

    def _named_supports(self, netlist: Netlist) -> Dict[str, Tuple]:
        """name -> (register names, input names) sequential support, for
        every named signal; computed once per netlist."""
        cached = self._supports.get(id(netlist))
        if cached is None:
            cached = {
                name: self._support(netlist, coi_cone(netlist, (name,)))
                for name in netlist.named
            }
            self._supports[id(netlist)] = cached
        return cached

    @staticmethod
    def _support(netlist: Netlist, cone) -> Tuple:
        regs = frozenset(
            reg.name for reg, _ in netlist.registers if reg.q.uid in cone
        )
        inputs = frozenset(
            node.name for node in netlist.inputs if node.uid in cone
        )
        return (regs, inputs)

    def context_for(
        self,
        netlist: Netlist,
        bad: CycleExpr,
        k: int,
        symbolic_registers=(),
        simple_path: bool = True,
        certify=None,
    ) -> IncrementalInductionContext:
        from ..cert import CertifyPolicy

        policy = certify or self.certify or CertifyPolicy()
        certified = bool(policy.enabled)
        symbolic_registers = frozenset(symbolic_registers)
        support = None
        if self.coi:
            targets = tuple(sorted(bad.signals()))
            support = self._support(netlist, coi_cone(netlist, targets))
        key = (netlist, support, symbolic_registers, simple_path, certified)
        ctx = self._contexts.get(key)
        if (ctx is None or ctx.k > k) and self.coi:
            # a context whose cone covers this property's support serves it
            # just as well (its slice retains every named signal computable
            # from that support); prefer the smallest such cone, and skip
            # contexts already past this k (they cannot shrink)
            best = None
            for cand_key, cand in self._contexts.items():
                nl, sup, sregs, sp, cert = cand_key
                if nl is not netlist or sup is None or cand.k > k:
                    continue
                if sregs != symbolic_registers or sp != simple_path:
                    continue
                if cert != certified:
                    continue
                if support[0] <= sup[0] and support[1] <= sup[1]:
                    if best is None or len(sup[0]) < len(best[0][1][0]):
                        best = (cand_key, cand)
            if best is not None:
                key, ctx = best
        if ctx is None or ctx.k > k:
            # contexts only grow; a smaller-k request gets a fresh context
            # (simple-path strengthening is k-specific, see module doc)
            key = (netlist, support, symbolic_registers, simple_path, certified)
            target_netlist = netlist
            if self.coi:
                # enrich the slice with every named signal whose support
                # lies inside this property's cone: equal- or smaller-cone
                # properties then share this context instead of building
                # their own
                supports = self._named_supports(netlist)
                enriched = list(targets) + [
                    name
                    for name, sup in supports.items()
                    if sup[0] <= support[0] and sup[1] <= support[1]
                ]
                target_netlist = coi_slice(netlist, enriched).netlist
            ctx = IncrementalInductionContext(
                target_netlist,
                k,
                symbolic_registers,
                simple_path,
                preprocess=self.preprocess,
                share_key=self._share_key(
                    support, symbolic_registers, simple_path
                ),
                certify=policy,
            )
            self._contexts[key] = ctx
        elif ctx.k < k:
            ctx.extend_k(k)
        return ctx

    def prove(
        self,
        netlist: Netlist,
        bad: CycleExpr,
        k: int,
        symbolic_registers=(),
        conflict_budget: Optional[int] = 200000,
        simple_path: bool = True,
        certify=None,
    ) -> CheckResult:
        ctx = self.context_for(
            netlist, bad, k, symbolic_registers, simple_path, certify=certify
        )
        return ctx.prove(bad, conflict_budget=conflict_budget)

"""Portfolio engine: enumerative first, SAT second.

A commercial property verifier schedules several proof engines per
property; this combinator does the light-weight equivalent for our stack.
Queries are first answered against an exhaustive context family (cheap,
and conclusive when the family is complete); inconclusive verdicts fall
through to the SAT-backed bounded model checker over a symbolic context,
which can both find witnesses outside the family and (under a declared
complete horizon) prove unreachability.
"""

from __future__ import annotations

import time
from typing import Optional

from .. import obs
from ..props.query import Query
from .bmc import BmcContext
from .enumerative import EnumerativeEngine, TraceDB
from .outcomes import REACHABLE, UNDETERMINED, UNREACHABLE, CheckResult
from .stats import PropertyStats

__all__ = ["PortfolioEngine"]


class PortfolioEngine:
    """Answer queries with the cheapest engine that is conclusive."""

    name = "portfolio"

    def __init__(
        self,
        tracedb: TraceDB,
        bmc: Optional[BmcContext] = None,
        stats: Optional[PropertyStats] = None,
    ):
        self.enumerative = EnumerativeEngine(tracedb)
        self.bmc = bmc
        self.stats = stats

    def check(self, query: Query) -> CheckResult:
        from ..faults import injection_point

        injection_point("solver.check", query=query.name)
        with obs.span("mc.check", engine=self.name, query=query.name) as sp:
            started = time.perf_counter()
            first = self.enumerative.check(query)
            result = first
            if first.outcome == UNDETERMINED and self.bmc is not None:
                second = self.bmc.check(query)
                # the symbolic engine can upgrade an inconclusive verdict either
                # way; keep the stronger of the two
                if second.outcome != UNDETERMINED:
                    result = second
            elapsed = time.perf_counter() - started
            result = CheckResult(
                query_name=query.name,
                outcome=result.outcome,
                engine="%s->%s" % (self.name, result.engine),
                witness=result.witness,
                time_seconds=elapsed,
                detail=result.detail,
                depth=result.depth,
                solver=result.solver,
            )
            sp.set("outcome", result.outcome)
            if self.stats is not None:
                self.stats.record(result)
                obs.note_property(result.outcome, elapsed)
            return result

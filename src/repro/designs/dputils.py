"""Datapath helper circuits shared by the case-study designs."""

from __future__ import annotations

from typing import Tuple

from ..rtl.module import Module
from ..rtl.nodes import Node, cat, mux, zext

__all__ = [
    "var_shift_left",
    "var_shift_right",
    "msb_index",
    "unsigned_divide",
    "signed_lt",
]


def var_shift_left(value: Node, amount: Node) -> Node:
    """Barrel shifter: ``value << amount`` with a variable shift amount."""
    out = value
    for bit in range(amount.width):
        if (1 << bit) >= value.width:
            out = mux(amount[bit], value._mod().const(0, value.width), out)
        else:
            out = mux(amount[bit], out << (1 << bit), out)
    return out


def var_shift_right(value: Node, amount: Node) -> Node:
    """Barrel shifter: ``value >> amount`` (logical)."""
    out = value
    for bit in range(amount.width):
        if (1 << bit) >= value.width:
            out = mux(amount[bit], value._mod().const(0, value.width), out)
        else:
            out = mux(amount[bit], out >> (1 << bit), out)
    return out


def msb_index(value: Node) -> Node:
    """Index of the most-significant set bit (0 when value is 0 or bit0)."""
    module = value._mod()
    width = value.width
    index_width = max(1, (width - 1).bit_length())
    out = module.const(0, index_width)
    for i in range(width):  # highest set bit wins
        out = mux(value[i], module.const(i, index_width), out)
    return out


def unsigned_divide(dividend: Node, divisor: Node) -> Tuple[Node, Node]:
    """Combinational restoring divider: returns (quotient, remainder).

    Division by zero follows the RISC-V convention: quotient = all-ones,
    remainder = dividend.
    """
    module = dividend._mod()
    width = dividend.width
    rem = module.const(0, width + 1)
    divisor_wide = zext(divisor, width + 1)
    quotient_bits = []
    for i in reversed(range(width)):
        rem = cat(rem[0:width], dividend[i])  # shift in next dividend bit
        ge = ~rem.ult(divisor_wide)
        rem = mux(ge, rem - divisor_wide, rem)
        quotient_bits.append(ge)  # MSB first
    quotient = cat(*quotient_bits)
    remainder = rem[0:width]
    div_zero = divisor.eq(0)
    quotient = mux(div_zero, module.const((1 << width) - 1, width), quotient)
    remainder = mux(div_zero, dividend, remainder)
    return quotient, remainder


def signed_lt(a: Node, b: Node) -> Node:
    """Signed less-than via the bias trick: (a ^ msb) <u (b ^ msb)."""
    module = a._mod()
    bias = module.const(1 << (a.width - 1), a.width)
    return (a ^ bias).ult(b ^ bias)

"""Verification contexts for the case-study cores.

RTL2MuPATH explores an instruction under verification (IUV) "in all
reachable contexts ... preceded/followed by an arbitrary number of valid
instructions" (SS V-B).  The paper's artifact makes this tractable with
*restricted execution assumptions* (Appendix I-F/G: the DIV experiment
issues the IUV right after reset and surrounds it with instructions drawn
from a small set).  This module provides the equivalent machinery for our
enumerative engine: reactive program drivers that feed instruction streams
through the fetch handshake, and context-family generators that sweep

* the IUV's operand values (covering every divider-latency class, both
  multiplier zero-skip arms, all page-offset relations, taken and
  not-taken branch outcomes, aligned and misaligned targets), and
* neighbouring transmitter instructions before/after the IUV.

Families report whether they were truncated so negative verdicts degrade
to UNDETERMINED exactly like a resource-limited model checker.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..mc.enumerative import ReactiveContext
from . import isa

__all__ = [
    "TaintSpec",
    "ScriptItem",
    "program_driver_factory",
    "ContextFamilyConfig",
    "ContextGroup",
    "CoreContextProvider",
    "FIRST_PC",
    "slot_pc",
    "STRAIGHT_LINE_POOL",
    "OPERAND_CLASSES",
    "golden_model",
    "golden_steps",
    "GoldenStep",
    "ProgramRun",
    "run_program",
    "sample_operand",
    "sample_sequence",
]

FIRST_PC = 4  # fetch_pc reset value: the first accepted instruction's PC


def slot_pc(slot: int) -> int:
    """IID (PC) of the ``slot``-th accepted instruction."""
    return FIRST_PC + 4 * slot


@dataclass(frozen=True)
class TaintSpec:
    """Taint targeting for SynthLC runs (ignored on uninstrumented DUVs)."""

    pc: int
    rs1: bool = False
    rs2: bool = False


# Script items: ("feed", (word, ...)) | ("wait_quiesce",) | ("flush",) | ("idle", n)
ScriptItem = Tuple


def program_driver_factory(
    script: Sequence[ScriptItem],
    taint: Optional[TaintSpec] = None,
    instrumented: bool = False,
):
    """Build a reactive-driver factory executing ``script``.

    The driver replays each instruction until the fetch interface accepts
    it (``fetch_ready`` observed high while driving ``in_valid``), waits
    for pipeline quiescence on ``wait_quiesce`` items, and pulses
    ``taint_flush`` for one cycle on ``flush`` items (Assumption 3).
    """
    script = tuple(script)

    def factory():
        state = {"phase": 0, "ptr": 0, "idle": 0, "driving": False}

        def driver(t, prev_obs):
            inputs: Dict[str, int] = {}
            if taint is not None:
                inputs["taint_pc"] = taint.pc
                inputs["taint_rs1"] = 1 if taint.rs1 else 0
                inputs["taint_rs2"] = 1 if taint.rs2 else 0
            if instrumented:
                inputs["taint_intro"] = 1
                inputs["taint_flush"] = 0

            # did the previous cycle's instruction get accepted?
            if state["driving"] and prev_obs is not None and prev_obs["fetch_ready"]:
                state["ptr"] += 1
            state["driving"] = False

            while state["phase"] < len(script):
                item = script[state["phase"]]
                kind = item[0]
                if kind == "feed":
                    words = item[1]
                    if state["ptr"] >= len(words):
                        state["phase"] += 1
                        state["ptr"] = 0
                        continue
                    inputs["in_valid"] = 1
                    inputs["in_instr"] = words[state["ptr"]]
                    state["driving"] = True
                    return inputs
                if kind == "wait_quiesce":
                    # require at least one waited cycle: the observation lags
                    # the drive by a cycle, so the pre-feed quiescent state
                    # must not satisfy the wait
                    if (
                        state.get("waited")
                        and prev_obs is not None
                        and prev_obs.get("pipe_quiesce")
                    ):
                        state["phase"] += 1
                        state["waited"] = False
                        continue
                    state["waited"] = True
                    return inputs
                if kind == "flush":
                    if instrumented:
                        inputs["taint_flush"] = 1
                    state["phase"] += 1
                    return inputs
                if kind == "idle":
                    if state["idle"] >= item[1]:
                        state["idle"] = 0
                        state["phase"] += 1
                        continue
                    state["idle"] += 1
                    return inputs
                raise ValueError("unknown script item %r" % (item,))
            return inputs

        return driver

    return factory


# ------------------------------------------------------- program execution
#
# Shared straight-line program machinery: the cosim suite, the assembler
# tests, and the perf oracle all run seeded instruction sequences against
# the core and compare with the architectural reference below.

# straight-line instruction pool (no branches/jumps/system: all commit)
STRAIGHT_LINE_POOL: Tuple[str, ...] = (
    "ADD", "SUB", "XOR", "OR", "AND", "SLT", "SLTU", "SLL", "SRL",
    "ADDI", "XORI", "ORI", "ANDI", "SLTI", "SLLI", "SRLI",
    "LUI", "AUIPC", "CSRRW", "CSRRWI", "FENCE",
    "MUL", "MULH", "MULW",
    "DIV", "DIVU", "REM", "REMU",
    "LW", "LB", "LHU",
    "SW", "SB",
)


@dataclass(frozen=True)
class GoldenStep:
    """One retired instruction in the architectural reference execution."""

    slot: int
    pc: int
    name: str
    cls: str
    rd: int
    rs1: int
    rs2: int
    imm: int
    a: int  # rs1 operand value (0 when unread)
    b: int  # rs2 operand value (0 when unread)
    result: Optional[int]
    addr: Optional[int]  # load/store effective address


def golden_steps(
    program: Sequence[int],
    arf_init: Sequence[int],
    *,
    xlen: int = 8,
    mem_words: int = 4,
    pc_bits: int = 8,
) -> Tuple[List[GoldenStep], List[int], List[int]]:
    """Instruction-at-a-time reference execution of a straight-line program.

    Returns ``(steps, arf, mem)``.  Only the straight-line classes (the
    instructions in :data:`STRAIGHT_LINE_POOL`) are supported: with no
    control flow every instruction commits, so sequential semantics are
    exactly the core's architectural semantics.
    """
    mask = (1 << xlen) - 1
    half = 1 << (xlen - 1)
    arf = [v & mask for v in arf_init]
    mem = [0] * mem_words
    steps: List[GoldenStep] = []

    def signed(x):
        return x - (1 << xlen) if x >= half else x

    for slot, word in enumerate(program):
        instr = isa.decode(word)
        spec = instr.spec
        pc = slot_pc(slot) & ((1 << pc_bits) - 1)
        a = arf[instr.rs1] if spec.reads_rs1 else 0
        b = arf[instr.rs2] if spec.reads_rs2 else 0
        imm = instr.imm
        result = None
        addr = None
        if spec.cls == "alu":
            operand_b = imm if spec.alu_op in (
                "addi", "slti", "xori", "ori", "andi", "slli", "srli"
            ) else b
            op = spec.alu_op
            if op in ("add", "addi"):
                result = (a + operand_b) & mask
            elif op == "sub":
                result = (a - operand_b) & mask
            elif op in ("xor", "xori"):
                result = a ^ operand_b
            elif op in ("or", "ori"):
                result = a | operand_b
            elif op in ("and", "andi"):
                result = a & operand_b
            elif op in ("slt", "slti"):
                result = int(signed(a) < signed(operand_b))
            elif op == "sltu":
                result = int(a < operand_b)
            elif op in ("sll", "slli"):
                result = (a << (operand_b & 7)) & mask
            elif op in ("srl", "srli"):
                result = a >> (operand_b & 7)
            elif op == "lui":
                result = (imm << (xlen - 4)) & mask
            elif op == "auipc":
                result = ((pc & ((1 << min(xlen, pc_bits)) - 1)) + imm) & mask
            elif op == "csr":
                result = a
            elif op == "csri":
                result = imm
            elif op == "nop":
                result = 0
        elif spec.cls == "mul":
            result = (a * b) & mask
        elif spec.cls == "div":
            # the scaled core computes all div/rem variants unsigned
            if b == 0:
                q, r = mask, a
            else:
                q, r = a // b, a % b
            result = r if spec.name.startswith("REM") else q
        elif spec.cls == "load":
            addr = (a + imm) & mask
            result = mem[addr % mem_words]
        elif spec.cls == "store":
            addr = (a + imm) & mask
            mem[addr % mem_words] = b
        else:
            raise ValueError(
                "golden model only supports straight-line classes, got %s"
                % spec.name
            )
        if spec.writes_rd and instr.rd != 0 and result is not None:
            arf[instr.rd] = result
        steps.append(
            GoldenStep(
                slot=slot, pc=pc, name=spec.name, cls=spec.cls,
                rd=instr.rd, rs1=instr.rs1, rs2=instr.rs2, imm=imm,
                a=a, b=b, result=result, addr=addr,
            )
        )
    return steps, arf, mem


def golden_model(
    program: Sequence[int],
    arf_init: Sequence[int],
    *,
    xlen: int = 8,
    mem_words: int = 4,
    pc_bits: int = 8,
) -> Tuple[List[int], List[int]]:
    """Architectural reference: returns (arf, mem) after the program."""
    _, arf, mem = golden_steps(
        program, arf_init, xlen=xlen, mem_words=mem_words, pc_bits=pc_bits
    )
    return arf, mem


@dataclass
class ProgramRun:
    """One program execution on the simulated core."""

    arf: List[int]
    mem: List[int]
    cycles: int  # cycle index of the first post-program quiescent observation
    retire: Dict[int, int]  # committed PC -> commit-observation cycle
    trace: Optional[object] = None  # repro.sim.Trace when recorded


def run_program(
    sim,
    program: Sequence[int],
    arf_init: Optional[Sequence[int]] = None,
    *,
    max_cycles: int = 4000,
    record_trace: bool = False,
) -> ProgramRun:
    """Feed ``program`` through the fetch handshake and run to quiescence.

    ``sim`` is a :class:`repro.sim.Simulator` over a core netlist.  The
    driver replays each word until ``fetch_ready`` accepts it (the same
    handshake :func:`program_driver_factory` implements) and stops at the
    first ``pipe_quiesce`` observation after the last accept.  Per-
    instruction retire timestamps come from the commit port: the cycle
    each ``commit_pc`` is observed with ``commit_fire`` high.
    """
    overrides = {}
    if arf_init is not None:
        overrides = {
            "arf_w%d" % i: v for i, v in enumerate(arf_init) if i
        }
    sim.reset(overrides)
    program = list(program)

    retire: Dict[int, int] = {}
    trace = None
    ptr = 0
    last_accept = -1
    cycles = None
    if record_trace:
        from ..sim import Trace

        trace = Trace(sim.observable_names)
        for t in range(max_cycles):
            inputs = {}
            if ptr < len(program):
                inputs = {"in_valid": 1, "in_instr": program[ptr]}
            obs = sim.step(inputs)
            trace.append(obs, {})
            if ptr < len(program) and obs["fetch_ready"]:
                ptr += 1
                last_accept = t
            if obs["commit_fire"]:
                retire.setdefault(obs["commit_pc"], t)
            if ptr >= len(program) and t > last_accept and obs["pipe_quiesce"]:
                cycles = t
                break
    else:
        i_ready = sim.observable_index("fetch_ready")
        i_quiesce = sim.observable_index("pipe_quiesce")
        i_fire = sim.observable_index("commit_fire")
        i_pc = sim.observable_index("commit_pc")
        for t in range(max_cycles):
            inputs = None
            if ptr < len(program):
                inputs = {"in_valid": 1, "in_instr": program[ptr]}
            obs = sim.step_tuple(inputs)
            if ptr < len(program) and obs[i_ready]:
                ptr += 1
                last_accept = t
            if obs[i_fire]:
                retire.setdefault(obs[i_pc], t)
            if ptr >= len(program) and t > last_accept and obs[i_quiesce]:
                cycles = t
                break
    if cycles is None:
        raise RuntimeError(
            "program did not quiesce within %d cycles" % max_cycles
        )
    state = sim.state_dict()
    arf = [state[name] for name in sorted(
        (n for n in state if n.startswith("arf_w")),
        key=lambda n: int(n[5:]),
    )]
    mem = [state[name] for name in sorted(
        (n for n in state if n.startswith("amem_w")),
        key=lambda n: int(n[6:]),
    )]
    return ProgramRun(arf=arf, mem=mem, cycles=cycles, retire=retire, trace=trace)


# ------------------------------------------------- seeded sequence sampling

#: operand-value classes the sequence sampler draws register inits from;
#: together they cover every divider-latency class, both multiplier
#: zero-skip arms, all low-bit page offsets, and negative (MSB-set) values
OPERAND_CLASSES: Tuple[str, ...] = (
    "zero", "one", "small", "pow2", "negative", "max", "any",
)


def sample_operand(rng: random.Random, xlen: int, classes: Sequence[str] = OPERAND_CLASSES) -> int:
    """Draw one operand value from a named value class."""
    mask = (1 << xlen) - 1
    cls = classes[rng.randrange(len(classes))]
    if cls == "zero":
        return 0
    if cls == "one":
        return 1
    if cls == "small":
        return rng.randrange(4)
    if cls == "pow2":
        return 1 << rng.randrange(xlen)
    if cls == "negative":
        return (1 << (xlen - 1)) | rng.randrange(1 << (xlen - 1))
    if cls == "max":
        return mask
    if cls == "any":
        return rng.randrange(1 << xlen)
    raise ValueError("unknown operand class %r" % cls)


def sample_sequence(
    seed: int,
    *,
    min_len: int = 1,
    max_len: int = 8,
    xlen: int = 8,
    nregs: int = 8,
    pool: Sequence[str] = STRAIGHT_LINE_POOL,
    operand_classes: Sequence[str] = OPERAND_CLASSES,
) -> Tuple[List[int], List[int]]:
    """One seeded straight-line instruction sequence with operand control.

    Returns ``(program_words, arf_init)``; deterministic in ``seed``.  The
    register file is initialized from :data:`OPERAND_CLASSES` draws (x0
    stays zero), which is what steers fuzzed sequences into every
    operand-dependent timing class of the divider, the zero-skip
    multiplier, and the store-to-load offset matcher.
    """
    rng = random.Random(seed)
    length = rng.randint(min_len, max_len)
    program = [
        isa.encode(
            pool[rng.randrange(len(pool))],
            rd=rng.randrange(nregs),
            rs1=rng.randrange(nregs),
            rs2=rng.randrange(nregs),
        )
        for _ in range(length)
    ]
    arf_init = [0] + [
        sample_operand(rng, xlen, operand_classes) for _ in range(nregs - 1)
    ]
    return program, arf_init


def default_value_set(xlen: int) -> Tuple[int, ...]:
    """Operand values covering every divider-latency class, zero/non-zero
    multiplier arms, all low-bit offsets, and a negative (MSB-set) value."""
    values = {0, 1, 2, 3}
    values.update(1 << i for i in range(xlen))
    values.add((1 << xlen) - 1)  # all-ones: negative divisor / max magnitude
    values.add((1 << (xlen - 1)) | 1)  # negative odd value
    return tuple(sorted(values))


def small_value_set(xlen: int) -> Tuple[int, ...]:
    """Reduced interferer-operand values: offset-0 / offset-match / offset-miss,
    zero / short / long divider latencies."""
    return (0, 1, 2, 3, 1 << (xlen - 1), (1 << xlen) - 1)


@dataclass(frozen=True)
class ContextFamilyConfig:
    """Knobs controlling context generation (the restriction assumptions)."""

    horizon: int = 48
    iuv_values: Optional[Tuple[int, ...]] = None  # default: default_value_set
    neighbor_values: Optional[Tuple[int, ...]] = None  # default: small_value_set
    neighbors: Tuple[str, ...] = ("ADD", "MUL", "DIV", "LW", "SW", "BEQ", "JALR", "ECALL")
    include_solo: bool = True
    include_preceding: bool = True
    include_following: bool = True
    include_deep: bool = True  # 3/4-instruction shapes: drain & SCB-full stalls
    max_contexts: Optional[int] = None  # cap -> family marked incomplete
    instrumented: bool = False


@dataclass
class ContextGroup:
    """Contexts sharing one IUV placement (hence one IUV PC)."""

    iuv_pc: int
    contexts: List[ReactiveContext]
    complete: bool
    label: str = ""
    taint_pc: Optional[int] = None  # transmitter slot PC (taint runs only)


class CoreContextProvider:
    """Context families for the CVA6-like core DUV."""

    # register allocation: IUV uses r1/r2 -> r3; neighbours use r4/r5 -> r6,
    # keeping architectural dependencies out of the picture so that all
    # observed interactions are microarchitectural channels.
    IUV_RS1, IUV_RS2, IUV_RD = 1, 2, 3
    NB_RS1, NB_RS2, NB_RD = 4, 5, 6

    def __init__(self, xlen: int, config: Optional[ContextFamilyConfig] = None):
        self.xlen = xlen
        self.config = config or ContextFamilyConfig()

    # ------------------------------------------------------------------ helpers
    def _iuv_word(self, name: str) -> int:
        return isa.encode(name, rd=self.IUV_RD, rs1=self.IUV_RS1, rs2=self.IUV_RS2)

    def _neighbor_word(self, name: str) -> int:
        return isa.encode(name, rd=self.NB_RD, rs1=self.NB_RS1, rs2=self.NB_RS2)

    def _overrides(self, v1, v2, w1, w2) -> Dict[str, int]:
        return {
            "arf_w%d" % self.IUV_RS1: v1,
            "arf_w%d" % self.IUV_RS2: v2,
            "arf_w%d" % self.NB_RS1: w1,
            "arf_w%d" % self.NB_RS2: w2,
        }

    def _context(self, script, overrides, label, taint=None) -> ReactiveContext:
        return ReactiveContext.make(
            overrides,
            program_driver_factory(
                script, taint=taint, instrumented=self.config.instrumented
            ),
            horizon=self.config.horizon,
            label=label,
        )

    # --------------------------------------------------------------- uPATH runs
    def mupath_groups(self, iuv_name: str) -> List[ContextGroup]:
        """Context groups for RTL2MuPATH's exploration of ``iuv_name``.

        Sweeps are additive rather than multiplicative: the IUV's operand
        pair is swept at representative neighbour values, and the
        neighbour's operand pair is swept at representative IUV values.
        This is the enumerative analogue of the paper artifact's restricted
        execution assumptions, and keeps each family in the low thousands
        of contexts.
        """
        cfg = self.config
        iuv_vals = cfg.iuv_values or default_value_set(self.xlen)
        nb_vals = cfg.neighbor_values or small_value_set(self.xlen)
        iuv_reps = (iuv_vals[0], iuv_vals[len(iuv_vals) // 2], iuv_vals[-1])
        nb_reps = (nb_vals[0], nb_vals[len(nb_vals) // 2])
        iuv_word = self._iuv_word(iuv_name)
        groups: List[ContextGroup] = []

        def build_group(slot, cases, label):
            contexts = []
            truncated = False
            for program, v1, v2, w1, w2, case_label in cases:
                if cfg.max_contexts and len(contexts) >= cfg.max_contexts:
                    truncated = True
                    break
                contexts.append(
                    self._context(
                        [("feed", tuple(program))],
                        self._overrides(v1, v2, w1, w2),
                        "%s %s v=(%d,%d) w=(%d,%d)" % (label, case_label, v1, v2, w1, w2),
                    )
                )
            return ContextGroup(
                iuv_pc=slot_pc(slot),
                contexts=contexts,
                complete=not truncated,
                label=label,
            )

        def neighbor_cases(make_program, tag):
            cases = []
            for nb in cfg.neighbors:
                nb_word = self._neighbor_word(nb)
                program = make_program(nb_word)
                # IUV operand sweep at representative neighbour values
                for w1, w2 in itertools.product(nb_reps, repeat=2):
                    for v1, v2 in itertools.product(iuv_vals, iuv_vals):
                        cases.append((program, v1, v2, w1, w2, "%s-%s" % (tag, nb)))
                # neighbour operand sweep at representative IUV values
                for v1, v2 in itertools.product(iuv_reps, repeat=2):
                    for w1, w2 in itertools.product(nb_vals, nb_vals):
                        cases.append((program, v1, v2, w1, w2, "%s-%s" % (tag, nb)))
            return cases

        if cfg.include_solo:
            cases = [
                ((iuv_word,), v1, v2, 0, 0, "solo")
                for v1, v2 in itertools.product(iuv_vals, iuv_vals)
            ]
            groups.append(build_group(0, cases, "solo"))
        if cfg.include_preceding:
            cases = neighbor_cases(lambda nb_word: (nb_word, iuv_word), "after")
            groups.append(build_group(1, cases, "preceded"))
        if cfg.include_following:
            cases = neighbor_cases(lambda nb_word: (iuv_word, nb_word), "before")
            groups.append(build_group(0, cases, "followed"))
        if cfg.include_deep:
            # (IUV, NB, NB') -- surfaces port-contention drain stalls for
            # committed stores (the ST_comSTB channel needs two younger
            # memory instructions in flight)
            contexts = []
            truncated = False
            for nb in cfg.neighbors:
                nb_word = self._neighbor_word(nb)
                nb2_word = isa.encode(nb, rd=0, rs1=7, rs2=7)
                for w1 in nb_vals:
                    for u in nb_vals:
                        for v1, v2 in ((iuv_reps[0], iuv_reps[1]), (iuv_reps[1], iuv_reps[0])):
                            if cfg.max_contexts and len(contexts) >= cfg.max_contexts:
                                truncated = True
                                break
                            overrides = self._overrides(v1, v2, w1, nb_reps[0])
                            overrides["arf_w7"] = u
                            contexts.append(
                                self._context(
                                    [("feed", (iuv_word, nb_word, nb2_word))],
                                    overrides,
                                    "deep2-%s v=(%d,%d) w=(%d) u=%d" % (nb, v1, v2, w1, u),
                                )
                            )
            groups.append(
                ContextGroup(iuv_pc=slot_pc(0), contexts=contexts,
                             complete=not truncated, label="deep2")
            )
            # (NB, FILL, FILL, IUV) -- fills the scoreboard behind a
            # long-latency transmitter so the IUV stalls in ID (SS VII-A1
            # "All": 1-to-68-cycle ID stalls as a function of DIV operands)
            fill_word = isa.encode("ADD", rd=0, rs1=0, rs2=0)
            cases = []
            for nb in cfg.neighbors:
                nb_word = self._neighbor_word(nb)
                for w1, w2 in itertools.product(nb_vals, nb_vals):
                    for v1, v2 in ((iuv_reps[0], iuv_reps[1]), (iuv_reps[-1], iuv_reps[0])):
                        cases.append(
                            (
                                (nb_word, fill_word, fill_word, iuv_word),
                                v1,
                                v2,
                                w1,
                                w2,
                                "scbfull-%s" % nb,
                            )
                        )
            groups.append(build_group(3, cases, "scbfull"))
        return groups

    # --------------------------------------------------------------- taint runs
    def taint_groups(
        self,
        transponder: str,
        transmitter: str,
        assumption: str,  # "intrinsic" | "dynamic_older" | "dynamic_younger" | "static"
        operand: str,  # "rs1" | "rs2"
    ) -> List[ContextGroup]:
        """Context groups for one SynthLC symbolic-IFT classification run.

        Taint is introduced at ``transmitter``'s ``operand`` register under
        the given typing assumption (Fig. 7); the caller's cover property
        then asks whether ``transponder``'s decision destinations become
        tainted.
        """
        cfg = self.config
        iuv_vals = cfg.iuv_values or default_value_set(self.xlen)
        nb_vals = cfg.neighbor_values or small_value_set(self.xlen)
        p_word = self._iuv_word(transponder)
        taint_rs1 = operand == "rs1"
        taint_rs2 = operand == "rs2"
        groups: List[ContextGroup] = []

        iuv_reps = (iuv_vals[0], iuv_vals[len(iuv_vals) // 2], iuv_vals[-1])
        nb_reps = (nb_vals[0], nb_vals[len(nb_vals) // 2])

        def collect(slot, t_slot, script_fn, label, extra_r7=False):
            contexts = []
            truncated = False
            taint = TaintSpec(pc=slot_pc(t_slot), rs1=taint_rs1, rs2=taint_rs2)
            # additive sweep: transmitter operands get the full sweep (they
            # introduce the taint), transponder operands only representative
            # values (enough to trigger each decision arm)
            cases = []
            for w1, w2 in itertools.product(nb_reps, nb_reps):
                for v1, v2 in itertools.product(iuv_reps, iuv_reps):
                    cases.append((v1, v2, w1, w2, 0))
            for v1, v2 in ((iuv_reps[0], iuv_reps[1]), (iuv_reps[-1], iuv_reps[0])):
                for w1, w2 in itertools.product(nb_vals, nb_vals):
                    cases.append((v1, v2, w1, w2, 0))
            if extra_r7:
                for u in nb_vals:
                    for w1 in nb_vals:
                        cases.append((iuv_reps[0], iuv_reps[1], w1, nb_reps[0], u))
            for v1, v2, w1, w2, u in cases:
                if cfg.max_contexts and len(contexts) >= cfg.max_contexts:
                    truncated = True
                    break
                overrides = self._overrides(v1, v2, w1, w2)
                if extra_r7:
                    overrides["arf_w7"] = u
                contexts.append(
                    self._context(
                        script_fn(),
                        overrides,
                        # machine-parsable: label|v1,v2|w1,w2,u
                        "%s|%d,%d|%d,%d,%d" % (label, v1, v2, w1, w2, u),
                        taint=taint,
                    )
                )
            groups.append(
                ContextGroup(
                    iuv_pc=slot_pc(slot),
                    contexts=contexts,
                    complete=not truncated,
                    label=label,
                    taint_pc=slot_pc(t_slot),
                )
            )

        if assumption == "intrinsic":
            if transmitter != transponder:
                return []
            word = p_word
            collect(0, 0, lambda: [("feed", (word,))], "intrinsic")
            # Assumption 1 only constrains iT == iP; other (untainted)
            # instructions may surround the pair.  Neighbour shapes surface
            # intrinsic decisions that need co-runners -- e.g. a store's own
            # address deciding its comSTB drain against younger loads.
            for nb in cfg.neighbors:
                nb_word = self._neighbor_word(nb)
                nb2_word = isa.encode(nb, rd=0, rs1=7, rs2=7)
                collect(
                    1, 1, lambda w=nb_word: [("feed", (w, word))],
                    "intr-after-%s" % nb,
                )
                collect(
                    0, 0,
                    lambda w=nb_word, w2=nb2_word: [("feed", (word, w, w2))],
                    "intr-before-%s" % nb,
                    extra_r7=True,
                )
        elif assumption == "dynamic_older":
            t_word = self._neighbor_word(transmitter)
            collect(
                1, 0, lambda: [("feed", (t_word, p_word))], "dyn-older-%s" % transmitter
            )
            # deep shape: T, FILL, FILL, P -- the transponder stalls in ID
            # behind a full scoreboard whose drain time depends on T
            fill_word = isa.encode("ADD", rd=0, rs1=0, rs2=0)
            collect(
                3,
                0,
                lambda: [("feed", (t_word, fill_word, fill_word, p_word))],
                "dyn-older-deep-%s" % transmitter,
            )
        elif assumption == "dynamic_younger":
            t_word = self._neighbor_word(transmitter)
            collect(
                0, 1, lambda: [("feed", (p_word, t_word))], "dyn-younger-%s" % transmitter
            )
            # deep shape: P, T, T' -- a second younger transmitter instance
            # contends for the memory port while P's committed store drains
            t2_word = isa.encode(transmitter, rd=0, rs1=7, rs2=7)
            collect(
                0,
                2,
                lambda: [("feed", (p_word, t_word, t2_word))],
                "dyn-younger-deep-%s" % transmitter,
                extra_r7=True,
            )
        elif assumption == "static":
            t_word = self._neighbor_word(transmitter)
            collect(
                1,
                0,
                lambda: [
                    ("feed", (t_word,)),
                    ("wait_quiesce",),
                    ("flush",),
                    ("feed", (p_word,)),
                ],
                "static-%s" % transmitter,
            )
        else:
            raise ValueError("unknown assumption %r" % assumption)
        return groups

"""Case-study designs: the CVA6-like core, variants, and the data cache."""

from . import isa
from .core import CoreConfig, CoreDesign, build_core
from .variants import build_cva6_mul, build_cva6_op, build_fixed_core, OpPackConfig
from .cache import CacheConfig, CacheContextProvider, CacheDesign, build_cache
from .harness import (
    ContextFamilyConfig,
    ContextGroup,
    CoreContextProvider,
    OPERAND_CLASSES,
    ProgramRun,
    STRAIGHT_LINE_POOL,
    TaintSpec,
    golden_model,
    golden_steps,
    program_driver_factory,
    run_program,
    sample_sequence,
    slot_pc,
)

__all__ = [
    "isa",
    "CoreConfig",
    "CoreDesign",
    "build_core",
    "build_cva6_mul",
    "build_cva6_op",
    "build_fixed_core",
    "OpPackConfig",
    "CacheConfig",
    "CacheContextProvider",
    "CacheDesign",
    "build_cache",
    "ContextFamilyConfig",
    "ContextGroup",
    "CoreContextProvider",
    "TaintSpec",
    "program_driver_factory",
    "slot_pc",
    "STRAIGHT_LINE_POOL",
    "OPERAND_CLASSES",
    "golden_model",
    "golden_steps",
    "ProgramRun",
    "run_program",
    "sample_sequence",
]

"""The CVA6-like case-study core.

A width-scaled model of the RISC-V CVA6 CPU as the paper verifies it
(SS VI): 6-stage, single-issue, in-order with limited out-of-order
write-back through a FIFO scoreboard, diverse functional units (ALU,
serial divider, multiplier, LSU), speculative and committed store buffers,
and a single-R/W-port behavioral memory.  The frontend is black-boxed: the
verification environment drives fetched encodings at the IFR, exactly as
RTL2MuPATH does.

Every microarchitectural channel the paper reports on CVA6 is implemented
structurally:

* serial divider with operand-dependent latency 1..(xlen+2) cycles
  (1..66 at the paper's 64-bit scale, SS VII-A1 "Division/Remainder");
* zero-skip multiplier variant (CVA6-MUL, Fig. 1): 1 cycle with a zero
  operand, 4 otherwise;
* store-to-load page-offset stalling (SS IV-A, Fig. 4b): a load whose
  address page offset matches a pending store stalls in LSQ/ldStall;
* committed-store-buffer drain stalling behind younger loads using the
  single memory port (the paper's novel ST_comSTB channel, Fig. 5);
* mispredict flushes: conditional branches flush younger instructions as
  a function of rs1/rs2; JALR as a function of rs1; JAL unconditionally;
* issue / commit stalls behind long-latency transmitters (secondary
  leakage in Fig. 8).

The paper's three CVA6 bugs (SS VII-B2) are faithfully present by default
and removable with ``CoreConfig(fixed_bugs=True)``:

* JALR never raises a misaligned-target exception;
* JAL checks only 2-byte alignment;
* conditional branches raise misaligned-target exceptions regardless of
  their (operand-dependent) taken outcome;
* the scoreboard counter-width bug leaving one SCB entry unused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rtl.module import Module
from ..rtl.netlist import Netlist, elaborate
from ..rtl.nodes import Node, cat, mux, sext, zext
from ..core.pl import DesignMetadata, MicroFsm, PerformingLocation, PlSlot
from . import isa
from .dputils import msb_index, signed_lt, unsigned_divide, var_shift_left, var_shift_right

__all__ = ["CoreConfig", "CoreDesign", "build_core", "ALU_OPS"]

# ALU operation micro-codes (latched at decode)
ALU_OPS = {
    "add": 0,
    "sub": 1,
    "sll": 2,
    "slt": 3,
    "sltu": 4,
    "xor": 5,
    "srl": 6,
    "or": 7,
    "and": 8,
    "lui": 9,
    "auipc": 10,
    "csr": 11,
    "csri": 12,
    "nop": 13,
    # immediate forms share codes; the uses-imm flag selects operand B
    "addi": 0,
    "slti": 3,
    "xori": 5,
    "ori": 7,
    "andi": 8,
    "slli": 2,
    "srli": 6,
}

_IMM_OPS = frozenset(
    {"addi", "slti", "xori", "ori", "andi", "slli", "srli", "csri", "lui"}
)


@dataclass(frozen=True)
class CoreConfig:
    """Build-time parameters (the paper's down-scaled configuration)."""

    xlen: int = 8
    pc_bits: int = 8
    nregs: int = 8
    mem_words: int = 4
    scb_entries: int = 4
    stb_entries: int = 2
    mul_variant: str = "baseline"  # "baseline" (2-cycle) | "zero_skip" (CVA6-MUL)
    mul_latency: int = 2
    zero_skip_fast: int = 1
    zero_skip_slow: int = 4
    fixed_bugs: bool = False  # True removes the four CVA6 bugs

    @property
    def offset_bits(self) -> int:
        return max(1, (self.mem_words - 1).bit_length())

    @property
    def scb_limit(self) -> int:
        """Usable SCB entries: one short of capacity under the counter bug."""
        return self.scb_entries if self.fixed_bugs else self.scb_entries - 1


@dataclass
class CoreDesign:
    """A built core: netlist plus verification metadata."""

    netlist: Netlist
    metadata: DesignMetadata
    config: CoreConfig
    source_lines: int = 0  # builder-LoC analogue of the paper's SV counts


def _class_flag(module, opcode, class_name):
    """OR of (opcode == spec.opcode) over the instructions of a class."""
    out = module.const(0, 1)
    for spec in isa.INSTRUCTIONS:
        if spec.cls == class_name:
            out = out | opcode.eq(spec.opcode)
    return out


def _spec_flag(module, opcode, predicate):
    out = module.const(0, 1)
    for spec in isa.INSTRUCTIONS:
        if predicate(spec):
            out = out | opcode.eq(spec.opcode)
    return out


def _encode_field(module, opcode, width, value_fn):
    """Sum-of-masks field encoder: value_fn(spec) -> small int code."""
    out = module.const(0, width)
    for spec in isa.INSTRUCTIONS:
        code = value_fn(spec)
        if code:
            out = out | mux(opcode.eq(spec.opcode), module.const(code, width), 0)
    return out


def build_core(config: Optional[CoreConfig] = None) -> CoreDesign:
    """Elaborate the core; returns the netlist and its metadata."""
    cfg = config or CoreConfig()
    X = cfg.xlen
    P = cfg.pc_bits
    NSCB = cfg.scb_entries
    NSTB = cfg.stb_entries
    OFF = cfg.offset_bits
    m = Module("cva6ish_core")

    # ------------------------------------------------------------- inputs
    in_valid = m.input("in_valid", 1)
    in_instr = m.input("in_instr", isa.ENCODING_BITS)
    taint_pc = m.input("taint_pc", P)
    taint_rs1 = m.input("taint_rs1", 1)
    taint_rs2 = m.input("taint_rs2", 1)

    # ---------------------------------------------------------- registers
    fetch_pc = m.reg("fetch_pc", P, reset=4)

    if_v = m.reg("if_v", 1)
    if_instr = m.reg("if_instr", isa.ENCODING_BITS)
    if_pc = m.reg("if_pc", P)

    id_v = m.reg("id_v", 1)
    id_instr = m.reg("id_instr", isa.ENCODING_BITS)
    id_pc = m.reg("id_pc", P)

    iss_v = m.reg("iss_v", 1)
    iss_pc = m.reg("iss_pc", P)
    iss_idx = m.reg("iss_idx", max(1, (NSCB - 1).bit_length()))
    iss_rs1v = m.reg("iss_rs1v", X)  # operand registers (taint introduction)
    iss_rs2v = m.reg("iss_rs2v", X)
    iss_imm = m.reg("iss_imm", 3)
    iss_aluop = m.reg("iss_aluop", 4)
    iss_brtype = m.reg("iss_brtype", 3)
    iss_uses_imm = m.reg("iss_uses_imm", 1)
    iss_signed = m.reg("iss_signed", 1)
    iss_is_rem = m.reg("iss_is_rem", 1)
    iss_is_alu = m.reg("iss_is_alu", 1)
    iss_is_mul = m.reg("iss_is_mul", 1)
    iss_is_div = m.reg("iss_is_div", 1)
    iss_is_load = m.reg("iss_is_load", 1)
    iss_is_store = m.reg("iss_is_store", 1)
    iss_is_branch = m.reg("iss_is_branch", 1)
    iss_is_jal = m.reg("iss_is_jal", 1)
    iss_is_jalr = m.reg("iss_is_jalr", 1)
    iss_is_system = m.reg("iss_is_system", 1)

    idxw = iss_idx.width
    scb_state = [m.reg("scb%d_state" % e, 3) for e in range(NSCB)]
    scb_pc = [m.reg("scb%d_pc" % e, P) for e in range(NSCB)]
    scb_rd = [m.reg("scb%d_rd" % e, 3) for e in range(NSCB)]
    scb_wen = [m.reg("scb%d_wen" % e, 1) for e in range(NSCB)]
    scb_res = [m.reg("scb%d_res" % e, X) for e in range(NSCB)]
    scb_exc = [m.reg("scb%d_exc" % e, 1) for e in range(NSCB)]
    scb_isst = [m.reg("scb%d_isst" % e, 1) for e in range(NSCB)]
    scb_head = m.reg("scb_head", idxw)
    scb_tail = m.reg("scb_tail", idxw)

    alu_v = m.reg("alu_v", 1)
    alu_pc = m.reg("alu_pc", P)
    alu_idx = m.reg("alu_idx", idxw)
    alu_rs1v = m.reg("alu_rs1v", X)
    alu_rs2v = m.reg("alu_rs2v", X)
    alu_imm = m.reg("alu_imm", 3)
    alu_op = m.reg("alu_op", 4)
    alu_brtype = m.reg("alu_brtype", 3)
    alu_uses_imm = m.reg("alu_uses_imm", 1)
    alu_is_branch = m.reg("alu_is_branch", 1)
    alu_is_jal = m.reg("alu_is_jal", 1)
    alu_is_jalr = m.reg("alu_is_jalr", 1)
    alu_exc_in = m.reg("alu_exc_in", 1)

    mul_v = m.reg("mul_v", 1)
    mul_pc = m.reg("mul_pc", P)
    mul_idx = m.reg("mul_idx", idxw)
    mul_cnt = m.reg("mul_cnt", 3)
    mul_res = m.reg("mul_res", X)

    div_cnt_bits = max(3, (X + 2).bit_length())
    div_v = m.reg("div_v", 1)
    div_pc = m.reg("div_pc", P)
    div_idx = m.reg("div_idx", idxw)
    div_cnt = m.reg("div_cnt", div_cnt_bits)
    div_res = m.reg("div_res", X)

    lsq_v = m.reg("lsq_v", 1)
    lsq_pc = m.reg("lsq_pc", P)
    ld_state = m.reg("ld_state", 2)  # 0 idle, 1 stalled, 2 finishing
    ld_pc = m.reg("ld_pc", P)
    ld_idx = m.reg("ld_idx", idxw)
    ld_addr = m.reg("ld_addr", X)

    sstb_v = [m.reg("sstb%d_v" % e, 1) for e in range(NSTB)]
    sstb_pc = [m.reg("sstb%d_pc" % e, P) for e in range(NSTB)]
    sstb_addr = [m.reg("sstb%d_addr" % e, X) for e in range(NSTB)]
    sstb_data = [m.reg("sstb%d_data" % e, X) for e in range(NSTB)]
    sstb_head = m.reg("sstb_head", max(1, (NSTB - 1).bit_length()))
    sstb_tail = m.reg("sstb_tail", max(1, (NSTB - 1).bit_length()))

    cstb_v = [m.reg("cstb%d_v" % e, 1) for e in range(NSTB)]
    cstb_pc = [m.reg("cstb%d_pc" % e, P) for e in range(NSTB)]
    cstb_addr = [m.reg("cstb%d_addr" % e, X) for e in range(NSTB)]
    cstb_data = [m.reg("cstb%d_data" % e, X) for e in range(NSTB)]
    cstb_head = m.reg("cstb_head", max(1, (NSTB - 1).bit_length()))
    cstb_tail = m.reg("cstb_tail", max(1, (NSTB - 1).bit_length()))

    drain_v = m.reg("drain_v", 1)
    drain_pc = m.reg("drain_pc", P)
    drain_addr = m.reg("drain_addr", X)
    drain_data = m.reg("drain_data", X)

    arf = m.memory("arf", X, cfg.nregs)
    amem = m.memory("amem", X, cfg.mem_words)

    # SCB state encodings
    S_IDLE, S_ISS, S_FIN, S_CMT, S_EXC = 0, 1, 2, 3, 4

    # ================================================================ decode
    id_opcode = id_instr.q[9:16]
    id_rd = id_instr.q[6:9]
    id_rs1 = id_instr.q[3:6]
    id_rs2 = id_instr.q[0:3]

    id_is_alu = _class_flag(m, id_opcode, isa.CLS_ALU)
    id_is_mul = _class_flag(m, id_opcode, isa.CLS_MUL)
    id_is_div = _class_flag(m, id_opcode, isa.CLS_DIV)
    id_is_load = _class_flag(m, id_opcode, isa.CLS_LOAD)
    id_is_store = _class_flag(m, id_opcode, isa.CLS_STORE)
    id_is_branch = _class_flag(m, id_opcode, isa.CLS_BRANCH)
    id_is_jal = _class_flag(m, id_opcode, isa.CLS_JAL)
    id_is_jalr = _class_flag(m, id_opcode, isa.CLS_JALR)
    id_is_system = _class_flag(m, id_opcode, isa.CLS_SYSTEM)
    id_reads_rs1 = _spec_flag(m, id_opcode, lambda s: s.reads_rs1)
    id_reads_rs2 = _spec_flag(m, id_opcode, lambda s: s.reads_rs2)
    id_writes_rd = _spec_flag(m, id_opcode, lambda s: s.writes_rd)
    id_signed = _spec_flag(m, id_opcode, lambda s: s.signed)
    id_is_rem = _spec_flag(m, id_opcode, lambda s: s.name.startswith("REM"))
    id_uses_imm = _spec_flag(
        m, id_opcode, lambda s: s.cls == isa.CLS_ALU and s.alu_op in _IMM_OPS
    )
    id_aluop = _encode_field(
        m, id_opcode, 4, lambda s: ALU_OPS.get(s.alu_op, 0) if s.cls == isa.CLS_ALU else 0
    )
    branch_base = isa.BY_NAME["BEQ"].opcode
    id_brtype = _encode_field(
        m,
        id_opcode,
        3,
        lambda s: (s.opcode - branch_base) if s.cls == isa.CLS_BRANCH else 0,
    )

    # architectural register read (x0 hardwired to zero)
    id_rs1v = mux(id_rs1.eq(0), m.const(0, X), arf.read(id_rs1))
    id_rs2v = mux(id_rs2.eq(0), m.const(0, X), arf.read(id_rs2))

    # ===================================================== scoreboard status
    def _scb_active(e):
        return scb_state[e].q.ne(S_IDLE)

    scb_used = m.const(0, 3)
    for e in range(NSCB):
        scb_used = scb_used + zext(_scb_active(e), 3)
    scb_full = scb_used.uge(cfg.scb_limit)

    head_state_q = m.onehot_select(
        [(scb_head.q.eq(e), scb_state[e].q) for e in range(NSCB)], m.const(0, 3)
    )

    # ================================================================= flushes
    # ALU-stage control-flow resolution (computed below) feeds these; declare
    # the raw conditions first from latched ALU-stage values.
    a_opnd_b = mux(alu_uses_imm.q, zext(alu_imm.q, X), alu_rs2v.q)
    a = alu_rs1v.q
    b = a_opnd_b
    beq_t = a.eq(b)
    blt_t = signed_lt(a, b)
    bltu_t = a.ult(b)
    br_taken = m.onehot_select(
        [
            (alu_brtype.q.eq(0), beq_t),
            (alu_brtype.q.eq(1), ~beq_t),
            (alu_brtype.q.eq(2), blt_t),
            (alu_brtype.q.eq(3), ~blt_t),
            (alu_brtype.q.eq(4), bltu_t),
            (alu_brtype.q.eq(5), ~bltu_t),
        ],
        m.const(0, 1),
    )
    br_target = alu_pc.q + zext(alu_imm.q, P)
    jal_target = alu_pc.q + zext(alu_imm.q, P)
    jalr_target = zext(alu_rs1v.q[0 : min(X, P)], P) + zext(alu_imm.q, P)
    ctl_target = mux(alu_is_jalr.q, jalr_target, mux(alu_is_jal.q, jal_target, br_target))

    mis4 = ctl_target[0:2].ne(0)
    mis2 = ctl_target[0]
    if cfg.fixed_bugs:
        br_exc = alu_is_branch.q & br_taken & mis4
        jal_exc = alu_is_jal.q & mis4
        jalr_exc = alu_is_jalr.q & mis4
    else:
        # CVA6 bugs (SS VII-B2): branches except regardless of outcome; JAL
        # checks only 2-byte alignment; JALR never excepts.
        br_exc = alu_is_branch.q & mis4
        jal_exc = alu_is_jal.q & mis2
        jalr_exc = m.const(0, 1)
    alu_exc = alu_v.q & (alu_exc_in.q | br_exc | jal_exc | jalr_exc)

    # mispredict redirects (predict-not-taken; JALR predicted to pc+4)
    jalr_mispredict = alu_is_jalr.q & ctl_target.ne(alu_pc.q + 4)
    redirect_flush = alu_v.q & (
        (alu_is_branch.q & br_taken) | alu_is_jal.q | jalr_mispredict
    )

    exc_flush = m.const(0, 1)
    for e in range(NSCB):
        exc_flush = exc_flush | scb_state[e].q.eq(S_EXC)
    flush_any = redirect_flush | exc_flush

    # =========================================================== ALU result
    shamt = mux(alu_uses_imm.q, zext(alu_imm.q, 3), alu_rs2v.q[0:3])
    slt_r = zext(signed_lt(a, b), X)
    sltu_r = zext(a.ult(b), X)
    lui_r = zext(alu_imm.q, X) << (X - 4)
    auipc_r = zext(alu_pc.q[0 : min(X, P)], X) + zext(alu_imm.q, X)
    link_r = zext((alu_pc.q + 4)[0 : min(X, P)], X)
    alu_result = m.onehot_select(
        [
            (alu_is_jal.q | alu_is_jalr.q, link_r),
            (alu_op.q.eq(ALU_OPS["sub"]), a - b),
            (alu_op.q.eq(ALU_OPS["sll"]), var_shift_left(a, shamt)),
            (alu_op.q.eq(ALU_OPS["slt"]), slt_r),
            (alu_op.q.eq(ALU_OPS["sltu"]), sltu_r),
            (alu_op.q.eq(ALU_OPS["xor"]), a ^ b),
            (alu_op.q.eq(ALU_OPS["srl"]), var_shift_right(a, shamt)),
            (alu_op.q.eq(ALU_OPS["or"]), a | b),
            (alu_op.q.eq(ALU_OPS["and"]), a & b),
            (alu_op.q.eq(ALU_OPS["lui"]), lui_r),
            (alu_op.q.eq(ALU_OPS["auipc"]), auipc_r),
            (alu_op.q.eq(ALU_OPS["csr"]), a),
            (alu_op.q.eq(ALU_OPS["csri"]), zext(alu_imm.q, X)),
            (alu_op.q.eq(ALU_OPS["nop"]), m.const(0, X)),
        ],
        a + b,
    )
    alu_complete = alu_v.q

    # ======================================================= MUL / DIV units
    mul_complete = mul_v.q & mul_cnt.q.eq(0)
    div_complete = div_v.q & div_cnt.q.eq(0)

    # dispatch-time multiplier latency
    if cfg.mul_variant == "zero_skip":
        mul_lat = mux(
            iss_rs1v.q.eq(0) | iss_rs2v.q.eq(0),
            m.const(cfg.zero_skip_fast - 1, 3),
            m.const(cfg.zero_skip_slow - 1, 3),
        )
    else:
        mul_lat = m.const(cfg.mul_latency - 1, 3)
    mul_product = iss_rs1v.q * iss_rs2v.q

    # dispatch-time serial-divider latency: 1 cycle for a zero dividend,
    # else 2 + msb_index(dividend), plus a sign-fixup cycle for signed ops
    # with a negative divisor.  Range: 1 .. xlen+2 (1..66 at 64-bit scale).
    dividend = iss_rs1v.q
    divisor = iss_rs2v.q
    div_lat_core = zext(msb_index(dividend), div_cnt_bits) + 2
    div_fix = iss_signed.q & divisor[X - 1]
    div_lat = mux(
        dividend.eq(0),
        m.const(1, div_cnt_bits),
        div_lat_core + zext(div_fix, div_cnt_bits),
    )
    quotient, remainder = unsigned_divide(dividend, divisor)
    div_result = mux(iss_is_rem.q, remainder, quotient)

    # ===================================================== store-buffer status
    def _fifo_used(valids):
        used = m.const(0, 2)
        for v in valids:
            used = used + zext(v.q, 2)
        return used

    sstb_used = _fifo_used(sstb_v)
    cstb_used = _fifo_used(cstb_v)

    # ============================================================ LSU: loads
    ld_addr_new = iss_rs1v.q + zext(iss_imm.q, X)

    def _offset_match(addr):
        match = m.const(0, 1)
        for e in range(NSTB):
            match = match | (
                sstb_v[e].q & sstb_addr[e].q[0:OFF].eq(addr[0:OFF])
            )
            match = match | (
                cstb_v[e].q & cstb_addr[e].q[0:OFF].eq(addr[0:OFF])
            )
        match = match | (drain_v.q & drain_addr.q[0:OFF].eq(addr[0:OFF]))
        return match

    # dispatch fires (issue-stage occupant always advances; gated on flush)
    disp = iss_v.q & ~flush_any
    disp_alu = disp & (iss_is_alu.q | iss_is_branch.q | iss_is_jal.q
                       | iss_is_jalr.q | iss_is_system.q)
    disp_mul = disp & iss_is_mul.q
    disp_div = disp & iss_is_div.q
    disp_load = disp & iss_is_load.q
    disp_store = disp & iss_is_store.q

    ld_match_new = _offset_match(ld_addr_new)
    ld_goes_stall = disp_load & ld_match_new
    ld_goes_fin = disp_load & ~ld_match_new
    ld_match_cur = _offset_match(ld_addr.q)
    ld_unstall = ld_state.q.eq(1) & ~ld_match_cur
    ld_mem_now = ld_state.q.eq(2)  # accessing the single memory port
    ld_complete = ld_mem_now
    ld_data = amem.read(ld_addr.q[0:OFF])
    ld_will_access_next = ld_goes_fin | ld_unstall

    # ======================================================= committed drain
    cstb_head_v = m.onehot_select(
        [(cstb_head.q.eq(e), cstb_v[e].q) for e in range(NSTB)], m.const(0, 1)
    )
    cstb_head_pc = m.onehot_select(
        [(cstb_head.q.eq(e), cstb_pc[e].q) for e in range(NSTB)], m.const(0, P)
    )
    cstb_head_addr = m.onehot_select(
        [(cstb_head.q.eq(e), cstb_addr[e].q) for e in range(NSTB)], m.const(0, X)
    )
    cstb_head_data = m.onehot_select(
        [(cstb_head.q.eq(e), cstb_data[e].q) for e in range(NSTB)], m.const(0, X)
    )
    # the ST_comSTB channel: the committed store may only drain when no load
    # will use the single memory port next cycle (loads have priority)
    drain_fire = cstb_head_v & ~ld_will_access_next & ~ld_mem_now
    drain_v.next = drain_fire
    drain_pc.next = cstb_head_pc
    drain_addr.next = cstb_head_addr
    drain_data.next = cstb_head_data
    amem.write(drain_v.q, drain_addr.q[0:OFF], drain_data.q)

    # ================================================================ commit
    # The head pointer advances as an entry moves FIN -> CMT, so the next
    # finished entry can enter CMT the following cycle: one commit per cycle
    # throughput.  At most one entry is in CMT (or EXC) at a time.
    def _entry_in(state_code):
        return [(scb_state[e].q.eq(state_code), e) for e in range(NSCB)]

    cmt_is = {}
    for name, regs in (("pc", scb_pc), ("rd", scb_rd), ("res", scb_res)):
        cmt_is[name] = m.onehot_select(
            [(scb_state[e].q.eq(S_CMT), regs[e].q) for e in range(NSCB)],
            m.const(0, regs[0].width),
        )
    cmt_wen = m.onehot_select(
        [(scb_state[e].q.eq(S_CMT), scb_wen[e].q) for e in range(NSCB)], m.const(0, 1)
    )
    cmt_isst = m.onehot_select(
        [(scb_state[e].q.eq(S_CMT), scb_isst[e].q) for e in range(NSCB)], m.const(0, 1)
    )
    commit_fire = m.const(0, 1)
    for e in range(NSCB):
        commit_fire = commit_fire | scb_state[e].q.eq(S_CMT)
    commit_pc = cmt_is["pc"]
    arf.write(commit_fire & cmt_wen & cmt_is["rd"].ne(0), cmt_is["rd"], cmt_is["res"])

    # committed store moves specSTB head -> comSTB tail
    st_commit_fire = commit_fire & cmt_isst
    sstb_head_addr = m.onehot_select(
        [(sstb_head.q.eq(e), sstb_addr[e].q) for e in range(NSTB)], m.const(0, X)
    )
    sstb_head_data = m.onehot_select(
        [(sstb_head.q.eq(e), sstb_data[e].q) for e in range(NSTB)], m.const(0, X)
    )
    sstb_head_pc = m.onehot_select(
        [(sstb_head.q.eq(e), sstb_pc[e].q) for e in range(NSTB)], m.const(0, P)
    )

    # ===================================================== hazards / stalls
    raw_hazard = m.const(0, 1)
    for e in range(NSCB):
        writes = _scb_active(e) & scb_wen[e].q
        raw_hazard = raw_hazard | (
            writes
            & (
                (scb_rd[e].q.eq(id_rs1) & id_reads_rs1)
                | (scb_rd[e].q.eq(id_rs2) & id_reads_rs2)
            )
        )

    mul_busy = mul_v.q | (iss_v.q & iss_is_mul.q)
    div_busy = div_v.q | (iss_v.q & iss_is_div.q)
    # a finishing load (state 2) frees the unit this cycle, so back-to-back
    # loads pipeline through the single port -- which is what lets a younger
    # load contend with a committed store's drain (the ST_comSTB channel)
    ld_busy = ld_state.q.eq(1) | lsq_v.q | (iss_v.q & iss_is_load.q)
    sstb_room = sstb_used + zext(iss_v.q & iss_is_store.q, 2)
    st_busy = sstb_room.uge(NSTB)

    struct_stall = (
        (id_is_mul & mul_busy)
        | (id_is_div & div_busy)
        | (id_is_load & ld_busy)
        | (id_is_store & st_busy)
    )
    id_stall = id_v.q & (raw_hazard | struct_stall | scb_full)
    id_advance = id_v.q & ~id_stall & ~flush_any
    if_advance = if_v.q & (~id_v.q | id_advance) & ~flush_any
    fetch_accept = in_valid & (~if_v.q | if_advance) & ~flush_any

    # ============================================================ next state
    # fetch counter acts as the unique-IID generator; redirects do not
    # renumber the stream (the frontend is black-boxed, SS VI)
    fetch_pc.next = mux(fetch_accept, fetch_pc.q + 4, fetch_pc.q)

    if_v.next = mux(flush_any, m.const(0, 1), mux(fetch_accept, m.const(1, 1), mux(if_advance, m.const(0, 1), if_v.q)))
    if_instr.next = mux(fetch_accept, in_instr, if_instr.q)
    if_pc.next = mux(fetch_accept, fetch_pc.q, if_pc.q)

    id_v.next = mux(flush_any, m.const(0, 1), mux(if_advance, m.const(1, 1), mux(id_advance, m.const(0, 1), id_v.q)))
    id_instr.next = mux(if_advance, if_instr.q, id_instr.q)
    id_pc.next = mux(if_advance, if_pc.q, id_pc.q)

    iss_v.next = id_advance  # issue stage always drains in one cycle
    iss_pc.next = mux(id_advance, id_pc.q, iss_pc.q)
    iss_idx.next = mux(id_advance, scb_tail.q, iss_idx.q)
    iss_rs1v.next = mux(id_advance, id_rs1v, iss_rs1v.q)
    iss_rs2v.next = mux(id_advance, id_rs2v, iss_rs2v.q)
    iss_imm.next = mux(id_advance, id_rs2, iss_imm.q)
    iss_aluop.next = mux(id_advance, id_aluop, iss_aluop.q)
    iss_brtype.next = mux(id_advance, id_brtype, iss_brtype.q)
    iss_uses_imm.next = mux(id_advance, id_uses_imm, iss_uses_imm.q)
    iss_signed.next = mux(id_advance, id_signed, iss_signed.q)
    iss_is_rem.next = mux(id_advance, id_is_rem, iss_is_rem.q)
    iss_is_alu.next = mux(id_advance, id_is_alu, iss_is_alu.q)
    iss_is_mul.next = mux(id_advance, id_is_mul, iss_is_mul.q)
    iss_is_div.next = mux(id_advance, id_is_div, iss_is_div.q)
    iss_is_load.next = mux(id_advance, id_is_load, iss_is_load.q)
    iss_is_store.next = mux(id_advance, id_is_store, iss_is_store.q)
    iss_is_branch.next = mux(id_advance, id_is_branch, iss_is_branch.q)
    iss_is_jal.next = mux(id_advance, id_is_jal, iss_is_jal.q)
    iss_is_jalr.next = mux(id_advance, id_is_jalr, iss_is_jalr.q)
    iss_is_system.next = mux(id_advance, id_is_system, iss_is_system.q)

    # ---- scoreboard entries
    alloc_fire = id_advance  # allocation happens as the instruction enters issue
    head_adv = head_state_q.eq(S_FIN)  # head entry is moving to CMT/EXC

    def _younger_than_branch(e):
        # FIFO age: (e - head) mod N  >  (alu_idx - head) mod N
        e_age = (m.const(e, idxw) - scb_head.q)
        b_age = (alu_idx.q - scb_head.q)
        return b_age.ult(e_age)

    for e in range(NSCB):
        st = scb_state[e].q
        at_head = scb_head.q.eq(e)
        alloc_here = alloc_fire & scb_tail.q.eq(e)
        kill_branch = redirect_flush & _younger_than_branch(e) & st.ne(S_IDLE)

        fu_fin_here = (
            (alu_complete & alu_idx.q.eq(e))
            | (mul_complete & mul_idx.q.eq(e))
            | (div_complete & div_idx.q.eq(e))
            | (ld_complete & ld_idx.q.eq(e))
            | (disp_store & iss_idx.q.eq(e))  # stores finish on STB entry
        )
        fu_exc_here = alu_exc & alu_idx.q.eq(e)
        fu_res = m.onehot_select(
            [
                (alu_complete & alu_idx.q.eq(e), alu_result),
                (mul_complete & mul_idx.q.eq(e), mul_res.q),
                (div_complete & div_idx.q.eq(e), div_res.q),
                (ld_complete & ld_idx.q.eq(e), ld_data),
            ],
            scb_res[e].q,
        )

        next_state = st
        # head progression: FIN -> CMT or EXC; CMT/EXC -> release
        next_state = mux(
            at_head & st.eq(S_FIN),
            mux(scb_exc[e].q, m.const(S_EXC, 3), m.const(S_CMT, 3)),
            next_state,
        )
        # retiring entries release regardless of the (already advanced) head
        next_state = mux(st.eq(S_CMT) | st.eq(S_EXC), m.const(S_IDLE, 3), next_state)
        # FU completion: ISS -> FIN
        next_state = mux(st.eq(S_ISS) & fu_fin_here & scb_pc[e].q.eq(
            m.onehot_select(
                [
                    (alu_complete & alu_idx.q.eq(e), alu_pc.q),
                    (mul_complete & mul_idx.q.eq(e), mul_pc.q),
                    (div_complete & div_idx.q.eq(e), div_pc.q),
                    (ld_complete & ld_idx.q.eq(e), ld_pc.q),
                    (disp_store & iss_idx.q.eq(e), iss_pc.q),
                ],
                scb_pc[e].q,
            )
        ), m.const(S_FIN, 3), next_state)
        # flushes and allocation
        next_state = mux(kill_branch, m.const(S_IDLE, 3), next_state)
        next_state = mux(alloc_here, m.const(S_ISS, 3), next_state)
        next_state = mux(exc_flush, m.const(S_IDLE, 3), next_state)
        scb_state[e].next = next_state

        scb_pc[e].next = mux(alloc_here, id_pc.q, scb_pc[e].q)
        scb_rd[e].next = mux(alloc_here, id_rd, scb_rd[e].q)
        scb_wen[e].next = mux(alloc_here, id_writes_rd & id_rd.ne(0), scb_wen[e].q)
        scb_isst[e].next = mux(alloc_here, id_is_store, scb_isst[e].q)
        scb_res[e].next = mux(st.eq(S_ISS) & fu_fin_here, fu_res, scb_res[e].q)
        scb_exc[e].next = mux(
            alloc_here,
            id_is_system,  # ECALL/EBREAK raise environment calls at commit
            mux(st.eq(S_ISS) & fu_exc_here, m.const(1, 1), scb_exc[e].q),
        )

    scb_head.next = mux(exc_flush, m.const(0, idxw), mux(head_adv, scb_head.q + 1, scb_head.q))
    new_tail = mux(alloc_fire, scb_tail.q + 1, scb_tail.q)
    new_tail = mux(redirect_flush, alu_idx.q + 1, new_tail)
    new_tail = mux(exc_flush, m.const(0, idxw), new_tail)
    scb_tail.next = new_tail

    # ---- ALU stage
    alu_v.next = disp_alu
    alu_pc.next = mux(disp_alu, iss_pc.q, alu_pc.q)
    alu_idx.next = mux(disp_alu, iss_idx.q, alu_idx.q)
    alu_rs1v.next = mux(disp_alu, iss_rs1v.q, alu_rs1v.q)
    alu_rs2v.next = mux(disp_alu, iss_rs2v.q, alu_rs2v.q)
    alu_imm.next = mux(disp_alu, iss_imm.q, alu_imm.q)
    alu_op.next = mux(disp_alu, iss_aluop.q, alu_op.q)
    alu_brtype.next = mux(disp_alu, iss_brtype.q, alu_brtype.q)
    alu_uses_imm.next = mux(disp_alu, iss_uses_imm.q, alu_uses_imm.q)
    alu_is_branch.next = mux(disp_alu, iss_is_branch.q, alu_is_branch.q)
    alu_is_jal.next = mux(disp_alu, iss_is_jal.q, alu_is_jal.q)
    alu_is_jalr.next = mux(disp_alu, iss_is_jalr.q, alu_is_jalr.q)
    alu_exc_in.next = mux(disp_alu, iss_is_system.q, alu_exc_in.q)

    # ---- MUL unit (killed only by exception flush; always older than traps? no:
    # younger than a committing excepting head, so exc_flush clears it)
    mul_v.next = mux(exc_flush, m.const(0, 1), mux(disp_mul, m.const(1, 1), mux(mul_complete, m.const(0, 1), mul_v.q)))
    mul_pc.next = mux(disp_mul, iss_pc.q, mul_pc.q)
    mul_idx.next = mux(disp_mul, iss_idx.q, mul_idx.q)
    mul_cnt.next = mux(disp_mul, mul_lat, mux(mul_v.q & mul_cnt.q.ne(0), mul_cnt.q - 1, mul_cnt.q))
    mul_res.next = mux(disp_mul, mul_product, mul_res.q)

    # ---- DIV unit
    div_v.next = mux(exc_flush, m.const(0, 1), mux(disp_div, m.const(1, 1), mux(div_complete, m.const(0, 1), div_v.q)))
    div_pc.next = mux(disp_div, iss_pc.q, div_pc.q)
    div_idx.next = mux(disp_div, iss_idx.q, div_idx.q)
    div_cnt.next = mux(disp_div, div_lat - 1, mux(div_v.q & div_cnt.q.ne(0), div_cnt.q - 1, div_cnt.q))
    div_res.next = mux(disp_div, div_result, div_res.q)

    # ---- load unit: loads in the unit are never flushed (SS VII-A1 "All")
    ld_state.next = mux(
        ld_goes_stall,
        m.const(1, 2),
        mux(
            ld_goes_fin | ld_unstall,
            m.const(2, 2),
            mux(ld_complete, m.const(0, 2), ld_state.q),
        ),
    )
    lsq_v.next = mux(ld_goes_stall, m.const(1, 1), mux(ld_unstall | ld_complete, m.const(0, 1), lsq_v.q))
    lsq_pc.next = mux(ld_goes_stall, iss_pc.q, lsq_pc.q)
    ld_pc.next = mux(disp_load, iss_pc.q, ld_pc.q)
    ld_idx.next = mux(disp_load, iss_idx.q, ld_idx.q)
    ld_addr.next = mux(disp_load, ld_addr_new, ld_addr.q)

    # ---- speculative store buffer (cleared on exception flush)
    st_addr_new = iss_rs1v.q + zext(iss_imm.q, X)
    for e in range(NSTB):
        alloc_here = disp_store & sstb_tail.q.eq(e)
        pop_here = st_commit_fire & sstb_head.q.eq(e)
        sstb_v[e].next = mux(
            exc_flush,
            m.const(0, 1),
            mux(alloc_here, m.const(1, 1), mux(pop_here, m.const(0, 1), sstb_v[e].q)),
        )
        sstb_pc[e].next = mux(alloc_here, iss_pc.q, sstb_pc[e].q)
        sstb_addr[e].next = mux(alloc_here, st_addr_new, sstb_addr[e].q)
        sstb_data[e].next = mux(alloc_here, iss_rs2v.q, sstb_data[e].q)
    sstb_tail.next = mux(exc_flush, m.const(0, sstb_tail.width), mux(disp_store, sstb_tail.q + 1, sstb_tail.q))
    sstb_head.next = mux(exc_flush, m.const(0, sstb_head.width), mux(st_commit_fire, sstb_head.q + 1, sstb_head.q))

    # ---- committed store buffer (survives all flushes: already architectural)
    for e in range(NSTB):
        alloc_here = st_commit_fire & cstb_tail.q.eq(e)
        pop_here = drain_fire & cstb_head.q.eq(e)
        cstb_v[e].next = mux(alloc_here, m.const(1, 1), mux(pop_here, m.const(0, 1), cstb_v[e].q))
        cstb_pc[e].next = mux(alloc_here, sstb_head_pc, cstb_pc[e].q)
        cstb_addr[e].next = mux(alloc_here, sstb_head_addr, cstb_addr[e].q)
        cstb_data[e].next = mux(alloc_here, sstb_head_data, cstb_data[e].q)
    cstb_tail.next = mux(st_commit_fire, cstb_tail.q + 1, cstb_tail.q)
    cstb_head.next = mux(drain_fire, cstb_head.q + 1, cstb_head.q)

    # ======================================================== named signals
    m.name_signal("IFR", if_instr.q)
    m.name_signal("commit_fire", commit_fire)
    m.name_signal("commit_pc", commit_pc)
    m.name_signal("fetch_ready", (~if_v.q | if_advance) & ~flush_any)
    m.name_signal("flush_fire", flush_any)
    m.name_signal("redirect_flush", redirect_flush)
    m.name_signal("exc_flush", exc_flush)
    m.name_signal("scb_used", scb_used)
    stb_empty = m.const(1, 1)
    for e in range(NSTB):
        stb_empty = stb_empty & ~sstb_v[e].q & ~cstb_v[e].q
    m.name_signal(
        "pipe_quiesce",
        ~if_v.q
        & ~id_v.q
        & ~iss_v.q
        & scb_used.eq(0)
        & ~alu_v.q
        & ~mul_v.q
        & ~div_v.q
        & ld_state.q.eq(0)
        & ~lsq_v.q
        & stb_empty
        & ~drain_v.q,
    )

    # taint-introduction conditions (SynthLC metadata): the operand
    # registers iss_rs1v / iss_rs2v latch as the instruction whose PC
    # matches taint_pc moves from ID into issue
    m.name_signal("intro_cond_rs1", id_advance & id_pc.q.eq(taint_pc) & taint_rs1)
    m.name_signal("intro_cond_rs2", id_advance & id_pc.q.eq(taint_pc) & taint_rs2)

    # ---- performing locations
    pls: Dict[str, PerformingLocation] = {}
    ufsms: List[MicroFsm] = []

    def single_pl(name, occ_expr, pc_node, ufsm_name, pcr, state_vars,
                  pcr_added=True, probe=None):
        occ_sig = "pl_%s_occ" % name
        pc_sig = "pl_%s_pc" % name
        m.name_signal(occ_sig, occ_expr)
        m.name_signal(pc_sig, pc_node)
        probe_sig = None
        if probe is not None:
            probe_sig = "pl_%s_probe" % name
            m.name_signal(probe_sig, probe)
        pls[name] = PerformingLocation(
            name=name,
            slots=(PlSlot(occ_sig, pc_sig, probe_signal=probe_sig),),
            ufsms=(ufsm_name,),
        )
        ufsms.append(MicroFsm(ufsm_name, pcr, tuple(state_vars), pcr_added=pcr_added))

    def multi_pl(name, slot_exprs, ufsm_names):
        slots = []
        for i, (occ_expr, pc_node) in enumerate(slot_exprs):
            occ_sig = "pl_%s_occ%d" % (name, i)
            pc_sig = "pl_%s_pc%d" % (name, i)
            m.name_signal(occ_sig, occ_expr)
            m.name_signal(pc_sig, pc_node)
            slots.append(PlSlot(occ_sig, pc_sig))
        pls[name] = PerformingLocation(name=name, slots=tuple(slots), ufsms=tuple(ufsm_names))

    single_pl("IF", if_v.q, if_pc.q, "ufsm_if", "if_pc", ("if_v",), pcr_added=False)
    single_pl("ID", id_v.q, id_pc.q, "ufsm_id", "id_pc", ("id_v",), pcr_added=False)
    single_pl("issue", iss_v.q, iss_pc.q, "ufsm_issue", "iss_pc", ("iss_v",), pcr_added=False)
    single_pl("aluU", alu_v.q, alu_pc.q, "ufsm_alu", "alu_pc", ("alu_v",))
    # the multiplier / divider uFSM vars include the latency counters, whose
    # taint is what marks these units' occupancy as operand-dependent
    single_pl("mulU", mul_v.q, mul_pc.q, "ufsm_mul", "mul_pc", ("mul_v", "mul_cnt"),
              probe=cat(mul_v.q, mul_cnt.q))
    single_pl("divU", div_v.q, div_pc.q, "ufsm_div", "div_pc", ("div_v", "div_cnt"),
              probe=cat(div_v.q, div_cnt.q))
    single_pl("LSQ", lsq_v.q, lsq_pc.q, "ufsm_lsq", "lsq_pc", ("lsq_v",))
    # ldStall and ldFin are two non-idle states of the same load-unit uFSM
    single_pl("ldStall", ld_state.q.eq(1), ld_pc.q, "ufsm_ldu", "ld_pc", ("ld_state",))
    single_pl("ldFin", ld_state.q.eq(2), ld_pc.q, "ufsm_ldu", "ld_pc", ("ld_state",))
    single_pl("memRq", drain_v.q, drain_pc.q, "ufsm_drain", "drain_pc", ("drain_v",))

    for scb_pl, state_code in (
        ("scbIss", S_ISS),
        ("scbFin", S_FIN),
        ("scbCmt", S_CMT),
        ("scbExcp", S_EXC),
    ):
        multi_pl(
            scb_pl,
            [(scb_state[e].q.eq(state_code), scb_pc[e].q) for e in range(NSCB)],
            tuple("ufsm_scb%d" % e for e in range(NSCB)),
        )
    for e in range(NSCB):
        ufsms.append(
            MicroFsm("ufsm_scb%d" % e, "scb%d_pc" % e, ("scb%d_state" % e,), pcr_added=False)
        )

    multi_pl(
        "specSTB",
        [(sstb_v[e].q, sstb_pc[e].q) for e in range(NSTB)],
        tuple("ufsm_sstb%d" % e for e in range(NSTB)),
    )
    for e in range(NSTB):
        ufsms.append(MicroFsm("ufsm_sstb%d" % e, "sstb%d_pc" % e, ("sstb%d_v" % e,)))
    multi_pl(
        "comSTB",
        [(cstb_v[e].q, cstb_pc[e].q) for e in range(NSTB)],
        tuple("ufsm_cstb%d" % e for e in range(NSTB)),
    )
    for e in range(NSTB):
        ufsms.append(MicroFsm("ufsm_cstb%d" % e, "cstb%d_pc" % e, ("cstb%d_v" % e,)))

    # candidate PLs: constant vars valuations that exist in the encoding
    # space but (should) never occur -- RTL2MuPATH's first step proves them
    # unreachable on the DUV and prunes them (SS V-B1)
    candidate_pls: Dict[str, PerformingLocation] = {}

    def candidate_pl(name, slot_exprs):
        slots = []
        for i, (occ_expr, pc_node) in enumerate(slot_exprs):
            occ_sig = "pl_%s_occ%d" % (name, i)
            pc_sig = "pl_%s_pc%d" % (name, i)
            m.name_signal(occ_sig, occ_expr)
            m.name_signal(pc_sig, pc_node)
            slots.append(PlSlot(occ_sig, pc_sig))
        candidate_pls[name] = PerformingLocation(name=name, slots=tuple(slots))

    candidate_pl("ldState3", [(ld_state.q.eq(3), ld_pc.q)])
    for bad_state in (5, 6, 7):
        candidate_pl(
            "scbState%d" % bad_state,
            [(scb_state[e].q.eq(bad_state), scb_pc[e].q) for e in range(NSCB)],
        )

    netlist = elaborate(m)
    unique_ufsms = list({fsm.name: fsm for fsm in ufsms}.values())
    metadata = DesignMetadata(
        design_name=netlist.name,
        pls=pls,
        ufsms=tuple(unique_ufsms),
        ifr_signal="IFR",
        commit_signal="commit_fire",
        commit_pc_signal="commit_pc",
        operand_registers=("iss_rs1v", "iss_rs2v"),
        arf_registers=tuple("arf_w%d" % i for i in range(cfg.nregs)),
        amem_registers=tuple("amem_w%d" % i for i in range(cfg.mem_words)),
        persistent_registers=(),
        intro_cond_rs1="intro_cond_rs1",
        intro_cond_rs2="intro_cond_rs2",
        pc_bits=P,
    )
    metadata.candidate_pls = candidate_pls
    return CoreDesign(netlist=netlist, metadata=metadata, config=cfg)

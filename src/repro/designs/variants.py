"""Design variants from the paper's motivating examples.

* ``build_cva6_mul``   -- CVA6-MUL (Fig. 1): the main core with the
  zero-skip multiply optimization (1-cycle mulU occupancy when an operand
  is zero, 4 cycles otherwise).
* ``build_cva6_op``    -- CVA6-OP (SS III-A, Fig. 2): a dual-fetch front
  end whose ALU supports operand packing.  Two concurrently decoded
  instructions performing the identical ALU operation on narrow operands
  (upper halves all zero) are packed and issued together; otherwise the
  younger instruction waits an extra cycle in ID.  The packed ADD commits
  in 4 cycles, the non-packed one in 5, reproducing Figs. 2b/2c.
* ``build_fixed_core`` -- the main core with the four CVA6 bugs repaired
  (SS VII-B2), used by the bug-detection benches as the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rtl.module import Module
from ..rtl.netlist import Netlist, elaborate
from ..rtl.nodes import mux, zext
from ..core.pl import DesignMetadata, MicroFsm, PerformingLocation, PlSlot
from . import isa
from .core import CoreConfig, CoreDesign, build_core

__all__ = [
    "build_cva6_mul",
    "build_fixed_core",
    "OpPackConfig",
    "build_cva6_op",
    "oppack_driver_factory",
]


def build_cva6_mul(xlen: int = 8) -> CoreDesign:
    """CVA6-MUL: zero-skip multiplier variant of the main core (Fig. 1)."""
    return build_core(CoreConfig(xlen=xlen, mul_variant="zero_skip"))


def build_fixed_core(xlen: int = 8) -> CoreDesign:
    """The main core with the four CVA6 bugs repaired."""
    return build_core(CoreConfig(xlen=xlen, fixed_bugs=True))


@dataclass(frozen=True)
class OpPackConfig:
    xlen: int = 8
    pc_bits: int = 8
    nregs: int = 8
    packing_enabled: bool = True  # False models baseline single-issue decode


# ALU operations eligible for packing on CVA6-OP
_PACKABLE = ("ADD", "SUB", "XOR", "OR", "AND")


def build_cva6_op(config: Optional[OpPackConfig] = None) -> CoreDesign:
    """Elaborate the CVA6-OP operand-packing pipeline (SS III-A)."""
    cfg = config or OpPackConfig()
    X = cfg.xlen
    P = cfg.pc_bits
    m = Module("cva6_op")

    in_valid0 = m.input("in_valid0", 1)
    in_instr0 = m.input("in_instr0", isa.ENCODING_BITS)
    in_valid1 = m.input("in_valid1", 1)
    in_instr1 = m.input("in_instr1", isa.ENCODING_BITS)
    taint_pc = m.input("taint_pc", P)
    taint_rs1 = m.input("taint_rs1", 1)
    taint_rs2 = m.input("taint_rs2", 1)

    fetch_pc = m.reg("fetch_pc", P, reset=4)
    if0_v = m.reg("if0_v", 1)
    if0_instr = m.reg("if0_instr", isa.ENCODING_BITS)
    if0_pc = m.reg("if0_pc", P)
    if1_v = m.reg("if1_v", 1)
    if1_instr = m.reg("if1_instr", isa.ENCODING_BITS)
    if1_pc = m.reg("if1_pc", P)

    id0_v = m.reg("id0_v", 1)
    id0_instr = m.reg("id0_instr", isa.ENCODING_BITS)
    id0_pc = m.reg("id0_pc", P)
    id1_v = m.reg("id1_v", 1)
    id1_instr = m.reg("id1_instr", isa.ENCODING_BITS)
    id1_pc = m.reg("id1_pc", P)

    # issue stage doubles as the scoreboard-allocation point (issue+scbIss)
    iss0_v = m.reg("iss0_v", 1)
    iss0_pc = m.reg("iss0_pc", P)
    iss0_rd = m.reg("iss0_rd", 3)
    iss0_res = m.reg("iss0_res", X)
    iss1_v = m.reg("iss1_v", 1)
    iss1_pc = m.reg("iss1_pc", P)
    iss1_rd = m.reg("iss1_rd", 3)
    iss1_res = m.reg("iss1_res", X)

    cmt0_v = m.reg("cmt0_v", 1)
    cmt0_pc = m.reg("cmt0_pc", P)
    cmt1_v = m.reg("cmt1_v", 1)
    cmt1_pc = m.reg("cmt1_pc", P)

    arf = m.memory("arf", X, cfg.nregs)

    def decode(instr_q):
        opcode = instr_q[9:16]
        rd = instr_q[6:9]
        rs1 = instr_q[3:6]
        rs2 = instr_q[0:3]
        return opcode, rd, rs1, rs2

    def read(reg_idx):
        return mux(reg_idx.eq(0), m.const(0, X), arf.read(reg_idx))

    op0, rd0, rs1_0, rs2_0 = decode(id0_instr.q)
    op1, rd1, rs1_1, rs2_1 = decode(id1_instr.q)
    a0, b0 = read(rs1_0), read(rs2_0)
    a1, b1 = read(rs1_1), read(rs2_1)

    def narrow(value):
        """Upper half all zero: msb(arg) < xlen/2 in the paper's notation."""
        return value[X // 2 : X].eq(0)

    same_op = op0.eq(op1)
    packable_class = m.const(0, 1)
    for name in _PACKABLE:
        packable_class = packable_class | op0.eq(isa.BY_NAME[name].opcode)
    all_narrow = narrow(a0) & narrow(b0) & narrow(a1) & narrow(b1)
    pack_ok = (
        id0_v.q
        & id1_v.q
        & same_op
        & packable_class
        & all_narrow
        & (m.const(1, 1) if cfg.packing_enabled else m.const(0, 1))
    )

    def alu(opcode, a, b):
        result = a + b
        result = mux(opcode.eq(isa.BY_NAME["SUB"].opcode), a - b, result)
        result = mux(opcode.eq(isa.BY_NAME["XOR"].opcode), a ^ b, result)
        result = mux(opcode.eq(isa.BY_NAME["OR"].opcode), a | b, result)
        result = mux(opcode.eq(isa.BY_NAME["AND"].opcode), a & b, result)
        return result

    # flow control: issue drains every cycle; ID0 (the oldest) always issues
    # when valid; ID1 issues simultaneously iff packed, else it becomes the
    # oldest next cycle (an extra ID cycle -- the paper's ID(l=2))
    issue_fire0 = id0_v.q
    issue_fire1 = id0_v.q & id1_v.q & pack_ok
    id_drained = ~id0_v.q | (issue_fire0 & (issue_fire1 | ~id1_v.q))
    if_advance = (if0_v.q | if1_v.q) & id_drained
    fetch_accept = (in_valid0 | in_valid1) & (~(if0_v.q | if1_v.q) | if_advance)

    fetch_pc.next = mux(
        fetch_accept,
        fetch_pc.q + zext(in_valid0, P) * 4 + zext(in_valid1, P) * 4,
        fetch_pc.q,
    )
    if0_v.next = mux(fetch_accept, in_valid0, mux(if_advance, m.const(0, 1), if0_v.q))
    if0_instr.next = mux(fetch_accept, in_instr0, if0_instr.q)
    if0_pc.next = mux(fetch_accept, fetch_pc.q, if0_pc.q)
    if1_v.next = mux(fetch_accept, in_valid1, mux(if_advance, m.const(0, 1), if1_v.q))
    if1_instr.next = mux(fetch_accept, in_instr1, if1_instr.q)
    if1_pc.next = mux(fetch_accept, fetch_pc.q + 4, if1_pc.q)

    # unpacked leftover: ID1 slides into the ID0 (oldest) slot
    leftover = id1_v.q & issue_fire0 & ~issue_fire1
    id0_v.next = mux(leftover, m.const(1, 1), mux(if_advance, if0_v.q, mux(issue_fire0, m.const(0, 1), id0_v.q)))
    id0_instr.next = mux(leftover, id1_instr.q, mux(if_advance, if0_instr.q, id0_instr.q))
    id0_pc.next = mux(leftover, id1_pc.q, mux(if_advance, if0_pc.q, id0_pc.q))
    id1_v.next = mux(leftover, m.const(0, 1), mux(if_advance, if1_v.q, mux(issue_fire1, m.const(0, 1), id1_v.q)))
    id1_instr.next = mux(if_advance & ~leftover, if1_instr.q, id1_instr.q)
    id1_pc.next = mux(if_advance & ~leftover, if1_pc.q, id1_pc.q)

    iss0_v.next = issue_fire0
    iss0_pc.next = mux(issue_fire0, id0_pc.q, iss0_pc.q)
    iss0_rd.next = mux(issue_fire0, rd0, iss0_rd.q)
    iss0_res.next = mux(issue_fire0, alu(op0, a0, b0), iss0_res.q)
    iss1_v.next = issue_fire1
    iss1_pc.next = mux(issue_fire1, id1_pc.q, iss1_pc.q)
    iss1_rd.next = mux(issue_fire1, rd1, iss1_rd.q)
    iss1_res.next = mux(issue_fire1, alu(op1, a1, b1), iss1_res.q)

    cmt0_v.next = iss0_v.q
    cmt0_pc.next = mux(iss0_v.q, iss0_pc.q, cmt0_pc.q)
    cmt1_v.next = iss1_v.q
    cmt1_pc.next = mux(iss1_v.q, iss1_pc.q, cmt1_pc.q)
    arf.write(iss0_v.q & iss0_rd.q.ne(0), iss0_rd.q, iss0_res.q)
    arf.write(iss1_v.q & iss1_rd.q.ne(0), iss1_rd.q, iss1_res.q)

    m.name_signal("IFR", if0_instr.q)
    m.name_signal("commit_fire", cmt0_v.q | cmt1_v.q)
    m.name_signal("commit_pc", mux(cmt0_v.q, cmt0_pc.q, cmt1_pc.q))
    m.name_signal("fetch_ready", ~(if0_v.q | if1_v.q) | if_advance)
    m.name_signal("pack_fire", issue_fire1)
    m.name_signal(
        "pipe_quiesce",
        ~if0_v.q & ~if1_v.q & ~id0_v.q & ~id1_v.q & ~iss0_v.q & ~iss1_v.q
        & ~cmt0_v.q & ~cmt1_v.q,
    )
    # taint-introduction conditions: operands latch as results compute at issue
    m.name_signal(
        "intro_cond_rs1",
        (issue_fire0 & id0_pc.q.eq(taint_pc) | issue_fire1 & id1_pc.q.eq(taint_pc))
        & taint_rs1,
    )
    m.name_signal(
        "intro_cond_rs2",
        (issue_fire0 & id0_pc.q.eq(taint_pc) | issue_fire1 & id1_pc.q.eq(taint_pc))
        & taint_rs2,
    )

    pls: Dict[str, PerformingLocation] = {}
    ufsms: List[MicroFsm] = []

    def multi_pl(name, slot_exprs, ufsm_names):
        slots = []
        for i, (occ_expr, pc_node) in enumerate(slot_exprs):
            occ_sig = "pl_%s_occ%d" % (name, i)
            pc_sig = "pl_%s_pc%d" % (name, i)
            m.name_signal(occ_sig, occ_expr)
            m.name_signal(pc_sig, pc_node)
            slots.append(PlSlot(occ_sig, pc_sig))
        pls[name] = PerformingLocation(name=name, slots=tuple(slots), ufsms=tuple(ufsm_names))

    multi_pl("IF", [(if0_v.q, if0_pc.q), (if1_v.q, if1_pc.q)], ("ufsm_if0", "ufsm_if1"))
    multi_pl("ID", [(id0_v.q, id0_pc.q), (id1_v.q, id1_pc.q)], ("ufsm_id0", "ufsm_id1"))
    multi_pl("issue", [(iss0_v.q, iss0_pc.q), (iss1_v.q, iss1_pc.q)], ("ufsm_iss0", "ufsm_iss1"))
    multi_pl("scbIss", [(iss0_v.q, iss0_pc.q), (iss1_v.q, iss1_pc.q)], ("ufsm_scb0", "ufsm_scb1"))
    multi_pl("scbCmt", [(cmt0_v.q, cmt0_pc.q), (cmt1_v.q, cmt1_pc.q)], ("ufsm_cmt0", "ufsm_cmt1"))
    for name, pcr, vars_ in (
        ("ufsm_if0", "if0_pc", ("if0_v",)),
        ("ufsm_if1", "if1_pc", ("if1_v",)),
        ("ufsm_id0", "id0_pc", ("id0_v",)),
        ("ufsm_id1", "id1_pc", ("id1_v",)),
        ("ufsm_iss0", "iss0_pc", ("iss0_v",)),
        ("ufsm_iss1", "iss1_pc", ("iss1_v",)),
        ("ufsm_cmt0", "cmt0_pc", ("cmt0_v",)),
        ("ufsm_cmt1", "cmt1_pc", ("cmt1_v",)),
    ):
        ufsms.append(MicroFsm(name, pcr, vars_))

    netlist = elaborate(m)
    metadata = DesignMetadata(
        design_name=netlist.name,
        pls=pls,
        ufsms=tuple(ufsms),
        ifr_signal="IFR",
        commit_signal="commit_fire",
        commit_pc_signal="commit_pc",
        operand_registers=("iss0_res", "iss1_res"),
        arf_registers=tuple("arf_w%d" % i for i in range(cfg.nregs)),
        amem_registers=(),
        intro_cond_rs1="intro_cond_rs1",
        intro_cond_rs2="intro_cond_rs2",
        pc_bits=P,
    )
    return CoreDesign(netlist=netlist, metadata=metadata, config=cfg)


def oppack_driver_factory(pairs):
    """Reactive driver feeding instruction pairs to CVA6-OP.

    ``pairs``: sequence of (instr0_word, instr1_word_or_None).
    """
    pairs = tuple(pairs)

    def factory():
        state = {"ptr": 0, "driving": False}

        def driver(t, prev_obs):
            if state["driving"] and prev_obs is not None and prev_obs["fetch_ready"]:
                state["ptr"] += 1
            state["driving"] = False
            inputs = {}
            if state["ptr"] < len(pairs):
                w0, w1 = pairs[state["ptr"]]
                inputs["in_valid0"] = 1
                inputs["in_instr0"] = w0
                if w1 is not None:
                    inputs["in_valid1"] = 1
                    inputs["in_instr1"] = w1
                state["driving"] = True
            return inputs

        return driver

    return factory

"""The instruction set of the case-study cores.

The paper's CVA6 case study covers "all 72 instructions in the RV64I ISA
and M extension" (SS VI).  We reproduce that instruction inventory exactly
-- the same 72 mnemonics, with the same functional-class structure that
drives Fig. 8's transmitter/transponder grouping:

* 8 division/remainder variants  (intrinsic transmitters),
* 7 load variants                (intrinsic transmitters),
* 4 store variants               (intrinsic transmitters),
* 6 conditional branches + JALR  (dynamic transmitters),
* the remaining ALU/CSR/fence/system instructions.

Because our cores are width-scaled (the paper itself down-scales CVA6 for
formal verification, SS VI), instructions use a compact 16-bit encoding:

    [15:9] opcode (7 bits)   [8:6] rd   [5:3] rs1   [2:0] rs2 / imm3

W-suffixed variants share datapaths with their base forms at reduced
width, exactly as the paper's variants share leakage signatures per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

__all__ = [
    "InstrSpec",
    "INSTRUCTIONS",
    "BY_NAME",
    "CLASSES",
    "encode",
    "decode",
    "Instr",
    "OPCODE_BITS",
    "ENCODING_BITS",
]

OPCODE_BITS = 7
ENCODING_BITS = 16

# functional-unit classes (decode routes on these)
CLS_ALU = "alu"
CLS_MUL = "mul"
CLS_DIV = "div"
CLS_LOAD = "load"
CLS_STORE = "store"
CLS_BRANCH = "branch"
CLS_JAL = "jal"
CLS_JALR = "jalr"
CLS_SYSTEM = "system"


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one implemented instruction."""

    name: str
    opcode: int
    cls: str
    reads_rs1: bool = True
    reads_rs2: bool = True
    writes_rd: bool = True
    signed: bool = False  # signed divide/remainder: divisor-sign fixup cycle
    alu_op: str = "add"  # operation selector within the ALU


def _build_instruction_table() -> List[InstrSpec]:
    table: List[InstrSpec] = []

    def add(name, cls, reads_rs1=True, reads_rs2=True, writes_rd=True,
            signed=False, alu_op="add"):
        table.append(
            InstrSpec(
                name=name,
                opcode=len(table),
                cls=cls,
                reads_rs1=reads_rs1,
                reads_rs2=reads_rs2,
                writes_rd=writes_rd,
                signed=signed,
                alu_op=alu_op,
            )
        )

    # --- RV64I register-register ALU (10)
    add("ADD", CLS_ALU, alu_op="add")
    add("SUB", CLS_ALU, alu_op="sub")
    add("SLL", CLS_ALU, alu_op="sll")
    add("SLT", CLS_ALU, alu_op="slt")
    add("SLTU", CLS_ALU, alu_op="sltu")
    add("XOR", CLS_ALU, alu_op="xor")
    add("SRL", CLS_ALU, alu_op="srl")
    add("SRA", CLS_ALU, alu_op="srl")
    add("OR", CLS_ALU, alu_op="or")
    add("AND", CLS_ALU, alu_op="and")
    # --- RV64I register-immediate ALU (9): rs2 field is imm3
    add("ADDI", CLS_ALU, reads_rs2=False, alu_op="addi")
    add("SLTI", CLS_ALU, reads_rs2=False, alu_op="slti")
    add("SLTIU", CLS_ALU, reads_rs2=False, alu_op="slti")
    add("XORI", CLS_ALU, reads_rs2=False, alu_op="xori")
    add("ORI", CLS_ALU, reads_rs2=False, alu_op="ori")
    add("ANDI", CLS_ALU, reads_rs2=False, alu_op="andi")
    add("SLLI", CLS_ALU, reads_rs2=False, alu_op="slli")
    add("SRLI", CLS_ALU, reads_rs2=False, alu_op="srli")
    add("SRAI", CLS_ALU, reads_rs2=False, alu_op="srli")
    # --- RV64I W-suffixed ALU (9): share datapaths at reduced width
    add("ADDIW", CLS_ALU, reads_rs2=False, alu_op="addi")
    add("SLLIW", CLS_ALU, reads_rs2=False, alu_op="slli")
    add("SRLIW", CLS_ALU, reads_rs2=False, alu_op="srli")
    add("SRAIW", CLS_ALU, reads_rs2=False, alu_op="srli")
    add("ADDW", CLS_ALU, alu_op="add")
    add("SUBW", CLS_ALU, alu_op="sub")
    add("SLLW", CLS_ALU, alu_op="sll")
    add("SRLW", CLS_ALU, alu_op="srl")
    add("SRAW", CLS_ALU, alu_op="srl")
    # --- upper-immediate (2)
    add("LUI", CLS_ALU, reads_rs1=False, reads_rs2=False, alu_op="lui")
    add("AUIPC", CLS_ALU, reads_rs1=False, reads_rs2=False, alu_op="auipc")
    # --- control flow (8)
    add("JAL", CLS_JAL, reads_rs1=False, reads_rs2=False)
    add("JALR", CLS_JALR, reads_rs2=False)
    add("BEQ", CLS_BRANCH, writes_rd=False)
    add("BNE", CLS_BRANCH, writes_rd=False)
    add("BLT", CLS_BRANCH, writes_rd=False, signed=True)
    add("BGE", CLS_BRANCH, writes_rd=False, signed=True)
    add("BLTU", CLS_BRANCH, writes_rd=False)
    add("BGEU", CLS_BRANCH, writes_rd=False)
    # --- loads (7)
    for name in ("LB", "LH", "LW", "LD", "LBU", "LHU", "LWU"):
        add(name, CLS_LOAD, reads_rs2=False)
    # --- stores (4)
    for name in ("SB", "SH", "SW", "SD"):
        add(name, CLS_STORE, writes_rd=False)
    # --- fences (2): no-ops through the ALU path
    add("FENCE", CLS_ALU, reads_rs1=False, reads_rs2=False, writes_rd=False, alu_op="nop")
    add("FENCE.I", CLS_ALU, reads_rs1=False, reads_rs2=False, writes_rd=False, alu_op="nop")
    # --- system (2): raise an environment-call exception at commit
    add("ECALL", CLS_SYSTEM, reads_rs1=False, reads_rs2=False, writes_rd=False)
    add("EBREAK", CLS_SYSTEM, reads_rs1=False, reads_rs2=False, writes_rd=False)
    # --- Zicsr (6): modeled through the CSR-buffer-as-ALU path
    add("CSRRW", CLS_ALU, reads_rs2=False, alu_op="csr")
    add("CSRRS", CLS_ALU, reads_rs2=False, alu_op="csr")
    add("CSRRC", CLS_ALU, reads_rs2=False, alu_op="csr")
    add("CSRRWI", CLS_ALU, reads_rs1=False, reads_rs2=False, alu_op="csri")
    add("CSRRSI", CLS_ALU, reads_rs1=False, reads_rs2=False, alu_op="csri")
    add("CSRRCI", CLS_ALU, reads_rs1=False, reads_rs2=False, alu_op="csri")
    # --- M extension: multiplies (5)
    add("MUL", CLS_MUL)
    add("MULH", CLS_MUL)
    add("MULHSU", CLS_MUL)
    add("MULHU", CLS_MUL)
    add("MULW", CLS_MUL)
    # --- M extension: divides / remainders (8)
    add("DIV", CLS_DIV, signed=True)
    add("DIVU", CLS_DIV)
    add("REM", CLS_DIV, signed=True)
    add("REMU", CLS_DIV)
    add("DIVW", CLS_DIV, signed=True)
    add("DIVUW", CLS_DIV)
    add("REMW", CLS_DIV, signed=True)
    add("REMUW", CLS_DIV)
    return table


INSTRUCTIONS: Tuple[InstrSpec, ...] = tuple(_build_instruction_table())
BY_NAME: Dict[str, InstrSpec] = {spec.name: spec for spec in INSTRUCTIONS}

CLASSES: Dict[str, Tuple[str, ...]] = {}
for _spec in INSTRUCTIONS:
    CLASSES.setdefault(_spec.cls, ())
    CLASSES[_spec.cls] = CLASSES[_spec.cls] + (_spec.name,)

assert len(INSTRUCTIONS) == 72, "paper's RV64IM inventory is 72 instructions"


@dataclass(frozen=True)
class Instr:
    """A decoded instruction word."""

    spec: InstrSpec
    rd: int
    rs1: int
    rs2: int  # also the 3-bit immediate for I-type / branch offsets

    @property
    def imm(self) -> int:
        return self.rs2

    def __repr__(self):
        return "%s rd=%d rs1=%d rs2/imm=%d" % (
            self.spec.name,
            self.rd,
            self.rs1,
            self.rs2,
        )


def encode(name: str, rd: int = 0, rs1: int = 0, rs2: int = 0) -> int:
    """Encode an instruction word; ``rs2`` doubles as the 3-bit immediate."""
    spec = BY_NAME[name]
    for field_name, value in (("rd", rd), ("rs1", rs1), ("rs2", rs2)):
        if not 0 <= value < 8:
            raise ValueError("%s field %d out of range [0,8)" % (field_name, value))
    return (spec.opcode << 9) | (rd << 6) | (rs1 << 3) | rs2


@lru_cache(maxsize=None)
def decode(word: int) -> Instr:
    """Decode an instruction word; raises ``ValueError`` on bad opcodes.

    Pure and memoized: words are 16 bits and :class:`Instr` is frozen, so
    repeat decodes (the common case in long fuzzed programs) are a dict
    hit.
    """
    opcode = (word >> 9) & 0x7F
    if opcode >= len(INSTRUCTIONS):
        raise ValueError("invalid opcode %d" % opcode)
    return Instr(
        spec=INSTRUCTIONS[opcode],
        rd=(word >> 6) & 7,
        rs1=(word >> 3) & 7,
        rs2=word & 7,
    )

"""The CVA6-Cache case-study DUV: L1 data cache + cache controller.

A width-scaled model of the cache the paper verifies separately from the
core (SS VII-A2): 4-way set-associative, no-write-allocate, with tag
banks, two data banks (ways 0-1 and 2-3), a write buffer, a single MSHR,
and a shared port to the AXI-like backing memory.  The request interface
(one outstanding request, PC-tagged per the paper's 9 added cache PCRs)
is driven by the verification environment.

Channels this design exhibits, matching SS VII-A2:

* ``ST_wBVld`` (Fig. 5): a store in the write buffer accesses one of the
  two data banks on a hit -- decision destinations {wRTag, wr$[way/2]} on
  hit versus {wRTag} on a miss, as a function of the store's own address
  (intrinsic) and of *static* earlier loads that allocated the line (the
  cache is no-write-allocate, so earlier stores never create hits);
* dynamic contention on the AXI port between a draining write buffer and
  a miss fill;
* write-buffer address matching stalls for loads;
* **non-consecutive revisits** (SS VII-A2 (ii)): a missing load visits the
  tag-read PL, leaves for MSHR/AXI/fill, and replays the lookup.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rtl.module import Module
from ..rtl.netlist import elaborate
from ..rtl.nodes import mux, zext
from ..core.pl import DesignMetadata, MicroFsm, PerformingLocation, PlSlot
from ..mc.enumerative import ReactiveContext
from .harness import ContextGroup, TaintSpec, slot_pc

__all__ = [
    "CacheConfig",
    "CacheDesign",
    "build_cache",
    "cache_driver_factory",
    "CacheContextProvider",
]


@dataclass(frozen=True)
class CacheConfig:
    xlen: int = 8
    pc_bits: int = 8
    sets: int = 4
    ways: int = 4
    axi_latency: int = 2

    @property
    def set_bits(self):
        return max(1, (self.sets - 1).bit_length())

    @property
    def tag_bits(self):
        return self.xlen - self.set_bits

    @property
    def way_bits(self):
        return max(1, (self.ways - 1).bit_length())


@dataclass
class CacheDesign:
    netlist: object
    metadata: DesignMetadata
    config: CacheConfig


# controller FSM states
C_IDLE, C_LOOKUP, C_RESP, C_MSHR, C_AXI, C_FILL, C_STBUF, C_WTAG = range(8)


def build_cache(config: Optional[CacheConfig] = None) -> CacheDesign:
    cfg = config or CacheConfig()
    X, P = cfg.xlen, cfg.pc_bits
    SB, TB, WB = cfg.set_bits, cfg.tag_bits, cfg.way_bits
    m = Module("cva6_cache")

    req_valid = m.input("req_valid", 1)
    req_is_store = m.input("req_is_store", 1)
    req_addr = m.input("req_addr", X)
    req_data = m.input("req_data", X)
    req_pc_in = m.input("req_pc", P)
    taint_pc = m.input("taint_pc", P)
    taint_rs1 = m.input("taint_rs1", 1)  # rs1 == address operand
    taint_rs2 = m.input("taint_rs2", 1)  # rs2 == data operand

    state = m.reg("cc_state", 3, reset=C_IDLE)
    r_pc = m.reg("cc_pc", P)
    r_addr = m.reg("cc_addr", X)  # address operand register (taint target)
    r_data = m.reg("cc_data", X)  # data operand register
    r_is_store = m.reg("cc_is_store", 1)
    r_way = m.reg("cc_way", WB)
    r_st_hit = m.reg("cc_st_hit", 1)  # store lookup outcome, latched at wBVld
    axi_cnt = m.reg("axi_cnt", 3)

    wbuf_v = m.reg("wbuf_v", 1)
    wbuf_pc = m.reg("wbuf_pc", P)
    wbuf_addr = m.reg("wbuf_addr", X)
    wbuf_data = m.reg("wbuf_data", X)
    wdrain_v = m.reg("wdrain_v", 1)  # write drain occupying the AXI port
    wdrain_pc = m.reg("wdrain_pc", P)
    wdrain_addr = m.reg("wdrain_addr", X)
    wdrain_data = m.reg("wdrain_data", X)
    wdrain_cnt = m.reg("wdrain_cnt", 3)

    rr = m.reg("rr_way", WB)  # round-robin replacement pointer

    tag = [
        [m.reg("tag_s%d_w%d" % (s, w), TB) for w in range(cfg.ways)]
        for s in range(cfg.sets)
    ]
    vld = [
        [m.reg("vld_s%d_w%d" % (s, w), 1) for w in range(cfg.ways)]
        for s in range(cfg.sets)
    ]
    data = [
        [m.reg("data_s%d_w%d" % (s, w), X) for w in range(cfg.ways)]
        for s in range(cfg.sets)
    ]
    backing = m.memory("bmem", X, cfg.sets)  # AXI backing memory (by set idx)

    addr_set = r_addr.q[0:SB]
    addr_tag = r_addr.q[SB:X]

    def way_hit(w):
        hit = m.const(0, 1)
        for s in range(cfg.sets):
            hit = hit | (
                addr_set.eq(s) & vld[s][w].q & tag[s][w].q.eq(addr_tag)
            )
        return hit

    hits = [way_hit(w) for w in range(cfg.ways)]
    any_hit = m.any_of(*hits)
    hit_way = m.const(0, WB)
    for w in range(cfg.ways):
        hit_way = mux(hits[w], m.const(w, WB), hit_way)

    # write-buffer / drain address match stalls lookups (store-to-load
    # consistency inside the cache)
    wbuf_match = (wbuf_v.q & wbuf_addr.q.eq(r_addr.q)) | (
        wdrain_v.q & wdrain_addr.q.eq(r_addr.q)
    )

    axi_free = ~wdrain_v.q & ~state.q.eq(C_AXI)

    accept = req_valid & state.q.eq(C_IDLE)
    st = state.q

    # ---------------- controller transitions
    nxt = st
    nxt = mux(accept & req_is_store, m.const(C_STBUF, 3), nxt)
    nxt = mux(accept & ~req_is_store, m.const(C_LOOKUP, 3), nxt)
    # load lookup: stall on wbuf match; hit -> RESP; miss -> MSHR
    lookup = st.eq(C_LOOKUP)
    nxt = mux(lookup & ~wbuf_match & any_hit, m.const(C_RESP, 3), nxt)
    nxt = mux(lookup & ~wbuf_match & ~any_hit, m.const(C_MSHR, 3), nxt)
    # MSHR waits for the AXI port, then fetches
    mshr = st.eq(C_MSHR)
    nxt = mux(mshr & axi_free, m.const(C_AXI, 3), nxt)
    axi = st.eq(C_AXI)
    axi_done = axi & axi_cnt.q.eq(0)
    nxt = mux(axi_done, m.const(C_FILL, 3), nxt)
    fill = st.eq(C_FILL)
    nxt = mux(fill, m.const(C_LOOKUP, 3), nxt)  # replay the lookup (revisit)
    resp = st.eq(C_RESP)
    nxt = mux(resp, m.const(C_IDLE, 3), nxt)
    # store: write-buffer stage (wBVld) does the tag lookup, then wRTag
    stbuf = st.eq(C_STBUF)
    nxt = mux(stbuf, m.const(C_WTAG, 3), nxt)
    wtag = st.eq(C_WTAG)
    nxt = mux(wtag, m.const(C_IDLE, 3), nxt)
    state.next = nxt

    r_pc.next = mux(accept, req_pc_in, r_pc.q)
    r_addr.next = mux(accept, req_addr, r_addr.q)
    r_data.next = mux(accept, req_data, r_data.q)
    r_is_store.next = mux(accept, req_is_store, r_is_store.q)
    r_way.next = mux(
        (lookup | stbuf) & any_hit, hit_way, mux(fill, rr.q, r_way.q)
    )
    r_st_hit.next = mux(stbuf, any_hit, r_st_hit.q)
    axi_cnt.next = mux(
        mshr & axi_free, m.const(cfg.axi_latency, 3), mux(axi & axi_cnt.q.ne(0), axi_cnt.q - 1, axi_cnt.q)
    )

    # fill: allocate the round-robin way of the addressed set
    rr.next = mux(fill, rr.q + 1, rr.q)
    fill_data = backing.read(addr_set)
    st_hit = wtag & r_st_hit.q
    for s in range(cfg.sets):
        sel_set = addr_set.eq(s)
        for w in range(cfg.ways):
            do_fill = fill & sel_set & rr.q.eq(w)
            tag[s][w].next = mux(do_fill, addr_tag, tag[s][w].q)
            vld[s][w].next = mux(do_fill, m.const(1, 1), vld[s][w].q)
            # store hit updates the data bank in place (no-write-allocate)
            do_sthit = st_hit & sel_set & hits[w]
            data[s][w].next = mux(
                do_fill, fill_data, mux(do_sthit, r_data.q, data[s][w].q)
            )

    # stores always write through: enter the write buffer after wRTag
    wbuf_alloc = wtag
    # the MSHR has priority for the AXI port: a pending miss blocks the drain
    wbuf_pop = wbuf_v.q & ~wdrain_v.q & ~state.q.eq(C_AXI) & ~mshr
    wbuf_v.next = mux(wbuf_alloc, m.const(1, 1), mux(wbuf_pop, m.const(0, 1), wbuf_v.q))
    wbuf_pc.next = mux(wbuf_alloc, r_pc.q, wbuf_pc.q)
    wbuf_addr.next = mux(wbuf_alloc, r_addr.q, wbuf_addr.q)
    wbuf_data.next = mux(wbuf_alloc, r_data.q, wbuf_data.q)
    wdrain_v.next = mux(wbuf_pop, m.const(1, 1), mux(wdrain_v.q & wdrain_cnt.q.eq(0), m.const(0, 1), wdrain_v.q))
    wdrain_pc.next = mux(wbuf_pop, wbuf_pc.q, wdrain_pc.q)
    wdrain_addr.next = mux(wbuf_pop, wbuf_addr.q, wdrain_addr.q)
    wdrain_data.next = mux(wbuf_pop, wbuf_data.q, wdrain_data.q)
    wdrain_cnt.next = mux(
        wbuf_pop, m.const(cfg.axi_latency, 3), mux(wdrain_v.q & wdrain_cnt.q.ne(0), wdrain_cnt.q - 1, wdrain_cnt.q)
    )
    backing.write(wdrain_v.q & wdrain_cnt.q.eq(0), wdrain_addr.q[0:SB], wdrain_data.q)

    # ---------------- named signals / metadata
    m.name_signal("IFR", req_addr)  # request port stands in for the IFR
    m.name_signal("req_ready", state.q.eq(C_IDLE))
    m.name_signal("commit_fire", resp | wtag)
    m.name_signal("commit_pc", r_pc.q)
    m.name_signal(
        "pipe_quiesce", state.q.eq(C_IDLE) & ~wbuf_v.q & ~wdrain_v.q
    )
    m.name_signal("flush_fire", m.const(0, 1))
    m.name_signal("fetch_ready", state.q.eq(C_IDLE))
    m.name_signal(
        "intro_cond_rs1", accept & req_pc_in.eq(taint_pc) & taint_rs1
    )
    m.name_signal(
        "intro_cond_rs2", accept & req_pc_in.eq(taint_pc) & taint_rs2
    )

    pls: Dict[str, PerformingLocation] = {}
    ufsms: List[MicroFsm] = []

    from ..rtl.nodes import cat as _cat

    # the controller uFSM's vars are (cc_state, cc_way): its taint probe
    # carries the hit-way evidence SynthLC's decision-taint cover needs
    cc_probe = m.name_signal("cc_ufsm_vars", _cat(state.q, r_way.q, r_st_hit.q))

    def pl(name, occ_expr, pc_node, ufsm_name, probe=None):
        occ_sig, pc_sig = "pl_%s_occ" % name, "pl_%s_pc" % name
        m.name_signal(occ_sig, occ_expr)
        m.name_signal(pc_sig, pc_node)
        pls[name] = PerformingLocation(
            name=name,
            slots=(PlSlot(occ_sig, pc_sig, probe_signal=probe),),
            ufsms=(ufsm_name,),
        )

    pl("rdTag", lookup, r_pc.q, "ufsm_cc", probe="cc_ufsm_vars")
    pl("rdResp", resp, r_pc.q, "ufsm_cc", probe="cc_ufsm_vars")
    pl("mshr", mshr, r_pc.q, "ufsm_cc", probe="cc_ufsm_vars")
    pl("axiRd", axi, r_pc.q, "ufsm_cc", probe="cc_ufsm_vars")
    pl("fill", fill, r_pc.q, "ufsm_cc", probe="cc_ufsm_vars")
    pl("wBVld", stbuf, r_pc.q, "ufsm_cc", probe="cc_ufsm_vars")
    pl("wRTag", wtag, r_pc.q, "ufsm_cc", probe="cc_ufsm_vars")
    pl("wrBank0", st_hit & ~r_way.q[WB - 1], r_pc.q, "ufsm_cc")
    pl("wrBank1", st_hit & r_way.q[WB - 1], r_pc.q, "ufsm_cc")
    pl("wbDrain", wbuf_v.q, wbuf_pc.q, "ufsm_wbuf")
    pl("axiWr", wdrain_v.q, wdrain_pc.q, "ufsm_wdrain")
    ufsms.append(
        MicroFsm("ufsm_cc", "cc_pc", ("cc_state", "cc_way", "cc_st_hit"), pcr_added=True)
    )
    ufsms.append(MicroFsm("ufsm_wbuf", "wbuf_pc", ("wbuf_v",), pcr_added=True))
    ufsms.append(MicroFsm("ufsm_wdrain", "wdrain_pc", ("wdrain_v", "wdrain_cnt"), pcr_added=True))

    # candidate PL: controller state encoding 7 is used (C_WTAG); the unused
    # encoding here is none -- instead expose an impossible combination
    candidate_pls: Dict[str, PerformingLocation] = {}
    occ_sig, pc_sig = "pl_mshrDuringDrainFill_occ", "pl_mshrDuringDrainFill_pc"
    m.name_signal(occ_sig, fill & wdrain_v.q & mshr)
    m.name_signal(pc_sig, r_pc.q)
    candidate_pls["mshrDuringDrainFill"] = PerformingLocation(
        name="mshrDuringDrainFill", slots=(PlSlot(occ_sig, pc_sig),)
    )

    netlist = elaborate(m)
    persistent = tuple(
        ["tag_s%d_w%d" % (s, w) for s in range(cfg.sets) for w in range(cfg.ways)]
        + ["vld_s%d_w%d" % (s, w) for s in range(cfg.sets) for w in range(cfg.ways)]
        + ["rr_way"]
    )
    metadata = DesignMetadata(
        design_name=netlist.name,
        pls=pls,
        ufsms=tuple(ufsms),
        ifr_signal="IFR",
        commit_signal="commit_fire",
        commit_pc_signal="commit_pc",
        operand_registers=("cc_addr", "cc_data"),
        arf_registers=(),
        amem_registers=tuple(
            ["bmem_w%d" % i for i in range(cfg.sets)]
            + ["data_s%d_w%d" % (s, w) for s in range(cfg.sets) for w in range(cfg.ways)]
        ),
        persistent_registers=persistent,
        intro_cond_rs1="intro_cond_rs1",
        intro_cond_rs2="intro_cond_rs2",
        pc_bits=P,
    )
    metadata.candidate_pls = candidate_pls
    return CacheDesign(netlist=netlist, metadata=metadata, config=cfg)


def cache_driver_factory(requests, taint: Optional[TaintSpec] = None,
                         instrumented: bool = False):
    """Reactive driver feeding (is_store, addr, data) requests.

    Request i is tagged with PC ``slot_pc(i)``.  ``requests`` items may
    also be the string "quiesce" (wait for pipe_quiesce) or "flush"
    (pulse taint_flush -- Assumption 3).
    """
    requests = tuple(requests)

    def factory():
        state = {"phase": 0, "driving": False, "issued": 0}

        def driver(t, prev_obs):
            inputs = {}
            if taint is not None:
                inputs["taint_pc"] = taint.pc
                inputs["taint_rs1"] = 1 if taint.rs1 else 0
                inputs["taint_rs2"] = 1 if taint.rs2 else 0
            if instrumented:
                inputs["taint_intro"] = 1
                inputs["taint_flush"] = 0
            if state["driving"] and prev_obs is not None and prev_obs["fetch_ready"]:
                state["phase"] += 1
                state["issued"] += 1
            state["driving"] = False
            while state["phase"] < len(requests):
                item = requests[state["phase"]]
                if item == "quiesce":
                    # at least one waited cycle: don't accept the stale
                    # pre-request quiescent observation
                    if (
                        state.get("waited")
                        and prev_obs is not None
                        and prev_obs.get("pipe_quiesce")
                    ):
                        state["phase"] += 1
                        state["waited"] = False
                        continue
                    state["waited"] = True
                    return inputs
                if item == "flush":
                    if instrumented:
                        inputs["taint_flush"] = 1
                    state["phase"] += 1
                    return inputs
                is_store, addr, data_v = item
                inputs["req_valid"] = 1
                inputs["req_is_store"] = 1 if is_store else 0
                inputs["req_addr"] = addr
                inputs["req_data"] = data_v
                inputs["req_pc"] = slot_pc(state["issued"])
                state["driving"] = True
                return inputs
            return inputs

        return driver

    return factory


class CacheContextProvider:
    """Context families for the cache DUV (loads and stores, SS VII-A2)."""

    def __init__(self, config: Optional[CacheConfig] = None, horizon: int = 40,
                 instrumented: bool = False):
        self.cfg = config or CacheConfig()
        self.horizon = horizon
        self.instrumented = instrumented

    def _addr_values(self):
        cfg = self.cfg
        # same-set/same-tag, same-set/other-tag, other-set combinations
        return (0, 1, cfg.sets, cfg.sets + 1, 2 * cfg.sets, (1 << cfg.xlen) - 1)

    def _context(self, requests, label, taint=None):
        return ReactiveContext.make(
            {},
            cache_driver_factory(requests, taint=taint, instrumented=self.instrumented),
            horizon=self.horizon,
            label=label,
        )

    def mupath_groups(self, iuv_name: str) -> List[ContextGroup]:
        """``iuv_name`` in {"LD", "ST"}: request type under verification."""
        is_store = iuv_name == "ST"
        addrs = self._addr_values()
        contexts = []
        # warm-up request (slot 0) then the IUV (slot 1)
        for warm_store in (False, True):
            for a_warm in addrs:
                for a in addrs:
                    contexts.append(
                        self._context(
                            [(warm_store, a_warm, 1), "quiesce", (is_store, a, 2)],
                            "warm(%s,%d)|%d,0|0,0,0" % (warm_store, a_warm, a),
                        )
                    )
        # back-to-back (dynamic contention with the write buffer / AXI)
        for warm_store in (False, True):
            for a_warm in addrs:
                for a in addrs:
                    contexts.append(
                        self._context(
                            [(warm_store, a_warm, 1), (is_store, a, 2)],
                            "b2b(%s,%d)|%d,0|0,0,0" % (warm_store, a_warm, a),
                        )
                    )
        # solo
        for a in addrs:
            contexts.append(
                self._context([(is_store, a, 2)], "solo|%d,0|0,0,0" % a)
            )
        solo_group = ContextGroup(
            iuv_pc=slot_pc(0),
            contexts=[c for c in contexts if c.label.startswith("solo")],
            complete=True,
            label="solo",
        )
        probe_group = ContextGroup(
            iuv_pc=slot_pc(1),
            contexts=[c for c in contexts if not c.label.startswith("solo")],
            complete=True,
            label="probe",
        )
        return [probe_group, solo_group]

    def taint_groups(self, transponder: str, transmitter: str, assumption: str,
                     operand: str) -> List[ContextGroup]:
        t_store = transmitter == "ST"
        p_store = transponder == "ST"
        addrs = self._addr_values()
        taint_rs1 = operand == "rs1"
        taint_rs2 = operand == "rs2"
        groups: List[ContextGroup] = []

        def group(reqs_fn, p_slot, t_slot, label):
            contexts = []
            taint = TaintSpec(pc=slot_pc(t_slot), rs1=taint_rs1, rs2=taint_rs2)
            for a_t in addrs:
                for a_p in addrs:
                    contexts.append(
                        self._context(
                            reqs_fn(a_t, a_p),
                            "%s|%d,0|%d,0,0" % (label, a_p, a_t),
                            taint=taint,
                        )
                    )
            groups.append(
                ContextGroup(
                    iuv_pc=slot_pc(p_slot),
                    contexts=contexts,
                    complete=True,
                    label=label,
                    taint_pc=slot_pc(t_slot),
                )
            )

        if assumption == "intrinsic":
            if transmitter != transponder:
                return []
            # warm the cache (untainted) at the independently swept address
            # a_t, then probe at a_p: the probe's own address decides the
            # hit, so the intrinsic differential sees real variation
            group(
                lambda a_t, a_p: [(False, a_t, 1), "quiesce", (p_store, a_p, 2)],
                1,
                1,
                "intr",
            )
            group(lambda a_t, a_p: [(p_store, a_p, 2)], 0, 0, "intr-cold")
        elif assumption == "dynamic_older":
            group(
                lambda a_t, a_p: [(t_store, a_t, 1), (p_store, a_p, 2)],
                1,
                0,
                "dyn-older",
            )
        elif assumption == "dynamic_younger":
            return []  # single-outstanding-request controller: no younger overlap
        elif assumption == "static":
            group(
                lambda a_t, a_p: [
                    (t_store, a_t, 1),
                    "quiesce",
                    "flush",
                    (p_store, a_p, 2),
                ],
                1,
                0,
                "static",
            )
        return groups

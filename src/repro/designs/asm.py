"""A miniature assembler for the case-study ISA.

Accepts the conventional RISC-V-ish textual forms and produces encoded
instruction words for the core's fetch interface:

    ADD  x3, x1, x2
    ADDI x3, x1, 5
    LW   x3, 2(x1)
    SW   x2, 2(x1)     # store offset == data-register index (shared field)
    BEQ  x1, x2        # branch target offset == rs2 index (shared field)
    JAL  x1, 4
    JALR x1, x2, 0
    ECALL

Register operands are ``x0``..``x7``; immediates are the 3-bit field the
encoding carries.  ``assemble`` returns a list of words; ``disassemble``
inverts one word.
"""

from __future__ import annotations

import re
from typing import List

from . import isa

__all__ = ["assemble", "assemble_line", "disassemble", "AsmError"]


class AsmError(ValueError):
    """Raised on malformed assembly input."""


_REG = re.compile(r"^x([0-7])$")
_MEM = re.compile(r"^(\d+)\(x([0-7])\)$")


def _reg(token: str) -> int:
    match = _REG.match(token.strip())
    if not match:
        raise AsmError("bad register %r (expected x0..x7)" % token)
    return int(match.group(1))


def _imm(token: str) -> int:
    try:
        value = int(token.strip(), 0)
    except ValueError:
        raise AsmError("bad immediate %r" % token)
    if not 0 <= value < 8:
        raise AsmError("immediate %d out of range [0,8)" % value)
    return value


def assemble_line(line: str) -> int:
    """Assemble one instruction line to its encoding word."""
    text = line.split("#", 1)[0].strip()
    if not text:
        raise AsmError("empty line")
    parts = text.replace(",", " ").split()
    mnemonic = parts[0].upper()
    if mnemonic not in isa.BY_NAME:
        raise AsmError("unknown mnemonic %r" % mnemonic)
    spec = isa.BY_NAME[mnemonic]
    operands = parts[1:]

    if spec.cls in ("load",):
        # LW rd, imm(rs1)
        if len(operands) != 2:
            raise AsmError("%s expects rd, imm(rs1)" % mnemonic)
        rd = _reg(operands[0])
        match = _MEM.match(operands[1].strip())
        if not match:
            raise AsmError("bad memory operand %r" % operands[1])
        return isa.encode(mnemonic, rd=rd, rs1=int(match.group(2)),
                          rs2=_imm(match.group(1)))
    if spec.cls == "store":
        # SW rs2, imm(rs1)
        if len(operands) != 2:
            raise AsmError("%s expects rs2, imm(rs1)" % mnemonic)
        rs2_data = _reg(operands[0])
        match = _MEM.match(operands[1].strip())
        if not match:
            raise AsmError("bad memory operand %r" % operands[1])
        imm = _imm(match.group(1))
        if imm != rs2_data:
            # the compact encoding shares the rs2 field between the data
            # register and the offset; they must agree
            raise AsmError(
                "store offset must equal the data register index in the "
                "compact encoding (got offset %d, data x%d)" % (imm, rs2_data)
            )
        return isa.encode(mnemonic, rs1=int(match.group(2)), rs2=rs2_data)
    if spec.cls == "branch":
        # BEQ rs1, rs2 -- the compact encoding's rs2 field doubles as the
        # target offset (pc + rs2-index)
        if len(operands) != 2:
            raise AsmError("%s expects rs1, rs2" % mnemonic)
        return isa.encode(
            mnemonic, rs1=_reg(operands[0]), rs2=_reg(operands[1]), rd=0
        )
    if spec.cls == "jal":
        if len(operands) != 2:
            raise AsmError("%s expects rd, imm" % mnemonic)
        return isa.encode(mnemonic, rd=_reg(operands[0]), rs2=_imm(operands[1]))
    if spec.cls == "jalr":
        if len(operands) != 3:
            raise AsmError("%s expects rd, rs1, imm" % mnemonic)
        return isa.encode(
            mnemonic, rd=_reg(operands[0]), rs1=_reg(operands[1]),
            rs2=_imm(operands[2]),
        )
    if spec.cls == "system" or not (spec.reads_rs1 or spec.reads_rs2 or spec.writes_rd):
        return isa.encode(mnemonic)

    # register/immediate ALU, mul, div forms: rd, rs1, rs2|imm
    if spec.reads_rs1 and spec.reads_rs2:
        if len(operands) != 3:
            raise AsmError("%s expects rd, rs1, rs2" % mnemonic)
        return isa.encode(
            mnemonic, rd=_reg(operands[0]), rs1=_reg(operands[1]),
            rs2=_reg(operands[2]),
        )
    if spec.reads_rs1:
        if len(operands) != 3:
            raise AsmError("%s expects rd, rs1, imm" % mnemonic)
        return isa.encode(
            mnemonic, rd=_reg(operands[0]), rs1=_reg(operands[1]),
            rs2=_imm(operands[2]),
        )
    if len(operands) != 2:
        raise AsmError("%s expects rd, imm" % mnemonic)
    return isa.encode(mnemonic, rd=_reg(operands[0]), rs2=_imm(operands[1]))


def assemble(source: str) -> List[int]:
    """Assemble a multi-line program (comments with ``#``, blank lines ok)."""
    words = []
    for number, line in enumerate(source.splitlines(), 1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        try:
            words.append(assemble_line(stripped))
        except AsmError as exc:
            raise AsmError("line %d: %s" % (number, exc)) from None
    return words


def disassemble(word: int) -> str:
    """Render one encoding word back to text (canonical operand form)."""
    instr = isa.decode(word)
    spec = instr.spec
    if spec.cls == "load":
        return "%s x%d, %d(x%d)" % (spec.name, instr.rd, instr.imm, instr.rs1)
    if spec.cls == "store":
        return "%s x%d, %d(x%d)" % (spec.name, instr.rs2, instr.imm, instr.rs1)
    if spec.cls == "branch":
        return "%s x%d, x%d" % (spec.name, instr.rs1, instr.rs2)
    if spec.cls == "jal":
        return "%s x%d, %d" % (spec.name, instr.rd, instr.imm)
    if spec.cls == "jalr":
        return "%s x%d, x%d, %d" % (spec.name, instr.rd, instr.rs1, instr.imm)
    if not (spec.reads_rs1 or spec.reads_rs2 or spec.writes_rd):
        return spec.name
    if spec.reads_rs1 and spec.reads_rs2:
        return "%s x%d, x%d, x%d" % (spec.name, instr.rd, instr.rs1, instr.rs2)
    if spec.reads_rs1:
        return "%s x%d, x%d, %d" % (spec.name, instr.rd, instr.rs1, instr.imm)
    return "%s x%d, %d" % (spec.name, instr.rd, instr.imm)

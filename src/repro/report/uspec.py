"""uSPEC-style export of synthesized uPATHs.

The Check tools consume axiomatic uSPEC models: first-order axioms that
say how to instantiate uHB nodes and edges per instruction (SS I, SS
III-A).  RTL2MuPATH's purpose is to synthesize those models from RTL; this
module renders our :class:`~repro.core.rtl2mupath.MuPathResult` objects in
a uSPEC-like concrete syntax so the output is recognizably the artifact
the Check tools would ingest.

The rendering follows the structure of RTL2uSPEC's generated models --
one ``Axiom "paths_<instr>"`` with an existential disjunction over the
instruction's uPATHs, each a conjunction of node predicates and
happens-before edges -- extended with the paper's multi-path and
cycle-accurate features (per-PL revisit annotations).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..core.rtl2mupath import MuPathResult

__all__ = ["render_uspec_axiom", "render_uspec_model"]


def _node(pl: str) -> str:
    return 'NodeExists ((i, (0, %s)))' % pl


def _edge(src: str, dst: str) -> str:
    return 'EdgeExists ((i, (0, %s)), (i, (0, %s)), "path")' % (src, dst)


def render_uspec_axiom(result: MuPathResult) -> str:
    """One uSPEC axiom enumerating the instruction's uPATHs."""
    lines = ['Axiom "paths_%s":' % result.iuv, 'forall microop "i",']
    lines.append('HasOpcode i "%s" =>' % result.iuv)
    disjuncts = []
    for upath in result.upaths:
        terms: List[str] = []
        for pl in sorted(upath.pl_set):
            term = _node(pl)
            kind = upath.revisit.get(pl, "none")
            if kind != "none":
                term += '  (* revisit: %s, l in %s *)' % (
                    kind,
                    sorted(upath.run_lengths.get(pl, ())) or "?",
                )
            terms.append(term)
        for src, dst in sorted(upath.hb_edges):
            terms.append(_edge(src, dst))
        disjuncts.append("  (\n    " + " /\\\n    ".join(terms) + "\n  )")
    lines.append("\\/\n".join(disjuncts) + ".")
    return "\n".join(lines)


def render_uspec_model(results: Dict[str, MuPathResult], name="synthesized") -> str:
    """A full model: one axiom per instruction plus a decision summary."""
    parts = ['(* uSPEC model "%s", synthesized by RTL2MuPATH (repro) *)' % name]
    for iuv in sorted(results):
        parts.append(render_uspec_axiom(results[iuv]))
        decisions = results[iuv].decisions
        if decisions.sources:
            parts.append(
                "(* decision sources for %s: %s *)"
                % (iuv, ", ".join(decisions.sources))
            )
    return "\n\n".join(parts) + "\n"

"""Reproduction reports: Fig. 8 matrix, Table II, SS VII-B3 statistics."""

from .perf import (
    stall_breakdown_report,
    timing_variability_report,
    timing_variability_rows,
)
from .fig8 import CLASS_REPRESENTATIVES, Fig8Matrix, build_fig8, class_members
from .profile import render_profile
from .tables import property_stats_report, render_table, table2_report
from .uspec import render_uspec_axiom, render_uspec_model
from .waveforms import witness_pl_timeline, witness_to_vcd

__all__ = [
    "CLASS_REPRESENTATIVES",
    "Fig8Matrix",
    "build_fig8",
    "class_members",
    "property_stats_report",
    "render_profile",
    "stall_breakdown_report",
    "timing_variability_report",
    "timing_variability_rows",
    "render_table",
    "table2_report",
    "render_uspec_axiom",
    "render_uspec_model",
    "witness_pl_timeline",
    "witness_to_vcd",
]

"""Fig. 8 reproduction: the transponder x transmitter leakage matrix.

The paper's Fig. 8 plots, for the CVA6 core, every transponder class
(coarse columns) with one fine column per leakage signature (annotated
with its output-range size), against transmitter classes and operands
(rows), distinguishing primary, secondary, and false-positive leakage.

SynthLC runs on one representative per functional class (exactly how the
artifact seeds its Fig. 8 flow with precomputed uPATHs) and this module
extends results across each class: instructions of a class share
datapaths by construction of the ISA, which the test suite spot-verifies
by re-synthesizing uPATHs for sampled class members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..designs import isa
from ..core.synthlc import LeakageSignature, SynthLCResult, TransmitterTag

__all__ = ["CLASS_REPRESENTATIVES", "class_members", "Fig8Matrix", "build_fig8"]

# functional class -> representative instruction (the synthesis subject)
CLASS_REPRESENTATIVES: Dict[str, str] = {
    "alu": "ADD",
    "mul": "MUL",
    "div": "DIV",
    "load": "LW",
    "store": "SW",
    "branch": "BEQ",
    "jal": "JAL",
    "jalr": "JALR",
    "system": "ECALL",
}


def class_members(class_name: str) -> Tuple[str, ...]:
    return isa.CLASSES[class_name]


def class_of(instruction: str) -> str:
    return isa.BY_NAME[instruction].cls


@dataclass
class Fig8Cell:
    """One (transmitter-row, signature-column) cell."""

    kind: str  # "primary" | "secondary" | "false-positive"


@dataclass
class Fig8Matrix:
    """The extended matrix plus headline counts (SS VII-A1)."""

    # (transponder instruction, signature name) -> column
    columns: List[Tuple[str, LeakageSignature]]
    # (transmitter instruction, ttype-group, operand) -> row
    rows: List[Tuple[str, str, str]]
    cells: Dict[Tuple[int, int], Fig8Cell]
    transponders: Tuple[str, ...]
    intrinsic_transmitters: Tuple[str, ...]
    dynamic_transmitters: Tuple[str, ...]
    static_transmitters: Tuple[str, ...]
    unique_signatures: int
    false_positive_signatures: int

    @property
    def num_transponders(self):
        return len(self.transponders)

    @property
    def num_transmitters(self):
        return len(
            set(self.intrinsic_transmitters)
            | set(self.dynamic_transmitters)
            | set(self.static_transmitters)
        )

    def render(self, max_columns: int = 24) -> str:
        lines = [
            "Fig. 8 matrix: %d transponders, %d transmitters "
            "(%d intrinsic, %d dynamic, %d static), %d unique signatures "
            "(%d with false-positive inputs)"
            % (
                self.num_transponders,
                self.num_transmitters,
                len(self.intrinsic_transmitters),
                len(self.dynamic_transmitters),
                len(self.static_transmitters),
                self.unique_signatures,
                self.false_positive_signatures,
            )
        ]
        shown = self.columns[:max_columns]
        header = "%-18s" % "transmitter(row)"
        for transponder, signature in shown:
            header += " %10s" % ("%s@%s" % (transponder[:5], signature.src[:5]))
        lines.append(header)
        mark = {"primary": "P", "secondary": "s", "false-positive": "x"}
        for ri, row in enumerate(self.rows):
            label = "%-18s" % ("%s^%s.%s" % row)
            cells = ""
            for ci in range(len(shown)):
                cell = self.cells.get((ri, ci))
                cells += " %10s" % (mark[cell.kind] if cell else ".")
            lines.append(label + cells)
        if len(self.columns) > max_columns:
            lines.append("... (%d more columns)" % (len(self.columns) - max_columns))
        return "\n".join(lines)


_DYNAMIC = ("dynamic_older", "dynamic_younger")


def _ttype_group(ttype: str) -> str:
    if ttype in _DYNAMIC:
        return "D"
    return "N" if ttype == "intrinsic" else "S"


def _is_secondary(signature: LeakageSignature, tag: TransmitterTag,
                  intrinsic_transmitters: Set[str]) -> bool:
    """The paper's secondary-leakage pattern (SS VII-A1): the transponder
    merely stalls at a shared resource behind a transmitter that is itself
    a transponder -- e.g. an ADD stuck at the SCB behind an intrinsic DIV.

    Heuristic: the tag is dynamic, its transmitter is an intrinsic
    transmitter elsewhere (it leaks through its own uPATHs already), and
    the signature has a hold-at-source arm (some destination keeps the
    transponder at the decision source)."""
    if tag.ttype == "intrinsic":
        return False
    if tag.transmitter not in intrinsic_transmitters:
        return False
    if tag.transmitter == signature.transponder:
        return False
    return any(signature.src in dst for dst in signature.destinations)


def build_fig8(
    result: SynthLCResult,
    extend_classes: bool = True,
) -> Fig8Matrix:
    """Build the matrix, optionally extending class representatives to all
    72 instructions (the representative's signatures are reproduced for
    every class member, with transmitter rows extended likewise)."""

    def expand_instr(name: str) -> List[str]:
        if not extend_classes:
            return [name]
        return list(class_members(class_of(name)))

    # columns: transponder instruction x signature
    columns: List[Tuple[str, LeakageSignature]] = []
    for signature in result.signatures:
        for member in expand_instr(signature.transponder):
            columns.append((member, signature))
    columns.sort(key=lambda c: (class_of(c[0]), c[0], c[1].src))

    # rows: transmitter x type-group x operand
    row_set: Set[Tuple[str, str, str]] = set()
    for signature in result.signatures:
        for tag in signature.inputs:
            for member in expand_instr(tag.transmitter):
                row_set.add((member, _ttype_group(tag.ttype), tag.operand))
    rows = sorted(row_set)
    row_index = {row: i for i, row in enumerate(rows)}

    intrinsic: Set[str] = set()
    dynamic: Set[str] = set()
    static: Set[str] = set()
    for ttype, names in result.transmitters.items():
        for name in names:
            for member in expand_instr(name):
                if ttype == "intrinsic":
                    intrinsic.add(member)
                elif ttype in _DYNAMIC:
                    dynamic.add(member)
                else:
                    static.add(member)

    cells: Dict[Tuple[int, int], Fig8Cell] = {}
    for ci, (transponder, signature) in enumerate(columns):
        for tag in signature.inputs:
            group = _ttype_group(tag.ttype)
            for member in expand_instr(tag.transmitter):
                ri = row_index.get((member, group, tag.operand))
                if ri is None:
                    continue
                if tag.false_positive:
                    kind = "false-positive"
                elif _is_secondary(signature, tag, intrinsic):
                    kind = "secondary"
                else:
                    kind = "primary"
                existing = cells.get((ri, ci))
                if existing is None or existing.kind != "primary":
                    cells[(ri, ci)] = Fig8Cell(kind=kind)

    transponders = sorted(
        {member for s in result.signatures for member in expand_instr(s.transponder)}
    )
    fp_signatures = sum(1 for s in result.signatures if s.has_false_positive_inputs())
    return Fig8Matrix(
        columns=columns,
        rows=rows,
        cells=cells,
        transponders=tuple(transponders),
        intrinsic_transmitters=tuple(sorted(intrinsic)),
        dynamic_transmitters=tuple(sorted(dynamic)),
        static_transmitters=tuple(sorted(static)),
        unique_signatures=len(result.signatures),
        false_positive_signatures=fp_signatures,
    )

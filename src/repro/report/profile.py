"""Text rendering for trace profiles (``python -m repro profile``).

Turns a parsed :class:`~repro.obs.profile.TraceProfile` into the
terminal report: run summary, per-phase breakdown (total vs self time),
per-instruction wall clock, hotspot ranking, and the SS VII-B3
reconciliation line (span-accounted checker seconds vs the run's
``PropertyStats.total_time``).
"""

from __future__ import annotations

from typing import Optional

from ..obs.profile import TraceProfile
from .tables import render_table

__all__ = ["render_profile"]


def _fmt_seconds(value: float) -> str:
    return "%.6f" % value


def _fmt_pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "-"
    return "%.1f%%" % (100.0 * part / whole)


def render_profile(profile: TraceProfile, top: int = 10) -> str:
    sections = []

    # ---- run summary
    lines = ["trace: %d events, %d spans" % (len(profile.events), len(profile.spans))]
    manifest = profile.manifest
    if manifest:
        lines.append(
            "run: %s jobs (%s cached, %s executed, %s failed), "
            "%s properties (%s fresh, %s replayed), %.2fs wall on %s worker(s)"
            % (
                manifest.get("jobs_total", "?"),
                manifest.get("jobs_cached", "?"),
                manifest.get("jobs_executed", "?"),
                manifest.get("jobs_failed", "?"),
                manifest.get("properties_total", "?"),
                manifest.get("properties_evaluated", "?"),
                manifest.get("properties_replayed", "?"),
                manifest.get("wall_seconds", 0.0),
                manifest.get("workers", "?"),
            )
        )
    if profile.errors:
        lines.append("INTEGRITY: %d error(s)" % len(profile.errors))
        lines.extend("  - %s" % err for err in profile.errors[:20])
        if len(profile.errors) > 20:
            lines.append("  ... and %d more" % (len(profile.errors) - 20))
    else:
        lines.append("integrity: ok")
    sections.append("\n".join(lines))

    # ---- per-phase breakdown
    totals = profile.phase_totals()
    if totals:
        grand_self = sum(bucket["self"] for bucket in totals.values())
        rows = []
        for name, bucket in sorted(
            totals.items(), key=lambda kv: kv[1]["self"], reverse=True
        ):
            rows.append(
                [
                    name,
                    int(bucket["count"]),
                    _fmt_seconds(bucket["total"]),
                    _fmt_seconds(bucket["self"]),
                    _fmt_pct(bucket["self"], grand_self),
                    int(bucket["properties"]),
                    _fmt_seconds(bucket["check_seconds"]),
                ]
            )
        sections.append(
            "per-phase (self time excludes child spans):\n"
            + render_table(
                ["phase", "count", "total s", "self s", "self %",
                 "properties", "check s"],
                rows,
            )
        )

    # ---- per-instruction breakdown
    per_instr = profile.per_instruction()
    if per_instr:
        rows = [
            [
                label,
                int(bucket["count"]),
                _fmt_seconds(bucket["total"]),
                int(bucket["properties"]),
            ]
            for label, bucket in sorted(
                per_instr.items(), key=lambda kv: kv[1]["total"], reverse=True
            )
        ]
        sections.append(
            "per-instruction:\n"
            + render_table(["unit", "count", "total s", "properties"], rows)
        )

    # ---- per-node breakdown (distributed traces only)
    by_node = profile.per_node()
    if profile.is_distributed or set(by_node) - {"local"}:
        rows = []
        manifest_nodes = (manifest or {}).get("nodes") or {}
        for node, bucket in sorted(by_node.items()):
            rows.append(
                [
                    node,
                    int(bucket["spans"]),
                    _fmt_seconds(bucket["total"]),
                    int(bucket["properties"]),
                    _fmt_seconds(bucket["check_seconds"]),
                    manifest_nodes.get(node, {}).get("jobs", "-"),
                ]
            )
        sections.append(
            "per-node (fleet trace):\n"
            + render_table(
                ["node", "spans", "total s", "properties", "check s",
                 "manifest jobs"],
                rows,
            )
        )

    # ---- hotspots
    hotspots = profile.hotspots(top=top)
    if hotspots:
        rows = []
        for record, self_s in hotspots:
            detail = ", ".join(
                "%s=%s" % (k, v)
                for k, v in sorted(record.attrs.items())
                if k not in ("properties", "check_seconds")
            )
            rows.append(
                [record.name, _fmt_seconds(self_s),
                 _fmt_seconds(record.duration), detail]
            )
        sections.append(
            "hotspots (top %d spans by self time):\n" % len(rows)
            + render_table(["span", "self s", "total s", "attrs"], rows)
        )

    # ---- checker-time reconciliation
    lines = [
        "checker time: %.6fs on spans + %.6fs replayed from cache = %.6fs"
        % (
            profile.checked_seconds(),
            profile.replayed_seconds(),
            profile.accounted_seconds(),
        )
    ]
    if profile.is_distributed:
        unattributed = profile.unattributed_check_seconds()
        lines.append(
            "fleet attribution: %.6fs of checker time without a node_id"
            " -> %s"
            % (unattributed, "ok" if unattributed <= 1e-4 else "MISMATCH")
        )
    stats = profile.stats
    if stats and isinstance(stats.get("total_time"), (int, float)):
        total_time = float(stats["total_time"])
        ok = profile.reconciles_total_time(total_time)
        lines.append(
            "stats total_time: %.6fs over %s properties -> %s"
            % (
                total_time,
                stats.get("count", "?"),
                "reconciles" if ok else "MISMATCH",
            )
        )
    sections.append("\n".join(lines))

    return "\n\n".join(sections) + "\n"

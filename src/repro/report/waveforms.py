"""Witness-trace export: model-checker counterexamples as VCD waveforms.

The paper's workflow inspects "the RTL waveforms produced by RTL2MuPATH's
reachable SVA cover properties" (SS VII-B2 -- how the scoreboard bug was
localized).  This module turns any reachable :class:`CheckResult` witness
into a VCD document, optionally restricted to the signals of interest
(e.g. one instruction's PL occupancies).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..mc.outcomes import CheckResult
from ..sim.simulator import Trace
from ..sim.vcd import trace_to_vcd

__all__ = ["witness_to_vcd", "witness_pl_timeline"]


def witness_to_vcd(
    result: CheckResult,
    signals: Optional[Iterable[str]] = None,
    design: str = "witness",
) -> str:
    """Render a reachable result's witness as VCD text."""
    if result.witness is None:
        raise ValueError(
            "result %s has no witness (outcome: %s)"
            % (result.query_name, result.outcome)
        )
    names = list(signals) if signals is not None else sorted(result.witness[0])
    trace = Trace(names)
    for obs in result.witness:
        trace.append({name: obs.get(name, 0) for name in names}, {})
    return trace_to_vcd(trace, design=design)


def witness_pl_timeline(result: CheckResult, metadata, iuv_pc: int) -> List[str]:
    """Human-readable per-cycle PL occupancy of ``iuv_pc`` in the witness."""
    if result.witness is None:
        raise ValueError("no witness to render")
    lines = []
    for cycle, obs in enumerate(result.witness):
        visited = []
        for name, pl in metadata.pls.items():
            for slot in pl.slots:
                if obs.get(slot.occ_signal) and obs.get(slot.pc_signal) == iuv_pc:
                    visited.append(name)
        if visited:
            lines.append("cycle %2d: %s" % (cycle, ", ".join(sorted(set(visited)))))
    return lines

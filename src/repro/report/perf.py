"""Timing-variability report from a compiled performance model.

A compiled :class:`~repro.perf.model.PerfModel` carries, for each
instruction, the latency table keyed by operand features and the full
set of unit-PL run lengths observed across its μPATH set.  The spread
of that table (max latency minus min latency) is exactly the
operand-dependent timing channel SynthLC classifies: a zero spread is
the constant-time verdict, a nonzero spread marks a transmitter whose
cycle count depends on operand values.  This module renders that view
per hazard class and per instruction so the perf CLI's output can be
cross-checked against the SynthLC leakage labels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..perf.model import PerfModel
from .tables import render_table

__all__ = [
    "timing_variability_rows",
    "timing_variability_report",
    "stall_breakdown_report",
]


def timing_variability_rows(model: PerfModel) -> List[Tuple[str, str, int, int, int, str]]:
    """Rows of ``(instr, class, min_lat, max_lat, delta, features)``.

    ``delta > 0`` marks an operand-dependent timing channel -- the
    perf-model counterpart of a SynthLC operand-transmitter label;
    ``delta == 0`` is the constant-time verdict.
    """
    rows = []
    for name in sorted(model.instrs):
        timing = model.instrs[name]
        lo, hi = timing.min_latency, timing.max_latency
        rows.append((
            name,
            timing.cls,
            lo,
            hi,
            hi - lo,
            ",".join(timing.features) if timing.features else "-",
        ))
    rows.sort(key=lambda r: (-r[4], r[1], r[0]))
    return rows


def timing_variability_report(model: PerfModel) -> str:
    """Human-readable per-instruction timing-variability table."""
    headers = ["instr", "class", "min", "max", "delta", "operand features"]
    body = [
        (name, cls, str(lo), str(hi),
         str(delta) if delta else "0 (const-time)", feats)
        for name, cls, lo, hi, delta, feats in timing_variability_rows(model)
    ]
    lines = [
        "Timing variability (%s, xlen=%d)" % (model.design_label, model.xlen),
        render_table(headers, body),
    ]
    return "\n".join(lines)


def stall_breakdown_report(stalls: Dict[str, int]) -> str:
    """Render predicted stall-cycle totals per hazard class."""
    total = sum(stalls.values())
    headers = ["hazard class", "stall cycles", "share"]
    body = []
    for cls in sorted(stalls, key=lambda c: -stalls[c]):
        count = stalls[cls]
        share = "%.1f%%" % (100.0 * count / total) if total else "-"
        body.append((cls, str(count), share))
    lines = [
        "Predicted stall cycles (%d total)" % total,
        render_table(headers, body),
    ]
    return "\n".join(lines)

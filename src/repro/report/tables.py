"""Table II and SS VII-B3 reports.

Table II quantifies the user-annotation burden (IFR, uFSMs, PCRs added,
commit signal, operand registers, ARF/AMEM) for the Core and Cache DUVs.
SS VII-B3 reports property counts, mean evaluation time, and undetermined
fractions per tool phase and per DUV -- the shape result being that
modular (cache-only) verification is orders of magnitude cheaper per
property than whole-core verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.pl import DesignMetadata
from ..mc.stats import PropertyStats

__all__ = ["table2_report", "property_stats_report", "render_table"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines = [fmt % tuple(headers), fmt % tuple("-" * w for w in widths)]
    for row in rows:
        lines.append(fmt % tuple(str(c) for c in row))
    return "\n".join(lines)


def table2_report(metadatas: Dict[str, DesignMetadata]) -> str:
    """Table II analogue: annotation counts per DUV."""
    headers = [
        "DUV",
        "IFR",
        "uFSMs",
        "PCRs",
        "PCRs added",
        "state vars",
        "PLs",
        "PL slots",
        "operand regs",
        "ARF regs",
        "AMEM regs",
        "commit",
    ]
    rows = []
    for name, metadata in metadatas.items():
        counts = metadata.annotation_counts()
        rows.append(
            [
                name,
                metadata.ifr_signal,
                counts["ufsms"],
                counts["pcrs"],
                counts["pcrs_added"],
                counts["state_var_registers"],
                counts["pls"],
                counts["pl_slots"],
                counts["operand_registers"],
                counts["arf_registers"],
                counts["amem_registers"],
                metadata.commit_signal,
            ]
        )
    return render_table(headers, rows)


def property_stats_report(stats: Dict[str, PropertyStats]) -> str:
    """SS VII-B3 analogue: per-phase property evaluation accounting."""
    headers = [
        "phase",
        "properties",
        "mean s/prop",
        "reachable",
        "unreachable",
        "undetermined",
        "% undet",
    ]
    rows = []
    for name, phase_stats in stats.items():
        histogram = phase_stats.outcome_histogram
        rows.append(
            [
                name,
                phase_stats.count,
                "%.6f" % phase_stats.mean_time,
                histogram.get("reachable", 0),
                histogram.get("unreachable", 0),
                histogram.get("undetermined", 0),
                "%.2f" % (100 * phase_stats.undetermined_fraction),
            ]
        )
    return render_table(headers, rows)

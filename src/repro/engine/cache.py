"""Persistent proof cache with canonical content hashing.

The paper's dominant cost is re-discharging tens of thousands of cover /
assert properties on every run (SS VII-B3 reports multi-day JasperGold
wall-clock).  Verdicts, however, are pure functions of four inputs: the
elaborated netlist, the context-family configuration, the property
template, and the engine configuration.  This module keys prior
REACHABLE / UNREACHABLE verdicts by a canonical content hash of exactly
those components, so re-runs answer instantly and any change to a key
component invalidates the entry automatically (a different hash simply
never matches).

Two rules keep the cache sound:

* **UNDETERMINED is never cached as final.**  A resource-limited verdict
  may flip with a bigger budget; entries containing one are not written.
* **Truncated context families are never cached.**  Their negative
  verdicts are sampled, not proven (job types veto via ``value_is_final``).

Layout: ``<cache_dir>/<key[:2]>/<key>.json``, written atomically
(temp file + rename) so concurrent runs sharing a cache directory can
only ever observe complete entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, Optional

__all__ = ["canonical_json", "content_key", "netlist_fingerprint", "ProofCache"]

CACHE_FORMAT_VERSION = 1


# ------------------------------------------------------------ canonical hash
def _canon_default(obj):
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError("not canonically serializable: %r" % type(obj).__name__)


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, sets sorted."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_canon_default
    )


def content_key(**components) -> str:
    """SHA-256 over the canonical JSON of the named key components."""
    return hashlib.sha256(canonical_json(components).encode("utf-8")).hexdigest()


def netlist_fingerprint(netlist) -> str:
    """Canonical structural hash of an elaborated netlist.

    Nodes are visited in topological (evaluation) order and renumbered
    densely, so the hash is independent of builder-assigned uids and of
    anything but structure: (op, width, const value, name, argument
    positions), plus the register set (name, width, reset, next-state
    node), primary-input order, and the named/output signal tables.
    """
    index: Dict[int, int] = {}
    h = hashlib.sha256()
    h.update(("netlist:%s\n" % netlist.name).encode("utf-8"))
    for i, node in enumerate(netlist.order):
        index[node.uid] = i
        h.update(
            (
                "n%d:%s:%d:%s:%s:%s\n"
                % (
                    i,
                    node.op,
                    node.width,
                    "" if node.value is None else node.value,
                    node.name or "",
                    ",".join(str(index[arg.uid]) for arg in node.args),
                )
            ).encode("utf-8")
        )
    for reg, next_node in netlist.registers:
        h.update(
            (
                "r:%s:%d:%d:%d\n"
                % (reg.name, reg.width, reg.reset, index[next_node.uid])
            ).encode("utf-8")
        )
    h.update(
        ("i:%s\n" % ",".join(str(index[n.uid]) for n in netlist.inputs)).encode()
    )
    for name in sorted(netlist.named):
        h.update(("s:%s:%d\n" % (name, index[netlist.named[name].uid])).encode())
    for name in sorted(netlist.outputs):
        h.update(("o:%s:%d\n" % (name, index[netlist.outputs[name].uid])).encode())
    return h.hexdigest()


# -------------------------------------------------------------- on-disk store
class ProofCache:
    """Content-addressed verdict store under ``cache_dir``."""

    def __init__(self, cache_dir: str):
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the entry for ``key``, or None (absent, corrupt, stale
        format, or not final)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("format") != CACHE_FORMAT_VERSION:
            return None
        if not entry.get("final"):
            return None
        return entry

    def put(
        self,
        key: str,
        job_id: str,
        payload: Any,
        results: list,
        final: bool = True,
    ) -> bool:
        """Store a verdict entry; non-final entries are refused (the
        UNDETERMINED rule).  Returns True when an entry was written."""
        if not final:
            return False
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "job_id": job_id,
            "created": time.time(),
            "final": True,
            "payload": payload,
            "results": results,
        }
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def entries(self) -> int:
        """Number of stored entries (for telemetry / tests)."""
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.cache_dir):
            count += sum(
                1 for f in filenames
                if f.endswith(".json") and not f.startswith(".tmp-")
            )
        return count
